//! The §VI-B comparison of the (reconstructed) COATCheck suite against
//! TransForm-synthesized suites.
//!
//! The quick test runs the synthesis at bound 5 — large enough for three
//! of the four verbatim programs. The full paper numbers (7 verbatim tests
//! → 4 unique programs, 15 reducible, 9 + 9 out of scope) need bound 6 and
//! run in the `#[ignore]`d test below (and in the `comparison` release
//! binary).

use std::time::Duration;
use transform::synth::synthesize_all;
use transform::synth::SynthOptions;
use transform::x86::{coatcheck, compare, x86t_elt};

fn keys_at_bound(bound: usize) -> std::collections::BTreeSet<Vec<u64>> {
    let mtm = x86t_elt();
    let mut opts = SynthOptions::new(bound);
    opts.enumeration.allow_fences = false;
    opts.enumeration.allow_rmw = false;
    opts.timeout = Some(Duration::from_secs(600));
    let suites = synthesize_all(&mtm, &opts);
    compare::synthesized_keys(suites.values())
}

#[test]
fn comparison_at_bound_5_classifies_the_suite() {
    let keys = keys_at_bound(5);
    let suite = coatcheck::suite();
    let cmp = compare::compare_suite(&suite, &keys);

    // At bound 5 the 6-event coRR program (D) is not yet synthesized, so
    // the two corr verbatim tests and the two corr category-2 tests fall
    // outside the spanning set; everything else already classifies as at
    // the full bound.
    assert_eq!(cmp.count(compare::Category::Verbatim), 5);
    assert_eq!(cmp.verbatim_programs, 3);
    assert_eq!(cmp.count(compare::Category::Reducible), 13);
    assert_eq!(cmp.count(compare::Category::NotSpanning), 13);
    assert_eq!(cmp.count(compare::Category::UnsupportedIpi), 9);

    // Specific pins from the paper.
    let by_name = |name: &str| {
        cmp.tests
            .iter()
            .find(|t| t.name == name)
            .unwrap_or_else(|| panic!("{name} missing"))
            .category
    };
    assert_eq!(by_name("ptwalk2"), compare::Category::Verbatim);
    assert_eq!(by_name("dirtybit3"), compare::Category::Reducible);
    assert_eq!(by_name("sb_elt"), compare::Category::NotSpanning);
    assert_eq!(by_name("ipi_resched1"), compare::Category::UnsupportedIpi);
}

/// The full §VI-B numbers. Slow in debug builds; run with
/// `cargo test --release -- --ignored comparison_at_bound_6`.
#[test]
#[ignore = "bound-6 synthesis takes minutes in debug builds"]
fn comparison_at_bound_6_reproduces_the_paper_composition() {
    let keys = keys_at_bound(6);
    let suite = coatcheck::suite();
    let cmp = compare::compare_suite(&suite, &keys);
    assert_eq!(cmp.count(compare::Category::Verbatim), 7);
    assert_eq!(cmp.verbatim_programs, 4);
    assert_eq!(cmp.count(compare::Category::Reducible), 15);
    assert_eq!(cmp.count(compare::Category::NotSpanning), 9);
    assert_eq!(cmp.count(compare::Category::UnsupportedIpi), 9);
}
