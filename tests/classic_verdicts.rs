//! The classic litmus catalog gets its canonical x86-TSO verdicts after
//! ELT enhancement — and the transistency axioms add no constraints for
//! translation-free programs (transistency ⊇ consistency, §V-A).

use transform::litmus::{classic, enhance};
use transform::x86::{x86_tso, x86t_elt};

#[test]
fn classic_catalog_verdicts_under_x86_tso() {
    let tso = x86_tso();
    for t in classic::all_tests() {
        let elt = enhance(&t);
        let v = tso.permits(&elt);
        assert_eq!(
            v.is_permitted(),
            t.permitted_by_tso,
            "{}: expected permitted={}, violated {:?}",
            t.name,
            t.permitted_by_tso,
            v.violated
        );
    }
}

#[test]
fn transistency_agrees_on_translation_free_tests() {
    // No remaps, no INVLPGs: the invlpg and tlb_causality axioms cannot
    // fire beyond what consistency already forbids.
    let tso = x86_tso();
    let mtm = x86t_elt();
    for t in classic::all_tests() {
        let elt = enhance(&t);
        assert_eq!(
            tso.permits(&elt).is_permitted(),
            mtm.permits(&elt).is_permitted(),
            "{}",
            t.name
        );
    }
}

#[test]
fn forbidden_classics_cite_the_expected_axiom() {
    let tso = x86_tso();
    let expect = [
        ("sb+mfences", "causality"),
        ("mp", "causality"),
        ("corr", "sc_per_loc"),
        ("wrc", "causality"),
        ("iriw", "causality"),
        ("2+2w", "causality"),
    ];
    for (name, axiom) in expect {
        let t = classic::all_tests()
            .into_iter()
            .find(|t| t.name == name)
            .expect("test exists");
        let v = tso.permits(&enhance(&t));
        assert!(
            v.violates(axiom),
            "{name}: expected {axiom}, violated {:?}",
            v.violated
        );
    }
}
