//! Cross-validation of the two candidate-execution generators: the
//! explicit operational enumerator and the relational (SAT) backend must
//! produce exactly the same well-formed executions for every program the
//! synthesizer enumerates at small bounds.

use std::collections::BTreeSet;
use transform::core::Execution;
use transform::synth::programs::{programs, EnumOptions};
use transform::synth::{execs, satgen};
use transform::x86::x86t_elt;

type CommSignature = (Vec<(u32, u32)>, Vec<(u32, u32)>);

fn signature(x: &Execution) -> CommSignature {
    let rf = x.rf_pairs().iter().map(|&(a, b)| (a.0, b.0)).collect();
    let co = x.co_pairs().iter().map(|&(a, b)| (a.0, b.0)).collect();
    (rf, co)
}

#[test]
fn backends_agree_on_every_bound_4_program() {
    let mut opts = EnumOptions::new(4);
    opts.allow_fences = false;
    opts.allow_rmw = false;
    let progs = programs(&opts);
    assert!(!progs.is_empty());
    for prog in progs {
        let skel = prog.to_skeleton();
        let explicit: BTreeSet<_> = execs::executions(&skel, false)
            .iter()
            .map(signature)
            .collect();
        let relational: BTreeSet<_> = satgen::all_executions(&skel, false)
            .iter()
            .map(signature)
            .collect();
        assert_eq!(explicit, relational, "program {prog:?}");
    }
}

#[test]
fn backends_agree_on_violations_per_axiom() {
    let mtm = x86t_elt();
    let mut opts = EnumOptions::new(4);
    opts.allow_fences = false;
    opts.allow_rmw = false;
    for prog in programs(&opts) {
        let skel = prog.to_skeleton();
        for axiom in ["sc_per_loc", "invlpg", "tlb_causality", "causality"] {
            let explicit: BTreeSet<_> = execs::executions(&skel, false)
                .into_iter()
                .filter(|x| mtm.permits(x).violates(axiom))
                .map(|x| signature(&x))
                .collect();
            let relational: BTreeSet<_> =
                satgen::violating_executions(&skel, &mtm, axiom, false, usize::MAX)
                    .iter()
                    .map(signature)
                    .collect();
            assert_eq!(explicit, relational, "program {prog:?}, axiom {axiom}");
        }
    }
}

#[test]
fn relational_models_always_pass_the_operational_checker() {
    // Every instance the SAT backend extracts must be a well-formed
    // candidate execution under the operational rules.
    let mut opts = EnumOptions::new(4);
    opts.allow_fences = false;
    opts.allow_rmw = false;
    for prog in programs(&opts) {
        let skel = prog.to_skeleton();
        for x in satgen::all_executions(&skel, false) {
            assert!(x.is_well_formed(), "{prog:?}: {:?}", x.analyze().err());
        }
    }
}
