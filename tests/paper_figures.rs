//! Integration tests pinning every figure of the paper to its published
//! behavior, through the public API only.

use transform::core::derive::BaseRel;
use transform::core::figures;
use transform::core::pretty;
use transform::x86::{x86_tso, x86t_elt};

#[test]
fn every_figure_matches_its_published_verdict() {
    let mtm = x86t_elt();
    for (name, x, permitted) in figures::all_figures() {
        let verdict = mtm.permits(&x);
        assert_eq!(
            verdict.is_permitted(),
            permitted,
            "{name}: violated {:?}",
            verdict.violated
        );
    }
}

#[test]
fn fig2_mapping_preserves_user_level_outcome_but_not_verdict() {
    // Same user-level communication (the SC outcome of sb), two different
    // ELT refinements: distinct pages permitted, aliased pages forbidden.
    let mtm = x86t_elt();
    let plain = figures::fig2b_sb_elt();
    let aliased = figures::fig2c_sb_elt_aliased();
    assert!(mtm.permits(&plain).is_permitted());
    let v = mtm.permits(&aliased);
    assert!(v.violates("sc_per_loc"));
}

#[test]
fn fig2b_renders_like_the_paper() {
    let x = figures::fig2b_sb_elt();
    let a = x.analyze().expect("well-formed");
    let s = pretty::render(&a);
    for needle in ["C0", "C1", "W0", "Wdb0", "Rptw0", "R1", "W2", "R3", "rf:"] {
        assert!(s.contains(needle), "missing {needle} in:\n{s}");
    }
}

#[test]
fn fig6_disambiguates_the_read() {
    // In the MCM view (Fig. 6b) R6 could read either write; the ELT pins
    // rf(W3 -> R6) and the pa relations prove W4 hits a different page.
    let x = figures::fig6_remap_disambiguated();
    let a = x.analyze().expect("well-formed");
    let rf_pa = a.relation(BaseRel::RfPa);
    let fr_va = a.relation(BaseRel::FrVa);
    assert_eq!(rf_pa.len(), 2, "W3 and R6 use the remapped page");
    assert_eq!(fr_va.len(), 2, "R0 and W4 used the stale mapping");
    assert!(x86t_elt().permits(&x).is_permitted());
}

#[test]
fn transistency_refines_consistency_on_the_figures() {
    // Anything forbidden by x86-TSO alone stays forbidden under x86t_elt
    // (transistency is a superset of consistency).
    let tso = x86_tso();
    let mtm = x86t_elt();
    for (name, x, _) in figures::all_figures() {
        if !tso.permits(&x).is_permitted() {
            assert!(
                !mtm.permits(&x).is_permitted(),
                "{name}: x86t_elt must refine x86-TSO"
            );
        }
    }
}

#[test]
fn fig10a_and_fig11_differ_in_attribution() {
    let mtm = x86t_elt();
    let both = mtm.permits(&figures::fig10a_ptwalk2());
    assert!(both.violates("sc_per_loc") && both.violates("invlpg"));
    let only = mtm.permits(&figures::fig11_cross_core_invlpg());
    assert_eq!(only.violated, vec!["invlpg".to_string()]);
}

#[test]
fn instruction_bounds_count_ghosts() {
    // The bound semantics of §VI: Fig. 10a is a 4-instruction ELT even
    // though only 3 instructions are fetched.
    let x = figures::fig10a_ptwalk2();
    assert_eq!(x.size(), 4);
    assert_eq!(x.events().iter().filter(|e| !e.kind.is_ghost()).count(), 3);
}
