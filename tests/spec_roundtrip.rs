//! Property tests for the MTM spec DSL: rendering and re-parsing any
//! generated model is the identity, and evaluation agrees between the
//! original and the round-tripped model.

use proptest::prelude::*;
use transform::core::derive::BaseRel;
use transform::core::figures;
use transform::core::spec::parse_mtm;
use transform::core::{Axiom, Mtm, RelExpr};

fn base_rel() -> impl Strategy<Value = BaseRel> {
    proptest::sample::select(BaseRel::all().to_vec())
}

fn rel_expr() -> impl Strategy<Value = RelExpr> {
    base_rel()
        .prop_map(RelExpr::base)
        .prop_recursive(3, 24, 2, |inner| {
            prop_oneof![
                (inner.clone(), inner.clone()).prop_map(|(a, b)| a.union(b)),
                (inner.clone(), inner.clone()).prop_map(|(a, b)| a.inter(b)),
                (inner.clone(), inner.clone()).prop_map(|(a, b)| a.diff(b)),
                (inner.clone(), inner.clone()).prop_map(|(a, b)| a.seq(b)),
                inner.clone().prop_map(RelExpr::inverse),
                inner.prop_map(RelExpr::closure),
            ]
        })
}

fn axiom() -> impl Strategy<Value = Axiom> {
    prop_oneof![
        rel_expr().prop_map(Axiom::Acyclic),
        rel_expr().prop_map(Axiom::Irreflexive),
        rel_expr().prop_map(Axiom::Empty),
    ]
}

fn mtm() -> impl Strategy<Value = Mtm> {
    proptest::collection::vec(axiom(), 1..4).prop_map(|axioms| {
        let mut m = Mtm::new("random");
        for (i, a) in axioms.into_iter().enumerate() {
            m.add_axiom(&format!("ax{i}"), a);
        }
        m
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn display_then_parse_is_identity(m in mtm()) {
        let rendered = m.to_string();
        let reparsed = parse_mtm(&rendered).expect("rendered models parse");
        prop_assert_eq!(&m, &reparsed);
    }

    #[test]
    fn round_tripped_models_evaluate_identically(m in mtm()) {
        let reparsed = parse_mtm(&m.to_string()).expect("rendered models parse");
        for (_, x, _) in figures::all_figures() {
            let a = x.analyze().expect("figures are well-formed");
            prop_assert_eq!(m.evaluate(&a), reparsed.evaluate(&a));
        }
    }

    #[test]
    fn evaluation_never_panics_on_well_formed_executions(m in mtm()) {
        for (_, x, _) in figures::all_figures() {
            let _ = m.permits(&x);
        }
    }
}
