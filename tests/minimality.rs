//! Integration tests for the spanning-set minimality criterion (§IV-B),
//! including the paper's Fig. 8 rejection example.

use transform::core::{EltBuilder, Va};
use transform::synth::minimal::{is_minimal, non_minimality_witness};
use transform::synth::relax::{apply, relaxations, Relaxation};
use transform::x86::x86t_elt;

#[test]
fn fig8_style_candidates_are_rejected() {
    // Fig. 8: a forbidden cycle on C0/C1 plus an unrelated write on C2.
    // The unrelated write can be removed with the outcome still forbidden,
    // so the candidate is not minimal and is not synthesized.
    let mtm = x86t_elt();
    let mut b = EltBuilder::new();
    let c0 = b.thread();
    let c1 = b.thread();
    let c2 = b.thread();
    let (wx, _, _) = b.write_walk(c0, Va(0));
    let (wy, _, _) = b.write_walk(c0, Va(1));
    let (ry, _) = b.read_walk(c1, Va(1));
    let (rx, _) = b.read_walk(c1, Va(0));
    b.rf(wy, ry); // r(y) = 1
    let _ = rx; // r(x) = 0: the forbidden mp outcome
    let (wu, _, _) = b.write_walk(c2, Va(2)); // W4 u = 1: unrelated
    let x = b.build();

    let verdict = mtm.permits(&x);
    assert!(!verdict.is_permitted(), "the mp outcome is forbidden");
    assert!(!is_minimal(&x, &mtm), "Fig. 8 is not minimal");
    assert_eq!(
        non_minimality_witness(&x, &mtm),
        Some(Relaxation::RemoveUserAccess(wu)),
        "removing W4 leaves it forbidden"
    );
    let _ = wx;
}

#[test]
fn removing_the_essential_event_legalizes_fig8() {
    // ...but removing any event of the actual cycle must legalize it.
    let mtm = x86t_elt();
    let mut b = EltBuilder::new();
    let c0 = b.thread();
    let c1 = b.thread();
    let (wx, _, _) = b.write_walk(c0, Va(0));
    let (wy, _, _) = b.write_walk(c0, Va(1));
    let (ry, _) = b.read_walk(c1, Va(1));
    let (rx, _) = b.read_walk(c1, Va(0));
    b.rf(wy, ry);
    let _ = (wx, rx);
    let x = b.build();
    assert!(!mtm.permits(&x).is_permitted());
    // The pure mp core *is* minimal.
    assert!(is_minimal(&x, &mtm));
}

#[test]
fn relaxation_count_matches_unit_inventory() {
    let x = transform::core::figures::fig2c_sb_elt_aliased();
    let rs = relaxations(&x);
    // 4 user accesses + 1 PTE write; both INVLPGs are remap-invoked.
    assert_eq!(rs.len(), 5);
}

#[test]
fn relaxations_shrink_or_preserve_event_count() {
    let x = transform::core::figures::fig2c_sb_elt_aliased();
    for r in relaxations(&x) {
        if let Some(relaxed) = apply(&x, &r) {
            assert!(relaxed.size() < x.size(), "{r:?} must remove events");
            assert!(relaxed.is_well_formed());
        }
    }
}

#[test]
fn ghost_and_remap_grouping_is_enforced() {
    // No relaxation may strand a ghost or a remap-invoked INVLPG.
    use transform::core::EventKind;
    let x = transform::core::figures::fig2c_sb_elt_aliased();
    for r in relaxations(&x) {
        let Some(relaxed) = apply(&x, &r) else {
            continue;
        };
        for e in relaxed.events() {
            if e.kind.is_ghost() {
                assert!(relaxed.invoker(e.id).is_some());
            }
        }
        for &(w, i) in relaxed.remap_pairs() {
            assert!(matches!(relaxed.event(w).kind, EventKind::PteWrite { .. }));
            assert_eq!(relaxed.event(i).kind, EventKind::Invlpg);
        }
    }
}
