//! End-to-end synthesis tests for the x86t_elt case study (§V–§VI).

use transform::synth::{
    exclusive_attribution, suite_contains, synthesize_all, synthesize_suite, unique_union, Program,
    SynthOptions,
};
use transform::x86::x86t_elt;

fn opts(bound: usize) -> SynthOptions {
    let mut o = SynthOptions::new(bound);
    o.enumeration.allow_fences = false;
    o.enumeration.allow_rmw = false;
    o
}

#[test]
fn bound4_suite_sizes_are_pinned() {
    // Regression-pins for the Fig. 9a reproduction at bound 4 (fences and
    // RMWs excluded; see EXPERIMENTS.md).
    let mtm = x86t_elt();
    let sizes: Vec<(String, usize)> = synthesize_all(&mtm, &opts(4))
        .into_iter()
        .map(|(k, s)| (k, s.elts.len()))
        .collect();
    let expect = [
        ("causality", 6),
        ("invlpg", 2),
        ("rmw_atomicity", 0),
        ("sc_per_loc", 11),
        ("tlb_causality", 2),
    ];
    for ((name, got), (ename, want)) in sizes.iter().zip(expect) {
        assert_eq!(name, ename);
        assert_eq!(*got, want, "{name} suite size at bound 4");
    }
}

#[test]
fn every_witness_is_forbidden_minimal_and_within_bound() {
    let mtm = x86t_elt();
    for (axiom, suite) in synthesize_all(&mtm, &opts(4)) {
        for elt in &suite.elts {
            assert!(elt.program.size() <= 4);
            let v = mtm.permits(&elt.witness);
            assert!(v.violates(&axiom), "witness must violate {axiom}");
            assert!(elt.witness.has_write(), "spanning criterion 1");
            assert!(
                transform::synth::minimal::is_minimal(&elt.witness, &mtm),
                "spanning criterion: minimality"
            );
        }
    }
}

#[test]
fn suites_grow_monotonically_with_the_bound() {
    // Everything synthesizable at bound b is synthesizable at b+1 (the
    // bound is an upper limit), so counts are monotone.
    let mtm = x86t_elt();
    for axiom in ["sc_per_loc", "invlpg"] {
        let small = synthesize_suite(&mtm, axiom, &opts(4));
        let large = synthesize_suite(&mtm, axiom, &opts(5));
        assert!(
            large.elts.len() >= small.elts.len(),
            "{axiom}: {} -> {}",
            small.elts.len(),
            large.elts.len()
        );
        // And the small suite's programs all reappear.
        for elt in &small.elts {
            assert!(suite_contains(&large, &elt.program));
        }
    }
}

#[test]
fn fig11_program_is_synthesized_at_bound_5() {
    let mtm = x86t_elt();
    let suite = synthesize_suite(&mtm, "invlpg", &opts(5));
    let fig11 = Program::from_execution(&transform::core::figures::fig11_cross_core_invlpg());
    assert!(suite_contains(&suite, &fig11));
}

#[test]
fn union_deduplicates_across_suites() {
    // Fig. 10a violates both sc_per_loc and invlpg, so its program appears
    // in both suites but only once in the union (the paper's "140 unique").
    let mtm = x86t_elt();
    let suites = synthesize_all(&mtm, &opts(4));
    let total: usize = suites.values().map(|s| s.elts.len()).sum();
    let union = unique_union(suites.values());
    assert!(union.len() < total, "cross-suite duplicates must collapse");
    let attribution = exclusive_attribution(&suites);
    // tlb_causality has tests of its own (the paper attributes five of 140
    // to it at full bounds).
    assert!(attribution.values().sum::<usize>() <= union.len());
}

#[test]
fn relational_backend_agrees_at_bound_4() {
    let mtm = x86t_elt();
    let mut relational = opts(4);
    relational.backend = transform::synth::Backend::Relational;
    for axiom in ["invlpg", "sc_per_loc", "tlb_causality"] {
        let explicit_suite = synthesize_suite(&mtm, axiom, &opts(4));
        let relational_suite = synthesize_suite(&mtm, axiom, &relational);
        assert_eq!(
            explicit_suite.elts.len(),
            relational_suite.elts.len(),
            "{axiom}: explicit vs relational"
        );
        for elt in &explicit_suite.elts {
            assert!(suite_contains(&relational_suite, &elt.program), "{axiom}");
        }
    }
}

#[test]
fn rmw_atomicity_has_a_seven_event_minimal_test() {
    // Our cost model needs 7 events for a minimal rmw_atomicity violation
    // (the paper reports 6; see EXPERIMENTS.md for the deviation
    // rationale): an RMW on one core and an intervening write on another.
    use transform::core::{EltBuilder, Va};
    let mtm = x86t_elt();
    let mut b = EltBuilder::new();
    let c0 = b.thread();
    let c1 = b.thread();
    let (r, p) = b.read_walk(c0, Va(0));
    let (w, db_w) = b.write(c0, Va(0));
    b.rmw(r, w);
    let _ = p;
    let (w2, db_w2, _) = b.write_walk(c1, Va(0));
    // r reads the initial value; w2 slots between it and the RMW's write.
    b.co([w2, w]);
    b.co([db_w2, db_w]); // PTE-location coherence for the dirty bits
    let x = b.build();
    assert_eq!(x.size(), 7);
    let v = mtm.permits(&x);
    assert!(v.violates("rmw_atomicity"), "violated: {:?}", v.violated);
    assert!(transform::synth::minimal::is_minimal(&x, &mtm));
}

#[test]
fn single_core_rmw_violation_is_not_minimal() {
    // The 6-event single-core variant also breaks coherence, and dropping
    // the rmw dependency leaves it forbidden — so it fails minimality.
    use transform::core::{EltBuilder, Va};
    let mtm = x86t_elt();
    let mut b = EltBuilder::new();
    let c0 = b.thread();
    let (r, _) = b.read_walk(c0, Va(0));
    let (w, db_w) = b.write(c0, Va(0));
    b.rmw(r, w);
    let (w2, db_w2) = b.write(c0, Va(0));
    b.co([w2, w]); // against po: coherence violation too
    b.co([db_w, db_w2]);
    let x = b.build();
    assert_eq!(x.size(), 6);
    let v = mtm.permits(&x);
    assert!(v.violates("rmw_atomicity"));
    assert!(v.violates("sc_per_loc"));
    assert!(!transform::synth::minimal::is_minimal(&x, &mtm));
}
