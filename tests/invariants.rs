//! Structural invariants of the MTM semantics, checked over the entire
//! bound-4 synthesis space (every program × every candidate execution) and
//! over randomized samples at bound 5.

use proptest::prelude::*;
use transform::core::derive::BaseRel;
use transform::core::{EventKind, Execution};
use transform::synth::execs::executions;
use transform::synth::programs::{programs, EnumOptions};

fn space(bound: usize) -> Vec<Execution> {
    let mut opts = EnumOptions::new(bound);
    opts.allow_fences = false;
    opts.allow_rmw = false;
    programs(&opts)
        .into_iter()
        .flat_map(|p| executions(&p.to_skeleton(), false))
        .collect()
}

fn check_invariants(x: &Execution) {
    let a = x.analyze().expect("enumerated executions are well-formed");
    let rf = a.relation(BaseRel::Rf);
    let co = a.relation(BaseRel::Co);
    let fr = a.relation(BaseRel::Fr);
    let apo = a.relation(BaseRel::Apo);
    let po = a.relation(BaseRel::Po);
    let po_loc = a.relation(BaseRel::PoLoc);
    let ppo = a.relation(BaseRel::Ppo);

    // Communication edges never mix locations.
    for &(p, q) in rf.iter().chain(co).chain(fr) {
        assert_eq!(a.location(p), a.location(q), "com edge crosses locations");
    }
    // fr and rf are disjoint; co is irreflexive and transitive.
    assert!(fr.intersection(rf).next().is_none());
    for &(p, q) in co {
        assert_ne!(p, q);
        for &(q2, r) in co {
            if q == q2 {
                assert!(co.contains(&(p, r)), "co must be transitive");
            }
        }
    }
    // apo is a strict order containing po; po_loc and ppo refine apo.
    for &(p, q) in apo {
        assert!(!apo.contains(&(q, p)), "apo must be asymmetric");
    }
    assert!(po.is_subset(apo));
    assert!(po_loc.is_subset(apo));
    assert!(ppo.is_subset(apo));
    // TSO: ppo never orders a write before a later read.
    for &(p, q) in ppo {
        let wk = x.event(p).kind;
        let rk = x.event(q).kind;
        assert!(!(wk.is_write() && rk.is_read()), "W→R must be relaxed");
    }
    // Ghosts take no ppo edges at all.
    for &(p, q) in ppo {
        assert!(!x.event(p).kind.is_ghost() && !x.event(q).kind.is_ghost());
    }
    // Every user access reads exactly one TLB entry, from its own core and
    // VA.
    for e in x.events() {
        if e.kind.is_user_memory() {
            let src = a.tlb_source(e.id).expect("translation source");
            let walk = x.event(src);
            assert_eq!(walk.kind, EventKind::Ptw);
            assert_eq!(walk.thread, e.thread);
            assert_eq!(walk.va, e.va);
        }
    }
    // rf_pa sources are PTE writes; fr_va targets are PTE writes.
    for &(w, e) in a.relation(BaseRel::RfPa) {
        assert!(matches!(x.event(w).kind, EventKind::PteWrite { .. }));
        assert!(x.event(e).kind.is_user_memory());
    }
    for &(e, w) in a.relation(BaseRel::FrVa) {
        assert!(matches!(x.event(w).kind, EventKind::PteWrite { .. }));
        assert!(x.event(e).kind.is_user_memory());
    }
}

#[test]
fn every_bound_4_execution_satisfies_the_invariants() {
    let space = space(4);
    assert!(space.len() > 50, "the bound-4 space is non-trivial");
    for x in &space {
        check_invariants(x);
    }
}

#[test]
fn serde_round_trip_preserves_verdicts() {
    let mtm = transform::x86::x86t_elt();
    for (name, x, _) in transform::core::figures::all_figures() {
        let json = serde_json::to_string(&x).expect("serializes");
        let back: Execution = serde_json::from_str(&json).expect("deserializes");
        assert_eq!(x, back, "{name}");
        assert_eq!(mtm.permits(&x), mtm.permits(&back), "{name}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random samples from the bound-5 space satisfy the same invariants.
    #[test]
    fn sampled_bound_5_executions_satisfy_the_invariants(seed in 0usize..1000) {
        let mut opts = EnumOptions::new(5);
        opts.allow_fences = false;
        opts.allow_rmw = false;
        let progs = programs(&opts);
        let prog = &progs[seed % progs.len()];
        for x in executions(&prog.to_skeleton(), false) {
            check_invariants(&x);
        }
    }

    /// The spec parser never panics on arbitrary input.
    #[test]
    fn spec_parser_is_total(input in "\\PC*") {
        let _ = transform::core::spec::parse_mtm(&input);
    }

    /// Verdicts are deterministic.
    #[test]
    fn evaluation_is_deterministic(seed in 0usize..200) {
        let mtm = transform::x86::x86t_elt();
        let mut opts = EnumOptions::new(4);
        opts.allow_fences = false;
        opts.allow_rmw = false;
        let progs = programs(&opts);
        let prog = &progs[seed % progs.len()];
        for x in executions(&prog.to_skeleton(), false) {
            prop_assert_eq!(mtm.permits(&x), mtm.permits(&x));
        }
    }
}
