//! Remap-induced aliasing: how an OS address remapping changes the verdict
//! of a litmus test (the paper's Fig. 2b vs. Fig. 2c, and Fig. 10a/11).
//!
//! Run with: `cargo run --example remap_aliasing`

use transform::core::figures;
use transform::core::pretty;
use transform::x86::x86t_elt;

fn show(name: &str, x: &transform::core::Execution, mtm: &transform::core::Mtm) {
    let a = x.analyze().expect("well-formed");
    println!("=== {name} ===");
    println!("{}", pretty::render(&a));
    let v = mtm.evaluate(&a);
    if v.is_permitted() {
        println!("verdict: permitted\n");
    } else {
        println!("verdict: forbidden — violates {:?}\n", v.violated);
    }
}

fn main() {
    let mtm = x86t_elt();

    // Fig. 2b: sb as an ELT with untouched mappings — permitted.
    show(
        "Fig. 2b: sb, distinct pages",
        &figures::fig2b_sb_elt(),
        &mtm,
    );

    // Fig. 2c: the OS remaps y onto x's physical page mid-test. The same
    // user-level outcome now violates coherence.
    show(
        "Fig. 2c: sb with y remapped onto x's page",
        &figures::fig2c_sb_elt_aliased(),
        &mtm,
    );

    // Fig. 10a (ptwalk2): a walk reads a stale mapping past an INVLPG.
    show("Fig. 10a: ptwalk2", &figures::fig10a_ptwalk2(), &mtm);

    // Fig. 11: the INVLPG arrives on the *other* core; the stale access is
    // forbidden purely by the invlpg axiom.
    show(
        "Fig. 11: cross-core INVLPG",
        &figures::fig11_cross_core_invlpg(),
        &mtm,
    );

    // Fig. 4: two remaps aliasing one page, exercising every pa relation —
    // permitted, but rich in rf_pa / co_pa / fr_pa / fr_va edges.
    show("Fig. 4: remap chain", &figures::fig4_remap_chain(), &mtm);
}
