//! Operational exploration of an ELT program, outcome by outcome.
//!
//! Writes the paper's Fig. 2 store-buffering ELT in the text syntax, runs
//! it exhaustively on the reference machine, and cross-checks every
//! observable outcome against the `x86t_elt` transistency predicate —
//! the empirical-validation loop of the paper's conclusion, with the
//! machine standing in for silicon.
//!
//! Run with: `cargo run --release --example simulate_elt`

use transform::sim::{check_conformance, explore, SimConfig, SimProgram};
use transform::x86::x86t_elt;
use transform_litmus::{parse_elt, print_elt};

fn main() {
    // sb as a runnable ELT program (ghosts are implicit: the machine
    // walks on demand, exactly as hardware does).
    let (name, exec) = parse_elt(
        "elt \"sb\" {
           thread C0 {
             W x walk
             R y walk
           }
           thread C1 {
             W y walk
             R x walk
           }
         }",
    )
    .expect("ELT parses");
    println!("{}", print_elt(&name, &exec));

    let prog = SimProgram::from_execution(&exec);
    let cfg = SimConfig::correct();
    let x = explore(&prog, &cfg);
    println!(
        "{} distinct outcomes over {} machine states:",
        x.outcomes.len(),
        x.stats.states
    );
    for o in &x.outcomes {
        println!("  {}", o.render());
    }

    // TSO's hallmark: both reads may return the initial values.
    let both_stale = x.outcomes.iter().any(|o| {
        o.reads
            .values()
            .all(|v| matches!(v, transform::sim::DataVal::Init(_)))
    });
    println!("store-buffering (both reads stale) observable: {both_stale}");
    assert!(both_stale);

    // And every observed outcome is permitted by the formal model.
    let mtm = x86t_elt();
    let conf = check_conformance(&prog, &mtm, &cfg);
    println!(
        "conformance vs {}: observed {} ⊆ permitted {} — {}",
        mtm.name(),
        conf.observed.len(),
        conf.permitted.len(),
        if conf.conforms() { "holds" } else { "VIOLATED" }
    );
    assert!(conf.conforms());
}
