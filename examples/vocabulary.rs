//! Print the MTM vocabulary summary — the paper's Table I — from model
//! introspection, then demonstrate each new MTM relation on a live ELT.
//!
//! Run with: `cargo run --example vocabulary`

use transform::core::derive::BaseRel;
use transform::core::figures;
use transform::core::pretty::labels;
use transform::core::vocab;

fn main() {
    println!("{}", vocab::render_table_i());

    // Show every MTM-specific relation on the Fig. 4 remap chain.
    let x = figures::fig4_remap_chain();
    let a = x.analyze().expect("well-formed");
    let names = labels(&x);
    println!("MTM relations of the Fig. 4 ELT:");
    for rel in [
        BaseRel::Ghost,
        BaseRel::RfPtw,
        BaseRel::RfPa,
        BaseRel::CoPa,
        BaseRel::FrPa,
        BaseRel::FrVa,
        BaseRel::Remap,
    ] {
        let pairs = a.relation(rel);
        let rendered: Vec<String> = pairs
            .iter()
            .map(|&(p, q)| format!("{} → {}", names[p.index()], names[q.index()]))
            .collect();
        println!("  {:<10} {}", rel.name(), rendered.join(", "));
    }
}
