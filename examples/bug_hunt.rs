//! Bug hunting with synthesized ELTs — the paper's motivating scenario.
//!
//! The introduction of the TransForm paper recalls an AMD Athlon™ 64 /
//! Opteron™ erratum in which `INVLPG` failed to invalidate the designated
//! TLB entry, and argues that TransForm-synthesized ELTs would detect such
//! a bug. This example closes that loop against the operational reference
//! machine:
//!
//! 1. synthesize the `invlpg` per-axiom suite,
//! 2. run every synthesized ELT program on a *correct* machine
//!    (no forbidden outcome may appear), and
//! 3. run the same suite on machines with injected defects and watch the
//!    ELTs expose them.
//!
//! Run with: `cargo run --release --example bug_hunt`

use transform::sim::{check_conformance, detect_with_suite, Bugs, SimConfig, SimProgram};
use transform::synth::engine::{synthesize_suite, SynthOptions};
use transform::x86::x86t_elt;
use transform_litmus::parse_elt;

fn main() {
    let mtm = x86t_elt();

    // --- 1. Synthesize the invlpg suite (bound 5: fig. 11 scale). ---
    let mut opts = SynthOptions::new(5);
    opts.enumeration.allow_fences = false;
    opts.enumeration.allow_rmw = false;
    let suite = synthesize_suite(&mtm, "invlpg", &opts);
    println!(
        "synthesized {} invlpg ELTs at bound 5 in {:.2?}",
        suite.elts.len(),
        suite.stats.elapsed
    );

    // --- 2. The correct machine conforms on every ELT program. ---
    let clean = detect_with_suite(&suite, &mtm, &SimConfig::correct());
    println!(
        "correct machine: {}/{} ELTs flag a violation (expected 0)",
        clean.detected.len(),
        clean.total
    );
    assert!(clean.detected.is_empty());

    // --- 3a. A broken TLB-shootdown protocol is caught by the suite. ---
    let shootdown = SimConfig::buggy(Bugs {
        missing_remote_shootdown: true,
        ..Bugs::none()
    });
    let caught = detect_with_suite(&suite, &mtm, &shootdown);
    println!(
        "broken shootdown:  {}/{} ELTs expose the bug (indices {:?})",
        caught.detected.len(),
        caught.total,
        caught.detected
    );
    assert!(caught.any());

    // --- 3b. The AMD INVLPG erratum needs a 7-event cross-core ELT
    //         (part of the bound-7 suite; spelled out here). ---
    let (_, witness) = parse_elt(
        "elt \"invlpg_erratum\" {
           thread C0 {
             WPTE x -> b
             INVLPG x
           }
           thread C1 {
             R x walk
             INVLPG x
             R x walk
           }
           remap C0:0 -> C0:1
           remap C0:0 -> C1:1
         }",
    )
    .expect("ELT parses");
    assert!(mtm.permits(&witness).violates("invlpg"));
    let prog = SimProgram::from_execution(&witness);
    let erratum = SimConfig::buggy(Bugs {
        invlpg_noop: true,
        ..Bugs::none()
    });
    let conf = check_conformance(&prog, &mtm, &erratum);
    println!(
        "INVLPG erratum:    {} forbidden outcome(s) observed on the buggy machine",
        conf.violations.len()
    );
    for v in &conf.violations {
        println!("    {}", v.render());
    }
    assert!(!conf.conforms());
    println!("\nevery injected transistency bug was exposed by an ELT.");
}
