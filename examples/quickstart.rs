//! Quickstart: build an enhanced litmus test, evaluate it under the
//! `x86t_elt` transistency model, and print it in the paper's figure
//! style.
//!
//! Run with: `cargo run --example quickstart`

use transform::core::pretty;
use transform::litmus::{classic, enhance};
use transform::x86::x86t_elt;

fn main() {
    let mtm = x86t_elt();
    println!("The transistency model under test:\n{mtm}\n");

    // Take the classic store-buffering test (Fig. 2a) with its
    // sequentially-consistent outcome and enhance it with VM events: page
    // walks for every cold access and dirty-bit updates for every write
    // (the Fig. 2a -> Fig. 2b translation).
    let sb = classic::sb_sc();
    let elt = enhance::enhance(&sb);
    let analysis = elt.analyze().expect("the enhancement is well-formed");

    println!("sb enhanced to an ELT ({} events):\n", elt.size());
    println!("{}", pretty::render(&analysis));

    let verdict = mtm.evaluate(&analysis);
    println!(
        "verdict: {}",
        if verdict.is_permitted() {
            "permitted".to_string()
        } else {
            format!("forbidden (violates {:?})", verdict.violated)
        }
    );

    // The weak outcome (both reads return 0) is TSO's signature behavior:
    // still permitted.
    let weak = enhance::enhance(&classic::sb_weak());
    assert!(mtm.permits(&weak).is_permitted());
    println!("\nsb weak outcome: permitted (store buffering is visible on TSO)");

    // With fences, the weak outcome becomes forbidden.
    let fenced = enhance::enhance(&classic::sb_fenced_weak());
    let v = mtm.permits(&fenced);
    assert!(v.violates("causality"));
    println!("sb+mfences weak outcome: forbidden (violates causality)");
}
