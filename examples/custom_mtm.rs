//! Define a custom MTM in the spec DSL and watch the spanning set change.
//!
//! TransForm's point is that MTMs are *inputs*: here we compare `x86t_elt`
//! against a hypothetical processor that drops the `invlpg` guarantee
//! (stale translations after an INVLPG are architecturally visible) — the
//! AMD Athlon/Opteron INVLPG erratum from the paper's introduction is
//! exactly a machine where the guarantee failed.
//!
//! Run with: `cargo run --release --example custom_mtm`

use transform::core::figures;
use transform::core::spec::parse_mtm;
use transform::synth::{synthesize_suite, SynthOptions};
use transform::x86::x86t_elt;

fn main() {
    // A weaker MTM: x86t_elt without the invlpg axiom.
    let weak = parse_mtm(
        "mtm x86t_weak_invlpg {
           axiom sc_per_loc:    acyclic(rf | co | fr | po_loc)
           axiom rmw_atomicity: empty(rmw & (fr ; co))
           axiom causality:     acyclic(rfe | co | fr | ppo | fence)
           axiom tlb_causality: acyclic(ptw_source | com)
         }",
    )
    .expect("spec parses");
    let strong = x86t_elt();

    // The Fig. 11 ELT distinguishes the two models.
    let elt = figures::fig11_cross_core_invlpg();
    let strong_verdict = strong.permits(&elt);
    let weak_verdict = weak.permits(&elt);
    println!(
        "Fig. 11 under x86t_elt:        {:?}",
        strong_verdict.violated
    );
    println!("Fig. 11 under the weak model:  {:?}", weak_verdict.violated);
    assert!(!strong_verdict.is_permitted());
    assert!(weak_verdict.is_permitted());
    println!("→ a machine with the INVLPG erratum admits the stale translation.\n");

    // The synthesized suites shrink accordingly: every test whose only
    // violation was invlpg disappears.
    let mut opts = SynthOptions::new(4);
    opts.enumeration.allow_fences = false;
    opts.enumeration.allow_rmw = false;
    let strong_suite = synthesize_suite(&strong, "sc_per_loc", &opts);
    let weak_suite = synthesize_suite(&weak, "sc_per_loc", &opts);
    println!(
        "sc_per_loc suite at bound 4: {} ELTs under x86t_elt, {} under the weak model",
        strong_suite.elts.len(),
        weak_suite.elts.len()
    );
    // Minimality is judged against the *full* predicate, so dropping an
    // axiom can only keep tests equal or admit more/fewer minimal ones.
    println!(
        "(minimality is relative to the full transistency predicate, so\n\
         the two suites need not be identical)"
    );
}
