//! Synthesize the per-axiom ELT suites of §V-B at a small bound and print
//! every spanning-set member.
//!
//! Run with: `cargo run --release --example synthesize_suite [bound]`
//! (default bound 4; bound 5 takes a few seconds, bound 6 about a minute).

use transform::core::pretty;
use transform::synth::{synthesize_all, unique_union, SynthOptions};
use transform::x86::x86t_elt;

fn main() {
    let bound: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(4);
    let mtm = x86t_elt();
    let mut opts = SynthOptions::new(bound);
    opts.enumeration.allow_fences = false;
    opts.enumeration.allow_rmw = false;

    println!(
        "synthesizing all per-axiom suites of {} at bound {bound}…\n",
        mtm.name()
    );
    let suites = synthesize_all(&mtm, &opts);
    for (axiom, suite) in &suites {
        println!(
            "── {axiom}: {} ELTs ({} programs examined, {} executions, {:.3}s)",
            suite.elts.len(),
            suite.stats.programs,
            suite.stats.executions,
            suite.stats.elapsed.as_secs_f64()
        );
        for elt in &suite.elts {
            let a = elt.witness.analyze().expect("witnesses are well-formed");
            println!("{}", pretty::render(&a));
        }
    }
    let union = unique_union(suites.values());
    println!(
        "unique ELT programs across all suites at bound {bound}: {}",
        union.len()
    );
}
