//! # TransForm — memory transistency models, formalized
//!
//! A Rust reproduction of *“TransForm: Formally Specifying Transistency
//! Models and Synthesizing Enhanced Litmus Tests”* (Hossain, Trippel,
//! Martonosi — ISCA 2020).
//!
//! This umbrella crate re-exports the workspace members:
//!
//! * [`core`](mod@crate::core) — the MTM vocabulary (events, candidate
//!   executions, derived relations), the axiom engine, and the MTM spec DSL.
//! * [`synth`] — bounded synthesis of enhanced litmus
//!   tests (ELTs): candidate enumeration, spanning-set pruning, minimality
//!   under relaxation, and canonical deduplication.
//! * [`x86`] — the `x86-TSO` consistency and `x86t_elt`
//!   transistency models, a reconstructed COATCheck suite, and the §VI-B
//!   comparison tool.
//! * [`litmus`] — classic MCM litmus tests and the
//!   MCM-test → ELT enhancement of the paper's Fig. 2.
//! * [`sim`] — an operational x86-TSO + virtual-memory
//!   reference machine: exhaustive ELT-program exploration, conformance
//!   checking (observed ⊆ permitted), and injectable transistency bugs
//!   such as the AMD `INVLPG` erratum from the paper's introduction.
//! * [`par`] — the parallel synthesis orchestrator:
//!   sharded enumeration over worker threads with work stealing and
//!   deterministic merging, byte-identical to the sequential engine.
//! * [`store`] — the persistent content-addressed suite store: a
//!   versioned binary codec, shard-streaming writes, checksum-validated
//!   streaming reads, and the warm/cold cache policy.
//! * [`relational`] — a Kodkod-style bounded relational model finder,
//!   with incremental shared-solver sessions.
//! * [`tsat`] — the CDCL SAT solver underneath it, solving under
//!   assumptions with clause retention across calls.
//!
//! # Quickstart
//!
//! ```
//! use transform::core::figures;
//! use transform::x86::x86t_elt;
//!
//! // The store-buffering ELT of the paper's Fig. 2b is permitted...
//! let elt = figures::fig2b_sb_elt();
//! let mtm = x86t_elt();
//! assert!(mtm.permits(&elt).is_permitted());
//!
//! // ...but the aliased variant of Fig. 2c is forbidden.
//! let aliased = figures::fig2c_sb_elt_aliased();
//! assert!(!mtm.permits(&aliased).is_permitted());
//! ```

pub use relational;
pub use transform_core as core;
pub use transform_litmus as litmus;
pub use transform_par as par;
pub use transform_sim as sim;
pub use transform_store as store;
pub use transform_synth as synth;
pub use transform_x86 as x86;
pub use tsat;
