//! Derive macros for the vendored `serde` stand-in.
//!
//! The real `serde_derive` leans on `syn`/`quote`; building offline, this
//! crate parses the item token stream by hand instead. It supports exactly
//! the shapes the workspace derives on: non-generic structs with named
//! fields, tuple/newtype structs, and enums whose variants are unit,
//! tuple, or struct-like. Anything else is rejected with a compile error.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// The field list of a struct or enum variant.
enum Fields {
    Named(Vec<String>),
    Tuple(usize),
    Unit,
}

/// A parsed `struct` or `enum` item.
enum Item {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<(String, Fields)>,
    },
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, gen_serialize)
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, gen_deserialize)
}

fn expand(input: TokenStream, gen: fn(&Item) -> String) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen(&item).parse().expect("generated impl parses"),
        Err(msg) => format!("compile_error!({msg:?});")
            .parse()
            .expect("error parses"),
    }
}

// --- parsing ---

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let mut it = input.into_iter().peekable();
    loop {
        match it.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                // Attribute: consume the bracket group.
                it.next();
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                // Visibility, possibly `pub(crate)`.
                if let Some(TokenTree::Group(g)) = it.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        it.next();
                    }
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "struct" => {
                let name = expect_ident(&mut it)?;
                reject_generics(&mut it, &name)?;
                return match it.next() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        Ok(Item::Struct {
                            name,
                            fields: Fields::Named(parse_named_fields(g.stream())?),
                        })
                    }
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                        Ok(Item::Struct {
                            name,
                            fields: Fields::Tuple(count_tuple_fields(g.stream())),
                        })
                    }
                    Some(TokenTree::Punct(p)) if p.as_char() == ';' => Ok(Item::Struct {
                        name,
                        fields: Fields::Unit,
                    }),
                    _ => Err(format!("unsupported struct shape for `{name}`")),
                };
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "enum" => {
                let name = expect_ident(&mut it)?;
                reject_generics(&mut it, &name)?;
                return match it.next() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        Ok(Item::Enum {
                            name,
                            variants: parse_variants(g.stream())?,
                        })
                    }
                    _ => Err(format!("expected a body for enum `{name}`")),
                };
            }
            Some(_) => {}
            None => return Err("expected a struct or enum".to_string()),
        }
    }
}

fn expect_ident(
    it: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>,
) -> Result<String, String> {
    match it.next() {
        Some(TokenTree::Ident(id)) => Ok(id.to_string()),
        other => Err(format!("expected an identifier, found {other:?}")),
    }
}

fn reject_generics(
    it: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>,
    name: &str,
) -> Result<(), String> {
    if let Some(TokenTree::Punct(p)) = it.peek() {
        if p.as_char() == '<' {
            return Err(format!(
                "the vendored serde derive does not support generics (on `{name}`)"
            ));
        }
    }
    Ok(())
}

/// Parses `name: Type, ...` bodies, returning the field names. Types are
/// skipped by scanning to the next top-level comma, tracking `<`/`>` depth
/// (generic arguments contain commas).
fn parse_named_fields(body: TokenStream) -> Result<Vec<String>, String> {
    let mut fields = Vec::new();
    let mut it = body.into_iter().peekable();
    loop {
        // Skip attributes and visibility before the field name.
        loop {
            match it.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    it.next();
                    it.next();
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    it.next();
                    if let Some(TokenTree::Group(g)) = it.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            it.next();
                        }
                    }
                }
                _ => break,
            }
        }
        let Some(tt) = it.next() else { break };
        let TokenTree::Ident(field) = tt else {
            return Err(format!("expected a field name, found {tt:?}"));
        };
        match it.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => return Err(format!("expected `:` after field, found {other:?}")),
        }
        fields.push(field.to_string());
        // Skip the type up to the next top-level comma.
        let mut angle_depth = 0i32;
        for tt in it.by_ref() {
            match tt {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => break,
                _ => {}
            }
        }
    }
    Ok(fields)
}

/// Counts the fields of a tuple struct/variant body.
fn count_tuple_fields(body: TokenStream) -> usize {
    let mut count = 0;
    let mut angle_depth = 0i32;
    let mut saw_tokens = false;
    for tt in body {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                count += 1;
                saw_tokens = false;
                continue;
            }
            _ => {}
        }
        saw_tokens = true;
    }
    count + usize::from(saw_tokens)
}

fn parse_variants(body: TokenStream) -> Result<Vec<(String, Fields)>, String> {
    let mut variants = Vec::new();
    let mut it = body.into_iter().peekable();
    loop {
        // Skip attributes before the variant name.
        while let Some(TokenTree::Punct(p)) = it.peek() {
            if p.as_char() == '#' {
                it.next();
                it.next();
            } else {
                break;
            }
        }
        let Some(tt) = it.next() else { break };
        let TokenTree::Ident(variant) = tt else {
            return Err(format!("expected a variant name, found {tt:?}"));
        };
        let fields = match it.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let inner = g.stream();
                it.next();
                Fields::Named(parse_named_fields(inner)?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let inner = g.stream();
                it.next();
                Fields::Tuple(count_tuple_fields(inner))
            }
            _ => Fields::Unit,
        };
        variants.push((variant.to_string(), fields));
        // Consume the trailing comma, if any.
        if let Some(TokenTree::Punct(p)) = it.peek() {
            if p.as_char() == ',' {
                it.next();
            }
        }
    }
    Ok(variants)
}

// --- code generation ---

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Named(fs) => {
                    let entries: Vec<String> = fs
                        .iter()
                        .map(|f| {
                            format!(
                                "(::serde::Value::Str({f:?}.to_string()), \
                                 ::serde::Serialize::to_value(&self.{f}))"
                            )
                        })
                        .collect();
                    format!("::serde::Value::Map(vec![{}])", entries.join(", "))
                }
                Fields::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
                Fields::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                        .collect();
                    format!("::serde::Value::Seq(vec![{}])", items.join(", "))
                }
                Fields::Unit => "::serde::Value::Null".to_string(),
            };
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|(v, fields)| match fields {
                    Fields::Unit => {
                        format!("{name}::{v} => ::serde::Value::Str({v:?}.to_string()),")
                    }
                    Fields::Named(fs) => {
                        let binders = fs.join(", ");
                        let entries: Vec<String> = fs
                            .iter()
                            .map(|f| {
                                format!(
                                    "(::serde::Value::Str({f:?}.to_string()), \
                                     ::serde::Serialize::to_value({f}))"
                                )
                            })
                            .collect();
                        format!(
                            "{name}::{v} {{ {binders} }} => ::serde::Value::Map(vec![\
                             (::serde::Value::Str({v:?}.to_string()), \
                             ::serde::Value::Map(vec![{}]))]),",
                            entries.join(", ")
                        )
                    }
                    Fields::Tuple(n) => {
                        let binders: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                        let payload = if *n == 1 {
                            "::serde::Serialize::to_value(f0)".to_string()
                        } else {
                            let items: Vec<String> = binders
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!("::serde::Value::Seq(vec![{}])", items.join(", "))
                        };
                        format!(
                            "{name}::{v}({}) => ::serde::Value::Map(vec![\
                             (::serde::Value::Str({v:?}.to_string()), {payload})]),",
                            binders.join(", ")
                        )
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{ {} }}\n\
                     }}\n\
                 }}",
                arms.join("\n")
            )
        }
    }
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Named(fs) => {
                    let inits: Vec<String> = fs
                        .iter()
                        .map(|f| format!("{f}: ::serde::__private::field(v, {f:?})?,"))
                        .collect();
                    format!(
                        "::core::result::Result::Ok({name} {{ {} }})",
                        inits.join(" ")
                    )
                }
                Fields::Tuple(1) => format!(
                    "::core::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))"
                ),
                Fields::Tuple(n) => {
                    let gets: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                        .collect();
                    format!(
                        "match v {{\n\
                             ::serde::Value::Seq(items) if items.len() == {n} => \
                                 ::core::result::Result::Ok({name}({})),\n\
                             _ => ::core::result::Result::Err(::serde::Error::msg(\
                                 \"expected a {n}-element sequence\")),\n\
                         }}",
                        gets.join(", ")
                    )
                }
                Fields::Unit => format!("::core::result::Result::Ok({name})"),
            };
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> \
                         ::core::result::Result<Self, ::serde::Error> {{ {body} }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|(_, f)| matches!(f, Fields::Unit))
                .map(|(v, _)| format!("{v:?} => ::core::result::Result::Ok({name}::{v}),"))
                .collect();
            let payload_arms: Vec<String> = variants
                .iter()
                .filter_map(|(v, fields)| match fields {
                    Fields::Unit => None,
                    Fields::Named(fs) => {
                        let inits: Vec<String> = fs
                            .iter()
                            .map(|f| format!("{f}: ::serde::__private::field(payload, {f:?})?,"))
                            .collect();
                        Some(format!(
                            "{v:?} => ::core::result::Result::Ok({name}::{v} {{ {} }}),",
                            inits.join(" ")
                        ))
                    }
                    Fields::Tuple(1) => Some(format!(
                        "{v:?} => ::core::result::Result::Ok({name}::{v}(\
                         ::serde::Deserialize::from_value(payload)?)),"
                    )),
                    Fields::Tuple(n) => {
                        let gets: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                            .collect();
                        Some(format!(
                            "{v:?} => match payload {{\n\
                                 ::serde::Value::Seq(items) if items.len() == {n} => \
                                     ::core::result::Result::Ok({name}::{v}({})),\n\
                                 _ => ::core::result::Result::Err(::serde::Error::msg(\
                                     \"expected a {n}-element variant payload\")),\n\
                             }},",
                            gets.join(", ")
                        ))
                    }
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> \
                         ::core::result::Result<Self, ::serde::Error> {{\n\
                         match v {{\n\
                             ::serde::Value::Str(tag) => match tag.as_str() {{\n\
                                 {}\n\
                                 other => ::core::result::Result::Err(::serde::Error::msg(\
                                     format!(\"unknown variant `{{other}}`\"))),\n\
                             }},\n\
                             other => {{\n\
                                 let (tag, {payload_binder}) = ::serde::__private::variant(other)?;\n\
                                 match tag {{\n\
                                     {}\n\
                                     other => ::core::result::Result::Err(::serde::Error::msg(\
                                         format!(\"unknown variant `{{other}}`\"))),\n\
                                 }}\n\
                             }}\n\
                         }}\n\
                     }}\n\
                 }}",
                unit_arms.join("\n"),
                payload_arms.join("\n"),
                payload_binder = if payload_arms.is_empty() { "_payload" } else { "payload" },
            )
        }
    }
}
