//! An offline stand-in for `serde_json`: renders and parses the vendored
//! `serde` [`Value`] tree as JSON text.
//!
//! Structs serialize as JSON objects and maps/sets as arrays (of pairs),
//! so all emitted JSON is valid and round-trips through [`to_string`] and
//! [`from_str`]. Floating-point numbers are not produced by the workspace
//! and are rejected on parse.

pub use serde::Error;
use serde::{Deserialize, Serialize, Value};

/// Serializes `value` as a JSON string.
///
/// # Errors
///
/// Never fails for values produced by the vendored `serde` impls; the
/// `Result` mirrors the real `serde_json` signature.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out);
    Ok(out)
}

/// Parses a JSON string into a `T`.
///
/// # Errors
///
/// Returns an [`Error`] on malformed JSON or a shape mismatch.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        src: s.as_bytes(),
        at: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.at != p.src.len() {
        return Err(Error::msg("trailing characters after JSON value"));
    }
    T::from_value(&v)
}

fn write_value(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::Str(s) => write_string(s, out),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                match k {
                    Value::Str(s) => write_string(s, out),
                    // Non-string keys never occur (maps serialize as
                    // sequences), but stay valid JSON if they do.
                    other => {
                        let mut key = String::new();
                        write_value(other, &mut key);
                        write_string(&key, out);
                    }
                }
                out.push(':');
                write_value(val, out);
            }
            out.push('}');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'s> {
    src: &'s [u8],
    at: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.at < self.src.len() && matches!(self.src[self.at], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.at += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.src.get(self.at).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.at += 1;
            Ok(())
        } else {
            Err(Error::msg(format!(
                "expected `{}` at byte {}",
                b as char, self.at
            )))
        }
    }

    fn literal(&mut self, word: &str) -> bool {
        if self.src[self.at..].starts_with(word.as_bytes()) {
            self.at += word.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.literal("null") => Ok(Value::Null),
            Some(b't') if self.literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => {
                self.at += 1;
                let mut items = Vec::new();
                if self.peek() == Some(b']') {
                    self.at += 1;
                    return Ok(Value::Seq(items));
                }
                loop {
                    items.push(self.value()?);
                    match self.peek() {
                        Some(b',') => self.at += 1,
                        Some(b']') => {
                            self.at += 1;
                            return Ok(Value::Seq(items));
                        }
                        _ => return Err(Error::msg("expected `,` or `]` in array")),
                    }
                }
            }
            Some(b'{') => {
                self.at += 1;
                let mut entries = Vec::new();
                if self.peek() == Some(b'}') {
                    self.at += 1;
                    return Ok(Value::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.eat(b':')?;
                    let val = self.value()?;
                    entries.push((Value::Str(key), val));
                    match self.peek() {
                        Some(b',') => self.at += 1,
                        Some(b'}') => {
                            self.at += 1;
                            return Ok(Value::Map(entries));
                        }
                        _ => return Err(Error::msg("expected `,` or `}` in object")),
                    }
                }
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(Error::msg(format!(
                "unexpected character at byte {}",
                self.at
            ))),
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.at;
        if self.src.get(self.at) == Some(&b'-') {
            self.at += 1;
        }
        while self.src.get(self.at).is_some_and(u8::is_ascii_digit) {
            self.at += 1;
        }
        if matches!(self.src.get(self.at), Some(b'.' | b'e' | b'E')) {
            return Err(Error::msg("floating-point numbers are not supported"));
        }
        let text = std::str::from_utf8(&self.src[start..self.at])
            .map_err(|_| Error::msg("invalid number"))?;
        if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::I64)
                .map_err(|_| Error::msg("invalid number"))
        } else {
            text.parse::<u64>()
                .map(Value::U64)
                .map_err(|_| Error::msg("invalid number"))
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let Some(&b) = self.src.get(self.at) else {
                return Err(Error::msg("unterminated string"));
            };
            self.at += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(&esc) = self.src.get(self.at) else {
                        return Err(Error::msg("unterminated escape"));
                    };
                    self.at += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let code = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&code) {
                                // Surrogate pair.
                                if !self.literal("\\u") {
                                    return Err(Error::msg("unpaired surrogate"));
                                }
                                let low = self.hex4()?;
                                let combined = 0x10000
                                    + ((code - 0xD800) << 10)
                                    + (low.wrapping_sub(0xDC00) & 0x3FF);
                                char::from_u32(combined)
                            } else {
                                char::from_u32(code)
                            };
                            out.push(c.ok_or_else(|| Error::msg("invalid \\u escape"))?);
                        }
                        other => {
                            return Err(Error::msg(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => {
                    // Collect the full UTF-8 sequence starting at b.
                    let len = match b {
                        0x00..=0x7F => 1,
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        _ => 4,
                    };
                    let start = self.at - 1;
                    let end = (start + len).min(self.src.len());
                    let s = std::str::from_utf8(&self.src[start..end])
                        .map_err(|_| Error::msg("invalid UTF-8 in string"))?;
                    out.push_str(s);
                    self.at = end;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        if self.at + 4 > self.src.len() {
            return Err(Error::msg("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.src[self.at..self.at + 4])
            .map_err(|_| Error::msg("invalid \\u escape"))?;
        self.at += 4;
        u32::from_str_radix(s, 16).map_err(|_| Error::msg("invalid \\u escape"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn json_round_trips() {
        let m: BTreeMap<u32, Vec<String>> =
            [(1, vec!["a".into(), "b\"c\\d".into()]), (7, vec![])].into();
        let text = to_string(&m).expect("serializes");
        let back: BTreeMap<u32, Vec<String>> = from_str(&text).expect("parses");
        assert_eq!(m, back);
    }

    #[test]
    fn escapes_and_unicode_round_trip() {
        let s = "line\nwith \"quotes\" + tab\t + λ ✓".to_string();
        let text = to_string(&s).expect("serializes");
        let back: String = from_str(&text).expect("parses");
        assert_eq!(s, back);
    }

    #[test]
    fn malformed_json_is_an_error() {
        assert!(from_str::<u32>("12.5").is_err());
        assert!(from_str::<u32>("12 trailing").is_err());
        assert!(from_str::<String>("\"unterminated").is_err());
        assert!(from_str::<Vec<u32>>("[1, 2").is_err());
    }
}
