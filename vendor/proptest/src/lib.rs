//! An offline stand-in for the `proptest` crate.
//!
//! Implements the subset of the proptest API the workspace's property
//! tests use: the [`Strategy`] trait with `prop_map`/`prop_flat_map`/
//! `prop_recursive`, integer-range and tuple strategies, collections,
//! `sample::select`, string strategies, and the `proptest!`,
//! `prop_oneof!`, and `prop_assert*` macros.
//!
//! Sampling is a deterministic xorshift stream seeded from the test name
//! and case index, so failures reproduce across runs. There is no
//! shrinking: a failing case reports its inputs via the panic message of
//! the underlying assertion.

use std::ops::{Range, RangeInclusive};
use std::sync::Arc;

/// The deterministic RNG driving all sampling.
pub struct TestRng(u64);

impl TestRng {
    /// Creates an RNG from a raw nonzero seed.
    pub fn from_seed(seed: u64) -> TestRng {
        TestRng(seed | 1)
    }

    /// The next raw 64-bit value (xorshift64*).
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// A uniform value in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }

    /// A uniform boolean.
    pub fn flip(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

/// Seeds the RNG for one test case. Used by the `proptest!` macro.
pub fn test_rng(test_name: &str, case: u32) -> TestRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    TestRng::from_seed(h ^ (u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15)))
}

/// A source of random values of one type.
pub trait Strategy {
    /// The type of values this strategy produces.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps produced values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Produces a value, then draws from the strategy `f` builds from it.
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Builds recursive values: `recurse` receives the strategy so far and
    /// returns a richer one; nesting is bounded by `depth`.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _branch: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R + 'static,
    {
        let mut strat = self.boxed();
        for _ in 0..depth {
            strat = recurse(strat).boxed();
        }
        strat
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Arc::new(self))
    }
}

/// Object-safe core used by [`BoxedStrategy`].
trait DynStrategy<T> {
    fn sample_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn sample_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.sample(rng)
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Arc<dyn DynStrategy<T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Arc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        self.0.sample_dyn(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn sample(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// Always produces a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between boxed alternatives — built by [`prop_oneof!`].
pub struct Union<T>(Vec<BoxedStrategy<T>>);

impl<T> Union<T> {
    /// Creates a union; `arms` must be non-empty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union(arms)
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.0.len() as u64) as usize;
        self.0[i].sample(rng)
    }
}

macro_rules! int_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + rng.below(span) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width range.
                    return rng.next_u64() as $t;
                }
                lo + rng.below(span) as $t
            }
        }
    )*};
}

int_strategies!(usize, u8, u16, u32, u64);

macro_rules! signed_int_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}

signed_int_strategies!(i8, i16, i32, i64);

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng), self.2.sample(rng))
    }
}

/// String strategies: a `&str` pattern samples printable strings. The
/// pattern is treated as "any printable text" regardless of the regex —
/// enough for totality tests over arbitrary input.
impl Strategy for &str {
    type Value = String;

    fn sample(&self, rng: &mut TestRng) -> String {
        let len = rng.below(40) as usize;
        (0..len)
            .map(|_| match rng.below(8) {
                0 => char::from_u32(0x20 + rng.below(0x5F) as u32).unwrap_or('?'),
                1 => char::from_u32(0xA1 + rng.below(0x500) as u32).unwrap_or('µ'),
                2 => ['λ', '✓', '→', '∀', '𝛼', '·'][rng.below(6) as usize],
                _ => char::from_u32(0x61 + rng.below(26) as u32).unwrap_or('a'),
            })
            .collect()
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary {
    /// The canonical strategy for the type.
    type Strategy: Strategy<Value = Self>;

    /// Returns the canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// The canonical strategy for `T` — `any::<bool>()` etc.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

impl Arbitrary for bool {
    type Strategy = self::bool::Any;

    fn arbitrary() -> Self::Strategy {
        self::bool::ANY
    }
}

/// Boolean strategies.
pub mod bool {
    use super::{Strategy, TestRng};

    /// The strategy behind [`ANY`].
    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    /// Samples either boolean uniformly.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.flip()
        }
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// A size bound for [`vec()`]: a range or an exact length.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // inclusive
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n }
        }
    }

    /// The strategy returned by [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Vectors of `size` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo + 1) as u64;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Sampling from fixed sets.
pub mod sample {
    use super::{Strategy, TestRng};

    /// The strategy returned by [`select`].
    pub struct Select<T>(Vec<T>);

    /// Uniform choice from a non-empty vector.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select from an empty set");
        Select(options)
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            self.0[rng.below(self.0.len() as u64) as usize].clone()
        }
    }
}

/// Per-test configuration accepted by `proptest!`.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

/// The proptest prelude: everything property tests typically import.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy,
    };
}

/// Defines property tests. Each function runs its body once per sampled
/// case; assertion failures report the panic from the underlying assert.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr); ) => {};
    (($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            for __case in 0..__cfg.cases {
                let mut __rng = $crate::test_rng(
                    concat!(module_path!(), "::", stringify!($name)),
                    __case,
                );
                $(let $pat = $crate::Strategy::sample(&($strat), &mut __rng);)+
                $body
            }
        }
        $crate::__proptest_fns! { ($cfg); $($rest)* }
    };
}

/// Uniform choice among strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

/// Asserts a condition inside a property.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::test_rng("ranges", 0);
        for _ in 0..200 {
            let v = (3usize..17).sample(&mut rng);
            assert!((3..17).contains(&v));
            let w = (5usize..=5).sample(&mut rng);
            assert_eq!(w, 5);
        }
    }

    #[test]
    fn vec_lengths_respect_size_range() {
        let mut rng = crate::test_rng("vecs", 1);
        let strat = crate::collection::vec(0usize..4, 2..=6);
        for _ in 0..100 {
            let v = strat.sample(&mut rng);
            assert!((2..=6).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 4));
        }
    }

    #[test]
    fn sampling_is_deterministic() {
        let strat = crate::collection::vec(0usize..100, 0..10);
        let a: Vec<_> = {
            let mut rng = crate::test_rng("det", 7);
            (0..20).map(|_| strat.sample(&mut rng)).collect()
        };
        let b: Vec<_> = {
            let mut rng = crate::test_rng("det", 7);
            (0..20).map(|_| strat.sample(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn the_macro_itself_works((a, b) in (0usize..10, 0usize..10), flag in any::<bool>()) {
            prop_assert!(a < 10 && b < 10);
            let _ = flag;
        }

        #[test]
        fn oneof_and_recursive_compose(v in leaf_or_pair()) {
            prop_assert!(count(&v) <= 8);
        }
    }

    #[derive(Clone, Debug)]
    enum Tree {
        Leaf(usize),
        Pair(Box<Tree>, Box<Tree>),
    }

    fn count(t: &Tree) -> usize {
        match t {
            Tree::Leaf(v) => {
                assert!(*v < 10, "leaf out of strategy range");
                1
            }
            Tree::Pair(a, b) => count(a) + count(b),
        }
    }

    fn leaf_or_pair() -> BoxedStrategy<Tree> {
        (0usize..10)
            .prop_map(Tree::Leaf)
            .prop_recursive(2, 8, 2, |inner| {
                prop_oneof![
                    (inner.clone(), inner).prop_map(|(a, b)| Tree::Pair(Box::new(a), Box::new(b))),
                    (0usize..10).prop_map(Tree::Leaf),
                ]
            })
    }
}
