//! An offline stand-in for the `serde` crate.
//!
//! The workspace builds without network access, so the handful of external
//! crates the seed code depends on are vendored as minimal API-compatible
//! stand-ins (see `vendor/README.md`). This one provides the
//! [`Serialize`]/[`Deserialize`] traits and re-exports derive macros for
//! them from `serde_derive`.
//!
//! Instead of serde's visitor architecture, serialization goes through a
//! self-describing [`Value`] tree; `serde_json` renders that tree as JSON
//! text. The derives support the shapes the workspace uses: structs with
//! named fields, tuple/newtype structs, and enums with unit, tuple, and
//! struct variants (no generics).

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// A self-describing serialized value.
#[derive(Clone, PartialEq, Debug)]
pub enum Value {
    /// The unit/absent value.
    Null,
    /// A boolean.
    Bool(bool),
    /// An unsigned integer.
    U64(u64),
    /// A signed integer.
    I64(i64),
    /// A string.
    Str(String),
    /// A sequence of values.
    Seq(Vec<Value>),
    /// An ordered key → value map. Derived structs use string keys; maps
    /// with arbitrary keys serialize as a [`Value::Seq`] of pairs instead.
    Map(Vec<(Value, Value)>),
}

/// A (de)serialization error.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Error(pub String);

impl Error {
    /// Creates an error with the given message.
    pub fn msg(m: impl Into<String>) -> Error {
        Error(m.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

/// Conversion into the [`Value`] tree.
pub trait Serialize {
    /// Serializes `self` as a [`Value`].
    fn to_value(&self) -> Value;
}

/// Conversion back from the [`Value`] tree.
pub trait Deserialize: Sized {
    /// Deserializes a `Self` from a [`Value`].
    ///
    /// # Errors
    ///
    /// Returns an [`Error`] when the value has the wrong shape.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(u64::from(*self))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<$t, Error> {
                match v {
                    Value::U64(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::msg("integer out of range")),
                    Value::I64(n) => u64::try_from(*n)
                        .ok()
                        .and_then(|n| <$t>::try_from(n).ok())
                        .ok_or_else(|| Error::msg("integer out of range")),
                    _ => Err(Error::msg("expected an unsigned integer")),
                }
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::I64(i64::from(*self))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<$t, Error> {
                match v {
                    Value::I64(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::msg("integer out of range")),
                    Value::U64(n) => i64::try_from(*n)
                        .ok()
                        .and_then(|n| <$t>::try_from(n).ok())
                        .ok_or_else(|| Error::msg("integer out of range")),
                    _ => Err(Error::msg("expected a signed integer")),
                }
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64);

impl Serialize for usize {
    fn to_value(&self) -> Value {
        Value::U64(*self as u64)
    }
}

impl Deserialize for usize {
    fn from_value(v: &Value) -> Result<usize, Error> {
        u64::from_value(v)
            .and_then(|n| usize::try_from(n).map_err(|_| Error::msg("usize out of range")))
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<bool, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::msg("expected a boolean")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<String, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(Error::msg("expected a string")),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(x) => x.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Option<T>, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Box<T>, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Vec<T>, Error> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            _ => Err(Error::msg("expected a sequence")),
        }
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Seq(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<(A, B), Error> {
        match v {
            Value::Seq(items) if items.len() == 2 => {
                Ok((A::from_value(&items[0])?, B::from_value(&items[1])?))
            }
            _ => Err(Error::msg("expected a two-element sequence")),
        }
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Seq(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
        ])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_value(v: &Value) -> Result<(A, B, C), Error> {
        match v {
            Value::Seq(items) if items.len() == 3 => Ok((
                A::from_value(&items[0])?,
                B::from_value(&items[1])?,
                C::from_value(&items[2])?,
            )),
            _ => Err(Error::msg("expected a three-element sequence")),
        }
    }
}

// Maps and sets serialize as sequences (of pairs) so non-string keys stay
// valid JSON.
impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Seq(
            self.iter()
                .map(|(k, v)| Value::Seq(vec![k.to_value(), v.to_value()]))
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<BTreeMap<K, V>, Error> {
        match v {
            Value::Seq(items) => items.iter().map(<(K, V)>::from_value).collect(),
            _ => Err(Error::msg("expected a sequence of pairs")),
        }
    }
}

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn from_value(v: &Value) -> Result<BTreeSet<T>, Error> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            _ => Err(Error::msg("expected a sequence")),
        }
    }
}

/// Support functions for derive-generated code. Not a public API.
pub mod __private {
    use super::{Deserialize, Error, Value};

    /// Looks up `name` in a string-keyed map value and deserializes it.
    ///
    /// # Errors
    ///
    /// Returns an [`Error`] when `v` is not a map or the field is absent.
    pub fn field<T: Deserialize>(v: &Value, name: &str) -> Result<T, Error> {
        match v {
            Value::Map(entries) => entries
                .iter()
                .find(|(k, _)| matches!(k, Value::Str(s) if s == name))
                .map(|(_, fv)| T::from_value(fv))
                .unwrap_or_else(|| Err(Error::msg(format!("missing field `{name}`")))),
            _ => Err(Error::msg(format!(
                "expected a map while reading field `{name}`"
            ))),
        }
    }

    /// The single `variant → payload` entry of a serialized enum value.
    ///
    /// # Errors
    ///
    /// Returns an [`Error`] when `v` is not a one-entry string-keyed map.
    pub fn variant(v: &Value) -> Result<(&str, &Value), Error> {
        match v {
            Value::Map(entries) if entries.len() == 1 => match &entries[0] {
                (Value::Str(name), payload) => Ok((name.as_str(), payload)),
                _ => Err(Error::msg("expected a string variant tag")),
            },
            _ => Err(Error::msg("expected a single-entry variant map")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u32::from_value(&42u32.to_value()), Ok(42));
        assert_eq!(bool::from_value(&true.to_value()), Ok(true));
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()),
            Ok("hi".to_string())
        );
        assert_eq!(Option::<u32>::from_value(&Value::Null), Ok(None));
    }

    #[test]
    fn containers_round_trip() {
        let m: BTreeMap<u32, String> = [(1, "a".to_string()), (2, "b".to_string())].into();
        assert_eq!(BTreeMap::from_value(&m.to_value()), Ok(m));
        let s: BTreeSet<(u32, u32)> = [(1, 2), (3, 4)].into();
        assert_eq!(BTreeSet::from_value(&s.to_value()), Ok(s));
    }

    #[test]
    fn shape_errors_are_reported() {
        assert!(u32::from_value(&Value::Str("x".into())).is_err());
        assert!(Vec::<u32>::from_value(&Value::Bool(false)).is_err());
        assert!(__private::field::<u32>(&Value::Map(vec![]), "missing").is_err());
    }
}
