//! An offline stand-in for the `criterion` benchmark harness.
//!
//! Implements the subset of the criterion API the workspace's benches
//! use — groups, `bench_function`/`bench_with_input`, `iter`/
//! `iter_batched`, `BenchmarkId`, and the `criterion_group!`/
//! `criterion_main!` macros — with a simple median-of-samples wall-clock
//! measurement printed as one line per benchmark.
//!
//! Sample counts respect `sample_size` but are capped by a per-benchmark
//! time budget so `cargo bench` stays fast. Set the environment variable
//! `CRITERION_SAMPLE_MS` to change the budget (default 2000 ms per
//! benchmark).

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Prevents the optimizer from discarding a value.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// How `iter_batched` amortizes setup cost. The stand-in runs one setup
/// per iteration regardless, so the variants only document intent.
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small inputs: many per batch.
    SmallInput,
    /// Large inputs: few per batch.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// A benchmark identifier: `function_name/parameter`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id from a function name and a parameter value.
    pub fn new(function: impl Display, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{function}/{parameter}"),
        }
    }

    /// An id from a parameter value alone.
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Anything accepted as a benchmark name.
pub trait IntoBenchmarkId {
    /// The rendered benchmark name.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// The measurement driver passed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
    target_samples: usize,
    budget: Duration,
}

impl Bencher {
    fn new(target_samples: usize, budget: Duration) -> Bencher {
        Bencher {
            samples: Vec::new(),
            target_samples,
            budget,
        }
    }

    /// Times repeated calls of `routine`.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        let start = Instant::now();
        for _ in 0..self.target_samples {
            let t = Instant::now();
            black_box(routine());
            self.samples.push(t.elapsed());
            if start.elapsed() > self.budget {
                break;
            }
        }
    }

    /// Times `routine` on fresh inputs from `setup`, excluding setup time.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        let start = Instant::now();
        for _ in 0..self.target_samples {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            self.samples.push(t.elapsed());
            if start.elapsed() > self.budget {
                break;
            }
        }
    }

    fn report(&mut self, name: &str) {
        if self.samples.is_empty() {
            println!("{name:<60} no samples");
            return;
        }
        self.samples.sort_unstable();
        let median = self.samples[self.samples.len() / 2];
        println!(
            "{name:<60} median {median:>12.3?}  ({} samples)",
            self.samples.len()
        );
    }
}

/// The top-level benchmark driver.
pub struct Criterion {
    budget: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        let ms = std::env::var("CRITERION_SAMPLE_MS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(2000u64);
        Criterion {
            budget: Duration::from_millis(ms),
        }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
        }
    }

    /// Benchmarks a standalone function.
    pub fn bench_function(&mut self, id: impl IntoBenchmarkId, f: impl FnMut(&mut Bencher)) {
        let budget = self.budget;
        run_one(&id.into_id(), 10, budget, f);
    }
}

/// A group of benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-benchmark sample count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Benchmarks a closure under `id`.
    pub fn bench_function(
        &mut self,
        id: impl IntoBenchmarkId,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let name = format!("{}/{}", self.name, id.into_id());
        run_one(&name, self.sample_size, self.criterion.budget, f);
        self
    }

    /// Benchmarks a closure on a borrowed input under `id`.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let name = format!("{}/{}", self.name, id.into_id());
        run_one(&name, self.sample_size, self.criterion.budget, |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

fn run_one(name: &str, samples: usize, budget: Duration, mut f: impl FnMut(&mut Bencher)) {
    let mut b = Bencher::new(samples, budget);
    f(&mut b);
    b.report(name);
}

/// Declares a group-runner function from benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` from group-runner functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_run_and_report() {
        let mut c = Criterion {
            budget: Duration::from_millis(50),
        };
        let mut group = c.benchmark_group("demo");
        group.sample_size(5);
        let mut ran = 0;
        group.bench_function("count", |b| {
            b.iter(|| {
                ran += 1;
                black_box(ran)
            })
        });
        group.bench_with_input(BenchmarkId::new("with_input", 3), &3usize, |b, &n| {
            b.iter_batched(|| n, |x| x * 2, BatchSize::SmallInput)
        });
        group.finish();
        assert!(ran >= 1);
    }
}
