//! The CDCL solver core.

use crate::lit::{LBool, Lit, Var};

/// Result of a [`Solver::solve`] call.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SolveResult {
    /// A satisfying assignment was found; read it with [`Solver::value`].
    Sat,
    /// The formula (under the given assumptions) is unsatisfiable.
    Unsat,
}

impl SolveResult {
    /// `true` when the result is [`SolveResult::Sat`].
    pub fn is_sat(self) -> bool {
        matches!(self, SolveResult::Sat)
    }
}

/// Counters describing the work a solver has performed.
#[derive(Clone, Copy, Default, Debug)]
pub struct SolverStats {
    /// Number of conflicts encountered.
    pub conflicts: u64,
    /// Number of branching decisions made.
    pub decisions: u64,
    /// Number of literals propagated.
    pub propagations: u64,
    /// Number of restarts performed.
    pub restarts: u64,
    /// Number of learnt clauses currently in the database.
    pub learnt: u64,
    /// Number of `solve`/`solve_with` calls answered. Incremental callers
    /// (see [`Solver::solve_with`]) amortize clause learning across many
    /// calls; this counter exposes how many calls one solver served.
    pub solve_calls: u64,
}

impl SolverStats {
    /// Adds another solver's counters into these, for callers that
    /// aggregate work across several solver instances. `learnt` (clauses
    /// *currently* in a database) is summed like the rest; across live
    /// solvers it reads as their combined database size.
    pub fn absorb(&mut self, other: &SolverStats) {
        self.conflicts += other.conflicts;
        self.decisions += other.decisions;
        self.propagations += other.propagations;
        self.restarts += other.restarts;
        self.learnt += other.learnt;
        self.solve_calls += other.solve_calls;
    }
}

#[derive(Clone, Copy)]
struct Watch {
    clause: u32,
    blocker: Lit,
}

struct Clause {
    lits: Vec<Lit>,
    learnt: bool,
    deleted: bool,
    activity: f64,
}

/// A CDCL SAT solver.
///
/// See the crate-level documentation for the feature list and an example.
pub struct Solver {
    clauses: Vec<Clause>,
    watches: Vec<Vec<Watch>>,
    assigns: Vec<LBool>,
    phase: Vec<bool>,
    level: Vec<u32>,
    reason: Vec<Option<u32>>,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    qhead: usize,
    ok: bool,
    // VSIDS
    activity: Vec<f64>,
    var_inc: f64,
    heap: Vec<Var>,
    heap_pos: Vec<usize>,
    // clause activities
    cla_inc: f64,
    learnt_count: usize,
    max_learnts: f64,
    // scratch for analyze
    seen: Vec<bool>,
    stats: SolverStats,
}

const VAR_DECAY: f64 = 0.95;
const CLA_DECAY: f64 = 0.999;
const RESTART_BASE: u64 = 100;

impl Default for Solver {
    fn default() -> Self {
        Solver::new()
    }
}

impl Solver {
    /// Creates an empty solver with no variables or clauses.
    pub fn new() -> Solver {
        Solver {
            clauses: Vec::new(),
            watches: Vec::new(),
            assigns: Vec::new(),
            phase: Vec::new(),
            level: Vec::new(),
            reason: Vec::new(),
            trail: Vec::new(),
            trail_lim: Vec::new(),
            qhead: 0,
            ok: true,
            activity: Vec::new(),
            var_inc: 1.0,
            heap: Vec::new(),
            heap_pos: Vec::new(),
            cla_inc: 1.0,
            learnt_count: 0,
            max_learnts: 4000.0,
            seen: Vec::new(),
            stats: SolverStats::default(),
        }
    }

    /// Allocates a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let v = Var(self.assigns.len() as u32);
        self.assigns.push(LBool::Undef);
        self.phase.push(false);
        self.level.push(0);
        self.reason.push(None);
        self.activity.push(0.0);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        self.seen.push(false);
        self.heap_pos.push(usize::MAX);
        self.heap_insert(v);
        v
    }

    /// Allocates `n` fresh variables and returns them in order.
    pub fn new_vars(&mut self, n: usize) -> Vec<Var> {
        (0..n).map(|_| self.new_var()).collect()
    }

    /// Number of variables allocated so far.
    pub fn num_vars(&self) -> usize {
        self.assigns.len()
    }

    /// Work counters for this solver.
    pub fn stats(&self) -> SolverStats {
        let mut s = self.stats;
        s.learnt = self.learnt_count as u64;
        s
    }

    /// The model value of `var` after a [`SolveResult::Sat`] answer.
    ///
    /// Returns `None` if the variable is unassigned (e.g. before any solve).
    pub fn value(&self, var: Var) -> Option<bool> {
        match self.assigns[var.index()] {
            LBool::True => Some(true),
            LBool::False => Some(false),
            LBool::Undef => None,
        }
    }

    /// The model value of a literal.
    pub fn lit_value_opt(&self, lit: Lit) -> Option<bool> {
        self.value(lit.var()).map(|b| b == lit.is_pos())
    }

    #[inline]
    fn lit_value(&self, lit: Lit) -> LBool {
        self.assigns[lit.var().index()].under(lit)
    }

    #[inline]
    fn decision_level(&self) -> usize {
        self.trail_lim.len()
    }

    /// Adds a clause (a disjunction of literals).
    ///
    /// Returns `false` if the clause made the formula trivially
    /// unsatisfiable (and the solver is now permanently unsat). Duplicate
    /// literals are removed and tautological clauses are ignored.
    pub fn add_clause<I: IntoIterator<Item = Lit>>(&mut self, lits: I) -> bool {
        if !self.ok {
            return false;
        }
        self.cancel_until(0);
        let mut c: Vec<Lit> = lits.into_iter().collect();
        c.sort_unstable();
        c.dedup();
        // Tautology check and removal of root-level-false literals.
        let mut i = 0;
        while i + 1 < c.len() {
            if c[i].var() == c[i + 1].var() {
                return true; // p ∨ ¬p: always true
            }
            i += 1;
        }
        c.retain(|&l| self.lit_value(l) != LBool::False);
        if c.iter().any(|&l| self.lit_value(l) == LBool::True) {
            return true;
        }
        match c.len() {
            0 => {
                self.ok = false;
                false
            }
            1 => {
                self.unchecked_enqueue(c[0], None);
                if self.propagate().is_some() {
                    self.ok = false;
                    false
                } else {
                    true
                }
            }
            _ => {
                self.attach_clause(c, false);
                true
            }
        }
    }

    fn attach_clause(&mut self, lits: Vec<Lit>, learnt: bool) -> u32 {
        debug_assert!(lits.len() >= 2);
        let ci = self.clauses.len() as u32;
        let w0 = Watch {
            clause: ci,
            blocker: lits[1],
        };
        let w1 = Watch {
            clause: ci,
            blocker: lits[0],
        };
        self.watches[(!lits[0]).index()].push(w0);
        self.watches[(!lits[1]).index()].push(w1);
        if learnt {
            self.learnt_count += 1;
        }
        self.clauses.push(Clause {
            lits,
            learnt,
            deleted: false,
            activity: 0.0,
        });
        ci
    }

    fn detach_clause(&mut self, ci: u32) {
        let (l0, l1) = {
            let c = &self.clauses[ci as usize];
            (c.lits[0], c.lits[1])
        };
        self.watches[(!l0).index()].retain(|w| w.clause != ci);
        self.watches[(!l1).index()].retain(|w| w.clause != ci);
        let c = &mut self.clauses[ci as usize];
        if c.learnt {
            self.learnt_count -= 1;
        }
        c.deleted = true;
        c.lits = Vec::new();
    }

    fn unchecked_enqueue(&mut self, lit: Lit, reason: Option<u32>) {
        debug_assert_eq!(self.lit_value(lit), LBool::Undef);
        let v = lit.var().index();
        self.assigns[v] = LBool::from_bool(lit.is_pos());
        self.level[v] = self.decision_level() as u32;
        self.reason[v] = reason;
        self.trail.push(lit);
    }

    fn propagate(&mut self) -> Option<u32> {
        let mut conflict = None;
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            self.stats.propagations += 1;
            let false_lit = !p;
            let mut ws = std::mem::take(&mut self.watches[p.index()]);
            let mut i = 0;
            let mut j = 0;
            'watches: while i < ws.len() {
                let w = ws[i];
                i += 1;
                if self.lit_value(w.blocker) == LBool::True {
                    ws[j] = w;
                    j += 1;
                    continue;
                }
                let ci = w.clause as usize;
                {
                    let c = &mut self.clauses[ci];
                    if c.lits[0] == false_lit {
                        c.lits.swap(0, 1);
                    }
                    debug_assert_eq!(c.lits[1], false_lit);
                }
                let first = self.clauses[ci].lits[0];
                let w_new = Watch {
                    clause: w.clause,
                    blocker: first,
                };
                if first != w.blocker && self.lit_value(first) == LBool::True {
                    ws[j] = w_new;
                    j += 1;
                    continue;
                }
                let len = self.clauses[ci].lits.len();
                for k in 2..len {
                    let lk = self.clauses[ci].lits[k];
                    if self.lit_value(lk) != LBool::False {
                        self.clauses[ci].lits.swap(1, k);
                        self.watches[(!lk).index()].push(w_new);
                        continue 'watches;
                    }
                }
                // Unit or conflicting.
                ws[j] = w_new;
                j += 1;
                if self.lit_value(first) == LBool::False {
                    conflict = Some(w.clause);
                    self.qhead = self.trail.len();
                    while i < ws.len() {
                        ws[j] = ws[i];
                        j += 1;
                        i += 1;
                    }
                    break;
                } else {
                    self.unchecked_enqueue(first, Some(w.clause));
                }
            }
            ws.truncate(j);
            debug_assert!(self.watches[p.index()].is_empty());
            self.watches[p.index()] = ws;
            if conflict.is_some() {
                break;
            }
        }
        conflict
    }

    fn cancel_until(&mut self, target: usize) {
        if self.decision_level() <= target {
            return;
        }
        let bound = self.trail_lim[target];
        while self.trail.len() > bound {
            let lit = self.trail.pop().expect("trail underflow");
            let v = lit.var();
            self.phase[v.index()] = lit.is_pos();
            self.assigns[v.index()] = LBool::Undef;
            self.reason[v.index()] = None;
            if self.heap_pos[v.index()] == usize::MAX {
                self.heap_insert(v);
            }
        }
        self.trail_lim.truncate(target);
        self.qhead = self.trail.len();
    }

    /// First-UIP conflict analysis. Returns the learnt clause (asserting
    /// literal first) and the backtrack level.
    fn analyze(&mut self, mut confl: u32) -> (Vec<Lit>, usize) {
        let mut learnt: Vec<Lit> = vec![Lit(0)];
        let mut to_clear: Vec<Var> = Vec::new();
        let mut counter: i64 = 0;
        let mut p: Option<Lit> = None;
        let mut idx = self.trail.len();
        let cur_level = self.decision_level() as u32;
        loop {
            self.cla_bump(confl);
            let nlits = self.clauses[confl as usize].lits.len();
            for li in 0..nlits {
                let q = self.clauses[confl as usize].lits[li];
                if let Some(pl) = p {
                    if q.var() == pl.var() {
                        continue;
                    }
                }
                let v = q.var();
                if !self.seen[v.index()] && self.level[v.index()] > 0 {
                    self.seen[v.index()] = true;
                    to_clear.push(v);
                    self.var_bump(v);
                    if self.level[v.index()] >= cur_level {
                        counter += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            loop {
                idx -= 1;
                if self.seen[self.trail[idx].var().index()] {
                    break;
                }
            }
            let pl = self.trail[idx];
            counter -= 1;
            p = Some(pl);
            if counter <= 0 {
                break;
            }
            confl = self.reason[pl.var().index()]
                .expect("non-decision literal on conflict path must have a reason");
            self.seen[pl.var().index()] = false;
        }
        learnt[0] = !p.expect("conflict analysis found no UIP");

        // Clause minimization: drop literals implied by the rest.
        let mut minimized: Vec<Lit> = vec![learnt[0]];
        for &q in &learnt[1..] {
            if !self.lit_redundant(q, cur_level) {
                minimized.push(q);
            }
        }
        for v in to_clear {
            self.seen[v.index()] = false;
        }

        // Backtrack level: highest level among non-asserting literals.
        let blevel = if minimized.len() == 1 {
            0
        } else {
            let mut max_i = 1;
            for i in 2..minimized.len() {
                if self.level[minimized[i].var().index()]
                    > self.level[minimized[max_i].var().index()]
                {
                    max_i = i;
                }
            }
            minimized.swap(1, max_i);
            self.level[minimized[1].var().index()] as usize
        };
        (minimized, blevel)
    }

    /// A learnt literal is redundant if its reason clause is subsumed by the
    /// rest of the learnt clause (all antecedents seen at lower levels or
    /// fixed at the root).
    fn lit_redundant(&self, q: Lit, cur_level: u32) -> bool {
        let Some(r) = self.reason[q.var().index()] else {
            return false;
        };
        let c = &self.clauses[r as usize];
        for &l in &c.lits {
            if l.var() == q.var() {
                continue;
            }
            let v = l.var().index();
            let lv = self.level[v];
            if lv == 0 {
                continue;
            }
            if self.seen[v] && lv < cur_level {
                continue;
            }
            return false;
        }
        true
    }

    fn var_bump(&mut self, v: Var) {
        self.activity[v.index()] += self.var_inc;
        if self.activity[v.index()] > 1e100 {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
        self.heap_update(v);
    }

    fn var_decay(&mut self) {
        self.var_inc /= VAR_DECAY;
    }

    fn cla_bump(&mut self, ci: u32) {
        let c = &mut self.clauses[ci as usize];
        if !c.learnt {
            return;
        }
        c.activity += self.cla_inc;
        if c.activity > 1e20 {
            for c in &mut self.clauses {
                c.activity *= 1e-20;
            }
            self.cla_inc *= 1e-20;
        }
    }

    fn cla_decay(&mut self) {
        self.cla_inc /= CLA_DECAY;
    }

    fn reduce_db(&mut self) {
        let mut learnts: Vec<u32> = (0..self.clauses.len() as u32)
            .filter(|&i| {
                let c = &self.clauses[i as usize];
                c.learnt && !c.deleted && c.lits.len() > 2
            })
            .collect();
        learnts.sort_by(|&a, &b| {
            self.clauses[a as usize]
                .activity
                .partial_cmp(&self.clauses[b as usize].activity)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let locked: Vec<bool> = learnts
            .iter()
            .map(|&ci| {
                let c = &self.clauses[ci as usize];
                self.lit_value(c.lits[0]) == LBool::True
                    && self.reason[c.lits[0].var().index()] == Some(ci)
            })
            .collect();
        let half = learnts.len() / 2;
        for (k, &ci) in learnts.iter().enumerate().take(half) {
            if !locked[k] {
                self.detach_clause(ci);
            }
        }
    }

    // --- variable-order heap (max-heap on activity) ---

    fn heap_less(&self, a: Var, b: Var) -> bool {
        self.activity[a.index()] > self.activity[b.index()]
    }

    fn heap_insert(&mut self, v: Var) {
        self.heap_pos[v.index()] = self.heap.len();
        self.heap.push(v);
        self.heap_sift_up(self.heap.len() - 1);
    }

    fn heap_update(&mut self, v: Var) {
        let pos = self.heap_pos[v.index()];
        if pos != usize::MAX {
            self.heap_sift_up(pos);
        }
    }

    fn heap_sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if self.heap_less(self.heap[i], self.heap[parent]) {
                self.heap_swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    fn heap_sift_down(&mut self, mut i: usize) {
        loop {
            let l = 2 * i + 1;
            let r = 2 * i + 2;
            let mut best = i;
            if l < self.heap.len() && self.heap_less(self.heap[l], self.heap[best]) {
                best = l;
            }
            if r < self.heap.len() && self.heap_less(self.heap[r], self.heap[best]) {
                best = r;
            }
            if best == i {
                break;
            }
            self.heap_swap(i, best);
            i = best;
        }
    }

    fn heap_swap(&mut self, i: usize, j: usize) {
        self.heap.swap(i, j);
        self.heap_pos[self.heap[i].index()] = i;
        self.heap_pos[self.heap[j].index()] = j;
    }

    fn heap_pop(&mut self) -> Option<Var> {
        if self.heap.is_empty() {
            return None;
        }
        let top = self.heap[0];
        self.heap_pos[top.index()] = usize::MAX;
        let last = self.heap.pop().expect("heap non-empty");
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.heap_pos[last.index()] = 0;
            self.heap_sift_down(0);
        }
        Some(top)
    }

    fn pick_branch(&mut self) -> Option<Lit> {
        while let Some(v) = self.heap_pop() {
            if self.assigns[v.index()] == LBool::Undef {
                return Some(Lit::new(v, self.phase[v.index()]));
            }
        }
        None
    }

    /// Solves the formula with no assumptions.
    pub fn solve(&mut self) -> SolveResult {
        self.solve_with(&[])
    }

    /// Solves under the given assumption literals.
    ///
    /// Assumptions are temporary: they constrain only this call. This is
    /// the solver's *incremental* interface: everything else — problem
    /// clauses, clauses learnt during earlier calls, variable activities,
    /// and saved phases — is retained across calls, so a sequence of
    /// related queries against one solver shares all derived knowledge.
    /// The standard activation-literal pattern gates per-query constraint
    /// groups: add each group's clauses with an extra `¬sᵢ` literal,
    /// assume `sᵢ` while the group is live, and retire the group for good
    /// with a unit `¬sᵢ` clause (which satisfies, and effectively
    /// removes, every clause of the group).
    pub fn solve_with(&mut self, assumptions: &[Lit]) -> SolveResult {
        self.stats.solve_calls += 1;
        if !self.ok {
            return SolveResult::Unsat;
        }
        self.cancel_until(0);
        let mut restart_num: u64 = 0;
        loop {
            let budget = luby(restart_num) * RESTART_BASE;
            match self.search(assumptions, budget) {
                Some(res) => {
                    if res == SolveResult::Unsat {
                        self.cancel_until(0);
                    }
                    return res;
                }
                None => {
                    restart_num += 1;
                    self.stats.restarts += 1;
                    self.cancel_until(0);
                }
            }
        }
    }

    /// Runs the CDCL loop for at most `budget` conflicts.
    /// Returns `None` when the budget is exhausted (restart).
    fn search(&mut self, assumptions: &[Lit], budget: u64) -> Option<SolveResult> {
        let mut conflicts = 0u64;
        loop {
            if let Some(confl) = self.propagate() {
                self.stats.conflicts += 1;
                conflicts += 1;
                if self.decision_level() == 0 {
                    self.ok = false;
                    return Some(SolveResult::Unsat);
                }
                let (learnt, blevel) = self.analyze(confl);
                self.cancel_until(blevel);
                if learnt.len() == 1 {
                    self.unchecked_enqueue(learnt[0], None);
                } else {
                    let ci = self.attach_clause(learnt, true);
                    self.cla_bump(ci);
                    let first = self.clauses[ci as usize].lits[0];
                    self.unchecked_enqueue(first, Some(ci));
                }
                self.var_decay();
                self.cla_decay();
                if self.learnt_count as f64 > self.max_learnts {
                    self.max_learnts *= 1.5;
                    self.reduce_db();
                }
                if conflicts >= budget && self.decision_level() > assumptions.len() {
                    return None;
                }
            } else {
                // Establish assumptions, then decide.
                if self.decision_level() < assumptions.len() {
                    let p = assumptions[self.decision_level()];
                    match self.lit_value(p) {
                        LBool::True => {
                            self.trail_lim.push(self.trail.len());
                        }
                        LBool::False => {
                            return Some(SolveResult::Unsat);
                        }
                        LBool::Undef => {
                            self.trail_lim.push(self.trail.len());
                            self.unchecked_enqueue(p, None);
                        }
                    }
                    continue;
                }
                match self.pick_branch() {
                    None => return Some(SolveResult::Sat),
                    Some(lit) => {
                        self.stats.decisions += 1;
                        self.trail_lim.push(self.trail.len());
                        self.unchecked_enqueue(lit, None);
                    }
                }
            }
        }
    }

    /// Adds a blocking clause forbidding the current model restricted to
    /// `vars`, for model enumeration.
    ///
    /// Returns `false` when the blocking clause is empty (no variables) or
    /// makes the formula unsatisfiable.
    pub fn block_model(&mut self, vars: &[Var]) -> bool {
        self.block_model_under(vars, None)
    }

    /// Like [`Solver::block_model`], with the blocking clause gated by an
    /// optional `unless` literal: the clause only bites while `unless` is
    /// false. Incremental enumeration (model counting per activation
    /// group) passes the group's negated activation literal here, so a
    /// later unit `¬sᵢ` retires the group's blocking clauses along with
    /// its constraints instead of poisoning the shared solver.
    pub fn block_model_under(&mut self, vars: &[Var], unless: Option<Lit>) -> bool {
        let mut lits: Vec<Lit> = vars
            .iter()
            .filter_map(|&v| self.value(v).map(|b| Lit::new(v, !b)))
            .collect();
        if lits.is_empty() {
            match unless {
                // No way back under this activation group: retire it.
                Some(u) => {
                    self.add_clause([u]);
                    return false;
                }
                None => {
                    self.ok = false;
                    return false;
                }
            }
        }
        lits.extend(unless);
        self.add_clause(lits)
    }
}

/// The Luby restart sequence: 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 …
fn luby(i: u64) -> u64 {
    let mut x = i + 1;
    loop {
        let mut k = 1u32;
        while (1u64 << k) - 1 < x {
            k += 1;
        }
        if x == (1u64 << k) - 1 {
            return 1u64 << (k - 1);
        }
        x -= (1u64 << (k - 1)) - 1;
    }
}

#[cfg(test)]
mod unit {
    use super::*;

    #[test]
    fn luby_prefix() {
        let expected = [1u64, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8];
        let got: Vec<u64> = (0..15).map(luby).collect();
        assert_eq!(got, expected);
    }
}
