//! Solver tests: hand-built instances, classic families, and randomized
//! cross-checks against a brute-force evaluator.

use crate::{Lit, SolveResult, Solver, Var};
use proptest::prelude::*;

/// Brute-force satisfiability over `n` variables.
fn brute_force_sat(n: usize, cnf: &[Vec<(usize, bool)>]) -> bool {
    assert!(n <= 20);
    'outer: for m in 0u32..(1 << n) {
        for clause in cnf {
            let ok = clause.iter().any(|&(v, pos)| ((m >> v) & 1 == 1) == pos);
            if !ok {
                continue 'outer;
            }
        }
        return true;
    }
    false
}

/// Brute-force model count over `n` variables.
fn brute_force_count(n: usize, cnf: &[Vec<(usize, bool)>]) -> usize {
    assert!(n <= 20);
    (0u32..(1 << n))
        .filter(|m| {
            cnf.iter()
                .all(|clause| clause.iter().any(|&(v, pos)| ((m >> v) & 1 == 1) == pos))
        })
        .count()
}

fn build(n: usize, cnf: &[Vec<(usize, bool)>]) -> (Solver, Vec<Var>) {
    let mut s = Solver::new();
    let vars = s.new_vars(n);
    for clause in cnf {
        s.add_clause(clause.iter().map(|&(v, pos)| Lit::new(vars[v], pos)));
    }
    (s, vars)
}

fn check_model(s: &Solver, vars: &[Var], cnf: &[Vec<(usize, bool)>]) {
    for clause in cnf {
        let ok = clause.iter().any(|&(v, pos)| s.value(vars[v]) == Some(pos));
        assert!(ok, "model does not satisfy clause {clause:?}");
    }
}

#[test]
fn empty_formula_is_sat() {
    let mut s = Solver::new();
    assert_eq!(s.solve(), SolveResult::Sat);
}

#[test]
fn single_unit_clause() {
    let mut s = Solver::new();
    let a = s.new_var();
    s.add_clause([Lit::pos(a)]);
    assert!(s.solve().is_sat());
    assert_eq!(s.value(a), Some(true));
}

#[test]
fn contradictory_units_are_unsat() {
    let mut s = Solver::new();
    let a = s.new_var();
    s.add_clause([Lit::pos(a)]);
    assert!(!s.add_clause([Lit::neg(a)]) || !s.solve().is_sat());
    assert_eq!(s.solve(), SolveResult::Unsat);
}

#[test]
fn tautological_clause_is_ignored() {
    let mut s = Solver::new();
    let a = s.new_var();
    s.add_clause([Lit::pos(a), Lit::neg(a)]);
    assert!(s.solve().is_sat());
}

#[test]
fn chain_of_implications_propagates() {
    // a, a->b, b->c, c->d: all true.
    let mut s = Solver::new();
    let v = s.new_vars(4);
    s.add_clause([Lit::pos(v[0])]);
    for i in 0..3 {
        s.add_clause([Lit::neg(v[i]), Lit::pos(v[i + 1])]);
    }
    assert!(s.solve().is_sat());
    for &x in &v {
        assert_eq!(s.value(x), Some(true));
    }
}

#[test]
fn xor_chain_forces_conflict_analysis() {
    // x0 xor x1, x1 xor x2, x0 = x2 forced inconsistent by odd parity.
    let mut s = Solver::new();
    let v = s.new_vars(3);
    let xor = |s: &mut Solver, a: Var, b: Var, val: bool| {
        if val {
            s.add_clause([Lit::pos(a), Lit::pos(b)]);
            s.add_clause([Lit::neg(a), Lit::neg(b)]);
        } else {
            s.add_clause([Lit::pos(a), Lit::neg(b)]);
            s.add_clause([Lit::neg(a), Lit::pos(b)]);
        }
    };
    xor(&mut s, v[0], v[1], true);
    xor(&mut s, v[1], v[2], true);
    xor(&mut s, v[0], v[2], true); // parity contradiction
    assert_eq!(s.solve(), SolveResult::Unsat);
}

/// Pigeonhole principle PHP(n+1, n): unsatisfiable, exercises learning.
fn pigeonhole(pigeons: usize, holes: usize) -> (Solver, Vec<Vec<Var>>) {
    let mut s = Solver::new();
    let p: Vec<Vec<Var>> = (0..pigeons).map(|_| s.new_vars(holes)).collect();
    for row in &p {
        s.add_clause(row.iter().map(|&v| Lit::pos(v)));
    }
    for i in 0..pigeons {
        for j in (i + 1)..pigeons {
            for (&hole_i, &hole_j) in p[i].iter().zip(&p[j]) {
                s.add_clause([Lit::neg(hole_i), Lit::neg(hole_j)]);
            }
        }
    }
    (s, p)
}

#[test]
fn pigeonhole_unsat() {
    for n in 2..=5 {
        let (mut s, _) = pigeonhole(n + 1, n);
        assert_eq!(s.solve(), SolveResult::Unsat, "PHP({},{})", n + 1, n);
    }
}

#[test]
fn pigeonhole_sat_when_enough_holes() {
    let (mut s, p) = pigeonhole(4, 4);
    assert!(s.solve().is_sat());
    // Each pigeon sits somewhere.
    for row in &p {
        assert!(row.iter().any(|&v| s.value(v) == Some(true)));
    }
}

#[test]
fn solve_under_assumptions() {
    let mut s = Solver::new();
    let v = s.new_vars(3);
    s.add_clause([Lit::neg(v[0]), Lit::pos(v[1])]);
    s.add_clause([Lit::neg(v[1]), Lit::pos(v[2])]);
    assert!(s.solve_with(&[Lit::pos(v[0])]).is_sat());
    assert_eq!(s.value(v[2]), Some(true));
    // Assumptions do not persist.
    assert!(s.solve_with(&[Lit::neg(v[2])]).is_sat());
    assert_eq!(s.value(v[2]), Some(false));
    // Contradictory assumptions.
    assert_eq!(
        s.solve_with(&[Lit::pos(v[0]), Lit::neg(v[2])]),
        SolveResult::Unsat
    );
    // The solver is still usable afterwards.
    assert!(s.solve().is_sat());
}

#[test]
fn activation_literals_gate_incremental_groups() {
    // The incremental pattern: per-query constraint groups gated by
    // activation literals, solved under assumptions, retired with units.
    let mut s = Solver::new();
    let x = s.new_var();
    let y = s.new_var();
    let s1 = s.new_var();
    let s2 = s.new_var();
    // Group 1: s1 → x ∧ ¬y. Group 2: s2 → y.
    s.add_clause([Lit::neg(s1), Lit::pos(x)]);
    s.add_clause([Lit::neg(s1), Lit::neg(y)]);
    s.add_clause([Lit::neg(s2), Lit::pos(y)]);
    assert!(s.solve_with(&[Lit::pos(s1)]).is_sat());
    assert_eq!(s.value(x), Some(true));
    assert_eq!(s.value(y), Some(false));
    // The groups conflict when both are active.
    assert_eq!(
        s.solve_with(&[Lit::pos(s1), Lit::pos(s2)]),
        SolveResult::Unsat
    );
    // Retiring group 1 leaves group 2 solvable, on the same solver.
    s.add_clause([Lit::neg(s1)]);
    assert!(s.solve_with(&[Lit::pos(s2)]).is_sat());
    assert_eq!(s.value(y), Some(true));
    assert!(s.stats().solve_calls >= 3);
}

#[test]
fn gated_model_enumeration_does_not_poison_the_solver() {
    let mut s = Solver::new();
    let v = s.new_vars(2);
    let g = s.new_var();
    // g → (v0 ∨ v1): 3 models over {v0, v1} while g is assumed.
    s.add_clause([Lit::neg(g), Lit::pos(v[0]), Lit::pos(v[1])]);
    let mut count = 0;
    while s.solve_with(&[Lit::pos(g)]).is_sat() {
        count += 1;
        assert!(count <= 3, "enumerated too many gated models");
        if !s.block_model_under(&v, Some(Lit::neg(g))) {
            break;
        }
    }
    assert_eq!(count, 3);
    // Retire the group: its constraint and blocking clauses all die, and
    // the same solver enumerates the full 4-model space.
    s.add_clause([Lit::neg(g)]);
    let mut count2 = 0;
    while s.solve().is_sat() {
        count2 += 1;
        assert!(count2 <= 4);
        if !s.block_model(&v) {
            break;
        }
    }
    assert_eq!(count2, 4);
}

#[test]
fn model_enumeration_counts_exactly() {
    // (a ∨ b) ∧ (¬a ∨ ¬b) has exactly 2 models over {a, b}.
    let mut s = Solver::new();
    let v = s.new_vars(2);
    s.add_clause([Lit::pos(v[0]), Lit::pos(v[1])]);
    s.add_clause([Lit::neg(v[0]), Lit::neg(v[1])]);
    let mut count = 0;
    while s.solve().is_sat() {
        count += 1;
        assert!(count <= 2, "enumerated too many models");
        if !s.block_model(&v) {
            break;
        }
    }
    assert_eq!(count, 2);
}

#[test]
fn enumeration_over_free_variables() {
    // One clause over 3 vars: 7 models.
    let mut s = Solver::new();
    let v = s.new_vars(3);
    s.add_clause([Lit::pos(v[0]), Lit::pos(v[1]), Lit::pos(v[2])]);
    let mut count = 0;
    while s.solve().is_sat() {
        count += 1;
        assert!(count <= 7);
        if !s.block_model(&v) {
            break;
        }
    }
    assert_eq!(count, 7);
}

#[test]
fn many_vars_graph_coloring() {
    // Color a cycle of length 9 with 3 colors (sat); with 2 colors (unsat
    // since odd cycle).
    for (colors, expect_sat) in [(3usize, true), (2usize, false)] {
        let n = 9;
        let mut s = Solver::new();
        let grid: Vec<Vec<Var>> = (0..n).map(|_| s.new_vars(colors)).collect();
        for row in &grid {
            s.add_clause(row.iter().map(|&v| Lit::pos(v)));
            for i in 0..colors {
                for j in (i + 1)..colors {
                    s.add_clause([Lit::neg(row[i]), Lit::neg(row[j])]);
                }
            }
        }
        for e in 0..n {
            let a = &grid[e];
            let b = &grid[(e + 1) % n];
            for c in 0..colors {
                s.add_clause([Lit::neg(a[c]), Lit::neg(b[c])]);
            }
        }
        assert_eq!(s.solve().is_sat(), expect_sat, "colors={colors}");
    }
}

/// Random CNF generator for cross-checking.
fn cnf_strategy() -> impl Strategy<Value = (usize, Vec<Vec<(usize, bool)>>)> {
    (2usize..=8).prop_flat_map(|n| {
        let clause = proptest::collection::vec((0..n, any::<bool>()), 1..=4);
        let cnf = proptest::collection::vec(clause, 0..=24);
        (Just(n), cnf)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn matches_brute_force((n, cnf) in cnf_strategy()) {
        let (mut s, vars) = build(n, &cnf);
        let expected = brute_force_sat(n, &cnf);
        let got = s.solve().is_sat();
        prop_assert_eq!(got, expected);
        if got {
            check_model(&s, &vars, &cnf);
        }
    }

    #[test]
    fn enumeration_matches_brute_force_count((n, cnf) in cnf_strategy()) {
        let (mut s, vars) = build(n, &cnf);
        let expected = brute_force_count(n, &cnf);
        let mut count = 0usize;
        while s.solve().is_sat() {
            check_model(&s, &vars, &cnf);
            count += 1;
            prop_assert!(count <= expected, "enumerated more models than exist");
            if !s.block_model(&vars) {
                break;
            }
        }
        prop_assert_eq!(count, expected);
    }

    #[test]
    fn assumptions_agree_with_added_units((n, cnf) in cnf_strategy(), polarity in any::<bool>()) {
        let (mut s1, vars1) = build(n, &cnf);
        let assumption = Lit::new(vars1[0], polarity);
        let r1 = s1.solve_with(&[assumption]).is_sat();

        let mut cnf2 = cnf.clone();
        cnf2.push(vec![(0, polarity)]);
        let expected = brute_force_sat(n, &cnf2);
        prop_assert_eq!(r1, expected);
    }
}

mod dimacs_props {
    use crate::dimacs::{parse_dimacs, write_dimacs, Cnf};
    use crate::{Lit, Var};
    use proptest::prelude::*;

    fn arb_cnf() -> impl Strategy<Value = Cnf> {
        (1usize..6).prop_flat_map(|nv| {
            proptest::collection::vec(
                proptest::collection::vec((0..nv, proptest::bool::ANY), 0..4),
                0..6,
            )
            .prop_map(move |cls| Cnf {
                num_vars: nv,
                clauses: cls
                    .into_iter()
                    .map(|c| {
                        c.into_iter()
                            .map(|(v, pos)| Lit::new(Var::from_index(v), pos))
                            .collect()
                    })
                    .collect(),
            })
        })
    }

    /// Reference: brute-force satisfiability over all assignments.
    fn brute_sat(cnf: &Cnf) -> bool {
        (0u32..1 << cnf.num_vars).any(|m| {
            cnf.clauses.iter().all(|c| {
                c.iter()
                    .any(|l| (m >> l.var().index() & 1 == 1) == l.is_pos())
            })
        })
    }

    proptest! {
        #[test]
        fn dimacs_roundtrips(cnf in arb_cnf()) {
            let text = write_dimacs(&cnf);
            prop_assert_eq!(parse_dimacs(&text).expect("parses"), cnf);
        }

        #[test]
        fn loaded_instances_solve_like_brute_force(cnf in arb_cnf()) {
            let mut s = cnf.into_solver();
            prop_assert_eq!(s.solve().is_sat(), brute_sat(&cnf));
        }
    }
}
