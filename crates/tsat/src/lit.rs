//! Variables and literals.

use std::fmt;
use std::ops::Not;

/// A propositional variable, numbered densely from zero.
///
/// Variables are created with [`crate::Solver::new_var`]; the index is an
/// implementation detail exposed for use as an array key.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Var(pub(crate) u32);

impl Var {
    /// Creates a variable from a raw index.
    ///
    /// Only meaningful for indices previously handed out by a solver.
    #[inline]
    pub fn from_index(index: usize) -> Var {
        Var(index as u32)
    }

    /// The dense index of this variable.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// A literal: a variable or its negation.
///
/// Encoded as `2 * var + sign` where `sign == 1` means negated, the classic
/// MiniSat encoding, so a literal indexes watch lists directly.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Lit(pub(crate) u32);

impl Lit {
    /// The positive literal of `var`.
    #[inline]
    pub fn pos(var: Var) -> Lit {
        Lit(var.0 << 1)
    }

    /// The negative literal of `var`.
    #[inline]
    pub fn neg(var: Var) -> Lit {
        Lit((var.0 << 1) | 1)
    }

    /// Builds a literal with an explicit polarity (`true` = positive).
    #[inline]
    pub fn new(var: Var, polarity: bool) -> Lit {
        if polarity {
            Lit::pos(var)
        } else {
            Lit::neg(var)
        }
    }

    /// The underlying variable.
    #[inline]
    pub fn var(self) -> Var {
        Var(self.0 >> 1)
    }

    /// `true` when this is the positive literal.
    #[inline]
    pub fn is_pos(self) -> bool {
        self.0 & 1 == 0
    }

    /// Dense index for watch lists (`2 * var + sign`).
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl Not for Lit {
    type Output = Lit;

    #[inline]
    fn not(self) -> Lit {
        Lit(self.0 ^ 1)
    }
}

impl fmt::Debug for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_pos() {
            write!(f, "v{}", self.var().0)
        } else {
            write!(f, "!v{}", self.var().0)
        }
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// Tri-valued assignment used inside the solver.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum LBool {
    True,
    False,
    Undef,
}

impl LBool {
    #[inline]
    pub(crate) fn from_bool(b: bool) -> LBool {
        if b {
            LBool::True
        } else {
            LBool::False
        }
    }

    /// The value of a literal given the value of its variable.
    #[inline]
    pub(crate) fn under(self, lit: Lit) -> LBool {
        match self {
            LBool::Undef => LBool::Undef,
            LBool::True => {
                if lit.is_pos() {
                    LBool::True
                } else {
                    LBool::False
                }
            }
            LBool::False => {
                if lit.is_pos() {
                    LBool::False
                } else {
                    LBool::True
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_encoding_roundtrips() {
        let v = Var::from_index(7);
        assert_eq!(Lit::pos(v).var(), v);
        assert_eq!(Lit::neg(v).var(), v);
        assert!(Lit::pos(v).is_pos());
        assert!(!Lit::neg(v).is_pos());
        assert_eq!(!Lit::pos(v), Lit::neg(v));
        assert_eq!(!!Lit::pos(v), Lit::pos(v));
        assert_eq!(Lit::new(v, true), Lit::pos(v));
        assert_eq!(Lit::new(v, false), Lit::neg(v));
    }

    #[test]
    fn lbool_under_literal() {
        let v = Var::from_index(0);
        assert_eq!(LBool::True.under(Lit::pos(v)), LBool::True);
        assert_eq!(LBool::True.under(Lit::neg(v)), LBool::False);
        assert_eq!(LBool::False.under(Lit::neg(v)), LBool::True);
        assert_eq!(LBool::Undef.under(Lit::pos(v)), LBool::Undef);
    }
}
