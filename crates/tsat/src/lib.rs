//! `tsat` — a conflict-driven clause-learning (CDCL) SAT solver.
//!
//! This crate is the bottom substrate of the TransForm reproduction. The
//! paper's synthesis engine compiles relational MTM specifications (via
//! Alloy/Kodkod) down to CNF and solves them with MiniSat; `tsat` plays the
//! MiniSat role here. It implements the standard modern architecture:
//!
//! * two-watched-literal unit propagation,
//! * first-UIP conflict analysis with clause minimization,
//! * VSIDS-style variable activities with phase saving,
//! * Luby-sequence restarts and learnt-clause database reduction,
//! * solving under assumptions, and
//! * model enumeration through blocking clauses.
//!
//! # Examples
//!
//! ```
//! use tsat::{Solver, Lit};
//!
//! let mut s = Solver::new();
//! let a = s.new_var();
//! let b = s.new_var();
//! s.add_clause([Lit::pos(a), Lit::pos(b)]);
//! s.add_clause([Lit::neg(a)]);
//! assert!(s.solve().is_sat());
//! assert_eq!(s.value(b), Some(true));
//! ```

pub mod dimacs;
mod lit;
mod solver;

pub use dimacs::{parse_dimacs, write_dimacs, Cnf};
pub use lit::{Lit, Var};
pub use solver::{SolveResult, Solver, SolverStats};

#[cfg(test)]
mod tests;
