//! DIMACS CNF interchange.
//!
//! MiniSat — the solver TransForm's Alloy/Kodkod stack bottoms out in —
//! speaks the DIMACS CNF format; `tsat` does too, so instances can be
//! exported for cross-checking against off-the-shelf solvers and imported
//! from standard benchmark files.
//!
//! The dialect is the classic one: optional `c` comment lines, one
//! `p cnf <vars> <clauses>` header, then whitespace-separated non-zero
//! literals with `0` terminating each clause.

use crate::lit::{Lit, Var};
use crate::solver::Solver;
use std::error::Error;
use std::fmt;

/// A parsed CNF instance.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Cnf {
    /// Number of variables declared in the header.
    pub num_vars: usize,
    /// The clauses, as literal lists.
    pub clauses: Vec<Vec<Lit>>,
}

impl Cnf {
    /// Loads the instance into a fresh [`Solver`].
    pub fn into_solver(&self) -> Solver {
        let mut s = Solver::new();
        s.new_vars(self.num_vars);
        for c in &self.clauses {
            s.add_clause(c.iter().copied());
        }
        s
    }
}

/// A DIMACS parse failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseDimacsError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseDimacsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "dimacs line {}: {}", self.line, self.message)
    }
}

impl Error for ParseDimacsError {}

/// Parses DIMACS CNF text.
///
/// # Errors
///
/// Rejects missing/duplicate headers, literals out of the declared range,
/// unterminated clauses, and clause-count mismatches.
///
/// # Examples
///
/// ```
/// use tsat::dimacs::parse_dimacs;
///
/// let cnf = parse_dimacs("c demo\np cnf 2 2\n1 -2 0\n2 0\n")?;
/// assert_eq!(cnf.num_vars, 2);
/// let mut s = cnf.into_solver();
/// assert!(s.solve().is_sat());
/// # Ok::<(), tsat::dimacs::ParseDimacsError>(())
/// ```
pub fn parse_dimacs(src: &str) -> Result<Cnf, ParseDimacsError> {
    let mut header: Option<(usize, usize)> = None;
    let mut clauses: Vec<Vec<Lit>> = Vec::new();
    let mut current: Vec<Lit> = Vec::new();

    for (ln, raw) in src.lines().enumerate() {
        let line = ln + 1;
        let err = |m: String| ParseDimacsError { line, message: m };
        let text = raw.trim();
        if text.is_empty() || text.starts_with('c') {
            continue;
        }
        if let Some(rest) = text.strip_prefix('p') {
            if header.is_some() {
                return Err(err("duplicate header".into()));
            }
            let mut it = rest.split_whitespace();
            if it.next() != Some("cnf") {
                return Err(err("expected `p cnf <vars> <clauses>`".into()));
            }
            let nv = it
                .next()
                .and_then(|s| s.parse::<usize>().ok())
                .ok_or_else(|| err("bad variable count".into()))?;
            let nc = it
                .next()
                .and_then(|s| s.parse::<usize>().ok())
                .ok_or_else(|| err("bad clause count".into()))?;
            header = Some((nv, nc));
            continue;
        }
        let (nv, _) = header.ok_or_else(|| err("clause before header".into()))?;
        for tok in text.split_whitespace() {
            let v: i64 = tok
                .parse()
                .map_err(|_| err(format!("bad literal `{tok}`")))?;
            if v == 0 {
                clauses.push(std::mem::take(&mut current));
            } else {
                let idx = v.unsigned_abs() as usize;
                if idx > nv {
                    return Err(err(format!("literal {v} out of range 1..={nv}")));
                }
                current.push(Lit::new(Var::from_index(idx - 1), v > 0));
            }
        }
    }

    let (nv, nc) = header.ok_or(ParseDimacsError {
        line: 1,
        message: "missing `p cnf` header".into(),
    })?;
    if !current.is_empty() {
        return Err(ParseDimacsError {
            line: src.lines().count(),
            message: "unterminated clause (missing trailing 0)".into(),
        });
    }
    if clauses.len() != nc {
        return Err(ParseDimacsError {
            line: src.lines().count(),
            message: format!("header declared {nc} clauses, found {}", clauses.len()),
        });
    }
    Ok(Cnf {
        num_vars: nv,
        clauses,
    })
}

/// Renders an instance as DIMACS CNF text.
pub fn write_dimacs(cnf: &Cnf) -> String {
    let mut out = format!("p cnf {} {}\n", cnf.num_vars, cnf.clauses.len());
    for c in &cnf.clauses {
        for &l in c {
            let v = l.var().index() as i64 + 1;
            out.push_str(&format!("{} ", if l.is_pos() { v } else { -v }));
        }
        out.push_str("0\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_simple_instance() {
        let cnf = Cnf {
            num_vars: 3,
            clauses: vec![
                vec![Lit::pos(Var::from_index(0)), Lit::neg(Var::from_index(2))],
                vec![Lit::neg(Var::from_index(1))],
                vec![],
            ],
        };
        let text = write_dimacs(&cnf);
        assert_eq!(parse_dimacs(&text).expect("parses"), cnf);
    }

    #[test]
    fn comments_and_blank_lines_skip() {
        let cnf = parse_dimacs("c hi\n\nc there\np cnf 1 1\n1 0\n").expect("parses");
        assert_eq!(cnf.clauses.len(), 1);
    }

    #[test]
    fn multi_clause_single_line() {
        let cnf = parse_dimacs("p cnf 2 2\n1 0 -2 0\n").expect("parses");
        assert_eq!(cnf.clauses.len(), 2);
    }

    #[test]
    fn errors_are_located() {
        assert!(parse_dimacs("1 0").unwrap_err().message.contains("header"));
        assert_eq!(parse_dimacs("p cnf 1 1\n5 0\n").unwrap_err().line, 2);
        assert!(parse_dimacs("p cnf 1 1\n1\n")
            .unwrap_err()
            .message
            .contains("unterminated"));
        assert!(parse_dimacs("p cnf 1 2\n1 0\n")
            .unwrap_err()
            .message
            .contains("declared 2"));
        assert!(parse_dimacs("p cnf 1 0\np cnf 1 0\n")
            .unwrap_err()
            .message
            .contains("duplicate"));
    }

    #[test]
    fn empty_clause_is_unsat() {
        let cnf = parse_dimacs("p cnf 1 1\n0\n").expect("parses");
        let mut s = cnf.into_solver();
        assert!(!s.solve().is_sat());
    }
}
