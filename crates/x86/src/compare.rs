//! The §VI-B comparison tool.
//!
//! "We automate the ELT comparison process via a tool that first checks if
//! TransForm would synthesize the ELT verbatim in the synthesized suite
//! (category 1), and if not, subsequently tests for the ELT's inclusion in
//! category 2 by trying to remove subsets of instructions from the ELT to
//! see if it can be minimized to a TransForm-synthesizable test."

use crate::coatcheck::CoatTest;
use std::collections::BTreeSet;
use transform_core::exec::Execution;
use transform_synth::canon::canonical_key;
use transform_synth::programs::Program;
use transform_synth::relax::{apply, relaxations};
use transform_synth::Suite;

/// Where a hand-written ELT lands relative to the synthesized suite.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Category {
    /// Synthesized verbatim (category 1 of §VI-B).
    Verbatim,
    /// A superset of a synthesized minimal ELT (category 2).
    Reducible,
    /// Outside the spanning-set criteria: no removal subset reaches a
    /// synthesized program.
    NotSpanning,
    /// Uses an IPI type TransForm does not model.
    UnsupportedIpi,
}

/// Comparison result for one test.
#[derive(Clone, Debug)]
pub struct TestComparison {
    /// The test's name.
    pub name: String,
    /// Its classification.
    pub category: Category,
}

/// Aggregate comparison of a hand-written suite against synthesized
/// per-axiom suites.
#[derive(Clone, Debug)]
pub struct SuiteComparison {
    /// Per-test classifications, in suite order.
    pub tests: Vec<TestComparison>,
    /// Number of unique synthesized programs matched verbatim.
    pub verbatim_programs: usize,
}

impl SuiteComparison {
    /// Number of tests in the given category.
    pub fn count(&self, c: Category) -> usize {
        self.tests.iter().filter(|t| t.category == c).count()
    }
}

/// The canonical program keys of one or more synthesized suites.
pub fn synthesized_keys<'s, I: IntoIterator<Item = &'s Suite>>(suites: I) -> BTreeSet<Vec<u64>> {
    suites
        .into_iter()
        .flat_map(|s| s.elts.iter().map(|e| canonical_key(&e.program)))
        .collect()
}

/// Classifies one hand-written ELT against synthesized program keys.
pub fn classify(test: &CoatTest, keys: &BTreeSet<Vec<u64>>) -> Category {
    let Some(x) = &test.execution else {
        return Category::UnsupportedIpi;
    };
    let key = canonical_key(&Program::from_execution(x));
    if keys.contains(&key) {
        return Category::Verbatim;
    }
    if reducible(x, keys) {
        return Category::Reducible;
    }
    Category::NotSpanning
}

/// Depth-first search over removal subsets (the relaxation units of
/// §IV-B) looking for a synthesized program.
fn reducible(x: &Execution, keys: &BTreeSet<Vec<u64>>) -> bool {
    let mut seen: BTreeSet<Vec<u64>> = BTreeSet::new();
    let mut stack = vec![x.clone()];
    while let Some(cur) = stack.pop() {
        for r in relaxations(&cur) {
            let Some(next) = apply(&cur, &r) else {
                continue;
            };
            let key = canonical_key(&Program::from_execution(&next));
            if !seen.insert(key.clone()) {
                continue;
            }
            if keys.contains(&key) {
                return true;
            }
            stack.push(next);
        }
    }
    false
}

/// Compares a hand-written suite against synthesized suites (§VI-B).
pub fn compare_suite(tests: &[CoatTest], keys: &BTreeSet<Vec<u64>>) -> SuiteComparison {
    let per_test: Vec<TestComparison> = tests
        .iter()
        .map(|t| TestComparison {
            name: t.name.to_string(),
            category: classify(t, keys),
        })
        .collect();
    let verbatim_programs: BTreeSet<Vec<u64>> = tests
        .iter()
        .zip(&per_test)
        .filter(|(_, c)| c.category == Category::Verbatim)
        .filter_map(|(t, _)| t.execution.as_ref())
        .map(|x| canonical_key(&Program::from_execution(x)))
        .collect();
    SuiteComparison {
        tests: per_test,
        verbatim_programs: verbatim_programs.len(),
    }
}

/// Renders the comparison as an aligned text table.
pub fn render(cmp: &SuiteComparison) -> String {
    let mut out = String::new();
    for t in &cmp.tests {
        out.push_str(&format!("{:<16} {:?}\n", t.name, t.category));
    }
    out.push_str(&format!(
        "\nverbatim: {} tests ({} unique programs); reducible: {}; \
         not spanning: {}; unsupported IPI: {}\n",
        cmp.count(Category::Verbatim),
        cmp.verbatim_programs,
        cmp.count(Category::Reducible),
        cmp.count(Category::NotSpanning),
        cmp.count(Category::UnsupportedIpi),
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coatcheck;
    use crate::model::x86t_elt;
    use transform_synth::{synthesize_suite, SynthOptions};

    /// Synthesize the invlpg + sc_per_loc suites at bound 4 and check the
    /// small tests classify correctly (the full 40-test comparison runs in
    /// the integration suite at bound 6).
    #[test]
    fn ptwalk2_is_verbatim_and_dirtybit3_is_reducible_at_bound_4() {
        let mtm = x86t_elt();
        let mut opts = SynthOptions::new(4);
        opts.enumeration.allow_fences = false;
        opts.enumeration.allow_rmw = false;
        let invlpg = synthesize_suite(&mtm, "invlpg", &opts);
        let scpl = synthesize_suite(&mtm, "sc_per_loc", &opts);
        let keys = synthesized_keys([&invlpg, &scpl]);

        let suite = coatcheck::suite();
        let ptwalk2 = suite.iter().find(|t| t.name == "ptwalk2").expect("present");
        assert_eq!(classify(ptwalk2, &keys), Category::Verbatim);

        let dirtybit3 = suite
            .iter()
            .find(|t| t.name == "dirtybit3")
            .expect("present");
        assert_eq!(classify(dirtybit3, &keys), Category::Reducible);

        let lone_read = suite
            .iter()
            .find(|t| t.name == "ptwalk_r")
            .expect("present");
        assert_eq!(classify(lone_read, &keys), Category::NotSpanning);

        let ipi = suite
            .iter()
            .find(|t| t.name == "ipi_resched1")
            .expect("present");
        assert_eq!(classify(ipi, &keys), Category::UnsupportedIpi);
    }
}
