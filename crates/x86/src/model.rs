//! The `x86-TSO` consistency model and the `x86t_elt` transistency model
//! of §V, in the spec DSL.

use transform_core::axiom::Mtm;
use transform_core::spec::parse_mtm;

/// The textual specification of `x86-TSO` (§II-A): `sc_per_loc`,
/// `rmw_atomicity`, and `causality` [Alglave et al., "Herding cats"].
pub const X86_TSO_SPEC: &str = "\
mtm x86tso {
  # coherence: per-location sequential consistency
  axiom sc_per_loc:    acyclic(rf | co | fr | po_loc)
  # no intervening same-address write inside an RMW
  axiom rmw_atomicity: empty(rmw & (fr ; co))
  # global happens-before: TSO relaxes only write -> read order
  axiom causality:     acyclic(rfe | co | fr | ppo | fence)
}
";

/// The textual specification of `x86t_elt` (§V-A): the `x86-TSO` axioms
/// plus the two transistency axioms `invlpg` and `tlb_causality`.
pub const X86T_ELT_SPEC: &str = "\
mtm x86t_elt {
  axiom sc_per_loc:    acyclic(rf | co | fr | po_loc)
  axiom rmw_atomicity: empty(rmw & (fr ; co))
  axiom causality:     acyclic(rfe | co | fr | ppo | fence)
  # a post-INVLPG access must read the latest mapping for its VA
  axiom invlpg:        acyclic(fr_va | ^po | remap)
  # diagnostic: no causal cycle through the walk that sourced a TLB entry
  axiom tlb_causality: acyclic(ptw_source | com)
}
";

/// Builds the `x86-TSO` consistency predicate.
pub fn x86_tso() -> Mtm {
    parse_mtm(X86_TSO_SPEC).expect("x86-TSO spec is well-formed")
}

/// Builds the `x86t_elt` transistency predicate — the paper's estimated
/// MTM for Intel x86 processors.
pub fn x86t_elt() -> Mtm {
    parse_mtm(X86T_ELT_SPEC).expect("x86t_elt spec is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use transform_core::derive::BaseRel;
    use transform_core::figures;

    #[test]
    fn x86t_elt_has_the_five_axioms_of_section_v() {
        let m = x86t_elt();
        let names: Vec<&str> = m.axioms().iter().map(|a| a.name.as_str()).collect();
        assert_eq!(
            names,
            [
                "sc_per_loc",
                "rmw_atomicity",
                "causality",
                "invlpg",
                "tlb_causality"
            ]
        );
    }

    #[test]
    fn transistency_is_a_superset_of_consistency() {
        // The consistency axioms appear verbatim inside the MTM (§V-A).
        let tso = x86_tso();
        let mtm = x86t_elt();
        for ax in tso.axioms() {
            let in_mtm = mtm.axiom(&ax.name).expect("axiom present in MTM");
            assert_eq!(in_mtm.axiom, ax.axiom);
        }
    }

    #[test]
    fn x86t_elt_does_not_observe_co_pa() {
        // Relation-aware branching: x86t_elt never mentions co_pa/fr_pa, so
        // the synthesizer need not branch on alias-creation orders.
        let m = x86t_elt();
        assert!(!m.mentions(BaseRel::CoPa));
        assert!(!m.mentions(BaseRel::FrPa));
        assert!(m.mentions(BaseRel::FrVa));
        assert!(m.mentions(BaseRel::PtwSource));
    }

    #[test]
    fn paper_figures_get_their_published_verdicts() {
        let mtm = x86t_elt();
        for (name, x, permitted) in figures::all_figures() {
            let v = mtm.permits(&x);
            assert_eq!(v.is_permitted(), permitted, "{name}: {:?}", v.violated);
        }
    }

    #[test]
    fn fig2c_is_a_coherence_violation() {
        let v = x86t_elt().permits(&figures::fig2c_sb_elt_aliased());
        assert!(v.violates("sc_per_loc"));
    }

    #[test]
    fn fig10a_violates_both_sc_per_loc_and_invlpg() {
        // Exactly as the Fig. 10a caption states.
        let v = x86t_elt().permits(&figures::fig10a_ptwalk2());
        assert!(v.violates("sc_per_loc"));
        assert!(v.violates("invlpg"));
    }

    #[test]
    fn fig11_violates_only_invlpg() {
        let v = x86t_elt().permits(&figures::fig11_cross_core_invlpg());
        assert_eq!(v.violated, vec!["invlpg".to_string()]);
    }
}
