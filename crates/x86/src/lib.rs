//! `transform-x86` — the paper's x86 case study (§V–§VI).
//!
//! * [`model`] — the `x86-TSO` consistency predicate and the `x86t_elt`
//!   transistency predicate (its five axioms: `sc_per_loc`,
//!   `rmw_atomicity`, `causality`, `invlpg`, `tlb_causality`).
//! * [`coatcheck`] — a reconstruction of the hand-written COATCheck ELT
//!   suite used as the §VI-B baseline (see DESIGN.md for the
//!   substitution rationale).
//! * [`compare`] — the automated comparison tool classifying hand-written
//!   ELTs as synthesized-verbatim (category 1), reducible (category 2),
//!   outside the spanning criteria, or unsupported.
//!
//! # Examples
//!
//! ```
//! use transform_x86::x86t_elt;
//! use transform_core::figures;
//!
//! let mtm = x86t_elt();
//! assert!(mtm.permits(&figures::fig2b_sb_elt()).is_permitted());
//! assert!(!mtm.permits(&figures::fig10a_ptwalk2()).is_permitted());
//! ```

pub mod coatcheck;
pub mod compare;
pub mod model;

pub use compare::{classify, compare_suite, synthesized_keys, Category, SuiteComparison};
pub use model::{x86_tso, x86t_elt, X86T_ELT_SPEC, X86_TSO_SPEC};
