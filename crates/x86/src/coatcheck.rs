//! A reconstruction of the hand-written COATCheck ELT suite \[29\] used as
//! the comparison baseline in §VI-B.
//!
//! The original 40-test suite is not reproduced in the paper, so this
//! module reconstructs a suite with the same reported composition:
//!
//! * 9 tests exercising IPI types TransForm does not model (carried here
//!   as entries without executions);
//! * 9 tests that do not meet the spanning-set criteria (permitted-only
//!   programs, or tests with no write);
//! * 7 tests that are minimal as written and match synthesized ELTs
//!   verbatim — collapsing to **4** unique programs;
//! * 15 tests that are supersets of minimal ELTs (category 2), each
//!   reducible to a synthesized program by removing extraneous
//!   instructions (e.g. `dirtybit3` of Fig. 10b reduces by `{W3}`).

use transform_core::exec::{EltBuilder, Execution};
use transform_core::figures;
use transform_core::ids::{Pa, Va};

const X: Va = Va(0);
const Y: Va = Va(1);
const B: Pa = Pa(1);

/// One hand-written ELT of the reconstructed suite.
#[derive(Clone, Debug)]
pub struct CoatTest {
    /// Test name (following COATCheck's naming flavor).
    pub name: &'static str,
    /// What the test exercises.
    pub description: &'static str,
    /// The ELT, when expressible in TransForm's vocabulary.
    pub execution: Option<Execution>,
}

fn t(name: &'static str, description: &'static str, x: Execution) -> CoatTest {
    CoatTest {
        name,
        description,
        execution: Some(x),
    }
}

fn unsupported(name: &'static str, description: &'static str) -> CoatTest {
    CoatTest {
        name,
        description,
        execution: None,
    }
}

/// Program A — the `ptwalk2` core (Fig. 10a): stale walk after remap.
fn prog_a() -> Execution {
    figures::fig10a_ptwalk2()
}

/// Program B — the cross-core remap/INVLPG core (Fig. 11).
fn prog_b() -> Execution {
    figures::fig11_cross_core_invlpg()
}

/// Program C — same-core coherence through the dirty-bit-carrying write:
/// `W x; R x` where the read returns the initial value.
fn prog_c() -> Execution {
    let mut b = EltBuilder::new();
    let t0 = b.thread();
    b.write_walk(t0, X);
    b.read(t0, X); // reads initial: forbidden
    b.build()
}

/// Program D — coRR across cores: the second read travels back in
/// coherence order.
fn prog_d() -> Execution {
    let mut b = EltBuilder::new();
    let t0 = b.thread();
    let t1 = b.thread();
    let (w, _, _) = b.write_walk(t0, X);
    let (r1, _) = b.read_walk(t1, X);
    let r2 = b.read(t1, X);
    b.rf(w, r1); // first read sees the write...
    let _ = r2; // ...the second reads the initial value: forbidden
    b.build()
}

// --- category-2 constructions: minimal core + extraneous instructions ---

fn a_plus_read_y() -> Execution {
    let mut b = EltBuilder::new();
    let t0 = b.thread();
    let w = b.pte_write(t0, X, B);
    let i = b.invlpg(t0, X);
    b.remap(w, i);
    b.read_walk(t0, X); // stale
    b.read_walk(t0, Y); // extraneous
    b.build()
}

fn a_plus_write_y() -> Execution {
    let mut b = EltBuilder::new();
    let t0 = b.thread();
    let w = b.pte_write(t0, X, B);
    let i = b.invlpg(t0, X);
    b.remap(w, i);
    b.read_walk(t0, X);
    b.write_walk(t0, Y); // extraneous
    b.build()
}

fn a_plus_fence() -> Execution {
    let mut b = EltBuilder::new();
    let t0 = b.thread();
    let w = b.pte_write(t0, X, B);
    let i = b.invlpg(t0, X);
    b.remap(w, i);
    b.fence(t0); // extraneous
    b.read_walk(t0, X);
    b.build()
}

fn a_plus_rmw_y() -> Execution {
    let mut b = EltBuilder::new();
    let t0 = b.thread();
    let w = b.pte_write(t0, X, B);
    let i = b.invlpg(t0, X);
    b.remap(w, i);
    b.read_walk(t0, X);
    let (r, _) = b.read_walk(t0, Y); // extraneous RMW on y
    let (wy, _) = b.write(t0, Y);
    b.rmw(r, wy);
    b.build()
}

fn b_plus_read() -> Execution {
    let mut b = EltBuilder::new();
    let c0 = b.thread();
    let c1 = b.thread();
    let w = b.pte_write(c0, X, B);
    let i0 = b.invlpg(c0, X);
    let i1 = b.invlpg(c1, X);
    b.remap(w, i0);
    b.remap(w, i1);
    b.read_walk(c1, X); // stale
    b.read_walk(c0, Y); // extraneous
    b.build()
}

fn b_plus_write() -> Execution {
    let mut b = EltBuilder::new();
    let c0 = b.thread();
    let c1 = b.thread();
    let w = b.pte_write(c0, X, B);
    let i0 = b.invlpg(c0, X);
    let i1 = b.invlpg(c1, X);
    b.remap(w, i0);
    b.remap(w, i1);
    b.read_walk(c1, X);
    b.write_walk(c0, Y); // extraneous
    b.build()
}

fn b_plus_fence() -> Execution {
    let mut b = EltBuilder::new();
    let c0 = b.thread();
    let c1 = b.thread();
    let w = b.pte_write(c0, X, B);
    let i0 = b.invlpg(c0, X);
    let i1 = b.invlpg(c1, X);
    b.remap(w, i0);
    b.remap(w, i1);
    b.fence(c1); // extraneous
    b.read_walk(c1, X);
    b.build()
}

fn c_plus_read_y() -> Execution {
    let mut b = EltBuilder::new();
    let t0 = b.thread();
    b.write_walk(t0, X);
    b.read(t0, X);
    b.read_walk(t0, Y); // extraneous
    b.build()
}

fn c_plus_write_y() -> Execution {
    let mut b = EltBuilder::new();
    let t0 = b.thread();
    b.write_walk(t0, X);
    b.read(t0, X);
    b.write_walk(t0, Y); // extraneous
    b.build()
}

fn c_plus_fence() -> Execution {
    let mut b = EltBuilder::new();
    let t0 = b.thread();
    b.write_walk(t0, X);
    b.fence(t0); // extraneous (sc_per_loc ignores fences)
    b.read(t0, X);
    b.build()
}

fn c_plus_spurious_invlpg() -> Execution {
    let mut b = EltBuilder::new();
    let t0 = b.thread();
    b.write_walk(t0, X);
    b.read(t0, X);
    b.invlpg(t0, Y); // extraneous spurious INVLPG
    b.build()
}

fn d_plus_read_y() -> Execution {
    let mut b = EltBuilder::new();
    let t0 = b.thread();
    let t1 = b.thread();
    let (w, _, _) = b.write_walk(t0, X);
    let (r1, _) = b.read_walk(t1, X);
    b.read(t1, X);
    b.rf(w, r1);
    b.read_walk(t0, Y); // extraneous
    b.build()
}

fn d_plus_write_y() -> Execution {
    let mut b = EltBuilder::new();
    let t0 = b.thread();
    let t1 = b.thread();
    let (w, _, _) = b.write_walk(t0, X);
    let (r1, _) = b.read_walk(t1, X);
    b.read(t1, X);
    b.rf(w, r1);
    b.write_walk(t0, Y); // extraneous
    b.build()
}

fn dirtybit5_invlpg_first() -> Execution {
    let mut b = EltBuilder::new();
    let t0 = b.thread();
    b.invlpg(t0, X); // extraneous spurious INVLPG before first access
    b.write_walk(t0, X);
    b.read(t0, X);
    b.build()
}

// --- not-spanning constructions ---

fn mp_elt() -> Execution {
    // Message passing, SC outcome: permitted; no same-location same-thread
    // pair anywhere, so no reduction is forbidden either.
    let mut b = EltBuilder::new();
    let c0 = b.thread();
    let c1 = b.thread();
    let (wx, _, _) = b.write_walk(c0, X);
    let (wy, _, _) = b.write_walk(c0, Y);
    let (ry, _) = b.read_walk(c1, Y);
    let (rx, _) = b.read_walk(c1, X);
    b.rf(wy, ry);
    b.rf(wx, rx);
    b.build()
}

fn rr_two_vas() -> Execution {
    let mut b = EltBuilder::new();
    let t0 = b.thread();
    b.read_walk(t0, X);
    b.read_walk(t0, Y);
    b.build()
}

fn ww_two_vas() -> Execution {
    let mut b = EltBuilder::new();
    let t0 = b.thread();
    b.write_walk(t0, X);
    b.write_walk(t0, Y);
    b.build()
}

fn wr_cross_core() -> Execution {
    let mut b = EltBuilder::new();
    let c0 = b.thread();
    let c1 = b.thread();
    b.write_walk(c0, X);
    b.read_walk(c1, X); // reads initial; no cycle exists cross-core
    b.build()
}

/// The full reconstructed 40-test suite.
pub fn suite() -> Vec<CoatTest> {
    vec![
        // --- 7 verbatim-minimal tests (4 unique programs) ---
        t(
            "ptwalk1",
            "stale PT walk after remap (value flavor)",
            prog_a(),
        ),
        t("ptwalk2", "stale PT walk after remap (Fig. 10a)", prog_a()),
        t(
            "ipi_invlpg1",
            "remap IPI ordering across cores (Fig. 11)",
            prog_b(),
        ),
        t(
            "ipi_invlpg2",
            "remap IPI ordering across cores (final-state flavor)",
            prog_b(),
        ),
        t("dirtybit1", "write then stale same-core read", prog_c()),
        t("corr1", "coRR: second read goes back in co", prog_d()),
        t("corr2", "coRR variant (final-state flavor)", prog_d()),
        // --- 15 category-2 tests (reducible to minimal ELTs) ---
        t(
            "dirtybit3",
            "Fig. 10b: ptwalk2 plus an extraneous write {W3}",
            figures::fig10b_dirtybit3(),
        ),
        t("ptwalk4", "ptwalk2 plus unrelated read", a_plus_read_y()),
        t("ptwalk5", "ptwalk2 plus unrelated write", a_plus_write_y()),
        t("ptwalk6", "ptwalk2 plus fence", a_plus_fence()),
        t("ptwalk7", "ptwalk2 plus unrelated RMW", a_plus_rmw_y()),
        t("ipi2", "Fig. 11 core plus unrelated read", b_plus_read()),
        t("ipi3", "Fig. 11 core plus unrelated write", b_plus_write()),
        t("ipi4", "Fig. 11 core plus fence", b_plus_fence()),
        t(
            "dirtybit2",
            "coherence core plus unrelated read",
            c_plus_read_y(),
        ),
        t(
            "dirtybit4",
            "coherence core plus unrelated write",
            c_plus_write_y(),
        ),
        t("dirtybit6", "coherence core plus fence", c_plus_fence()),
        t(
            "dirtybit7",
            "coherence core plus spurious INVLPG",
            c_plus_spurious_invlpg(),
        ),
        t(
            "dirtybit5",
            "coherence core behind a spurious INVLPG",
            dirtybit5_invlpg_first(),
        ),
        t("corr3", "coRR plus unrelated read", d_plus_read_y()),
        t("corr4", "coRR plus unrelated write", d_plus_write_y()),
        // --- 9 tests outside the spanning-set criteria ---
        t(
            "sb_elt",
            "store buffering, SC outcome (Fig. 2b)",
            figures::fig2b_sb_elt(),
        ),
        t("mp_elt", "message passing, SC outcome", mp_elt()),
        t(
            "ptwalk_r",
            "lone read with walk (Fig. 3a, no write)",
            figures::fig3a_read_walk(),
        ),
        t(
            "ptwalk_w",
            "lone write with walk (Fig. 3b)",
            figures::fig3b_write_walk(),
        ),
        t(
            "tlbshare",
            "two reads share a TLB entry (Fig. 5a)",
            figures::fig5a_tlb_hit(),
        ),
        t(
            "tlbevict",
            "spurious INVLPG forces re-walk (Fig. 5b)",
            figures::fig5b_spurious_invlpg(),
        ),
        t("rr2", "independent reads", rr_two_vas()),
        t("ww2", "independent writes", ww_two_vas()),
        t(
            "wr_cross",
            "cross-core write/read, no cycle",
            wr_cross_core(),
        ),
        // --- 9 tests using IPI types TransForm does not model ---
        unsupported("ipi_resched1", "reschedule IPI vs. store buffer drain"),
        unsupported("ipi_resched2", "reschedule IPI vs. pending loads"),
        unsupported("ipi_resched3", "nested reschedule IPIs"),
        unsupported("ipi_fixed1", "fixed-vector IPI ordering"),
        unsupported("ipi_fixed2", "fixed-vector IPI vs. fences"),
        unsupported("ipi_broadcast1", "broadcast TLB shootdown with ACK"),
        unsupported("ipi_broadcast2", "chained TLB shootdowns"),
        unsupported("ipi_selfipi", "self-IPI ordering"),
        unsupported("ipi_nmi", "NMI-based shootdown"),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::x86t_elt;

    #[test]
    fn suite_has_forty_tests_with_reported_composition() {
        let s = suite();
        assert_eq!(s.len(), 40);
        let unsupported = s.iter().filter(|t| t.execution.is_none()).count();
        assert_eq!(unsupported, 9);
    }

    #[test]
    fn every_expressible_test_is_well_formed() {
        for test in suite() {
            if let Some(x) = &test.execution {
                assert!(x.is_well_formed(), "{}: {:?}", test.name, x.analyze().err());
            }
        }
    }

    #[test]
    fn verbatim_tests_are_forbidden_and_collapse_to_four_programs() {
        use std::collections::BTreeSet;
        use transform_synth::canon::canonical_key;
        use transform_synth::programs::Program;
        let mtm = x86t_elt();
        let s = suite();
        let verbatim = &s[..7];
        let mut programs = BTreeSet::new();
        for test in verbatim {
            let x = test.execution.as_ref().expect("expressible");
            assert!(
                !mtm.permits(x).is_permitted(),
                "{} should be forbidden",
                test.name
            );
            programs.insert(canonical_key(&Program::from_execution(x)));
        }
        assert_eq!(programs.len(), 4);
    }

    #[test]
    fn not_spanning_tests_do_not_violate_anything_or_lack_writes() {
        let mtm = x86t_elt();
        let s = suite();
        for test in &s[22..31] {
            let x = test.execution.as_ref().expect("expressible");
            let permitted = mtm.permits(x).is_permitted();
            assert!(
                permitted || !x.has_write(),
                "{} should be permitted or write-free",
                test.name
            );
        }
    }
}
