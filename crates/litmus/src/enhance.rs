//! The MCM-test → ELT enhancement of Fig. 2 (a → b).
//!
//! The paper calls this "an algorithmic translation that expands
//! user-level instructions to include ghost instructions executing on
//! their behalf": every access whose VA is cold in its core's TLB gains a
//! PT walk, every write gains a dirty-bit update, and the user-level
//! outcome (reads-from, coherence) carries over unchanged.

use crate::classic::{McmOp, McmTest};
use std::collections::{BTreeMap, BTreeSet};
use transform_core::exec::{EltBuilder, Execution};
use transform_core::ids::EventId;

/// Expands an MCM litmus test into the corresponding ELT (the Fig. 2b
/// mapping): walks on first access, dirty-bit updates on writes, the same
/// communication structure.
pub fn enhance(test: &McmTest) -> Execution {
    let mut b = EltBuilder::new();
    let mut ids: BTreeMap<(usize, usize), EventId> = BTreeMap::new();
    let mut db_of: BTreeMap<EventId, EventId> = BTreeMap::new();
    for (ti, ops) in test.threads.iter().enumerate() {
        let t = b.thread();
        let mut warm: BTreeSet<usize> = BTreeSet::new();
        for (ii, op) in ops.iter().enumerate() {
            let id = match *op {
                McmOp::Read(va) => {
                    if warm.insert(va.0) {
                        b.read_walk(t, va).0
                    } else {
                        b.read(t, va)
                    }
                }
                McmOp::Write(va) => {
                    let (w, d) = if warm.insert(va.0) {
                        let (w, d, _) = b.write_walk(t, va);
                        (w, d)
                    } else {
                        b.write(t, va)
                    };
                    db_of.insert(w, d);
                    w
                }
                McmOp::Fence => b.fence(t),
            };
            ids.insert((ti, ii), id);
        }
    }
    for (w, r) in &test.rf {
        b.rf(ids[w], ids[r]);
    }

    // Coherence per location: the explicit groups first, then any
    // remaining writers in (thread, index) order. The dirty-bit updates
    // share each VA's PTE location, so they are ordered too — mirroring
    // their parents (one total order among the valid choices).
    let mut order: BTreeMap<usize, Vec<EventId>> = BTreeMap::new();
    let mut placed: BTreeSet<EventId> = BTreeSet::new();
    let va_of = |p: &(usize, usize)| match test.threads[p.0][p.1] {
        McmOp::Write(va) => va.0,
        _ => unreachable!("co groups hold writes"),
    };
    for group in &test.co {
        for p in group {
            let id = ids[p];
            if placed.insert(id) {
                order.entry(va_of(p)).or_default().push(id);
            }
        }
    }
    for (ti, ops) in test.threads.iter().enumerate() {
        for (ii, op) in ops.iter().enumerate() {
            if let McmOp::Write(va) = op {
                let id = ids[&(ti, ii)];
                if placed.insert(id) {
                    order.entry(va.0).or_default().push(id);
                }
            }
        }
    }
    for group in order.into_values() {
        if group.len() > 1 {
            b.co(group.iter().copied());
            b.co(group.iter().map(|w| db_of[w]));
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classic;
    use transform_core::event::EventKind;

    #[test]
    fn sb_enhances_to_the_fig2b_shape() {
        let elt = enhance(&classic::sb_sc());
        // 4 user ops + 2 dirty-bit writes + 4 walks = 10 events (Fig. 2b).
        assert_eq!(elt.size(), 10);
        assert!(elt.is_well_formed(), "{:?}", elt.analyze().err());
        let walks = elt
            .events()
            .iter()
            .filter(|e| e.kind == EventKind::Ptw)
            .count();
        assert_eq!(walks, 4);
    }

    #[test]
    fn every_classic_enhancement_is_well_formed() {
        for t in classic::all_tests() {
            let elt = enhance(&t);
            assert!(
                elt.is_well_formed(),
                "{}: {:?}",
                t.name,
                elt.analyze().err()
            );
        }
    }

    #[test]
    fn repeat_accesses_share_tlb_entries() {
        let elt = enhance(&classic::corr_weak());
        // Thread 1 reads x twice: one walk, shared.
        let walks = elt
            .events()
            .iter()
            .filter(|e| e.kind == EventKind::Ptw && e.thread.0 == 1)
            .count();
        assert_eq!(walks, 1);
    }
}
