//! A concrete text syntax for enhanced litmus tests.
//!
//! The paper's synthesis engine emits ELTs as Alloy XML and post-processes
//! them with external tooling; an open-source release needs a syntax that
//! humans can read, diff, and check into suites. This module defines one:
//!
//! ```text
//! elt "ptwalk2" {
//!   thread C0 {
//!     WPTE x -> pa1
//!     INVLPG x
//!     R x walk
//!   }
//!   remap C0:0 -> C0:1
//! }
//! ```
//!
//! * One `thread` block per core; slots are implicitly numbered from 0.
//! * `R`/`W` take a VA name (`x`, `y`, `u`, … or `vaN`) and an optional
//!   `walk` marker (a TLB miss — the access invokes a page-table walk).
//!   Writes always carry their implicit dirty-bit update.
//! * `WPTE <va> -> <pa>` remaps a VA; PAs are `a`, `b`, `c`, … or `paN`.
//! * `INVLPG <va>`, `FLUSH`, and `MFENCE` are the support/fence forms.
//! * Event references are `C<t>:<slot>` for program-order slots,
//!   `C<t>:<slot>.walk` for a slot's page-table walk, and `C<t>:<slot>.db`
//!   for a write's dirty-bit update.
//! * `rmw`, `remap`, `rf`, `co`, and `co_pa` clauses add the dependency,
//!   invocation, and communication structure; `co`/`co_pa` list writes
//!   oldest-first.
//!
//! [`print_elt`] and [`parse_elt`] round-trip every well-formed execution.

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;
use transform_core::event::EventKind;
use transform_core::exec::{EltBuilder, Execution};
use transform_core::ids::{EventId, Pa, ThreadId, Va};

/// A parse failure, with a line number.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseEltError {
    /// 1-based line of the offending input.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseEltError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl Error for ParseEltError {}

fn va_name(va: Va) -> String {
    const NAMES: [&str; 5] = ["x", "y", "u", "s", "t"];
    NAMES
        .get(va.0)
        .map(|s| s.to_string())
        .unwrap_or_else(|| format!("va{}", va.0))
}

fn pa_name(pa: Pa) -> String {
    const NAMES: [&str; 5] = ["a", "b", "c", "d", "e"];
    NAMES
        .get(pa.0)
        .map(|s| s.to_string())
        .unwrap_or_else(|| format!("pa{}", pa.0))
}

fn parse_va(s: &str) -> Option<Va> {
    const NAMES: [&str; 5] = ["x", "y", "u", "s", "t"];
    if let Some(i) = NAMES.iter().position(|&n| n == s) {
        return Some(Va(i));
    }
    s.strip_prefix("va").and_then(|n| n.parse().ok()).map(Va)
}

fn parse_pa(s: &str) -> Option<Pa> {
    const NAMES: [&str; 5] = ["a", "b", "c", "d", "e"];
    if let Some(i) = NAMES.iter().position(|&n| n == s) {
        return Some(Pa(i));
    }
    s.strip_prefix("pa").and_then(|n| n.parse().ok()).map(Pa)
}

/// A reference to an event: a program-order slot, its walk, or its
/// dirty-bit update.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Part {
    Main,
    Walk,
    Db,
}

fn event_ref(x: &Execution, e: EventId) -> String {
    let ev = x.event(e);
    let (anchor, part) = match ev.kind {
        EventKind::Ptw => (x.invoker(e).expect("walks have invokers"), ".walk"),
        EventKind::DirtyBitWrite => (x.invoker(e).expect("dbs have invokers"), ".db"),
        _ => (e, ""),
    };
    let t = x.event(anchor).thread;
    let slot = x
        .po_of(t)
        .iter()
        .position(|&p| p == anchor)
        .expect("anchored events are in po");
    format!("C{}:{}{}", t.0, slot, part)
}

/// Renders an execution in the ELT text syntax.
///
/// # Examples
///
/// ```
/// use transform_core::figures;
/// use transform_litmus::format::{parse_elt, print_elt};
///
/// let x = figures::fig10a_ptwalk2();
/// let text = print_elt("ptwalk2", &x);
/// assert_eq!(parse_elt(&text).unwrap().1, x);
/// ```
pub fn print_elt(name: &str, x: &Execution) -> String {
    let mut out = format!("elt \"{name}\" {{\n");
    for t in 0..x.num_threads() {
        out.push_str(&format!("  thread C{t} {{\n"));
        for &e in x.po_of(ThreadId(t)) {
            let ev = x.event(e);
            let walk = x
                .ghosts_of(e)
                .iter()
                .any(|&g| x.event(g).kind == EventKind::Ptw);
            let walk_suffix = if walk { " walk" } else { "" };
            let line = match ev.kind {
                EventKind::Read => format!("R {}{walk_suffix}", va_name(ev.va_unwrap())),
                EventKind::Write => format!("W {}{walk_suffix}", va_name(ev.va_unwrap())),
                EventKind::Fence => "MFENCE".to_string(),
                EventKind::PteWrite { new_pa } => {
                    format!("WPTE {} -> {}", va_name(ev.va_unwrap()), pa_name(new_pa))
                }
                EventKind::Invlpg => format!("INVLPG {}", va_name(ev.va_unwrap())),
                EventKind::TlbFlush => "FLUSH".to_string(),
                EventKind::Ptw | EventKind::DirtyBitWrite => {
                    unreachable!("ghosts are not in po")
                }
            };
            out.push_str(&format!("    {line}\n"));
        }
        out.push_str("  }\n");
    }
    for &(r, w) in x.rmw_pairs() {
        out.push_str(&format!("  rmw {} {}\n", event_ref(x, r), event_ref(x, w)));
    }
    for &(w, i) in x.remap_pairs() {
        out.push_str(&format!(
            "  remap {} -> {}\n",
            event_ref(x, w),
            event_ref(x, i)
        ));
    }
    for (w, r) in x.rf_pairs() {
        out.push_str(&format!(
            "  rf {} -> {}\n",
            event_ref(x, w),
            event_ref(x, r)
        ));
    }
    for chain in linearize(x, x.co_pairs()) {
        out.push_str("  co");
        for e in chain {
            out.push_str(&format!(" {}", event_ref(x, e)));
        }
        out.push('\n');
    }
    if let Some(co_pa) = explicit_co_pa(x) {
        for chain in linearize(x, &co_pa) {
            out.push_str("  co_pa");
            for e in chain {
                out.push_str(&format!(" {}", event_ref(x, e)));
            }
            out.push('\n');
        }
    }
    out.push_str("}\n");
    out
}

fn explicit_co_pa(x: &Execution) -> Option<transform_core::exec::PairSet> {
    x.to_parts().co_pa
}

/// Splits a union of total orders into per-group chains (oldest first).
fn linearize(x: &Execution, pairs: &transform_core::exec::PairSet) -> Vec<Vec<EventId>> {
    let mut members: BTreeMap<EventId, usize> = BTreeMap::new();
    for &(a, b) in pairs {
        let succs = pairs.iter().filter(|&&(s, _)| s == a).count();
        members.insert(a, succs.max(members.get(&a).copied().unwrap_or(0)));
        let succs_b = pairs.iter().filter(|&&(s, _)| s == b).count();
        members.insert(b, succs_b.max(members.get(&b).copied().unwrap_or(0)));
    }
    // Group: two events belong together when they are ordered either way.
    let mut groups: Vec<Vec<EventId>> = Vec::new();
    let mut assigned: BTreeMap<EventId, usize> = BTreeMap::new();
    for &e in members.keys() {
        if assigned.contains_key(&e) {
            continue;
        }
        let gi = groups.len();
        groups.push(vec![e]);
        assigned.insert(e, gi);
        let mut frontier = vec![e];
        while let Some(f) = frontier.pop() {
            for &(a, b) in pairs {
                let other = if a == f {
                    b
                } else if b == f {
                    a
                } else {
                    continue;
                };
                if let std::collections::btree_map::Entry::Vacant(slot) = assigned.entry(other) {
                    slot.insert(gi);
                    groups[gi].push(other);
                    frontier.push(other);
                }
            }
        }
    }
    // Sort each group by descending successor count (total order rank).
    for g in &mut groups {
        let _ = x;
        g.sort_by_key(|&e| std::cmp::Reverse(pairs.iter().filter(|&&(s, _)| s == e).count()));
    }
    groups
}

struct SlotIds {
    main: BTreeMap<(usize, usize), EventId>,
    walk: BTreeMap<(usize, usize), EventId>,
    db: BTreeMap<(usize, usize), EventId>,
}

fn resolve(ids: &SlotIds, spec: &str, line: usize) -> Result<EventId, ParseEltError> {
    let err = |m: String| ParseEltError { line, message: m };
    let (core, part) = match spec.split_once('.') {
        Some((c, "walk")) => (c, Part::Walk),
        Some((c, "db")) => (c, Part::Db),
        Some((_, other)) => return Err(err(format!("unknown event part `.{other}`"))),
        None => (spec, Part::Main),
    };
    let rest = core
        .strip_prefix('C')
        .ok_or_else(|| err(format!("expected C<t>:<slot>, got `{spec}`")))?;
    let (t, s) = rest
        .split_once(':')
        .ok_or_else(|| err(format!("expected C<t>:<slot>, got `{spec}`")))?;
    let key = (
        t.parse::<usize>()
            .map_err(|_| err(format!("bad thread in `{spec}`")))?,
        s.parse::<usize>()
            .map_err(|_| err(format!("bad slot in `{spec}`")))?,
    );
    let table = match part {
        Part::Main => &ids.main,
        Part::Walk => &ids.walk,
        Part::Db => &ids.db,
    };
    table
        .get(&key)
        .copied()
        .ok_or_else(|| err(format!("no such event `{spec}`")))
}

/// Parses the ELT text syntax, returning the test name and the execution.
///
/// # Errors
///
/// Returns a [`ParseEltError`] naming the offending line. The execution is
/// *not* checked for well-formedness — callers run
/// [`Execution::analyze`](transform_core::exec::Execution) as usual.
pub fn parse_elt(src: &str) -> Result<(String, Execution), ParseEltError> {
    let mut b = EltBuilder::new();
    let mut ids = SlotIds {
        main: BTreeMap::new(),
        walk: BTreeMap::new(),
        db: BTreeMap::new(),
    };
    let mut name = String::new();
    let mut current: Option<(ThreadId, usize)> = None;
    let mut seen_header = false;
    let mut pending: Vec<(usize, Vec<String>)> = Vec::new();

    for (ln, raw) in src.lines().enumerate() {
        let line = ln + 1;
        let err = |m: String| ParseEltError { line, message: m };
        let text = raw.split('#').next().unwrap_or("").trim();
        if text.is_empty() {
            continue;
        }
        let toks: Vec<String> = text
            .replace('{', " { ")
            .replace('}', " } ")
            .split_whitespace()
            .map(str::to_string)
            .collect();
        match toks[0].as_str() {
            "elt" => {
                if seen_header {
                    return Err(err("duplicate elt header".into()));
                }
                seen_header = true;
                name = toks
                    .get(1)
                    .map(|s| s.trim_matches('"').to_string())
                    .unwrap_or_default();
            }
            "thread" => {
                if toks.last().map(String::as_str) != Some("{") || toks.len() > 3 {
                    return Err(err("thread blocks open with `thread C<t> {` and hold one \
                         instruction per line"
                        .into()));
                }
                let t = b.thread();
                current = Some((t, 0));
            }
            "}" => {
                if toks.len() > 1 {
                    return Err(err("`}` must stand alone on its line".into()));
                }
                current = None;
            }
            "R" | "W" | "MFENCE" | "WPTE" | "INVLPG" | "FLUSH" => {
                if toks.iter().any(|t| t == "{" || t == "}") {
                    return Err(err("one statement per line (stray brace)".into()));
                }
                let (t, slot) = current
                    .as_mut()
                    .map(|(t, s)| (*t, s))
                    .ok_or_else(|| err("instruction outside a thread block".into()))?;
                let key = (t.0, *slot);
                *slot += 1;
                let va = |i: usize| -> Result<Va, ParseEltError> {
                    toks.get(i)
                        .and_then(|s| parse_va(s))
                        .ok_or_else(|| err(format!("expected a VA in `{text}`")))
                };
                match toks[0].as_str() {
                    "R" => {
                        let walk = toks.iter().any(|t| t == "walk");
                        let id = if walk {
                            let (r, p) = b.read_walk(t, va(1)?);
                            ids.walk.insert(key, p);
                            r
                        } else {
                            b.read(t, va(1)?)
                        };
                        ids.main.insert(key, id);
                    }
                    "W" => {
                        let walk = toks.iter().any(|t| t == "walk");
                        let id = if walk {
                            let (w, d, p) = b.write_walk(t, va(1)?);
                            ids.db.insert(key, d);
                            ids.walk.insert(key, p);
                            w
                        } else {
                            let (w, d) = b.write(t, va(1)?);
                            ids.db.insert(key, d);
                            w
                        };
                        ids.main.insert(key, id);
                    }
                    "MFENCE" => {
                        ids.main.insert(key, b.fence(t));
                    }
                    "WPTE" => {
                        let pa = toks
                            .iter()
                            .skip_while(|s| s.as_str() != "->")
                            .nth(1)
                            .and_then(|s| parse_pa(s))
                            .ok_or_else(|| {
                                err(format!("expected `WPTE <va> -> <pa>` in `{text}`"))
                            })?;
                        ids.main.insert(key, b.pte_write(t, va(1)?, pa));
                    }
                    "INVLPG" => {
                        ids.main.insert(key, b.invlpg(t, va(1)?));
                    }
                    "FLUSH" => {
                        ids.main.insert(key, b.tlb_flush(t));
                    }
                    _ => unreachable!(),
                }
            }
            "rmw" | "remap" | "rf" | "co" | "co_pa" => {
                pending.push((line, toks));
            }
            other => return Err(err(format!("unknown directive `{other}`"))),
        }
    }
    if !seen_header {
        return Err(ParseEltError {
            line: 1,
            message: "missing `elt \"name\" {` header".into(),
        });
    }

    // Structural clauses resolve after all threads exist.
    for (line, toks) in pending {
        let err = |m: String| ParseEltError { line, message: m };
        let args: Vec<&String> = toks[1..].iter().filter(|s| s.as_str() != "->").collect();
        match toks[0].as_str() {
            "rmw" => {
                let [r, w] = args[..] else {
                    return Err(err("rmw takes two event refs".into()));
                };
                b.rmw(resolve(&ids, r, line)?, resolve(&ids, w, line)?);
            }
            "remap" => {
                let [w, i] = args[..] else {
                    return Err(err("remap takes two event refs".into()));
                };
                b.remap(resolve(&ids, w, line)?, resolve(&ids, i, line)?);
            }
            "rf" => {
                let [w, r] = args[..] else {
                    return Err(err("rf takes two event refs".into()));
                };
                b.rf(resolve(&ids, w, line)?, resolve(&ids, r, line)?);
            }
            "co" => {
                let chain = args
                    .iter()
                    .map(|s| resolve(&ids, s, line))
                    .collect::<Result<Vec<_>, _>>()?;
                b.co(chain);
            }
            "co_pa" => {
                let chain = args
                    .iter()
                    .map(|s| resolve(&ids, s, line))
                    .collect::<Result<Vec<_>, _>>()?;
                b.co_pa(chain);
            }
            _ => unreachable!(),
        }
    }

    Ok((name, b.build()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use transform_core::figures;

    #[test]
    fn roundtrips_every_figure() {
        for (name, x, _) in figures::all_figures() {
            let text = print_elt(name, &x);
            let (parsed_name, parsed) =
                parse_elt(&text).unwrap_or_else(|e| panic!("{name}: {e}\n{text}"));
            assert_eq!(parsed_name, name);
            assert_eq!(parsed, x, "{name} round-trip:\n{text}");
        }
    }

    #[test]
    fn parses_the_doc_example() {
        let (name, x) = parse_elt(
            "elt \"ptwalk2\" {\n\
               thread C0 {\n\
                 WPTE x -> pa1\n\
                 INVLPG x\n\
                 R x walk\n\
               }\n\
               remap C0:0 -> C0:1\n\
             }",
        )
        .expect("parses");
        assert_eq!(name, "ptwalk2");
        assert_eq!(x, figures::fig10a_ptwalk2());
    }

    #[test]
    fn reports_unknown_directives_with_line() {
        let e = parse_elt("elt \"t\" {\n  bogus\n}").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("bogus"));
    }

    #[test]
    fn reports_bad_event_refs() {
        let e = parse_elt("elt \"t\" {\n  thread C0 {\n    R x walk\n  }\n  rf C0:7 -> C0:0\n}")
            .unwrap_err();
        assert_eq!(e.line, 5);
        assert!(e.message.contains("no such event"));
    }

    #[test]
    fn instructions_outside_threads_fail() {
        let e = parse_elt("elt \"t\" {\n  R x\n}").unwrap_err();
        assert!(e.message.contains("outside a thread"));
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let (_, x) =
            parse_elt("# suite: demo\nelt \"t\" {\n\n  thread C0 { # core 0\n    R x walk\n  }\n}")
                .expect("parses");
        assert_eq!(x.size(), 2);
    }
}
