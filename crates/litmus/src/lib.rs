//! `transform-litmus` — classic MCM litmus tests and their enhancement
//! into ELTs.
//!
//! Traditional litmus tests ([`classic`]) capture only user-level shared
//! memory behavior; [`enhance`](mod@enhance) performs the paper's Fig. 2a → Fig. 2b
//! translation, attaching page-table walks and dirty-bit updates so the
//! tests can be evaluated under a transistency model.
//!
//! # Examples
//!
//! ```
//! use transform_litmus::{classic, enhance::enhance};
//!
//! let elt = enhance(&classic::sb_sc());
//! assert_eq!(elt.size(), 10); // Fig. 2b: 4 user ops + 6 ghosts
//! ```

pub mod classic;
pub mod enhance;
pub mod format;

pub use classic::{McmOp, McmTest};
pub use enhance::enhance;
pub use format::{parse_elt, print_elt, ParseEltError};
