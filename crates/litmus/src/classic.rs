//! Classic MCM litmus tests (the user-level view of Fig. 2a).
//!
//! A [`McmTest`] is a traditional consistency litmus test: user-facing
//! reads/writes/fences over virtual addresses, with an outcome given by
//! reads-from choices. MCM tests know nothing about translation — the
//! [`crate::enhance`](mod@crate::enhance) module lifts them to ELTs.

use transform_core::ids::Va;

/// One user-level instruction of an MCM test.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum McmOp {
    /// Load from a VA.
    Read(Va),
    /// Store to a VA.
    Write(Va),
    /// `MFENCE`.
    Fence,
}

/// A position in an MCM test: `(thread, instruction index)`.
pub type Pos = (usize, usize);

/// A classic litmus test with one distinguished outcome.
#[derive(Clone, Debug)]
pub struct McmTest {
    /// Conventional name (sb, mp, …).
    pub name: &'static str,
    /// Instructions per thread.
    pub threads: Vec<Vec<McmOp>>,
    /// Reads-from choices: `(writer position, reader position)`. Reads
    /// absent as targets read the initial value (zero).
    pub rf: Vec<(Pos, Pos)>,
    /// Coherence order per VA as sequences of writer positions (omitted
    /// for single-writer locations).
    pub co: Vec<Vec<Pos>>,
    /// Whether x86-TSO permits this outcome.
    pub permitted_by_tso: bool,
}

const X: Va = Va(0);
const Y: Va = Va(1);

/// Store buffering, weak outcome (`r1 = r2 = 0`): **permitted** by TSO —
/// the store buffer lets both reads bypass the remote writes.
pub fn sb_weak() -> McmTest {
    McmTest {
        name: "sb",
        threads: vec![
            vec![McmOp::Write(X), McmOp::Read(Y)],
            vec![McmOp::Write(Y), McmOp::Read(X)],
        ],
        rf: vec![], // both reads see the initial state
        co: vec![],
        permitted_by_tso: true,
    }
}

/// Store buffering with fences: the weak outcome becomes **forbidden**.
pub fn sb_fenced_weak() -> McmTest {
    McmTest {
        name: "sb+mfences",
        threads: vec![
            vec![McmOp::Write(X), McmOp::Fence, McmOp::Read(Y)],
            vec![McmOp::Write(Y), McmOp::Fence, McmOp::Read(X)],
        ],
        rf: vec![],
        co: vec![],
        permitted_by_tso: false,
    }
}

/// Store buffering, sequentially consistent outcome (Fig. 2a): both reads
/// observe the other core's write. **Permitted.**
pub fn sb_sc() -> McmTest {
    McmTest {
        name: "sb-sc",
        threads: vec![
            vec![McmOp::Write(X), McmOp::Read(Y)],
            vec![McmOp::Write(Y), McmOp::Read(X)],
        ],
        rf: vec![((1, 0), (0, 1)), ((0, 0), (1, 1))],
        co: vec![],
        permitted_by_tso: true,
    }
}

/// Message passing, reordered outcome (`r1 = 1, r2 = 0`): **forbidden**
/// by TSO (stores are not reordered; loads are not reordered).
pub fn mp_weak() -> McmTest {
    McmTest {
        name: "mp",
        threads: vec![
            vec![McmOp::Write(X), McmOp::Write(Y)],
            vec![McmOp::Read(Y), McmOp::Read(X)],
        ],
        rf: vec![((0, 1), (1, 0))], // r(y) sees w(y); r(x) sees 0
        co: vec![],
        permitted_by_tso: false,
    }
}

/// Load buffering (`r1 = r2 = 1` with no writes sourcing them… expressed
/// TSO-legally): reads take initial values. **Permitted** trivially.
pub fn lb_safe() -> McmTest {
    McmTest {
        name: "lb-safe",
        threads: vec![
            vec![McmOp::Read(X), McmOp::Write(Y)],
            vec![McmOp::Read(Y), McmOp::Write(X)],
        ],
        rf: vec![],
        co: vec![],
        permitted_by_tso: true,
    }
}

/// coRR: two same-address reads on one core observe writes in opposite
/// order. **Forbidden** (coherence).
pub fn corr_weak() -> McmTest {
    McmTest {
        name: "corr",
        threads: vec![vec![McmOp::Write(X)], vec![McmOp::Read(X), McmOp::Read(X)]],
        rf: vec![((0, 0), (1, 0))], // first read sees the write,
        co: vec![],                 // second reads the initial value
        permitted_by_tso: false,
    }
}

/// n6 (Owens et al.): a read forwards from the local store buffer while
/// the remote write is already coherence-ordered after the local one.
/// `r1 = 1 (own store), r2 = 0` with `co: Wx(C0) → Wx(C1)`:
/// **permitted** — the signature TSO behavior distinguishing it from SC.
pub fn n6_forwarding() -> McmTest {
    McmTest {
        name: "n6",
        threads: vec![
            vec![McmOp::Write(X), McmOp::Read(X), McmOp::Read(Y)],
            vec![McmOp::Write(Y), McmOp::Write(X)],
        ],
        rf: vec![((0, 0), (0, 1))], // forwarded; r(y) reads 0
        co: vec![vec![(0, 0), (1, 1)]],
        permitted_by_tso: true,
    }
}

/// Write-to-read causality (wrc-style, three cores): C1 observes C0's
/// write and publishes `y`; C2 observes `y` but not `x`. **Forbidden** —
/// TSO stores are multi-copy atomic.
pub fn wrc_weak() -> McmTest {
    McmTest {
        name: "wrc",
        threads: vec![
            vec![McmOp::Write(X)],
            vec![McmOp::Read(X), McmOp::Write(Y)],
            vec![McmOp::Read(Y), McmOp::Read(X)],
        ],
        rf: vec![((0, 0), (1, 0)), ((1, 1), (2, 0))], // C2's r(x) reads 0
        co: vec![],
        permitted_by_tso: false,
    }
}

/// IRIW: two observers disagree on the order of independent writes.
/// **Forbidden** on TSO (multi-copy atomicity again).
pub fn iriw_weak() -> McmTest {
    McmTest {
        name: "iriw",
        threads: vec![
            vec![McmOp::Write(X)],
            vec![McmOp::Write(Y)],
            vec![McmOp::Read(X), McmOp::Read(Y)], // sees x, not y
            vec![McmOp::Read(Y), McmOp::Read(X)], // sees y, not x
        ],
        rf: vec![((0, 0), (2, 0)), ((1, 0), (3, 0))],
        co: vec![],
        permitted_by_tso: false,
    }
}

/// 2+2W: both locations end in the "other" order. **Forbidden** — a
/// `co + po_loc`… actually a `co + ppo` cycle: TSO never reorders stores.
pub fn two_plus_two_w() -> McmTest {
    McmTest {
        name: "2+2w",
        threads: vec![
            vec![McmOp::Write(X), McmOp::Write(Y)],
            vec![McmOp::Write(Y), McmOp::Write(X)],
        ],
        // Each core's first write is coherence-last at its location.
        co: vec![vec![(1, 1), (0, 0)], vec![(0, 1), (1, 0)]],
        rf: vec![],
        permitted_by_tso: false,
    }
}

/// All classic tests with their expected TSO verdicts.
pub fn all_tests() -> Vec<McmTest> {
    vec![
        sb_weak(),
        sb_fenced_weak(),
        sb_sc(),
        mp_weak(),
        lb_safe(),
        corr_weak(),
        n6_forwarding(),
        wrc_weak(),
        iriw_weak(),
        two_plus_two_w(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classic_catalog_is_well_formed() {
        for t in all_tests() {
            assert!(!t.threads.is_empty(), "{}", t.name);
            for ((wt, wi), (rt, ri)) in &t.rf {
                assert!(matches!(t.threads[*wt][*wi], McmOp::Write(_)), "{}", t.name);
                assert!(matches!(t.threads[*rt][*ri], McmOp::Read(_)), "{}", t.name);
            }
        }
    }

    #[test]
    fn rf_pairs_reference_same_va() {
        for t in all_tests() {
            for ((wt, wi), (rt, ri)) in &t.rf {
                let (McmOp::Write(wv), McmOp::Read(rv)) =
                    (t.threads[*wt][*wi], t.threads[*rt][*ri])
                else {
                    panic!("checked above");
                };
                assert_eq!(wv, rv, "{}", t.name);
            }
        }
    }
}
