//! Content addressing: the cache key of a synthesized suite.
//!
//! A suite is a pure function of (MTM, axiom, enumeration options,
//! backend) — the engine is deterministic and byte-identical across
//! worker counts — so those inputs, and nothing else, form the store
//! key. The MTM enters through its *canonical rendering*
//! ([`Mtm`]'s `Display`), not the raw spec file: comments, whitespace,
//! and axiom formatting differences hash identically, while any change
//! to an axiom's structure changes the key. Wall-clock knobs
//! (`timeout`) and the worker count are deliberately excluded — they
//! never change a completed suite's content (timed-out partial suites
//! are never stored at all).

use std::fmt;
use transform_core::axiom::Mtm;
use transform_synth::{Backend, SynthOptions};

/// A 128-bit content fingerprint (FNV-1a 128).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Fingerprint(pub u128);

const FNV128_OFFSET: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
const FNV128_PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013B;

impl Fingerprint {
    /// Fingerprints a byte stream.
    pub fn of_bytes(bytes: &[u8]) -> Fingerprint {
        let mut h = FNV128_OFFSET;
        for &b in bytes {
            h ^= u128::from(b);
            h = h.wrapping_mul(FNV128_PRIME);
        }
        Fingerprint(h)
    }

    /// The 32-character lowercase hex form — the store's file name stem.
    pub fn hex(&self) -> String {
        format!("{:032x}", self.0)
    }

    /// Parses the hex form back.
    pub fn from_hex(s: &str) -> Option<Fingerprint> {
        if s.len() != 32 {
            return None;
        }
        u128::from_str_radix(s, 16).ok().map(Fingerprint)
    }
}

impl fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.hex())
    }
}

/// A short stable tag for a backend, part of the fingerprint stream and
/// the entry metadata.
pub fn backend_tag(backend: Backend) -> &'static str {
    match backend {
        Backend::Explicit => "explicit",
        Backend::Relational => "relational",
    }
}

/// The store key of one per-axiom suite synthesis.
///
/// Fields are length-delimited before hashing so adjacent inputs cannot
/// alias (e.g. axiom `"ab"` + bound `1` vs axiom `"a"` + bound `11`).
pub fn suite_fingerprint(mtm: &Mtm, axiom: &str, opts: &SynthOptions) -> Fingerprint {
    let mut stream = Vec::new();
    let mut field = |bytes: &[u8]| {
        stream.extend_from_slice(&(bytes.len() as u64).to_le_bytes());
        stream.extend_from_slice(bytes);
    };
    field(b"transform-store suite key v1");
    field(mtm.to_string().as_bytes());
    field(axiom.as_bytes());
    let e = &opts.enumeration;
    field(&(e.bound as u64).to_le_bytes());
    match e.max_threads {
        Some(t) => field(&(t as u64).to_le_bytes()),
        None => field(b"unbounded-threads"),
    }
    field(&[
        u8::from(e.allow_fences),
        u8::from(e.allow_rmw),
        u8::from(e.allow_identity_remap),
        u8::from(e.symmetry_reduction),
    ]);
    field(backend_tag(opts.backend).as_bytes());
    Fingerprint::of_bytes(&stream)
}

#[cfg(test)]
mod tests {
    use super::*;
    use transform_core::spec::parse_mtm;

    fn mtm() -> Mtm {
        parse_mtm(
            "mtm m {
               axiom sc_per_loc: acyclic(rf | co | fr | po_loc)
               axiom invlpg:     acyclic(fr_va | ^po | remap)
             }",
        )
        .expect("parses")
    }

    #[test]
    fn hex_round_trips() {
        let fp = Fingerprint::of_bytes(b"hello");
        assert_eq!(Fingerprint::from_hex(&fp.hex()), Some(fp));
        assert_eq!(fp.hex().len(), 32);
        assert!(Fingerprint::from_hex("xyz").is_none());
    }

    #[test]
    fn every_semantic_input_changes_the_key() {
        let m = mtm();
        let base = SynthOptions::new(4);
        let fp = |m: &Mtm, axiom: &str, o: &SynthOptions| suite_fingerprint(m, axiom, o);
        let reference = fp(&m, "invlpg", &base);
        assert_eq!(reference, fp(&m, "invlpg", &base), "stable");

        assert_ne!(reference, fp(&m, "sc_per_loc", &base), "axiom");
        let mut o = base.clone();
        o.enumeration.bound = 5;
        assert_ne!(reference, fp(&m, "invlpg", &o), "bound");
        let mut o = base.clone();
        o.enumeration.allow_fences = !o.enumeration.allow_fences;
        assert_ne!(reference, fp(&m, "invlpg", &o), "fences");
        let mut o = base.clone();
        o.enumeration.allow_rmw = !o.enumeration.allow_rmw;
        assert_ne!(reference, fp(&m, "invlpg", &o), "rmw");
        let mut o = base.clone();
        o.enumeration.max_threads = Some(2);
        assert_ne!(reference, fp(&m, "invlpg", &o), "max_threads");
        let mut o = base.clone();
        o.enumeration.symmetry_reduction = false;
        assert_ne!(reference, fp(&m, "invlpg", &o), "symmetry");
        let mut o = base.clone();
        o.backend = Backend::Relational;
        assert_ne!(reference, fp(&m, "invlpg", &o), "backend");

        let other = parse_mtm("mtm m { axiom invlpg: acyclic(fr_va | remap) }").expect("parses");
        assert_ne!(reference, fp(&other, "invlpg", &base), "mtm");
    }

    #[test]
    fn timeout_does_not_split_the_cache() {
        let m = mtm();
        let mut with_timeout = SynthOptions::new(4);
        with_timeout.timeout = Some(std::time::Duration::from_secs(60));
        assert_eq!(
            suite_fingerprint(&m, "invlpg", &SynthOptions::new(4)),
            suite_fingerprint(&m, "invlpg", &with_timeout)
        );
    }

    #[test]
    fn partition_size_does_not_split_the_cache() {
        // Batch granularity is pure scheduling — suites are byte-identical
        // at every partition size, so entries sealed before the streaming
        // engine existed stay addressable.
        let m = mtm();
        let mut tuned = SynthOptions::new(4);
        tuned.partition_size = Some(17);
        assert_eq!(
            suite_fingerprint(&m, "invlpg", &SynthOptions::new(4)),
            suite_fingerprint(&m, "invlpg", &tuned)
        );
    }

    #[test]
    fn balance_mode_does_not_split_the_cache() {
        // Partition balancing is pure scheduling — suites are
        // byte-identical under every mode, so entries sealed before
        // mass-estimated splitting existed stay addressable.
        let m = mtm();
        let mut depth = SynthOptions::new(4);
        depth.balance = transform_synth::Balance::Depth;
        assert_eq!(
            suite_fingerprint(&m, "invlpg", &SynthOptions::new(4)),
            suite_fingerprint(&m, "invlpg", &depth)
        );
    }

    #[test]
    fn spec_comments_and_whitespace_hash_identically() {
        let tidy = mtm();
        let noisy = parse_mtm(
            "mtm m {
               # coherence
               axiom   sc_per_loc:   acyclic(rf | co | fr | po_loc)

               axiom invlpg: acyclic(fr_va | ^po | remap)   # the paper's axiom
             }",
        )
        .expect("parses");
        let o = SynthOptions::new(4);
        assert_eq!(
            suite_fingerprint(&tidy, "invlpg", &o),
            suite_fingerprint(&noisy, "invlpg", &o)
        );
    }
}
