//! The versioned binary codec for suite records and statistics.
//!
//! Synthesized suites are durable artifacts (the paper's runs took up to
//! a week per bound), so the on-disk encoding is explicit and versioned
//! rather than derived: LEB128 varints for integers, length-prefixed
//! UTF-8 for strings, and structure tags for enums. The encoding of an
//! execution goes through [`ExecParts`], the exact field decomposition
//! of [`Execution`] — decoding rebuilds a structurally equal value, so a
//! decoded witness prints byte-identically under
//! [`transform_litmus::format::print_elt`].
//!
//! Integrity is the store's job ([`crate::store`] frames every record
//! with an FNV-1a checksum); this module only promises that
//! `decode(encode(x)) == x` and that malformed bytes produce a
//! [`CodecError`] instead of a panic.

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;
use std::time::Duration;
use transform_core::event::{Event, EventKind};
use transform_core::exec::{ExecParts, Execution, PairSet};
use transform_core::ids::{EventId, Pa, ThreadId, Va};
use transform_synth::programs::{PaRef, Program, SlotOp};
use transform_synth::{ShardStats, SuiteRecord, SuiteStats, SynthesizedElt};

/// The store's on-disk format version. Bump on any encoding change;
/// readers reject other versions and the cache resynthesizes.
pub const FORMAT_VERSION: u32 = 1;

/// A decoding failure: malformed, truncated, or out-of-range bytes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CodecError {
    /// What went wrong.
    pub message: String,
}

impl CodecError {
    pub(crate) fn new(message: impl Into<String>) -> CodecError {
        CodecError {
            message: message.into(),
        }
    }
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "codec: {}", self.message)
    }
}

impl Error for CodecError {}

/// A running FNV-1a 64 state — the store's one checksum primitive,
/// shared by whole-buffer checksums ([`fnv1a64`]) and the incremental
/// trailer folds in [`crate::store`].
#[derive(Clone, Copy)]
pub struct Fnv64 {
    h: u64,
}

impl Fnv64 {
    /// The FNV-1a 64 offset basis.
    pub fn new() -> Fnv64 {
        Fnv64 {
            h: 0xcbf2_9ce4_8422_2325,
        }
    }

    /// Folds `bytes` into the state.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.h ^= u64::from(b);
            self.h = self.h.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }

    /// The digest so far.
    pub fn finish(self) -> u64 {
        self.h
    }
}

impl Default for Fnv64 {
    fn default() -> Fnv64 {
        Fnv64::new()
    }
}

/// FNV-1a 64 over one byte slice.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = Fnv64::new();
    h.update(bytes);
    h.finish()
}

/// The one LEB128 decoder: pulls bytes from `next_byte` until the
/// continuation bit clears. [`Dec::varint`] and the store's buffered
/// file reader both build on this, so overflow handling cannot
/// diverge between them.
pub fn decode_varint<E>(
    mut next_byte: impl FnMut() -> Result<u8, E>,
    overflow: impl FnOnce() -> E,
) -> Result<u64, E> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    loop {
        let byte = next_byte()?;
        if shift >= 64 || (shift == 63 && byte > 1) {
            return Err(overflow());
        }
        v |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

/// An append-only encode buffer.
#[derive(Default)]
pub struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    /// An empty buffer.
    pub fn new() -> Enc {
        Enc::default()
    }

    /// The encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Appends one raw byte.
    pub fn u8(&mut self, b: u8) {
        self.buf.push(b);
    }

    /// Appends a fixed-width little-endian u32.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a fixed-width little-endian u64.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an LEB128 varint.
    pub fn varint(&mut self, mut v: u64) {
        loop {
            let byte = (v & 0x7f) as u8;
            v >>= 7;
            if v == 0 {
                self.buf.push(byte);
                return;
            }
            self.buf.push(byte | 0x80);
        }
    }

    /// Appends a usize as a varint.
    pub fn size(&mut self, v: usize) {
        self.varint(v as u64);
    }

    /// Appends a boolean as one byte.
    pub fn boolean(&mut self, v: bool) {
        self.buf.push(u8::from(v));
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn string(&mut self, s: &str) {
        self.size(s.len());
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Appends raw bytes without a length prefix (framing magic,
    /// already-encoded payloads).
    pub fn raw(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }
}

/// A cursor over encoded bytes.
pub struct Dec<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Dec<'a> {
    /// A cursor at the start of `bytes`.
    pub fn new(bytes: &'a [u8]) -> Dec<'a> {
        Dec { bytes, at: 0 }
    }

    /// Whether every byte has been consumed.
    pub fn at_end(&self) -> bool {
        self.at == self.bytes.len()
    }

    /// Reads one raw byte.
    pub fn u8(&mut self) -> Result<u8, CodecError> {
        let b = *self
            .bytes
            .get(self.at)
            .ok_or_else(|| CodecError::new("unexpected end of input"))?;
        self.at += 1;
        Ok(b)
    }

    /// Reads a fixed-width little-endian u32.
    pub fn u32(&mut self) -> Result<u32, CodecError> {
        let end = self
            .at
            .checked_add(4)
            .filter(|&e| e <= self.bytes.len())
            .ok_or_else(|| CodecError::new("unexpected end of input"))?;
        let v = u32::from_le_bytes(self.bytes[self.at..end].try_into().expect("4 bytes"));
        self.at = end;
        Ok(v)
    }

    /// Reads a fixed-width little-endian u64.
    pub fn u64(&mut self) -> Result<u64, CodecError> {
        let end = self
            .at
            .checked_add(8)
            .filter(|&e| e <= self.bytes.len())
            .ok_or_else(|| CodecError::new("unexpected end of input"))?;
        let v = u64::from_le_bytes(self.bytes[self.at..end].try_into().expect("8 bytes"));
        self.at = end;
        Ok(v)
    }

    /// Reads an LEB128 varint.
    pub fn varint(&mut self) -> Result<u64, CodecError> {
        decode_varint(|| self.u8(), || CodecError::new("varint overflows u64"))
    }

    /// Reads a varint as a usize.
    pub fn size(&mut self) -> Result<usize, CodecError> {
        usize::try_from(self.varint()?).map_err(|_| CodecError::new("size out of range"))
    }

    /// Reads a varint as a usize, bounded to catch corrupted lengths
    /// before they turn into huge allocations.
    pub fn size_bounded(&mut self, max: usize, what: &str) -> Result<usize, CodecError> {
        let n = self.size()?;
        if n > max {
            return Err(CodecError::new(format!(
                "{what} length {n} exceeds limit {max}"
            )));
        }
        Ok(n)
    }

    /// Reads `n` raw bytes.
    pub fn bytes(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        let end = self
            .at
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or_else(|| CodecError::new("unexpected end of input"))?;
        let slice = &self.bytes[self.at..end];
        self.at = end;
        Ok(slice)
    }

    /// Reads a boolean byte.
    pub fn boolean(&mut self) -> Result<bool, CodecError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(CodecError::new(format!("invalid boolean byte {other}"))),
        }
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn string(&mut self) -> Result<String, CodecError> {
        let len = self.size_bounded(1 << 20, "string")?;
        let end = self
            .at
            .checked_add(len)
            .filter(|&e| e <= self.bytes.len())
            .ok_or_else(|| CodecError::new("unexpected end of input"))?;
        let s = std::str::from_utf8(&self.bytes[self.at..end])
            .map_err(|_| CodecError::new("invalid UTF-8 in string"))?
            .to_string();
        self.at = end;
        Ok(s)
    }
}

/// Sanity cap on collection lengths inside one record; a well-formed
/// bounded-synthesis artifact is far below this.
const MAX_LEN: usize = 1 << 16;

fn encode_slot_op(e: &mut Enc, op: SlotOp) {
    match op {
        SlotOp::Read { va, walk } => {
            e.u8(1);
            e.size(va);
            e.boolean(walk);
        }
        SlotOp::Write { va, walk } => {
            e.u8(2);
            e.size(va);
            e.boolean(walk);
        }
        SlotOp::Fence => e.u8(3),
        SlotOp::PteWrite { va, pa } => {
            e.u8(4);
            e.size(va);
            match pa {
                PaRef::Initial(i) => {
                    e.u8(0);
                    e.size(i);
                }
                PaRef::Fresh(k) => {
                    e.u8(1);
                    e.size(k);
                }
            }
        }
        SlotOp::Invlpg { va } => {
            e.u8(5);
            e.size(va);
        }
        SlotOp::TlbFlush => e.u8(6),
    }
}

fn decode_slot_op(d: &mut Dec<'_>) -> Result<SlotOp, CodecError> {
    Ok(match d.u8()? {
        1 => SlotOp::Read {
            va: d.size()?,
            walk: d.boolean()?,
        },
        2 => SlotOp::Write {
            va: d.size()?,
            walk: d.boolean()?,
        },
        3 => SlotOp::Fence,
        4 => {
            let va = d.size()?;
            let pa = match d.u8()? {
                0 => PaRef::Initial(d.size()?),
                1 => PaRef::Fresh(d.size()?),
                t => return Err(CodecError::new(format!("invalid PaRef tag {t}"))),
            };
            SlotOp::PteWrite { va, pa }
        }
        5 => SlotOp::Invlpg { va: d.size()? },
        6 => SlotOp::TlbFlush,
        t => return Err(CodecError::new(format!("invalid SlotOp tag {t}"))),
    })
}

/// Encodes an ELT program.
pub fn encode_program(e: &mut Enc, p: &Program) {
    e.size(p.threads.len());
    for thread in &p.threads {
        e.size(thread.len());
        for &op in thread {
            encode_slot_op(e, op);
        }
    }
    e.size(p.remap.len());
    for &((wt, ws), (it, is)) in &p.remap {
        e.size(wt);
        e.size(ws);
        e.size(it);
        e.size(is);
    }
    e.size(p.rmw.len());
    for &(t, s) in &p.rmw {
        e.size(t);
        e.size(s);
    }
}

/// Decodes an ELT program.
pub fn decode_program(d: &mut Dec<'_>) -> Result<Program, CodecError> {
    let num_threads = d.size_bounded(MAX_LEN, "threads")?;
    let mut threads = Vec::with_capacity(num_threads);
    for _ in 0..num_threads {
        let len = d.size_bounded(MAX_LEN, "slots")?;
        let mut row = Vec::with_capacity(len);
        for _ in 0..len {
            row.push(decode_slot_op(d)?);
        }
        threads.push(row);
    }
    let remap_len = d.size_bounded(MAX_LEN, "remap")?;
    let mut remap = Vec::with_capacity(remap_len);
    for _ in 0..remap_len {
        remap.push(((d.size()?, d.size()?), (d.size()?, d.size()?)));
    }
    let rmw_len = d.size_bounded(MAX_LEN, "rmw")?;
    let mut rmw = Vec::with_capacity(rmw_len);
    for _ in 0..rmw_len {
        rmw.push((d.size()?, d.size()?));
    }
    Ok(Program {
        threads,
        remap,
        rmw,
    })
}

fn encode_event(e: &mut Enc, ev: &Event) {
    e.size(ev.thread.0);
    match ev.kind {
        EventKind::Read => e.u8(1),
        EventKind::Write => e.u8(2),
        EventKind::Fence => e.u8(3),
        EventKind::PteWrite { new_pa } => {
            e.u8(4);
            e.size(new_pa.0);
        }
        EventKind::Invlpg => e.u8(5),
        EventKind::TlbFlush => e.u8(6),
        EventKind::Ptw => e.u8(7),
        EventKind::DirtyBitWrite => e.u8(8),
    }
    match ev.va {
        Some(va) => {
            e.boolean(true);
            e.size(va.0);
        }
        None => e.boolean(false),
    }
}

fn decode_event(d: &mut Dec<'_>, id: u32) -> Result<Event, CodecError> {
    let thread = ThreadId(d.size()?);
    let kind = match d.u8()? {
        1 => EventKind::Read,
        2 => EventKind::Write,
        3 => EventKind::Fence,
        4 => EventKind::PteWrite {
            new_pa: Pa(d.size()?),
        },
        5 => EventKind::Invlpg,
        6 => EventKind::TlbFlush,
        7 => EventKind::Ptw,
        8 => EventKind::DirtyBitWrite,
        t => return Err(CodecError::new(format!("invalid EventKind tag {t}"))),
    };
    let va = if d.boolean()? {
        Some(Va(d.size()?))
    } else {
        None
    };
    Ok(Event {
        id: EventId(id),
        thread,
        kind,
        va,
    })
}

fn encode_pairs(e: &mut Enc, pairs: &PairSet) {
    e.size(pairs.len());
    for &(a, b) in pairs {
        e.varint(u64::from(a.0));
        e.varint(u64::from(b.0));
    }
}

fn decode_pairs(d: &mut Dec<'_>) -> Result<PairSet, CodecError> {
    let len = d.size_bounded(MAX_LEN, "pair set")?;
    let mut pairs = PairSet::new();
    for _ in 0..len {
        let a = u32::try_from(d.varint()?).map_err(|_| CodecError::new("event id out of range"))?;
        let b = u32::try_from(d.varint()?).map_err(|_| CodecError::new("event id out of range"))?;
        pairs.insert((EventId(a), EventId(b)));
    }
    Ok(pairs)
}

fn encode_id_map(e: &mut Enc, map: &BTreeMap<EventId, EventId>) {
    e.size(map.len());
    for (&k, &v) in map {
        e.varint(u64::from(k.0));
        e.varint(u64::from(v.0));
    }
}

fn decode_id_map(d: &mut Dec<'_>) -> Result<BTreeMap<EventId, EventId>, CodecError> {
    let len = d.size_bounded(MAX_LEN, "id map")?;
    let mut map = BTreeMap::new();
    for _ in 0..len {
        let k = u32::try_from(d.varint()?).map_err(|_| CodecError::new("event id out of range"))?;
        let v = u32::try_from(d.varint()?).map_err(|_| CodecError::new("event id out of range"))?;
        map.insert(EventId(k), EventId(v));
    }
    Ok(map)
}

/// Encodes an execution through its [`ExecParts`] decomposition.
pub fn encode_execution(e: &mut Enc, x: &Execution) {
    let parts = x.to_parts();
    e.size(parts.events.len());
    for (i, ev) in parts.events.iter().enumerate() {
        debug_assert_eq!(ev.id.index(), i, "event ids are dense");
        encode_event(e, ev);
    }
    e.size(parts.num_threads);
    e.size(parts.num_vas);
    e.size(parts.num_pas);
    e.size(parts.po.len());
    for row in &parts.po {
        e.size(row.len());
        for &id in row {
            e.varint(u64::from(id.0));
        }
    }
    encode_id_map(e, &parts.ghost_invoker);
    encode_id_map(e, &parts.rf);
    encode_pairs(e, &parts.co);
    encode_pairs(e, &parts.rmw);
    encode_pairs(e, &parts.remap);
    match &parts.co_pa {
        Some(co_pa) => {
            e.boolean(true);
            encode_pairs(e, co_pa);
        }
        None => e.boolean(false),
    }
}

/// Decodes an execution. The result is structurally identical to the
/// encoded one; well-formedness stays the caller's business
/// ([`Execution::analyze`]).
pub fn decode_execution(d: &mut Dec<'_>) -> Result<Execution, CodecError> {
    let num_events = d.size_bounded(MAX_LEN, "events")?;
    let mut events = Vec::with_capacity(num_events);
    for i in 0..num_events {
        events.push(decode_event(
            d,
            u32::try_from(i).map_err(|_| CodecError::new("event id out of range"))?,
        )?);
    }
    let num_threads = d.size()?;
    let num_vas = d.size()?;
    let num_pas = d.size()?;
    let po_rows = d.size_bounded(MAX_LEN, "po")?;
    let mut po = Vec::with_capacity(po_rows);
    for _ in 0..po_rows {
        let len = d.size_bounded(MAX_LEN, "po row")?;
        let mut row = Vec::with_capacity(len);
        for _ in 0..len {
            row.push(EventId(
                u32::try_from(d.varint()?).map_err(|_| CodecError::new("event id out of range"))?,
            ));
        }
        po.push(row);
    }
    let ghost_invoker = decode_id_map(d)?;
    let rf = decode_id_map(d)?;
    let co = decode_pairs(d)?;
    let rmw = decode_pairs(d)?;
    let remap = decode_pairs(d)?;
    let co_pa = if d.boolean()? {
        Some(decode_pairs(d)?)
    } else {
        None
    };
    Ok(Execution::from_parts(ExecParts {
        events,
        num_threads,
        num_vas,
        num_pas,
        po,
        ghost_invoker,
        rf,
        co,
        rmw,
        remap,
        co_pa,
    }))
}

/// Encodes one suite record (plan index + member).
pub fn encode_record(record: &SuiteRecord) -> Vec<u8> {
    let mut e = Enc::new();
    e.size(record.index);
    encode_program(&mut e, &record.elt.program);
    encode_execution(&mut e, &record.elt.witness);
    e.size(record.elt.violated.len());
    for name in &record.elt.violated {
        e.string(name);
    }
    e.into_bytes()
}

/// Decodes one suite record, requiring every byte to be consumed.
pub fn decode_record(bytes: &[u8]) -> Result<SuiteRecord, CodecError> {
    let mut d = Dec::new(bytes);
    let index = d.size()?;
    let program = decode_program(&mut d)?;
    let witness = decode_execution(&mut d)?;
    let violated_len = d.size_bounded(MAX_LEN, "violated")?;
    let mut violated = Vec::with_capacity(violated_len);
    for _ in 0..violated_len {
        violated.push(d.string()?);
    }
    if !d.at_end() {
        return Err(CodecError::new("trailing bytes after record"));
    }
    Ok(SuiteRecord {
        index,
        elt: SynthesizedElt {
            program,
            witness,
            violated,
        },
    })
}

/// Encodes one shard's work counters.
pub fn encode_shard_stats(e: &mut Enc, s: &ShardStats) {
    e.size(s.shard);
    e.size(s.items);
    e.size(s.executions);
    e.size(s.forbidden);
    e.size(s.minimal);
}

/// Decodes one shard's work counters.
pub fn decode_shard_stats(d: &mut Dec<'_>) -> Result<ShardStats, CodecError> {
    Ok(ShardStats {
        shard: d.size()?,
        items: d.size()?,
        executions: d.size()?,
        forbidden: d.size()?,
        minimal: d.size()?,
    })
}

/// Encodes a suite's full statistics, per-shard breakdown included.
pub fn encode_suite_stats(e: &mut Enc, s: &SuiteStats) {
    e.size(s.programs);
    e.size(s.executions);
    e.size(s.forbidden);
    e.size(s.minimal);
    e.varint(s.elapsed.as_secs());
    e.u32(s.elapsed.subsec_nanos());
    e.boolean(s.timed_out);
    e.size(s.shards.len());
    for shard in &s.shards {
        encode_shard_stats(e, shard);
    }
}

/// Decodes a suite's full statistics.
pub fn decode_suite_stats(d: &mut Dec<'_>) -> Result<SuiteStats, CodecError> {
    let programs = d.size()?;
    let executions = d.size()?;
    let forbidden = d.size()?;
    let minimal = d.size()?;
    let secs = d.varint()?;
    let nanos = d.u32()?;
    if nanos >= 1_000_000_000 {
        return Err(CodecError::new("subsecond nanos out of range"));
    }
    let timed_out = d.boolean()?;
    let num_shards = d.size_bounded(MAX_LEN, "shards")?;
    let mut shards = Vec::with_capacity(num_shards);
    for _ in 0..num_shards {
        shards.push(decode_shard_stats(d)?);
    }
    Ok(SuiteStats {
        programs,
        executions,
        forbidden,
        minimal,
        elapsed: Duration::new(secs, nanos),
        timed_out,
        shards,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use transform_core::figures;

    #[test]
    fn varints_round_trip() {
        let values = [0u64, 1, 127, 128, 300, u64::from(u32::MAX), u64::MAX];
        let mut e = Enc::new();
        for &v in &values {
            e.varint(v);
        }
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes);
        for &v in &values {
            assert_eq!(d.varint().expect("decodes"), v);
        }
        assert!(d.at_end());
    }

    #[test]
    fn overlong_varint_is_rejected() {
        let bytes = [0xff; 11];
        assert!(Dec::new(&bytes).varint().is_err());
    }

    #[test]
    fn figure_executions_round_trip_exactly() {
        for (name, x, _) in figures::all_figures() {
            let mut e = Enc::new();
            encode_execution(&mut e, &x);
            let bytes = e.into_bytes();
            let mut d = Dec::new(&bytes);
            let decoded = decode_execution(&mut d).unwrap_or_else(|err| panic!("{name}: {err}"));
            assert!(d.at_end(), "{name}: trailing bytes");
            assert_eq!(decoded, x, "{name}");
        }
    }

    #[test]
    fn records_round_trip_with_program_and_violations() {
        let x = figures::fig10a_ptwalk2();
        let record = SuiteRecord {
            index: 42,
            elt: SynthesizedElt {
                program: Program::from_execution(&x),
                witness: x,
                violated: vec!["invlpg".into(), "tlb_causality".into()],
            },
        };
        let bytes = encode_record(&record);
        assert_eq!(decode_record(&bytes).expect("decodes"), record);
    }

    #[test]
    fn stats_round_trip() {
        let stats = SuiteStats {
            programs: 1234,
            executions: 98765,
            forbidden: 432,
            minimal: 87,
            elapsed: Duration::new(3, 141_592_653),
            timed_out: false,
            shards: vec![
                ShardStats {
                    shard: 0,
                    items: 10,
                    executions: 100,
                    forbidden: 5,
                    minimal: 2,
                },
                ShardStats {
                    shard: 3,
                    items: 7,
                    executions: 70,
                    forbidden: 3,
                    minimal: 1,
                },
            ],
        };
        let mut e = Enc::new();
        encode_suite_stats(&mut e, &stats);
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes);
        let decoded = decode_suite_stats(&mut d).expect("decodes");
        assert!(d.at_end());
        assert_eq!(decoded.programs, stats.programs);
        assert_eq!(decoded.executions, stats.executions);
        assert_eq!(decoded.elapsed, stats.elapsed);
        assert_eq!(decoded.shards, stats.shards);
    }

    #[test]
    fn truncated_records_error_instead_of_panicking() {
        let x = figures::fig10a_ptwalk2();
        let record = SuiteRecord {
            index: 0,
            elt: SynthesizedElt {
                program: Program::from_execution(&x),
                witness: x,
                violated: vec!["invlpg".into()],
            },
        };
        let bytes = encode_record(&record);
        for cut in 0..bytes.len() {
            assert!(
                decode_record(&bytes[..cut]).is_err(),
                "truncation at {cut} must error"
            );
        }
    }
}
