//! The store's entry index: fingerprint → key metadata, so `query` and
//! `export` can filter entries on (axiom, bound, …) without opening
//! every entry header.
//!
//! The index is strictly advisory. It is rewritten atomically on every
//! seal, validated against the directory listing on read, and a
//! missing, corrupt, or stale index simply falls back to the full
//! header scan — correctness never depends on it, and record-level
//! checksum validation still happens whenever an entry is opened.
//! Concurrent sealers may clobber each other's index rewrite; the loser
//! leaves a stale index, the next read falls back to scanning, and the
//! next seal repairs it (each rewrite folds in every sealed entry it
//! can see, reading headers for fingerprints the previous index missed).

use crate::codec::{fnv1a64, Dec, Enc, FORMAT_VERSION};
use crate::fingerprint::Fingerprint;
use crate::store::{EntryMeta, Store, StoreError};
use std::collections::BTreeMap;
use std::fs;
use std::path::Path;

/// The index file's name inside a store directory.
pub const INDEX_FILE: &str = "index.tfx";

const INDEX_MAGIC: &[u8; 8] = b"TFINDEX\0";

/// One indexed entry: a sealed fingerprint and its key metadata.
#[derive(Clone, Debug)]
pub struct IndexEntry {
    /// The sealed entry's fingerprint (its file name stem).
    pub fingerprint: Fingerprint,
    /// The entry's key metadata, as recorded in its header.
    pub meta: EntryMeta,
}

/// Decodes the index file without any staleness judgement. `None` when
/// the file is missing, unreadable, or fails validation.
fn read_raw(root: &Path) -> Option<Vec<IndexEntry>> {
    let bytes = fs::read(root.join(INDEX_FILE)).ok()?;
    decode(&bytes).ok()
}

/// Reads the index and validates it against the sealed entries actually
/// on disk: it must list exactly `sealed` (both sides sorted). `None`
/// means "fall back to the full scan".
pub(crate) fn read_valid(root: &Path, sealed: &[Fingerprint]) -> Option<Vec<IndexEntry>> {
    let entries = read_raw(root)?;
    let listed: Vec<Fingerprint> = entries.iter().map(|e| e.fingerprint).collect();
    (listed == sealed).then_some(entries)
}

/// Encodes an index to its on-disk (and on-wire — `GET /v1/index`
/// serves exactly these bytes) form: magic, format version, the entries
/// sorted by fingerprint, and a trailing FNV-1a 64 checksum.
pub fn encode(entries: &[IndexEntry]) -> Vec<u8> {
    let mut sorted: Vec<&IndexEntry> = entries.iter().collect();
    sorted.sort_by_key(|e| e.fingerprint);
    let mut e = Enc::new();
    e.raw(INDEX_MAGIC);
    e.u32(FORMAT_VERSION);
    e.size(sorted.len());
    for entry in sorted {
        e.u64((entry.fingerprint.0 >> 64) as u64);
        e.u64(entry.fingerprint.0 as u64);
        entry.meta.encode(&mut e);
    }
    let mut bytes = e.into_bytes();
    let checksum = fnv1a64(&bytes);
    bytes.extend_from_slice(&checksum.to_le_bytes());
    bytes
}

/// Atomically (re)writes the index: entries are sorted by fingerprint,
/// encoded with the store's codec, checksummed, written to a temporary
/// file, and renamed into place.
pub(crate) fn write(root: &Path, entries: &[IndexEntry]) -> Result<(), StoreError> {
    let bytes = encode(entries);
    // pid + nonce so concurrent sealers stage to disjoint files; the
    // last rename wins and later seals fold in anything it missed.
    static NONCE: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let nonce = NONCE.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let staged = root.join(format!("tmp-index-{}-{nonce}", std::process::id()));
    fs::write(&staged, &bytes)?;
    fs::rename(&staged, root.join(INDEX_FILE))?;
    Ok(())
}

/// Decodes index bytes — the [`encode`] form — validating the trailing
/// checksum, magic, and format version.
///
/// # Errors
///
/// [`StoreError::Corrupt`] on damaged bytes, [`StoreError::Version`] on
/// format skew.
pub fn decode(bytes: &[u8]) -> Result<Vec<IndexEntry>, StoreError> {
    if bytes.len() < 8 {
        return Err(StoreError::Corrupt("index truncated".into()));
    }
    let (payload, stored) = bytes.split_at(bytes.len() - 8);
    let stored = u64::from_le_bytes(stored.try_into().expect("eight checksum bytes"));
    if fnv1a64(payload) != stored {
        return Err(StoreError::Corrupt("index checksum mismatch".into()));
    }
    let mut d = Dec::new(payload);
    if d.bytes(8).map_err(StoreError::from)? != INDEX_MAGIC.as_slice() {
        return Err(StoreError::Corrupt("bad index magic".into()));
    }
    let version = d.u32().map_err(StoreError::from)?;
    if version != FORMAT_VERSION {
        return Err(StoreError::Version { found: version });
    }
    let count = d
        .size_bounded(1 << 24, "index entries")
        .map_err(StoreError::from)?;
    let mut entries = Vec::with_capacity(count);
    for _ in 0..count {
        let hi = d.u64().map_err(StoreError::from)?;
        let lo = d.u64().map_err(StoreError::from)?;
        let fingerprint = Fingerprint((u128::from(hi) << 64) | u128::from(lo));
        let meta = EntryMeta::decode(&mut d).map_err(StoreError::from)?;
        entries.push(IndexEntry { fingerprint, meta });
    }
    if !d.at_end() {
        return Err(StoreError::Corrupt("trailing bytes in index".into()));
    }
    Ok(entries)
}

/// Folds a freshly sealed entry into the index, atomically. Best-effort
/// by design: an index failure must never fail a seal, so errors are
/// swallowed — the worst outcome is a stale index and a full scan.
pub(crate) fn update_on_seal(root: &Path, fp: Fingerprint, meta: &EntryMeta) {
    let _ = try_update(root, fp, meta);
}

fn try_update(root: &Path, fp: Fingerprint, meta: &EntryMeta) -> Result<(), StoreError> {
    let store = Store::open(root)?;
    let sealed = store.entries()?;
    let mut known: BTreeMap<Fingerprint, EntryMeta> = read_raw(root)
        .map(|entries| {
            entries
                .into_iter()
                .map(|e| (e.fingerprint, e.meta))
                .collect()
        })
        .unwrap_or_default();
    known.insert(fp, meta.clone());
    let mut entries = Vec::with_capacity(sealed.len());
    for fingerprint in sealed {
        let meta = match known.remove(&fingerprint) {
            Some(meta) => meta,
            // A sealed entry the old index missed (e.g. a concurrent
            // sealer lost the rewrite race): recover its metadata from
            // the header. Unreadable entries are left out, which keeps
            // the index stale-by-construction — scans keep reporting
            // the damage until `store verify`/`gc` deal with it.
            None => match store.open_suite(fingerprint) {
                Ok(reader) => reader.meta().clone(),
                Err(_) => continue,
            },
        };
        entries.push(IndexEntry { fingerprint, meta });
    }
    write(root, &entries)
}
