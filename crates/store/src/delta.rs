//! Delta-encoded store entries and warm-start admission digests — the
//! persistence half of incremental cross-bound synthesis.
//!
//! A bound-N suite embeds almost all of bound N−1: the enumeration is
//! prefix-stable across bounds, so every bound-N−1 record reappears in
//! the bound-N suite with only its plan index rebased. A **delta
//! entry** exploits that: it references the sealed bound-N−1 entry by
//! fingerprint as an immutable parent link and encodes only the records
//! *new* at bound N, plus the index map that rebases the parent's
//! records into the child numbering. Chained decode resolves parents
//! recursively (a parent may itself be a delta) up to
//! [`MAX_PARENT_CHAIN`] links, and **materialization** — splicing the
//! rebased parent payloads between the new ones — reproduces the full
//! sealed entry byte-for-byte in its record region, so a delta-backed
//! read is indistinguishable from a full one.
//!
//! The **admission digest** is the other warm-start artifact: per
//! enumeration node, in admission order, the (programs admitted, plan
//! items created) counts of a sealed run. The next bound's warm start
//! replays this digest over the covered nodes instead of re-enumerating
//! them — it never needs the parent's programs or canonical keys, only
//! these counts (enumeration-order prefix stability makes covered-node
//! keys disjoint from new ones). Digests are written alongside sealed
//! entries (`<fingerprint>.tfd`) and carry their own checksum; a
//! missing or damaged digest only costs a warm start, never
//! correctness.
//!
//! Every validation failure surfaces as a [`StoreError`] — rebuild,
//! never serve: a truncated delta, a flipped byte, a missing or
//! version-skewed parent, and an over-deep chain all refuse to decode.

use crate::codec::{
    decode_suite_stats, encode_suite_stats, fnv1a64, Dec, Enc, Fnv64, FORMAT_VERSION,
};
use crate::fingerprint::Fingerprint;
use crate::store::{EntryMeta, Store, StoreError};
use transform_synth::SuiteStats;

/// Magic prefix of a delta entry (same `.tfs` extension and
/// content-addressed file name as full entries; the magic is the
/// discriminator).
pub(crate) const DELTA_MAGIC: &[u8; 8] = b"TFDELTA\0";
/// Magic prefix of an admission-digest artifact (`.tfd`).
pub(crate) const DIGEST_MAGIC: &[u8; 8] = b"TFDIGST\0";

/// The delta entry format version. Bump on any encoding change;
/// readers reject other versions and the cache resynthesizes.
pub const DELTA_FORMAT_VERSION: u32 = 1;
/// The digest artifact format version.
pub const DIGEST_FORMAT_VERSION: u32 = 1;

/// Hard cap on parent-chain length during materialization: a cycle (or
/// a pathological chain) errors instead of recursing forever.
pub const MAX_PARENT_CHAIN: usize = 32;

/// Whether sealed-entry bytes are a delta entry (as opposed to a full
/// [`crate::store::SuiteReader`]-readable one).
pub fn is_delta(bytes: &[u8]) -> bool {
    bytes.starts_with(DELTA_MAGIC)
}

/// The decoded header of a delta entry: everything except the new
/// records' payloads.
#[derive(Clone, Debug)]
pub struct DeltaHeader {
    /// The child suite's fingerprint (the entry's own address).
    pub fingerprint: Fingerprint,
    /// The sealed parent entry this delta rebases — an immutable link.
    pub parent: Fingerprint,
    /// The child suite's key metadata.
    pub meta: EntryMeta,
    /// The child suite's full statistics.
    pub stats: SuiteStats,
    /// Child plan index of each parent record, in parent-record order
    /// (strictly increasing).
    pub parent_map: Vec<u64>,
    /// Number of new (non-parent) records framed after the header.
    pub new_records: u64,
}

fn corrupt(msg: impl Into<String>) -> StoreError {
    StoreError::Corrupt(msg.into())
}

/// Encodes a delta entry. `new_records` are the still-encoded record
/// payloads new at this bound, keyed by child plan index, strictly
/// increasing and disjoint from `parent_map`.
pub(crate) fn encode_delta(
    fp: Fingerprint,
    parent: Fingerprint,
    meta: &EntryMeta,
    stats: &SuiteStats,
    parent_map: &[u64],
    new_records: &[(u64, Vec<u8>)],
) -> Vec<u8> {
    let mut h = Enc::new();
    h.u64((fp.0 >> 64) as u64);
    h.u64(fp.0 as u64);
    h.u64((parent.0 >> 64) as u64);
    h.u64(parent.0 as u64);
    meta.encode(&mut h);
    encode_suite_stats(&mut h, stats);
    h.size(parent_map.len());
    let mut prev: Option<u64> = None;
    for &index in parent_map {
        match prev {
            None => h.varint(index),
            Some(p) => {
                debug_assert!(index > p, "parent map strictly increasing");
                h.varint(index - p);
            }
        }
        prev = Some(index);
    }
    h.varint(new_records.len() as u64);
    let header = h.into_bytes();

    let mut e = Enc::new();
    e.raw(DELTA_MAGIC);
    e.u32(DELTA_FORMAT_VERSION);
    e.size(header.len());
    e.raw(&header);
    let mut checksum = Fnv64::new();
    checksum.update(DELTA_MAGIC);
    checksum.update(&DELTA_FORMAT_VERSION.to_le_bytes());
    checksum.update(&header);
    e.u64(checksum.finish());
    let mut trailer = Fnv64::new();
    for (_, payload) in new_records {
        e.size(payload.len());
        let record_checksum = fnv1a64(payload);
        e.raw(payload);
        e.u64(record_checksum);
        trailer.update(&record_checksum.to_le_bytes());
    }
    e.u64(trailer.finish());
    e.into_bytes()
}

/// A delta's framed new records, each as (checksum, payload bytes).
pub(crate) type NewRecords = Vec<(u64, Vec<u8>)>;

/// Decodes and fully validates a delta entry: magic, version, header
/// checksum, the fingerprint (against `expect` when given), every new
/// record's frame and checksum, index ordering and disjointness, and
/// the trailer. Returns the header and the framed new records.
///
/// # Errors
///
/// [`StoreError::Version`] on a delta version skew,
/// [`StoreError::Corrupt`] on any other validation failure.
pub(crate) fn decode_delta(
    bytes: &[u8],
    expect: Option<Fingerprint>,
) -> Result<(DeltaHeader, NewRecords), StoreError> {
    let mut d = Dec::new(bytes);
    let magic = d.bytes(8).map_err(StoreError::from)?;
    if magic != DELTA_MAGIC.as_slice() {
        return Err(corrupt("bad delta magic"));
    }
    let version = d.u32().map_err(StoreError::from)?;
    if version != DELTA_FORMAT_VERSION {
        return Err(StoreError::Version { found: version });
    }
    let header_len = d
        .size_bounded(1 << 24, "delta header")
        .map_err(StoreError::from)?;
    let header = d.bytes(header_len).map_err(StoreError::from)?.to_vec();
    let stored = d.u64().map_err(StoreError::from)?;
    let mut checksum = Fnv64::new();
    checksum.update(DELTA_MAGIC);
    checksum.update(&DELTA_FORMAT_VERSION.to_le_bytes());
    checksum.update(&header);
    if checksum.finish() != stored {
        return Err(corrupt("delta header checksum mismatch"));
    }

    let mut hd = Dec::new(&header);
    let hi = hd.u64().map_err(StoreError::from)?;
    let lo = hd.u64().map_err(StoreError::from)?;
    let fingerprint = Fingerprint((u128::from(hi) << 64) | u128::from(lo));
    if expect.is_some_and(|fp| fp != fingerprint) {
        return Err(corrupt("delta fingerprint does not match its address"));
    }
    let hi = hd.u64().map_err(StoreError::from)?;
    let lo = hd.u64().map_err(StoreError::from)?;
    let parent = Fingerprint((u128::from(hi) << 64) | u128::from(lo));
    if parent == fingerprint {
        return Err(corrupt("delta entry is its own parent"));
    }
    let meta = EntryMeta::decode(&mut hd).map_err(StoreError::from)?;
    let stats = decode_suite_stats(&mut hd).map_err(StoreError::from)?;
    let map_len = hd
        .size_bounded(1 << 24, "delta parent map")
        .map_err(StoreError::from)?;
    let mut parent_map = Vec::with_capacity(map_len);
    let mut prev: Option<u64> = None;
    for _ in 0..map_len {
        let v = hd.varint().map_err(StoreError::from)?;
        let index = match prev {
            None => v,
            Some(p) => {
                if v == 0 {
                    return Err(corrupt("delta parent map not strictly increasing"));
                }
                p.checked_add(v)
                    .ok_or_else(|| corrupt("delta parent map index overflow"))?
            }
        };
        parent_map.push(index);
        prev = Some(index);
    }
    let new_count = hd.varint().map_err(StoreError::from)?;
    if !hd.at_end() {
        return Err(corrupt("trailing bytes in delta header"));
    }

    let mut new_records = Vec::with_capacity(new_count.min(1 << 20) as usize);
    let mut trailer = Fnv64::new();
    let mut last_index: Option<u64> = None;
    for _ in 0..new_count {
        let len = d
            .size_bounded(1 << 28, "delta record")
            .map_err(StoreError::from)?;
        let payload = d.bytes(len).map_err(StoreError::from)?.to_vec();
        let stored = d.u64().map_err(StoreError::from)?;
        if fnv1a64(&payload) != stored {
            return Err(corrupt("delta record checksum mismatch"));
        }
        trailer.update(&stored.to_le_bytes());
        let index = payload_index(&payload)?;
        if last_index.is_some_and(|last| index <= last) {
            return Err(corrupt("delta records out of canonical order"));
        }
        last_index = Some(index);
        new_records.push((index, payload));
    }
    let stored = d.u64().map_err(StoreError::from)?;
    if trailer.finish() != stored {
        return Err(corrupt("delta trailer mismatch"));
    }
    if !d.at_end() {
        return Err(corrupt("bytes after delta trailer"));
    }
    // Parent and new indices must be disjoint: a collision would merge
    // two records into one plan slot at materialization.
    let mut mi = 0usize;
    for &(index, _) in &new_records {
        while mi < parent_map.len() && parent_map[mi] < index {
            mi += 1;
        }
        if mi < parent_map.len() && parent_map[mi] == index {
            return Err(corrupt("delta record index collides with parent map"));
        }
    }
    let header = DeltaHeader {
        fingerprint,
        parent,
        meta,
        stats,
        parent_map,
        new_records: new_count,
    };
    Ok((header, new_records))
}

/// Validates delta-entry bytes in isolation — header, every new
/// record's frame and checksum, the trailer — without touching the
/// parent chain, and returns the decoded header. `store verify` uses
/// this to distinguish a damaged delta (quarantine it) from an intact
/// delta whose chain is broken (keep it, report the chain).
///
/// # Errors
///
/// [`StoreError::Version`] on a delta version skew,
/// [`StoreError::Corrupt`] on any other validation failure.
pub fn validate_delta(
    bytes: &[u8],
    expect: Option<Fingerprint>,
) -> Result<DeltaHeader, StoreError> {
    decode_delta(bytes, expect).map(|(h, _)| h)
}

/// The parent link of sealed-entry bytes: `Some` for a delta entry
/// (even a damaged one, when the header still decodes), `None` for a
/// full entry or undecodable bytes. `store gc` uses this to pin parent
/// chains without fully validating every entry.
pub fn entry_parent(bytes: &[u8]) -> Option<Fingerprint> {
    if !is_delta(bytes) {
        return None;
    }
    decode_delta(bytes, None).ok().map(|(h, _)| h.parent)
}

/// The number of LEB128 bytes at the head of `payload` — the record's
/// encoded plan index, which rebasing replaces.
fn head_varint_len(payload: &[u8]) -> Result<usize, StoreError> {
    for (i, b) in payload.iter().enumerate().take(10) {
        if b & 0x80 == 0 {
            return Ok(i + 1);
        }
    }
    Err(corrupt("record payload has no index varint"))
}

/// The plan index a record payload encodes (its leading varint).
fn payload_index(payload: &[u8]) -> Result<u64, StoreError> {
    let mut d = Dec::new(payload);
    d.varint().map_err(StoreError::from)
}

/// Rebases a record payload onto a new plan index by replacing its
/// leading varint — no decode of the program or witness, so the
/// rebased payload is byte-identical to what a full seal of the child
/// suite would have written.
fn rebase_payload(payload: &[u8], new_index: u64) -> Result<Vec<u8>, StoreError> {
    let skip = head_varint_len(payload)?;
    let mut e = Enc::new();
    e.varint(new_index);
    e.raw(&payload[skip..]);
    Ok(e.into_bytes())
}

/// A fully parsed *full* entry: header metadata and the still-encoded
/// record payloads keyed by plan index.
pub(crate) struct FullEntry {
    pub(crate) meta: EntryMeta,
    pub(crate) records: Vec<(u64, Vec<u8>)>,
}

/// Parses full-entry bytes (magic `TFSUITE\0`), validating every layer
/// exactly like [`crate::store::SuiteReader`] but keeping the record
/// payloads encoded — the parent side of a materialization.
pub(crate) fn parse_full_entry(
    bytes: &[u8],
    expect: Option<Fingerprint>,
) -> Result<FullEntry, StoreError> {
    let mut d = Dec::new(bytes);
    let magic = d.bytes(8).map_err(StoreError::from)?;
    if magic != crate::store::SUITE_MAGIC.as_slice() {
        return Err(corrupt("bad suite magic"));
    }
    let version = d.u32().map_err(StoreError::from)?;
    if version != FORMAT_VERSION {
        return Err(StoreError::Version { found: version });
    }
    let header_len = d
        .size_bounded(1 << 24, "suite header")
        .map_err(StoreError::from)?;
    let header = d.bytes(header_len).map_err(StoreError::from)?.to_vec();
    let stored = d.u64().map_err(StoreError::from)?;
    let mut checksum = Fnv64::new();
    checksum.update(magic);
    checksum.update(&version.to_le_bytes());
    checksum.update(&header);
    if checksum.finish() != stored {
        return Err(corrupt("header checksum mismatch"));
    }
    let mut hd = Dec::new(&header);
    let hi = hd.u64().map_err(StoreError::from)?;
    let lo = hd.u64().map_err(StoreError::from)?;
    let fingerprint = Fingerprint((u128::from(hi) << 64) | u128::from(lo));
    if expect.is_some_and(|fp| fp != fingerprint) {
        return Err(corrupt("entry fingerprint does not match its address"));
    }
    let meta = EntryMeta::decode(&mut hd).map_err(StoreError::from)?;
    let _stats = decode_suite_stats(&mut hd).map_err(StoreError::from)?;
    let record_count = hd.varint().map_err(StoreError::from)?;
    if !hd.at_end() {
        return Err(corrupt("trailing bytes in header"));
    }
    let mut records = Vec::with_capacity(record_count.min(1 << 20) as usize);
    let mut trailer = Fnv64::new();
    let mut last_index: Option<u64> = None;
    for _ in 0..record_count {
        let len = d
            .size_bounded(1 << 28, "record payload")
            .map_err(StoreError::from)?;
        let payload = d.bytes(len).map_err(StoreError::from)?.to_vec();
        let stored = d.u64().map_err(StoreError::from)?;
        if fnv1a64(&payload) != stored {
            return Err(corrupt("record checksum mismatch"));
        }
        trailer.update(&stored.to_le_bytes());
        let index = payload_index(&payload)?;
        if last_index.is_some_and(|last| index <= last) {
            return Err(corrupt("records out of canonical order"));
        }
        last_index = Some(index);
        records.push((index, payload));
    }
    let stored = d.u64().map_err(StoreError::from)?;
    if trailer.finish() != stored {
        return Err(corrupt("suite trailer mismatch"));
    }
    if !d.at_end() {
        return Err(corrupt("bytes after suite trailer"));
    }
    Ok(FullEntry { meta, records })
}

/// Assembles full-entry bytes from a header and sorted record payloads
/// — the exact byte layout [`crate::store::PendingSuite::seal`] writes.
fn assemble_full(
    fp: Fingerprint,
    meta: &EntryMeta,
    stats: &SuiteStats,
    records: &[(u64, Vec<u8>)],
) -> Vec<u8> {
    let mut e = Enc::new();
    e.raw(crate::store::SUITE_MAGIC);
    e.u32(FORMAT_VERSION);
    let header = crate::store::header_bytes(fp, meta, stats, records.len() as u64);
    e.size(header.len());
    e.raw(&header);
    let mut checksum = Fnv64::new();
    checksum.update(crate::store::SUITE_MAGIC);
    checksum.update(&FORMAT_VERSION.to_le_bytes());
    checksum.update(&header);
    e.u64(checksum.finish());
    let mut trailer = Fnv64::new();
    for (_, payload) in records {
        e.size(payload.len());
        let record_checksum = fnv1a64(payload);
        e.raw(payload);
        e.u64(record_checksum);
        trailer.update(&record_checksum.to_le_bytes());
    }
    e.u64(trailer.finish());
    e.into_bytes()
}

/// Materializes delta-entry bytes into the full sealed form, resolving
/// the parent chain through `store` (each link validated completely;
/// parents may themselves be deltas, up to [`MAX_PARENT_CHAIN`] deep).
/// The record region of the result is byte-identical to what a full
/// seal of the same suite would have written.
///
/// # Errors
///
/// [`StoreError::Corrupt`] when any link of the chain is damaged,
/// missing (`delta parent … not in store`), inconsistent with the
/// delta's parent map, or the chain exceeds [`MAX_PARENT_CHAIN`];
/// [`StoreError::Version`] on any version skew along the chain.
pub fn materialize(
    store: &Store,
    bytes: &[u8],
    expect: Option<Fingerprint>,
) -> Result<Vec<u8>, StoreError> {
    materialize_depth(store, bytes, expect, MAX_PARENT_CHAIN)
}

fn materialize_depth(
    store: &Store,
    bytes: &[u8],
    expect: Option<Fingerprint>,
    depth: usize,
) -> Result<Vec<u8>, StoreError> {
    let (header, new_records) = decode_delta(bytes, expect)?;
    if depth == 0 {
        return Err(corrupt(format!(
            "delta parent chain exceeds {MAX_PARENT_CHAIN} links"
        )));
    }
    let parent_bytes = store
        .entry_bytes(header.parent)?
        .ok_or_else(|| corrupt(format!("delta parent {} not in store", header.parent)))?;
    let parent_full = if is_delta(&parent_bytes) {
        materialize_depth(store, &parent_bytes, Some(header.parent), depth - 1)?
    } else {
        parent_bytes
    };
    let parent = parse_full_entry(&parent_full, Some(header.parent))?;
    // The parent must be the same synthesis key at a lower bound — a
    // parent link into an unrelated suite would splice foreign records.
    let (c, p) = (&header.meta, &parent.meta);
    let same_key = p.mtm == c.mtm
        && p.axiom == c.axiom
        && p.max_threads == c.max_threads
        && p.allow_fences == c.allow_fences
        && p.allow_rmw == c.allow_rmw
        && p.allow_identity_remap == c.allow_identity_remap
        && p.symmetry_reduction == c.symmetry_reduction
        && p.backend == c.backend;
    if !same_key || p.bound >= c.bound {
        return Err(corrupt(format!(
            "delta parent {} is not a lower-bound entry of the same key",
            header.parent
        )));
    }
    if parent.records.len() != header.parent_map.len() {
        return Err(corrupt(format!(
            "delta parent map covers {} records but parent holds {}",
            header.parent_map.len(),
            parent.records.len()
        )));
    }
    // Merge: rebased parent records and new records, both strictly
    // increasing in child index and mutually disjoint (validated), so a
    // linear two-way merge yields the canonical order.
    let mut merged: Vec<(u64, Vec<u8>)> =
        Vec::with_capacity(parent.records.len() + new_records.len());
    let mut pi = parent.records.iter().zip(&header.parent_map).peekable();
    let mut ni = new_records.into_iter().peekable();
    loop {
        match (pi.peek(), ni.peek()) {
            (Some(&((_, _), &pidx)), Some(&(nidx, _))) => {
                if pidx < nidx {
                    let ((_, payload), _) = pi.next().expect("peeked");
                    merged.push((pidx, rebase_payload(payload, pidx)?));
                } else {
                    merged.push(ni.next().expect("peeked"));
                }
            }
            (Some(_), None) => {
                let ((_, payload), &pidx) = pi.next().expect("peeked");
                merged.push((pidx, rebase_payload(payload, pidx)?));
            }
            (None, Some(_)) => merged.push(ni.next().expect("peeked")),
            (None, None) => break,
        }
    }
    debug_assert!(merged.windows(2).all(|w| w[0].0 < w[1].0));
    Ok(assemble_full(
        header.fingerprint,
        &header.meta,
        &header.stats,
        &merged,
    ))
}

/// A decoded admission digest: the per-node warm-start counts of one
/// sealed run.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Digest {
    /// The instruction bound the run was synthesized at.
    pub bound: usize,
    /// Per enumeration node, in admission order: (programs admitted,
    /// plan items created).
    pub counts: Vec<(u64, u64)>,
}

/// Encodes a digest artifact for the entry `fp`.
pub(crate) fn encode_digest(fp: Fingerprint, digest: &Digest) -> Vec<u8> {
    let mut e = Enc::new();
    e.raw(DIGEST_MAGIC);
    e.u32(DIGEST_FORMAT_VERSION);
    e.u64((fp.0 >> 64) as u64);
    e.u64(fp.0 as u64);
    e.size(digest.bound);
    e.size(digest.counts.len());
    for &(programs, items) in &digest.counts {
        e.varint(programs);
        e.varint(items);
    }
    let mut bytes = e.into_bytes();
    let checksum = fnv1a64(&bytes);
    bytes.extend_from_slice(&checksum.to_le_bytes());
    bytes
}

/// Decodes and validates a digest artifact for the entry `fp`.
///
/// # Errors
///
/// [`StoreError::Version`] on a digest version skew,
/// [`StoreError::Corrupt`] on any other validation failure (bad magic,
/// checksum mismatch, wrong fingerprint, truncation).
pub(crate) fn decode_digest(bytes: &[u8], fp: Fingerprint) -> Result<Digest, StoreError> {
    if bytes.len() < 8 {
        return Err(corrupt("truncated digest"));
    }
    let (body, stored) = bytes.split_at(bytes.len() - 8);
    if fnv1a64(body) != u64::from_le_bytes(stored.try_into().expect("8 bytes")) {
        return Err(corrupt("digest checksum mismatch"));
    }
    let mut d = Dec::new(body);
    let magic = d.bytes(8).map_err(StoreError::from)?;
    if magic != DIGEST_MAGIC.as_slice() {
        return Err(corrupt("bad digest magic"));
    }
    let version = d.u32().map_err(StoreError::from)?;
    if version != DIGEST_FORMAT_VERSION {
        return Err(StoreError::Version { found: version });
    }
    let hi = d.u64().map_err(StoreError::from)?;
    let lo = d.u64().map_err(StoreError::from)?;
    if Fingerprint((u128::from(hi) << 64) | u128::from(lo)) != fp {
        return Err(corrupt("digest belongs to a different entry"));
    }
    let bound = d.size().map_err(StoreError::from)?;
    let len = d
        .size_bounded(1 << 28, "digest nodes")
        .map_err(StoreError::from)?;
    let mut counts = Vec::with_capacity(len.min(1 << 20));
    for _ in 0..len {
        let programs = d.varint().map_err(StoreError::from)?;
        let items = d.varint().map_err(StoreError::from)?;
        counts.push((programs, items));
    }
    if !d.at_end() {
        return Err(corrupt("trailing bytes in digest"));
    }
    Ok(Digest { bound, counts })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn meta(bound: usize) -> EntryMeta {
        EntryMeta {
            mtm: "chain".into(),
            axiom: "ax".into(),
            bound,
            max_threads: None,
            allow_fences: false,
            allow_rmw: false,
            allow_identity_remap: false,
            symmetry_reduction: true,
            backend: "explicit".into(),
        }
    }

    fn stats() -> SuiteStats {
        SuiteStats {
            programs: 0,
            executions: 0,
            forbidden: 0,
            minimal: 0,
            elapsed: Duration::ZERO,
            timed_out: false,
            shards: Vec::new(),
        }
    }

    fn fp(i: usize) -> Fingerprint {
        Fingerprint(0xDE17A0000 + i as u128)
    }

    #[test]
    fn parent_chains_resolve_up_to_the_cap_and_no_further() {
        // Synthetic empty-suite chain: a full root plus one delta link
        // per bound, written straight into a store directory (the
        // sealing API can't produce over-deep chains, so the cap is
        // only reachable with hand-built files).
        let dir = std::env::temp_dir().join(format!("tfs-chain-{}", std::process::id()));
        let store = Store::open(&dir).expect("store opens");
        let root = assemble_full(fp(0), &meta(1), &stats(), &[]);
        std::fs::write(store.entry_path(fp(0)), &root).expect("root written");
        for i in 1..=MAX_PARENT_CHAIN + 1 {
            let bytes = encode_delta(fp(i), fp(i - 1), &meta(1 + i), &stats(), &[], &[]);
            std::fs::write(store.entry_path(fp(i)), &bytes).expect("link written");
        }

        let at_cap = std::fs::read(store.entry_path(fp(MAX_PARENT_CHAIN))).expect("read");
        materialize(&store, &at_cap, Some(fp(MAX_PARENT_CHAIN)))
            .expect("a chain at the cap resolves");

        let beyond = std::fs::read(store.entry_path(fp(MAX_PARENT_CHAIN + 1))).expect("read");
        let err = materialize(&store, &beyond, Some(fp(MAX_PARENT_CHAIN + 1)))
            .expect_err("a chain beyond the cap is refused");
        match err {
            StoreError::Corrupt(m) => assert!(m.contains("chain exceeds"), "got {m}"),
            other => panic!("got {other} instead of Corrupt"),
        }

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn a_self_parenting_delta_is_rejected_outright() {
        // A delta naming itself as parent would recurse forever without
        // the explicit rejection in decode_delta.
        let bytes = encode_delta(fp(7), fp(7), &meta(2), &stats(), &[], &[]);
        let err = decode_delta(&bytes, Some(fp(7))).expect_err("self-parent");
        assert!(matches!(err, StoreError::Corrupt(_)), "got {err}");
    }

    #[test]
    fn digest_round_trips_and_rejects_damage() {
        let digest = Digest {
            bound: 4,
            counts: vec![(3, 1), (0, 0), (250, 128)],
        };
        let bytes = encode_digest(fp(1), &digest);
        let back = decode_digest(&bytes, fp(1)).expect("round trip");
        assert_eq!(back.bound, digest.bound);
        assert_eq!(back.counts, digest.counts);

        // Wrong owner, truncation, and any bit flip are all detected.
        assert!(decode_digest(&bytes, fp(2)).is_err());
        for cut in 0..bytes.len() {
            assert!(decode_digest(&bytes[..cut], fp(1)).is_err(), "cut {cut}");
        }
        for at in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[at] ^= 0x10;
            assert!(decode_digest(&bad, fp(1)).is_err(), "flip {at}");
        }
    }
}
