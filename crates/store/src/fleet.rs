//! The fleet wire format and coordinator-side merge: job specs, shard
//! results, lease grants, on-disk shard staging, and the deterministic
//! ordinal merge that seals a fleet job byte-identically to a
//! single-machine run.
//!
//! # Protocol shape
//!
//! A **job** is one `synthesize` invocation distributed over workers.
//! The client encodes a [`JobSpec`] — the MTM's canonical spec text,
//! the axioms with their store fingerprints, every option that enters
//! the fingerprint, plus the partition plan (`plan_jobs`, the leased
//! `ranges`) — and POSTs it to the coordinator. The job id is the
//! FNV-1a 64 hash of the encoded spec, so re-POSTing the same work is
//! idempotent.
//!
//! Workers lease `(lo, hi)` partition ranges ([`LeaseGrant`] embeds
//! the spec so a worker needs no other state), run the fused pipeline
//! range-restricted, and upload one [`ShardResult`] per range: the
//! per-axiom records and counters for exactly the plan items admitted
//! in `[lo, hi)`, plus that range's slice of the admission digest.
//! Results are content-checksummed and staged idempotently
//! ([`Store::stage_shard`]): a retried or duplicate upload of the same
//! range is a no-op, a conflicting one is rejected.
//!
//! When every range in the spec is staged, [`merge_fleet_job`] replays
//! the shards **in range order** through the ordinary
//! [`PendingSuite`](crate::store::PendingSuite) merge — the same
//! plan-index sort every local run uses — so the sealed suite is
//! byte-identical to a single-machine fused run regardless of worker
//! count, upload order, retries, or lease reassignment.

use crate::codec::{
    decode_record, decode_shard_stats, encode_record, encode_shard_stats, fnv1a64, CodecError,
    Dec, Enc, FORMAT_VERSION,
};
use crate::delta::Digest;
use crate::fingerprint::Fingerprint;
use crate::store::{EntryMeta, Store, StoreError};
use std::fs;
use std::path::PathBuf;
use std::time::Duration;
use transform_par::SuiteSink;
use transform_synth::{
    Backend, Balance, EnumOptions, ShardStats, SuiteRecord, SuiteStats, SynthOptions,
};

const JOB_MAGIC: &[u8; 8] = b"TFJOBSP\0";
const SHARD_RESULT_MAGIC: &[u8; 8] = b"TFSHRES\0";
const LEASE_MAGIC: &[u8; 8] = b"TFLEASE\0";

/// Sanity cap on fleet collection lengths (axioms, ranges, records per
/// shard); a real synthesis job is far below this.
const MAX_FLEET_LEN: usize = 1 << 24;

/// Everything a worker needs to reproduce its slice of a synthesis
/// run, and everything the coordinator needs to seal it.
///
/// The spec carries the *content* key (MTM canonical text, axioms,
/// fingerprint-relevant options) and the *plan* key (`plan_jobs`,
/// which fixes the partition shape fleet-wide, and the leased
/// `ranges`). It deliberately excludes scheduling-only knobs that
/// never change output: local thread counts, timeouts, batch sizing.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct JobSpec {
    /// The MTM's name (`mtm <name> { … }`), for [`EntryMeta`].
    pub mtm_name: String,
    /// The MTM's canonical spec text ([`Display`](std::fmt::Display)
    /// rendering) — workers re-parse it, and it hashes identically
    /// across comment/whitespace variants of the source file.
    pub model: String,
    /// The run axioms in run order, each with its precomputed store
    /// fingerprint (the coordinator never parses the MTM).
    pub axioms: Vec<(String, Fingerprint)>,
    /// The instruction bound.
    pub bound: usize,
    /// The enumeration thread cap, if any.
    pub max_threads: Option<usize>,
    /// Whether `MFENCE` is in the program space.
    pub allow_fences: bool,
    /// Whether RMW pairs are in the program space.
    pub allow_rmw: bool,
    /// Whether identity remaps are in the program space.
    pub allow_identity_remap: bool,
    /// Whether symmetry reduction is applied.
    pub symmetry_reduction: bool,
    /// The candidate-execution backend tag (`explicit`/`relational`).
    pub backend: String,
    /// `true` for mass-balanced partitioning, `false` for depth.
    pub mass_balance: bool,
    /// The worker count the partition plan was built for — fixes the
    /// partition shape fleet-wide; every worker must plan with this,
    /// not its local thread count.
    pub plan_jobs: u32,
    /// Lease time-to-live; a worker heartbeats faster than this or
    /// its range is reclaimed.
    pub lease_ttl_ms: u64,
    /// The leased partition ranges, sorted, contiguous from 0, tiling
    /// the plan's `[0, partition_count)`.
    pub ranges: Vec<(u32, u32)>,
}

impl JobSpec {
    /// Encodes the spec (magic, version, fields, trailing checksum).
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Enc::new();
        e.raw(JOB_MAGIC);
        e.u32(FORMAT_VERSION);
        e.string(&self.mtm_name);
        e.string(&self.model);
        e.size(self.axioms.len());
        for (name, fp) in &self.axioms {
            e.string(name);
            e.u64((fp.0 >> 64) as u64);
            e.u64(fp.0 as u64);
        }
        e.size(self.bound);
        match self.max_threads {
            Some(t) => {
                e.boolean(true);
                e.size(t);
            }
            None => e.boolean(false),
        }
        e.boolean(self.allow_fences);
        e.boolean(self.allow_rmw);
        e.boolean(self.allow_identity_remap);
        e.boolean(self.symmetry_reduction);
        e.string(&self.backend);
        e.boolean(self.mass_balance);
        e.u32(self.plan_jobs);
        e.u64(self.lease_ttl_ms);
        e.size(self.ranges.len());
        for &(lo, hi) in &self.ranges {
            e.u32(lo);
            e.u32(hi);
        }
        seal_frame(e)
    }

    /// Decodes and validates a spec: magic, version, checksum, range
    /// tiling (sorted, non-empty, contiguous from 0).
    pub fn decode(bytes: &[u8]) -> Result<JobSpec, CodecError> {
        let mut d = open_frame(bytes, JOB_MAGIC, "job spec")?;
        let mtm_name = d.string()?;
        let model = d.string()?;
        let num_axioms = d.size_bounded(MAX_FLEET_LEN, "job axioms")?;
        let mut axioms = Vec::with_capacity(num_axioms);
        for _ in 0..num_axioms {
            let name = d.string()?;
            let hi = d.u64()?;
            let lo = d.u64()?;
            axioms.push((name, Fingerprint((u128::from(hi) << 64) | u128::from(lo))));
        }
        let bound = d.size()?;
        let max_threads = if d.boolean()? { Some(d.size()?) } else { None };
        let allow_fences = d.boolean()?;
        let allow_rmw = d.boolean()?;
        let allow_identity_remap = d.boolean()?;
        let symmetry_reduction = d.boolean()?;
        let backend = d.string()?;
        let mass_balance = d.boolean()?;
        let plan_jobs = d.u32()?;
        let lease_ttl_ms = d.u64()?;
        let num_ranges = d.size_bounded(MAX_FLEET_LEN, "job ranges")?;
        let mut ranges = Vec::with_capacity(num_ranges);
        for _ in 0..num_ranges {
            let lo = d.u32()?;
            let hi = d.u32()?;
            ranges.push((lo, hi));
        }
        if !d.at_end() {
            return Err(CodecError::new("trailing bytes after job spec"));
        }
        let spec = JobSpec {
            mtm_name,
            model,
            axioms,
            bound,
            max_threads,
            allow_fences,
            allow_rmw,
            allow_identity_remap,
            symmetry_reduction,
            backend,
            mass_balance,
            plan_jobs,
            lease_ttl_ms,
            ranges,
        };
        spec.validate()?;
        Ok(spec)
    }

    /// The job id: the FNV-1a 64 hash of the encoded spec, so the same
    /// work always lands on the same id and job creation is idempotent.
    pub fn id(&self) -> u64 {
        fnv1a64(&self.encode())
    }

    /// Builds the spec for one `synthesize` run: fingerprints each
    /// axiom exactly as the local cache would, fixes the partition
    /// shape at `plan_jobs`, and tiles the plan into up to `chunks`
    /// mass-balanced contiguous ranges ([`balanced_ranges`]).
    ///
    /// # Panics
    ///
    /// Panics when `axioms` is empty or an axiom is not part of `mtm`
    /// (the resulting spec would never validate).
    pub fn for_run(
        mtm: &transform_core::axiom::Mtm,
        axioms: &[&str],
        opts: &SynthOptions,
        plan_jobs: u32,
        chunks: usize,
        lease_ttl_ms: u64,
    ) -> JobSpec {
        assert!(!axioms.is_empty(), "a fleet job needs at least one axiom");
        for axiom in axioms {
            assert!(
                mtm.axiom(axiom).is_some(),
                "axiom `{axiom}` is not part of {}",
                mtm.name()
            );
        }
        let plan_jobs = plan_jobs.max(1);
        let space = transform_par::space_for(opts, plan_jobs as usize);
        let e = &opts.enumeration;
        JobSpec {
            mtm_name: mtm.name().to_string(),
            model: mtm.to_string(),
            axioms: axioms
                .iter()
                .map(|a| {
                    (
                        a.to_string(),
                        crate::fingerprint::suite_fingerprint(mtm, a, opts),
                    )
                })
                .collect(),
            bound: e.bound,
            max_threads: e.max_threads,
            allow_fences: e.allow_fences,
            allow_rmw: e.allow_rmw,
            allow_identity_remap: e.allow_identity_remap,
            symmetry_reduction: e.symmetry_reduction,
            backend: crate::fingerprint::backend_tag(opts.backend).to_string(),
            mass_balance: opts.balance == Balance::Mass,
            plan_jobs,
            lease_ttl_ms,
            ranges: balanced_ranges(&space.masses(), chunks),
        }
    }

    /// Checks the structural invariants the merge relies on: at least
    /// one axiom, and ranges that tile `[0, max_hi)` contiguously.
    pub fn validate(&self) -> Result<(), CodecError> {
        if self.axioms.is_empty() {
            return Err(CodecError::new("job spec has no axioms"));
        }
        if self.ranges.is_empty() {
            return Err(CodecError::new("job spec has no ranges"));
        }
        if self.ranges[0].0 != 0 {
            return Err(CodecError::new("job ranges must start at partition 0"));
        }
        for (i, &(lo, hi)) in self.ranges.iter().enumerate() {
            if lo >= hi {
                return Err(CodecError::new(format!("empty job range {lo}..{hi}")));
            }
            if i > 0 && self.ranges[i - 1].1 != lo {
                return Err(CodecError::new(format!(
                    "job ranges not contiguous at {lo}..{hi}"
                )));
            }
        }
        if self.plan_jobs == 0 {
            return Err(CodecError::new("job plan_jobs must be nonzero"));
        }
        Ok(())
    }

    /// Reconstructs the [`SynthOptions`] a worker runs with. Errors on
    /// an unknown backend tag (version-skewed coordinator).
    pub fn synth_options(&self) -> Result<SynthOptions, CodecError> {
        let backend = match self.backend.as_str() {
            "explicit" => Backend::Explicit,
            "relational" => Backend::Relational,
            other => {
                return Err(CodecError::new(format!("unknown backend tag `{other}`")));
            }
        };
        let mut enumeration = EnumOptions::new(self.bound);
        enumeration.max_threads = self.max_threads;
        enumeration.allow_fences = self.allow_fences;
        enumeration.allow_rmw = self.allow_rmw;
        enumeration.allow_identity_remap = self.allow_identity_remap;
        enumeration.symmetry_reduction = self.symmetry_reduction;
        Ok(SynthOptions {
            enumeration,
            backend,
            timeout: None,
            partition_size: None,
            balance: if self.mass_balance {
                Balance::Mass
            } else {
                Balance::Depth
            },
        })
    }

    /// The store metadata for run axiom `axiom_index`, identical to
    /// what a local run would have written.
    pub fn entry_meta(&self, axiom_index: usize) -> EntryMeta {
        EntryMeta {
            mtm: self.mtm_name.clone(),
            axiom: self.axioms[axiom_index].0.clone(),
            bound: self.bound,
            max_threads: self.max_threads,
            allow_fences: self.allow_fences,
            allow_rmw: self.allow_rmw,
            allow_identity_remap: self.allow_identity_remap,
            symmetry_reduction: self.symmetry_reduction,
            backend: self.backend.clone(),
        }
    }
}

/// One leased range's complete output: per-axiom records and counters
/// for the plan items admitted in `[lo, hi)`, plus that range's slice
/// of the admission digest.
#[derive(Clone, PartialEq, Debug)]
pub struct ShardResult {
    /// The job this shard belongs to.
    pub job: u64,
    /// First partition of the leased range (inclusive).
    pub lo: u32,
    /// One past the last partition of the leased range.
    pub hi: u32,
    /// Programs admitted to the plan within `[lo, hi)` — summed across
    /// ranges this reconstructs the suite's `programs` total.
    pub programs: usize,
    /// This range's slice of the run's admission digest: per
    /// enumeration node in admission order, (programs admitted, plan
    /// items created). Concatenated across ranges this reconstructs
    /// the full digest a warm start replays.
    pub node_counts: Vec<(u64, u64)>,
    /// One entry per run axiom, in run-axiom order.
    pub per_axiom: Vec<AxiomShard>,
}

/// One axiom's share of a [`ShardResult`]: the worker's summed
/// counters and its admitted records sorted by plan index.
#[derive(Clone, PartialEq, Debug)]
pub struct AxiomShard {
    /// Work counters summed over the range (the `shard` ordinal is
    /// assigned by the coordinator at merge time).
    pub stats: ShardStats,
    /// The records admitted in the range, sorted by plan index.
    pub records: Vec<SuiteRecord>,
}

impl ShardResult {
    /// Encodes the result (magic, version, payload, trailing checksum).
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Enc::new();
        e.raw(SHARD_RESULT_MAGIC);
        e.u32(FORMAT_VERSION);
        e.u64(self.job);
        e.u32(self.lo);
        e.u32(self.hi);
        e.size(self.programs);
        e.size(self.node_counts.len());
        for &(admitted, items) in &self.node_counts {
            e.varint(admitted);
            e.varint(items);
        }
        e.size(self.per_axiom.len());
        for ax in &self.per_axiom {
            encode_shard_stats(&mut e, &ax.stats);
            e.size(ax.records.len());
            for record in &ax.records {
                let payload = encode_record(record);
                e.size(payload.len());
                e.raw(&payload);
            }
        }
        seal_frame(e)
    }

    /// Decodes and checksum-validates a shard result.
    pub fn decode(bytes: &[u8]) -> Result<ShardResult, CodecError> {
        let mut d = open_frame(bytes, SHARD_RESULT_MAGIC, "shard result")?;
        let job = d.u64()?;
        let lo = d.u32()?;
        let hi = d.u32()?;
        if lo >= hi {
            return Err(CodecError::new(format!("empty shard range {lo}..{hi}")));
        }
        let programs = d.size()?;
        let num_nodes = d.size_bounded(MAX_FLEET_LEN, "shard node counts")?;
        let mut node_counts = Vec::with_capacity(num_nodes);
        for _ in 0..num_nodes {
            let admitted = d.varint()?;
            let items = d.varint()?;
            node_counts.push((admitted, items));
        }
        let num_axioms = d.size_bounded(MAX_FLEET_LEN, "shard axioms")?;
        let mut per_axiom = Vec::with_capacity(num_axioms);
        for _ in 0..num_axioms {
            let stats = decode_shard_stats(&mut d)?;
            let num_records = d.size_bounded(MAX_FLEET_LEN, "shard records")?;
            let mut records = Vec::with_capacity(num_records);
            for _ in 0..num_records {
                let len = d.size_bounded(MAX_FLEET_LEN, "shard record")?;
                records.push(decode_record(d.bytes(len)?)?);
            }
            per_axiom.push(AxiomShard { stats, records });
        }
        if !d.at_end() {
            return Err(CodecError::new("trailing bytes after shard result"));
        }
        Ok(ShardResult {
            job,
            lo,
            hi,
            programs,
            node_counts,
            per_axiom,
        })
    }
}

/// A granted lease: which range of which job a worker owns until the
/// expiry. Embeds the full [`JobSpec`] so a freshly started worker
/// needs nothing but the coordinator URL.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct LeaseGrant {
    /// The lease id, echoed in heartbeats.
    pub lease: u64,
    /// The job the range belongs to (always `spec.id()`).
    pub job: u64,
    /// First partition of the leased range (inclusive).
    pub lo: u32,
    /// One past the last partition of the leased range.
    pub hi: u32,
    /// Milliseconds until the lease expires without a heartbeat.
    pub ttl_ms: u64,
    /// The full job spec.
    pub spec: JobSpec,
}

impl LeaseGrant {
    /// Encodes the grant (magic, version, fields, embedded spec,
    /// trailing checksum).
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Enc::new();
        e.raw(LEASE_MAGIC);
        e.u32(FORMAT_VERSION);
        e.u64(self.lease);
        e.u64(self.job);
        e.u32(self.lo);
        e.u32(self.hi);
        e.u64(self.ttl_ms);
        let spec = self.spec.encode();
        e.size(spec.len());
        e.raw(&spec);
        seal_frame(e)
    }

    /// Decodes a grant, validating the checksum and that the embedded
    /// spec hashes to the grant's job id.
    pub fn decode(bytes: &[u8]) -> Result<LeaseGrant, CodecError> {
        let mut d = open_frame(bytes, LEASE_MAGIC, "lease grant")?;
        let lease = d.u64()?;
        let job = d.u64()?;
        let lo = d.u32()?;
        let hi = d.u32()?;
        let ttl_ms = d.u64()?;
        let spec_len = d.size_bounded(MAX_FLEET_LEN, "lease spec")?;
        let spec = JobSpec::decode(d.bytes(spec_len)?)?;
        if !d.at_end() {
            return Err(CodecError::new("trailing bytes after lease grant"));
        }
        if spec.id() != job {
            return Err(CodecError::new("lease grant job id does not match its spec"));
        }
        if !spec.ranges.contains(&(lo, hi)) {
            return Err(CodecError::new(format!(
                "lease grant range {lo}..{hi} is not in the job's plan"
            )));
        }
        Ok(LeaseGrant {
            lease,
            job,
            lo,
            hi,
            ttl_ms,
            spec,
        })
    }
}

/// Appends the frame checksum (FNV-1a 64 of everything so far).
fn seal_frame(e: Enc) -> Vec<u8> {
    let mut bytes = e.into_bytes();
    let checksum = fnv1a64(&bytes);
    bytes.extend_from_slice(&checksum.to_le_bytes());
    bytes
}

/// Validates magic, version, and trailing checksum; returns a cursor
/// over the payload between them.
fn open_frame<'a>(
    bytes: &'a [u8],
    magic: &[u8; 8],
    what: &str,
) -> Result<Dec<'a>, CodecError> {
    if bytes.len() < magic.len() + 4 + 8 {
        return Err(CodecError::new(format!("{what} truncated")));
    }
    let (body, tail) = bytes.split_at(bytes.len() - 8);
    let stored = u64::from_le_bytes(tail.try_into().expect("8 bytes"));
    if fnv1a64(body) != stored {
        return Err(CodecError::new(format!("{what} checksum mismatch")));
    }
    let mut d = Dec::new(body);
    if d.bytes(magic.len())? != magic {
        return Err(CodecError::new(format!("bad {what} magic")));
    }
    let version = d.u32()?;
    if version != FORMAT_VERSION {
        return Err(CodecError::new(format!(
            "{what} format version {version}, expected {FORMAT_VERSION}"
        )));
    }
    Ok(d)
}

/// The outcome of staging one shard upload.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum StageOutcome {
    /// First time this range landed; the bytes are now staged.
    New,
    /// The identical bytes were already staged — a retried or
    /// duplicate upload, harmless.
    Duplicate,
    /// The upload conflicts: it decodes to a different job/range than
    /// it was addressed to, or differs from already-staged bytes for
    /// the same range. Nothing is written.
    Mismatch,
}

impl Store {
    /// The staging directory of fleet job `job`.
    pub fn fleet_dir(&self, job: u64) -> PathBuf {
        self.root().join("fleet").join(format!("{job:016x}"))
    }

    fn fleet_shard_path(&self, job: u64, lo: u32, hi: u32) -> PathBuf {
        self.fleet_dir(job).join(format!("shard-{lo:08}-{hi:08}.bin"))
    }

    /// Stages one uploaded shard result idempotently.
    ///
    /// The bytes are decoded and must address the same `(job, lo, hi)`
    /// as the upload path; valid bytes are written atomically (staged
    /// under a temporary name, then renamed). A byte-identical re-upload
    /// is a [`StageOutcome::Duplicate`]; conflicting bytes for an
    /// already-staged range are rejected without touching the staged
    /// copy.
    pub fn stage_shard(
        &self,
        job: u64,
        lo: u32,
        hi: u32,
        bytes: &[u8],
    ) -> Result<StageOutcome, StoreError> {
        let result = ShardResult::decode(bytes)
            .map_err(|e| StoreError::Corrupt(format!("shard upload: {e}")))?;
        if result.job != job || result.lo != lo || result.hi != hi {
            return Ok(StageOutcome::Mismatch);
        }
        let path = self.fleet_shard_path(job, lo, hi);
        match fs::read(&path) {
            Ok(existing) => {
                return Ok(if existing == bytes {
                    StageOutcome::Duplicate
                } else {
                    StageOutcome::Mismatch
                });
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(e.into()),
        }
        let dir = self.fleet_dir(job);
        fs::create_dir_all(&dir)?;
        static NONCE: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let nonce = NONCE.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let staged = dir.join(format!(
            "incoming-{lo:08}-{hi:08}-{}-{nonce}",
            std::process::id()
        ));
        fs::write(&staged, bytes)?;
        // Concurrent duplicate uploads race the rename; both carry the
        // deterministic pipeline's identical bytes, so last-wins is
        // indistinguishable from first-wins.
        fs::rename(&staged, &path)?;
        Ok(StageOutcome::New)
    }

    /// The ranges staged so far for `job`, sorted by `lo`.
    pub fn staged_shards(&self, job: u64) -> Result<Vec<(u32, u32)>, StoreError> {
        let dir = self.fleet_dir(job);
        let entries = match fs::read_dir(&dir) {
            Ok(entries) => entries,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(e.into()),
        };
        let mut ranges = Vec::new();
        for entry in entries {
            let name = entry?.file_name();
            let name = name.to_string_lossy();
            if let Some(range) = name
                .strip_prefix("shard-")
                .and_then(|r| r.strip_suffix(".bin"))
            {
                if let Some((lo, hi)) = range.split_once('-') {
                    if let (Ok(lo), Ok(hi)) = (lo.parse::<u32>(), hi.parse::<u32>()) {
                        ranges.push((lo, hi));
                    }
                }
            }
        }
        ranges.sort_unstable();
        Ok(ranges)
    }

    /// Reads and validates one staged shard result.
    pub fn read_shard(&self, job: u64, lo: u32, hi: u32) -> Result<ShardResult, StoreError> {
        let bytes = fs::read(self.fleet_shard_path(job, lo, hi))?;
        let result = ShardResult::decode(&bytes)
            .map_err(|e| StoreError::Corrupt(format!("staged shard: {e}")))?;
        if result.job != job || result.lo != lo || result.hi != hi {
            return Err(StoreError::Corrupt(format!(
                "staged shard addresses job {:016x} range {}..{}, expected {job:016x} {lo}..{hi}",
                result.job, result.lo, result.hi
            )));
        }
        Ok(result)
    }

    /// Removes a job's staging directory (after a successful merge, or
    /// when abandoning a cut job). Missing is fine.
    pub fn clear_fleet_job(&self, job: u64) -> Result<(), StoreError> {
        match fs::remove_dir_all(self.fleet_dir(job)) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(e.into()),
        }
    }
}

/// Merges a fully staged fleet job into sealed suites — the
/// coordinator-side ordinal merge.
///
/// For each run axiom, the staged shards are replayed **in range
/// order** through the ordinary [`PendingSuite`](crate::store::PendingSuite)
/// shard merge with the range ordinal as the shard index, then sealed
/// with the exact summed statistics — so the sealed entry is
/// byte-identical (fingerprint, records, counters; all but wall-clock)
/// to a single-machine fused run of the same plan. Each axiom also
/// gets the full admission [`Digest`] (the ranges' `node_counts`
/// concatenated), so the fleet-sealed entry can seed a bound-N+1 warm
/// start exactly like a local one.
///
/// `elapsed` is the job's wall-clock as observed by the coordinator;
/// it lands in the sealed [`SuiteStats`] but never in the fingerprint.
///
/// Errors if any range in the spec is not staged, or if a staged shard
/// fails validation (wrong axiom count, checksum damage).
pub fn merge_fleet_job(
    store: &Store,
    spec: &JobSpec,
    elapsed: Duration,
) -> Result<Vec<Fingerprint>, StoreError> {
    spec.validate()
        .map_err(|e| StoreError::Corrupt(format!("fleet job spec: {e}")))?;
    let job = spec.id();
    let mut results = Vec::with_capacity(spec.ranges.len());
    for &(lo, hi) in &spec.ranges {
        let result = self_read(store, job, lo, hi)?;
        if result.per_axiom.len() != spec.axioms.len() {
            return Err(StoreError::Corrupt(format!(
                "staged shard {lo}..{hi} has {} axioms, job has {}",
                result.per_axiom.len(),
                spec.axioms.len()
            )));
        }
        results.push(result);
    }
    let total_programs: usize = results.iter().map(|r| r.programs).sum();
    let mut counts = Vec::new();
    for result in &results {
        counts.extend_from_slice(&result.node_counts);
    }
    let digest = Digest {
        bound: spec.bound,
        counts,
    };
    let mut sealed = Vec::with_capacity(spec.axioms.len());
    for (ai, &(_, fp)) in spec.axioms.iter().enumerate() {
        let pending = store.begin(fp, spec.entry_meta(ai))?;
        let mut shards = Vec::with_capacity(results.len());
        for (ordinal, result) in results.iter().enumerate() {
            let ax = &result.per_axiom[ai];
            let mut stats = ax.stats;
            stats.shard = ordinal;
            shards.push(stats);
            pending.shard_done(stats, ax.records.clone());
        }
        let mut stats = SuiteStats::from_shards(total_programs, shards);
        stats.elapsed = elapsed;
        sealed.push(pending.seal(&stats)?);
        store.write_digest(fp, &digest)?;
    }
    Ok(sealed)
}

/// Splits `[0, masses.len())` into at most `chunks` contiguous ranges
/// of roughly equal mass — the client-side partition plan a [`JobSpec`]
/// carries. Every range is non-empty and the ranges tile the space, so
/// the spec always validates; fewer ranges come back when there are
/// fewer partitions than requested chunks.
pub fn balanced_ranges(masses: &[u64], chunks: usize) -> Vec<(u32, u32)> {
    let count = masses.len();
    let chunks = chunks.clamp(1, count.max(1));
    if count == 0 {
        return Vec::new();
    }
    let total: u64 = masses.iter().sum();
    let mut ranges = Vec::with_capacity(chunks);
    let mut lo = 0usize;
    let mut spent = 0u64;
    for chunk in 0..chunks {
        // Aim each boundary at the next 1/chunks-th of the total mass,
        // but always take at least one partition and leave at least one
        // per remaining chunk.
        let goal = total / chunks as u64 * (chunk as u64 + 1);
        let mut hi = lo + 1;
        spent += masses[lo];
        let reserve = chunks - chunk - 1;
        while hi < count - reserve && spent + masses[hi] / 2 < goal {
            spent += masses[hi];
            hi += 1;
        }
        if chunk + 1 == chunks {
            hi = count;
        }
        ranges.push((lo as u32, hi as u32));
        lo = hi;
    }
    ranges
}

/// A [`SuiteSink`] that only collects records — the worker's buffer
/// between the fused range run and the encoded [`ShardResult`].
#[derive(Default)]
struct CollectShard {
    records: std::sync::Mutex<Vec<SuiteRecord>>,
}

impl SuiteSink for CollectShard {
    fn shard_done(&self, _stats: ShardStats, records: Vec<SuiteRecord>) {
        self.records
            .lock()
            .expect("record lock is never poisoned")
            .extend(records);
    }
}

/// Runs a granted lease's range on `jobs` local threads and packages
/// the upload — the whole compute step of a fleet worker.
///
/// The spec's `plan_jobs` (not `jobs`) fixes the partition shape, so
/// every worker reproduces the same global plan regardless of local
/// thread count; records are sorted by plan index and the range's
/// slice of the admission digest is cut out of the run's artifacts.
///
/// # Errors
///
/// [`StoreError::Corrupt`] when the embedded spec does not reproduce a
/// plan matching its own ranges (a coordinator/worker version skew —
/// the coordinator validates specs at submission).
pub fn execute_lease(grant: &LeaseGrant, jobs: usize) -> Result<ShardResult, StoreError> {
    let spec = &grant.spec;
    let mtm = transform_core::spec::parse_mtm(&spec.model)
        .map_err(|e| StoreError::Corrupt(format!("leased model does not parse: {e}")))?;
    let opts = spec
        .synth_options()
        .map_err(|e| StoreError::Corrupt(format!("leased job spec: {e}")))?;
    let axioms: Vec<&str> = spec.axioms.iter().map(|(name, _)| name.as_str()).collect();
    for axiom in &axioms {
        if mtm.axiom(axiom).is_none() {
            return Err(StoreError::Corrupt(format!(
                "leased axiom `{axiom}` is not part of {}",
                mtm.name()
            )));
        }
    }
    let space = transform_par::space_for(&opts, spec.plan_jobs as usize);
    let (lo, hi) = (grant.lo as usize, grant.hi as usize);
    if hi > space.partition_count() || lo >= hi {
        return Err(StoreError::Corrupt(format!(
            "leased range {lo}..{hi} is outside the {}-partition plan",
            space.partition_count()
        )));
    }
    let sinks: Vec<CollectShard> = axioms.iter().map(|_| CollectShard::default()).collect();
    let sink_refs: Vec<&dyn SuiteSink> = sinks.iter().map(|s| s as &dyn SuiteSink).collect();
    let (stats, _, artifacts) = transform_par::synthesize_axioms_fused_range(
        &mtm,
        &axioms,
        &opts,
        spec.plan_jobs as usize,
        jobs.max(1),
        (lo, hi),
        &sink_refs,
    );
    // The artifacts' digest covers every enumeration node in `[0, hi)`
    // (the prefix is enumerated for global dedup); this range owns the
    // slice past the `[0, lo)` nodes.
    let masses = space.masses();
    let skip: u64 = masses[..lo].iter().sum();
    let node_counts: Vec<(u64, u64)> = artifacts
        .node_counts
        .get(skip as usize..)
        .unwrap_or(&[])
        .to_vec();
    let programs: usize = node_counts.iter().map(|&(admitted, _)| admitted as usize).sum();
    let per_axiom = stats
        .iter()
        .zip(sinks)
        .map(|(stat, sink)| {
            let mut records = sink
                .records
                .into_inner()
                .expect("record lock is never poisoned");
            records.sort_by_key(|r| r.index);
            AxiomShard {
                stats: ShardStats {
                    shard: 0, // the merge assigns the range ordinal
                    items: stat.shards.iter().map(|s| s.items).sum(),
                    executions: stat.executions,
                    forbidden: stat.forbidden,
                    minimal: stat.minimal,
                },
                records,
            }
        })
        .collect();
    Ok(ShardResult {
        job: grant.job,
        lo: grant.lo,
        hi: grant.hi,
        programs,
        node_counts,
        per_axiom,
    })
}

fn self_read(store: &Store, job: u64, lo: u32, hi: u32) -> Result<ShardResult, StoreError> {
    store.read_shard(job, lo, hi).map_err(|e| match e {
        StoreError::Io(io) if io.kind() == std::io::ErrorKind::NotFound => StoreError::Corrupt(
            format!("fleet job {job:016x} range {lo}..{hi} is not staged"),
        ),
        other => other,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> JobSpec {
        JobSpec {
            mtm_name: "demo".to_string(),
            model: "mtm demo {\n  axiom sc_per_loc: acyclic(rf | co | fr | po_loc)\n}".to_string(),
            axioms: vec![("sc_per_loc".to_string(), Fingerprint(0x1234_5678_9abc))],
            bound: 4,
            max_threads: None,
            allow_fences: false,
            allow_rmw: false,
            allow_identity_remap: false,
            symmetry_reduction: true,
            backend: "explicit".to_string(),
            mass_balance: true,
            plan_jobs: 2,
            lease_ttl_ms: 10_000,
            ranges: vec![(0, 3), (3, 8)],
        }
    }

    #[test]
    fn job_spec_round_trips_and_ids_are_content_addressed() {
        let a = spec();
        let decoded = JobSpec::decode(&a.encode()).expect("decodes");
        assert_eq!(decoded, a);
        assert_eq!(decoded.id(), a.id());

        let mut b = spec();
        b.bound = 5;
        assert_ne!(a.id(), b.id());
    }

    #[test]
    fn job_spec_rejects_damage_and_bad_ranges() {
        let mut bytes = spec().encode();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        assert!(JobSpec::decode(&bytes).is_err());

        let mut gap = spec();
        gap.ranges = vec![(0, 3), (4, 8)];
        assert!(JobSpec::decode(&gap.encode()).is_err());
        let mut offset = spec();
        offset.ranges = vec![(1, 8)];
        assert!(JobSpec::decode(&offset.encode()).is_err());
        let mut empty = spec();
        empty.ranges = vec![(0, 0)];
        assert!(JobSpec::decode(&empty.encode()).is_err());
    }

    #[test]
    fn synth_options_round_trip_the_spec_fields() {
        let opts = spec().synth_options().expect("known backend");
        assert_eq!(opts.enumeration.bound, 4);
        assert!(!opts.enumeration.allow_fences);
        assert!(opts.enumeration.symmetry_reduction);
        assert_eq!(opts.backend, Backend::Explicit);
        assert_eq!(opts.balance, Balance::Mass);

        let mut skewed = spec();
        skewed.backend = "quantum".to_string();
        assert!(skewed.synth_options().is_err());
    }

    #[test]
    fn lease_grant_round_trips_and_checks_its_spec() {
        let spec = spec();
        let grant = LeaseGrant {
            lease: 77,
            job: spec.id(),
            lo: 3,
            hi: 8,
            ttl_ms: spec.lease_ttl_ms,
            spec,
        };
        let decoded = LeaseGrant::decode(&grant.encode()).expect("decodes");
        assert_eq!(decoded, grant);

        let mut lying = grant.clone();
        lying.job ^= 1;
        assert!(LeaseGrant::decode(&lying.encode()).is_err());
        let mut off_plan = grant;
        off_plan.lo = 1;
        assert!(LeaseGrant::decode(&off_plan.encode()).is_err());
    }

    fn shard(job: u64, lo: u32, hi: u32) -> ShardResult {
        ShardResult {
            job,
            lo,
            hi,
            programs: 5,
            node_counts: vec![(2, 1), (3, 4)],
            per_axiom: vec![AxiomShard {
                stats: ShardStats {
                    shard: usize::try_from(lo).expect("fits"),
                    items: 5,
                    executions: 40,
                    forbidden: 7,
                    minimal: 3,
                },
                records: Vec::new(),
            }],
        }
    }

    #[test]
    fn shard_result_round_trips_and_rejects_damage() {
        let result = shard(42, 0, 3);
        let bytes = result.encode();
        assert_eq!(ShardResult::decode(&bytes).expect("decodes"), result);

        let mut flipped = bytes.clone();
        flipped[10] ^= 0x01;
        assert!(ShardResult::decode(&flipped).is_err());
        let truncated = &bytes[..bytes.len() - 1];
        assert!(ShardResult::decode(truncated).is_err());
    }

    #[test]
    fn staging_is_idempotent_and_conflict_safe() {
        let tag = "stage";
        let dir = std::env::temp_dir().join(format!(
            "tfs-fleet-{tag}-{}-{:p}",
            std::process::id(),
            &tag
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let store = Store::open(&dir).expect("store opens");
        let job = 42;
        let bytes = shard(job, 0, 3).encode();

        assert_eq!(
            store.stage_shard(job, 0, 3, &bytes).expect("stages"),
            StageOutcome::New
        );
        assert_eq!(
            store.stage_shard(job, 0, 3, &bytes).expect("stages"),
            StageOutcome::Duplicate
        );
        // Same range, different content: rejected, staged copy intact.
        let mut other = shard(job, 0, 3);
        other.programs = 6;
        assert_eq!(
            store
                .stage_shard(job, 0, 3, &other.encode())
                .expect("stages"),
            StageOutcome::Mismatch
        );
        // Addressed to a range it does not carry: rejected.
        assert_eq!(
            store.stage_shard(job, 3, 8, &bytes).expect("stages"),
            StageOutcome::Mismatch
        );
        // Garbage bytes: a hard error, not a silent stage.
        assert!(store.stage_shard(job, 0, 3, b"junk").is_err());

        assert_eq!(store.staged_shards(job).expect("lists"), vec![(0, 3)]);
        assert_eq!(store.read_shard(job, 0, 3).expect("reads"), shard(job, 0, 3));

        store.clear_fleet_job(job).expect("clears");
        assert!(store.staged_shards(job).expect("lists").is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }
}
