//! Cache tiering: a local store directory backed by an optional shared
//! remote tier, with read-through population and push-on-seal.
//!
//! The lookup order for one synthesis key:
//!
//! 1. **Local tier** — a sealed entry in the local [`Store`] is served
//!    directly (and validated record-by-record, as always).
//! 2. **Remote tier** — on a local miss, the remote tier is asked for
//!    the sealed bytes. A remote hit is *installed into the local tier
//!    first* ([`Store::install_bytes`] fully validates every byte before
//!    publishing), then served from there — so the next lookup is a
//!    local hit, and corrupt remote bytes can never be served.
//! 3. **Synthesis** — on a miss everywhere, the suite is synthesized,
//!    sealed locally, and the sealed bytes are *pushed* to the remote
//!    tier (best-effort), turning this run's work into a fleet-wide
//!    asset. The push is gated on [`transform_par::SuiteSink::run_done`]
//!    reporting a completed (un-timed-out) run — partial suites are
//!    never sealed, hence never pushed.
//!
//! Remote failures are soft on this read path: an unreachable or
//! misbehaving remote degrades the tiered cache to the local-only one.
//! Only genuine local i/o failures surface as errors.

use crate::cache::CacheStatus;
use crate::fingerprint::{suite_fingerprint, Fingerprint};
use crate::store::{read_suite, EntryMeta, PendingSuite, Store, StoreError};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use transform_core::axiom::Mtm;
use transform_par::{
    synthesize_axioms_streamed, synthesize_axioms_streamed_observed, synthesize_suite_streamed,
    synthesize_suite_streamed_observed, JournalEventKind, ProgressState, SuiteSink,
};
use transform_synth::{ShardStats, Suite, SuiteRecord, SuiteStats, SynthOptions};

/// One tier of a layered suite cache: somewhere sealed-suite bytes can
/// be fetched from and published to, keyed by [`Fingerprint`].
///
/// Implementations: [`Store`] (a local directory) and
/// [`crate::HttpTier`] (a `transform serve` endpoint). Entries are
/// content-addressed and immutable, so tiers never need invalidation —
/// a fingerprint either resolves to the canonical bytes or to nothing.
pub trait CacheTier: Sync {
    /// A human-readable name for error messages and logs.
    fn describe(&self) -> String;

    /// The sealed bytes for `fp`, or `None` when this tier does not
    /// hold the entry. Callers must treat the bytes as untrusted until
    /// validated (e.g. by [`Store::install_bytes`]).
    ///
    /// # Errors
    ///
    /// Tier-specific trouble: i/o for directory tiers,
    /// [`StoreError::Remote`] for HTTP tiers.
    fn fetch(&self, fp: Fingerprint) -> Result<Option<Vec<u8>>, StoreError>;

    /// Publishes sealed bytes for `fp` into this tier. Idempotent: the
    /// entry is immutable, so publishing an already-present fingerprint
    /// is a no-op-equivalent success.
    ///
    /// # Errors
    ///
    /// Tier-specific trouble, or validation failure for tiers that
    /// verify on ingest.
    fn publish(&self, fp: Fingerprint, bytes: &[u8]) -> Result<(), StoreError>;
}

impl CacheTier for Store {
    fn describe(&self) -> String {
        format!("local store {}", self.root().display())
    }

    fn fetch(&self, fp: Fingerprint) -> Result<Option<Vec<u8>>, StoreError> {
        self.entry_bytes(fp)
    }

    fn publish(&self, fp: Fingerprint, bytes: &[u8]) -> Result<(), StoreError> {
        self.install_bytes(fp, bytes)
    }
}

impl CacheTier for crate::remote::HttpTier {
    fn describe(&self) -> String {
        format!("remote cache {}", self.url())
    }

    fn fetch(&self, fp: Fingerprint) -> Result<Option<Vec<u8>>, StoreError> {
        crate::remote::HttpTier::fetch(self, fp)
    }

    fn publish(&self, fp: Fingerprint, bytes: &[u8]) -> Result<(), StoreError> {
        crate::remote::HttpTier::publish(self, fp, bytes)
    }
}

/// A local suite store optionally backed by a shared remote tier.
///
/// # Examples
///
/// ```
/// use transform_core::spec::parse_mtm;
/// use transform_store::{Store, TieredCache};
/// use transform_synth::SynthOptions;
///
/// let mtm = parse_mtm(
///     "mtm demo {
///        axiom sc_per_loc: acyclic(rf | co | fr | po_loc)
///      }",
/// ).expect("spec parses");
/// let mut opts = SynthOptions::new(4);
/// opts.enumeration.allow_fences = false;
/// opts.enumeration.allow_rmw = false;
/// let dir = std::env::temp_dir().join(format!("tfs-tier-doc-{}", std::process::id()));
/// // No remote configured: the tiered cache degrades to the local store.
/// let cache = TieredCache::new(Store::open(&dir).expect("store opens"));
///
/// let (cold, cold_status) =
///     cache.cached_or_synthesize(&mtm, "sc_per_loc", &opts, 2).expect("synthesizes");
/// let (warm, warm_status) =
///     cache.cached_or_synthesize(&mtm, "sc_per_loc", &opts, 2).expect("reads");
/// assert!(!cold_status.is_hit());
/// assert!(warm_status.is_hit());
/// assert_eq!(cold.elts.len(), warm.elts.len());
/// # std::fs::remove_dir_all(&dir).ok();
/// ```
pub struct TieredCache {
    local: Store,
    remote: Option<Box<dyn CacheTier>>,
}

impl TieredCache {
    /// A local-only tiered cache (no remote fallthrough).
    pub fn new(local: Store) -> TieredCache {
        TieredCache {
            local,
            remote: None,
        }
    }

    /// Adds a remote tier behind the local one.
    #[must_use]
    pub fn with_remote(mut self, remote: Box<dyn CacheTier>) -> TieredCache {
        self.remote = Some(remote);
        self
    }

    /// The local tier.
    pub fn local(&self) -> &Store {
        &self.local
    }

    /// The remote tier, when one is configured.
    pub fn remote(&self) -> Option<&dyn CacheTier> {
        self.remote.as_deref()
    }

    /// Serves the per-axiom suite through the tiers: local, then remote
    /// (read-through: a remote hit is validated into the local tier and
    /// served from there), then synthesis (sealed locally and pushed to
    /// the remote, best-effort). See [`crate::cached_or_synthesize`] for
    /// the local-only contract this extends.
    ///
    /// # Errors
    ///
    /// Only genuine local i/o failures; remote trouble and validation
    /// failures degrade to the next tier.
    ///
    /// # Panics
    ///
    /// Panics when `axiom` is not part of `mtm` (as every synthesis
    /// entry point does).
    pub fn cached_or_synthesize(
        &self,
        mtm: &Mtm,
        axiom: &str,
        opts: &SynthOptions,
        jobs: usize,
    ) -> Result<(Suite, CacheStatus), StoreError> {
        run_tiered(
            &self.local,
            self.remote.as_deref(),
            mtm,
            axiom,
            opts,
            jobs,
            None,
        )
    }

    /// [`TieredCache::cached_or_synthesize`] with live telemetry: a
    /// tier hit marks the axiom's progress slot cached
    /// ([`ProgressState::mark_cached`] — so observers render it
    /// distinctly from live synthesis), and a miss publishes the fused
    /// run's counters into `progress` as it executes.
    ///
    /// # Errors
    ///
    /// Only genuine local i/o failures, exactly like
    /// [`TieredCache::cached_or_synthesize`].
    pub fn cached_or_synthesize_observed(
        &self,
        mtm: &Mtm,
        axiom: &str,
        opts: &SynthOptions,
        jobs: usize,
        progress: &Arc<ProgressState>,
    ) -> Result<(Suite, CacheStatus), StoreError> {
        run_tiered(
            &self.local,
            self.remote.as_deref(),
            mtm,
            axiom,
            opts,
            jobs,
            Some(progress),
        )
    }

    /// Serves **every** per-axiom suite of `mtm` through the tiers in
    /// one pass: each axiom is looked up locally, then remotely
    /// (read-through), and all the misses are synthesized together in
    /// one fused streamed run — the program space is enumerated once
    /// and each missing axiom's suite is sealed (and pushed to the
    /// remote, best-effort) *as that axiom finishes*, not when the
    /// whole run drains.
    ///
    /// # Errors
    ///
    /// Only genuine local i/o failures; remote trouble and validation
    /// failures degrade to the next tier.
    pub fn cached_or_synthesize_all(
        &self,
        mtm: &Mtm,
        opts: &SynthOptions,
        jobs: usize,
    ) -> Result<BTreeMap<String, (Suite, CacheStatus)>, StoreError> {
        run_tiered_all(&self.local, self.remote.as_deref(), mtm, opts, jobs, None)
    }

    /// [`TieredCache::cached_or_synthesize_all`] with live telemetry:
    /// every tier-served axiom is marked cached in `progress` the
    /// moment its lookup resolves, and the misses' fused run publishes
    /// its counters as it executes — an observer watches cached axioms
    /// settle instantly while live ones stream partitions, mass, and
    /// ETA.
    ///
    /// # Errors
    ///
    /// Only genuine local i/o failures, exactly like
    /// [`TieredCache::cached_or_synthesize_all`].
    pub fn cached_or_synthesize_all_observed(
        &self,
        mtm: &Mtm,
        opts: &SynthOptions,
        jobs: usize,
        progress: &Arc<ProgressState>,
    ) -> Result<BTreeMap<String, (Suite, CacheStatus)>, StoreError> {
        run_tiered_all(
            &self.local,
            self.remote.as_deref(),
            mtm,
            opts,
            jobs,
            Some(progress),
        )
    }
}

/// The tiered lookup shared by [`TieredCache::cached_or_synthesize`] and
/// the local-only [`crate::cached_or_synthesize`] (which passes no
/// remote).
pub(crate) fn run_tiered(
    local: &Store,
    remote: Option<&dyn CacheTier>,
    mtm: &Mtm,
    axiom: &str,
    opts: &SynthOptions,
    jobs: usize,
    progress: Option<&Arc<ProgressState>>,
) -> Result<(Suite, CacheStatus), StoreError> {
    assert!(
        mtm.axiom(axiom).is_some(),
        "axiom `{axiom}` is not part of {}",
        mtm.name()
    );
    let fp = suite_fingerprint(mtm, axiom, opts);
    let status = match lookup_tiers(local, remote, fp, axiom)? {
        Lookup::Served(suite, status) => {
            if let Some(progress) = progress {
                progress.mark_cached(axiom, suite.elts.len());
            }
            return Ok((suite, status));
        }
        Lookup::Absent(status) => status,
    };

    // Tier 3: synthesize, seal locally, push the sealed bytes.
    let pending = local.begin(fp, EntryMeta::describe(mtm, axiom, opts))?;
    // The gate's scope ends before `pending` is sealed or dismantled —
    // it only lives for the streaming run it observes.
    let (stats, completed) = {
        let gate = PushGate::new(&pending);
        let stats = match progress {
            Some(progress) => {
                synthesize_suite_streamed_observed(mtm, axiom, opts, jobs, &gate, progress).0
            }
            None => synthesize_suite_streamed(mtm, axiom, opts, jobs, &gate),
        };
        let completed = gate.completed();
        (stats, completed)
    };
    if stats.timed_out {
        let suite = pending.into_suite(&stats)?;
        return Ok((
            suite,
            CacheStatus::Uncached {
                reason: "synthesis timed out; partial suites are never cached".into(),
            },
        ));
    }
    pending.seal(&stats)?;
    record_seal(progress, axiom, local, fp);
    if let Some(remote) = remote {
        if completed {
            // Best-effort: a failed push costs the fleet a warm entry,
            // never this run its result.
            if let Ok(Some(bytes)) = local.entry_bytes(fp) {
                if remote.publish(fp, &bytes).is_ok() {
                    record_push(progress, axiom);
                }
            }
        }
    }
    let suite = read_entry(local, fp, axiom)?;
    Ok((suite, status))
}

/// One axiom's outcome from the local and remote tiers.
enum Lookup {
    /// A tier held the (validated) entry.
    Served(Suite, CacheStatus),
    /// Nothing servable anywhere: synthesis is needed. The carried
    /// status is [`CacheStatus::Miss`], or [`CacheStatus::Rebuilt`]
    /// when a damaged local entry was deleted on the way.
    Absent(CacheStatus),
}

/// Tiers 1 and 2 of the lookup, shared by the single-axiom and the
/// fused all-axiom paths: serve a sealed local entry; on a local miss
/// fetch from the remote, validate *into* the local tier, and serve
/// from there. Every remote failure mode is soft — unreachable remote,
/// damaged payload, local validation refusing the bytes — and degrades
/// to synthesis; only genuine local disk trouble is hard.
fn lookup_tiers(
    local: &Store,
    remote: Option<&dyn CacheTier>,
    fp: Fingerprint,
    axiom: &str,
) -> Result<Lookup, StoreError> {
    let mut status = CacheStatus::Miss;

    // Tier 1: the local store.
    if local.contains(fp) {
        match read_entry(local, fp, axiom) {
            Ok(suite) => return Ok(Lookup::Served(suite, CacheStatus::Hit)),
            Err(StoreError::Io(e)) => return Err(StoreError::Io(e)),
            Err(invalid) => {
                local.remove(fp)?;
                status = CacheStatus::Rebuilt {
                    reason: invalid.to_string(),
                };
            }
        }
    }

    // Tier 2: the remote, read-through.
    if let Some(remote) = remote {
        if let Ok(Some(bytes)) = remote.fetch(fp) {
            match local.install_bytes(fp, &bytes) {
                Ok(()) => match read_entry(local, fp, axiom) {
                    Ok(suite) => return Ok(Lookup::Served(suite, CacheStatus::RemoteHit)),
                    Err(StoreError::Io(e)) => return Err(StoreError::Io(e)),
                    Err(_invalid) => {
                        // The bytes validated internally but are not the
                        // requested suite (e.g. a misbehaving remote whose
                        // entry names another axiom): evict the installed
                        // entry and fall through to synthesis.
                        local.remove(fp)?;
                    }
                },
                Err(StoreError::Io(e)) => return Err(StoreError::Io(e)),
                Err(_invalid) => {
                    // Corrupt remote bytes: never installed, never
                    // served. Fall through to synthesis.
                }
            }
        }
    }
    Ok(Lookup::Absent(status))
}

/// The all-axiom tiered lookup behind
/// [`TieredCache::cached_or_synthesize_all`] and the local-only
/// [`crate::cached_or_synthesize_all`]: tier hits are served per
/// axiom, and every miss joins **one fused streamed synthesis** whose
/// per-axiom sinks seal + push each suite the moment that axiom's
/// schedule retires ([`SuiteSink::run_done`] fires per axiom, not at
/// the end of the run).
pub(crate) fn run_tiered_all(
    local: &Store,
    remote: Option<&dyn CacheTier>,
    mtm: &Mtm,
    opts: &SynthOptions,
    jobs: usize,
    progress: Option<&Arc<ProgressState>>,
) -> Result<BTreeMap<String, (Suite, CacheStatus)>, StoreError> {
    let axioms: Vec<String> = mtm.axioms().iter().map(|a| a.name.clone()).collect();
    let mut out = BTreeMap::new();
    let mut misses: Vec<(String, Fingerprint, CacheStatus)> = Vec::new();
    for axiom in axioms {
        let fp = suite_fingerprint(mtm, &axiom, opts);
        match lookup_tiers(local, remote, fp, &axiom)? {
            Lookup::Served(suite, status) => {
                // Cache-served axioms settle in the progress view the
                // moment their lookup resolves — observers render them
                // distinctly from the axioms about to synthesize live.
                if let Some(progress) = progress {
                    progress.mark_cached(&axiom, suite.elts.len());
                }
                out.insert(axiom, (suite, status));
            }
            Lookup::Absent(status) => misses.push((axiom, fp, status)),
        }
    }
    if misses.is_empty() {
        return Ok(out);
    }

    // One fused run for every miss: enumerate once, examine per axiom,
    // seal each suite from inside the pool as its axiom finishes.
    let gates: Vec<SealOnDone<'_>> = misses
        .iter()
        .map(|(axiom, fp, _)| {
            let pending = local.begin(*fp, EntryMeta::describe(mtm, axiom, opts))?;
            Ok(SealOnDone::new(
                local, remote, *fp, pending, axiom, progress,
            ))
        })
        .collect::<Result<_, StoreError>>()?;
    let axiom_refs: Vec<&str> = misses.iter().map(|(a, _, _)| a.as_str()).collect();
    let sink_refs: Vec<&dyn SuiteSink> = gates.iter().map(|g| g as &dyn SuiteSink).collect();
    let all_stats = match progress {
        Some(progress) => {
            synthesize_axioms_streamed_observed(mtm, &axiom_refs, opts, jobs, &sink_refs, progress)
                .0
        }
        None => synthesize_axioms_streamed(mtm, &axiom_refs, opts, jobs, &sink_refs),
    };

    for (((axiom, fp, status), gate), stats) in misses.into_iter().zip(gates).zip(all_stats) {
        let (pending, seal_outcome) = gate.into_parts();
        if stats.timed_out {
            let pending = pending.expect("timed-out runs are never sealed");
            let suite = pending.into_suite(&stats)?;
            out.insert(
                axiom,
                (
                    suite,
                    CacheStatus::Uncached {
                        reason: "synthesis timed out; partial suites are never cached".into(),
                    },
                ),
            );
            continue;
        }
        // A completed axiom was sealed from the pool; surface any seal
        // failure now (local disk trouble is hard, as ever).
        seal_outcome.expect("run_done seals every completed axiom")?;
        let suite = read_entry(local, fp, &axiom)?;
        out.insert(axiom, (suite, status));
    }
    Ok(out)
}

/// The per-axiom [`SuiteSink`] of a fused cached run: streams shards
/// into the axiom's pending store entry and, the moment the axiom's
/// schedule retires ([`SuiteSink::run_done`] with a completed run),
/// seals the entry and pushes the sealed bytes to the remote tier
/// (best-effort) — while other axioms of the same run are still
/// examining.
struct SealOnDone<'a> {
    local: &'a Store,
    remote: Option<&'a dyn CacheTier>,
    fp: Fingerprint,
    /// Consumed by the seal; kept for [`PendingSuite::into_suite`] on
    /// timed-out runs.
    pending: Mutex<Option<PendingSuite>>,
    /// The seal's outcome, surfaced to the driver after the run.
    sealed: Mutex<Option<Result<(), StoreError>>>,
    /// The axiom this gate seals, for journal events.
    axiom: String,
    /// The run's journal target, when the run is observed.
    progress: Option<&'a Arc<ProgressState>>,
}

impl<'a> SealOnDone<'a> {
    fn new(
        local: &'a Store,
        remote: Option<&'a dyn CacheTier>,
        fp: Fingerprint,
        pending: PendingSuite,
        axiom: &str,
        progress: Option<&'a Arc<ProgressState>>,
    ) -> SealOnDone<'a> {
        SealOnDone {
            local,
            remote,
            fp,
            pending: Mutex::new(Some(pending)),
            sealed: Mutex::new(None),
            axiom: axiom.to_string(),
            progress,
        }
    }

    /// Dismantles the gate: the still-pending entry (present only when
    /// the run never sealed) and the seal outcome (present only when it
    /// did).
    fn into_parts(self) -> (Option<PendingSuite>, Option<Result<(), StoreError>>) {
        (
            self.pending
                .into_inner()
                .expect("pending lock is never poisoned"),
            self.sealed
                .into_inner()
                .expect("sealed lock is never poisoned"),
        )
    }
}

impl SuiteSink for SealOnDone<'_> {
    fn shard_done(&self, stats: ShardStats, records: Vec<SuiteRecord>) {
        if let Some(pending) = self
            .pending
            .lock()
            .expect("pending lock is never poisoned")
            .as_ref()
        {
            pending.shard_done(stats, records);
        }
    }

    fn run_done(&self, stats: &SuiteStats) {
        if stats.timed_out {
            return; // never sealed; the driver assembles the partial suite
        }
        let Some(pending) = self
            .pending
            .lock()
            .expect("pending lock is never poisoned")
            .take()
        else {
            return;
        };
        let result = pending.seal(stats).map(|_| ());
        if result.is_ok() {
            record_seal(self.progress, &self.axiom, self.local, self.fp);
            if let Some(remote) = self.remote {
                // Best-effort: a failed push costs the fleet a warm
                // entry, never this run its result.
                if let Ok(Some(bytes)) = self.local.entry_bytes(self.fp) {
                    if remote.publish(self.fp, &bytes).is_ok() {
                        record_push(self.progress, &self.axiom);
                    }
                }
            }
        }
        *self.sealed.lock().expect("sealed lock is never poisoned") = Some(result);
    }
}

/// The [`SuiteSink`] adapter behind push-on-seal: forwards every shard
/// to the local pending entry and, through the [`SuiteSink::run_done`]
/// hook, records whether the run completed — the gate that lets the
/// tiered cache push the sealed artifact to the remote tier.
struct PushGate<'a> {
    pending: &'a PendingSuite,
    complete: AtomicBool,
}

impl<'a> PushGate<'a> {
    fn new(pending: &'a PendingSuite) -> PushGate<'a> {
        PushGate {
            pending,
            complete: AtomicBool::new(false),
        }
    }

    /// Whether `run_done` reported a completed (un-timed-out) run.
    fn completed(&self) -> bool {
        self.complete.load(Ordering::Acquire)
    }
}

impl SuiteSink for PushGate<'_> {
    fn shard_done(&self, stats: ShardStats, records: Vec<SuiteRecord>) {
        self.pending.shard_done(stats, records);
    }

    fn run_done(&self, stats: &SuiteStats) {
        if !stats.timed_out {
            self.complete.store(true, Ordering::Release);
        }
    }
}

/// The progress slot of `axiom`, for axiom-scoped journal events. The
/// slot table is small (one entry per axiom of the MTM), so a linear
/// scan is fine on this once-per-seal path.
fn axiom_slot(progress: &ProgressState, axiom: &str) -> Option<u32> {
    (0..progress.axiom_count())
        .find(|&slot| progress.axiom_name(slot) == Some(axiom))
        .and_then(|slot| u32::try_from(slot).ok())
}

/// Journals a [`JournalEventKind::Seal`] for `axiom` (`a` = sealed
/// entry bytes). A no-op when the run is unobserved or unjournaled.
fn record_seal(progress: Option<&Arc<ProgressState>>, axiom: &str, local: &Store, fp: Fingerprint) {
    let Some(progress) = progress else { return };
    let sealed_bytes = std::fs::metadata(local.entry_path(fp))
        .map(|m| m.len())
        .unwrap_or(0);
    progress.record(
        JournalEventKind::Seal,
        axiom_slot(progress, axiom),
        sealed_bytes,
        0,
        0,
    );
}

/// Journals a [`JournalEventKind::Push`] for `axiom`. A no-op when the
/// run is unobserved or unjournaled.
fn record_push(progress: Option<&Arc<ProgressState>>, axiom: &str) {
    let Some(progress) = progress else { return };
    progress.record(JournalEventKind::Push, axiom_slot(progress, axiom), 0, 0, 0);
}

/// Reads and fully validates one sealed local entry, also cross-checking
/// that its metadata names the expected axiom (a fingerprint collision
/// or a renamed file would otherwise serve the wrong suite).
pub(crate) fn read_entry(store: &Store, fp: Fingerprint, axiom: &str) -> Result<Suite, StoreError> {
    let reader = store.open_suite(fp)?;
    if reader.meta().axiom != axiom {
        return Err(StoreError::Corrupt(format!(
            "entry is for axiom `{}`, expected `{axiom}`",
            reader.meta().axiom
        )));
    }
    read_suite(reader)
}
