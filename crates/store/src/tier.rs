//! Cache tiering: a local store directory backed by an optional shared
//! remote tier, with read-through population and push-on-seal.
//!
//! The lookup order for one synthesis key:
//!
//! 1. **Local tier** — a sealed entry in the local [`Store`] is served
//!    directly (and validated record-by-record, as always).
//! 2. **Remote tier** — on a local miss, the remote tier is asked for
//!    the sealed bytes. A remote hit is *installed into the local tier
//!    first* ([`Store::install_bytes`] fully validates every byte before
//!    publishing), then served from there — so the next lookup is a
//!    local hit, and corrupt remote bytes can never be served.
//! 3. **Synthesis** — on a miss everywhere, the suite is synthesized,
//!    sealed locally, and the sealed bytes are *pushed* to the remote
//!    tier (best-effort), turning this run's work into a fleet-wide
//!    asset. The push is gated on [`transform_par::SuiteSink::run_done`]
//!    reporting a completed (un-timed-out) run — partial suites are
//!    never sealed, hence never pushed.
//!
//! Remote failures are soft on this read path: an unreachable or
//! misbehaving remote degrades the tiered cache to the local-only one.
//! Only genuine local i/o failures surface as errors.

use crate::cache::CacheStatus;
use crate::delta::{self, Digest, MAX_PARENT_CHAIN};
use crate::fingerprint::{suite_fingerprint, Fingerprint};
use crate::store::{read_suite, EntryMeta, PendingSuite, Store, StoreError};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use transform_core::axiom::Mtm;
use transform_par::{
    enumeration_nodes, synthesize_axioms_streamed_incremental, JournalEventKind, ProgressState,
    SuiteSink, WarmParent, WarmSeed,
};
use transform_synth::{ShardStats, Suite, SuiteRecord, SuiteStats, SynthOptions};

/// How a tiered synthesis should use the previous bound's sealed suite.
///
/// A warm start needs two artifacts for the same key at bound N−1: the
/// sealed parent suite (local or remote) and its admission digest
/// (local, recorded at seal time by this build). When both are present
/// and consistent, the run skips every enumeration node already covered
/// at bound N−1 and replays the digest instead, then seals the result
/// as a delta entry referencing the parent.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum WarmMode {
    /// Cold synthesis; delta entries already sealed are still served.
    #[default]
    Off,
    /// Warm-start when the parent suite and digest are available and
    /// consistent; silently fall back to a cold run otherwise.
    Auto,
    /// Warm-start or fail with [`StoreError::WarmStart`] — the mode for
    /// benchmarking and CI, where a silent cold fallback would hide a
    /// regression.
    Require,
}

/// One tier of a layered suite cache: somewhere sealed-suite bytes can
/// be fetched from and published to, keyed by [`Fingerprint`].
///
/// Implementations: [`Store`] (a local directory) and
/// [`crate::HttpTier`] (a `transform serve` endpoint). Entries are
/// content-addressed and immutable, so tiers never need invalidation —
/// a fingerprint either resolves to the canonical bytes or to nothing.
pub trait CacheTier: Sync {
    /// A human-readable name for error messages and logs.
    fn describe(&self) -> String;

    /// The sealed bytes for `fp`, or `None` when this tier does not
    /// hold the entry. Callers must treat the bytes as untrusted until
    /// validated (e.g. by [`Store::install_bytes`]).
    ///
    /// # Errors
    ///
    /// Tier-specific trouble: i/o for directory tiers,
    /// [`StoreError::Remote`] for HTTP tiers.
    fn fetch(&self, fp: Fingerprint) -> Result<Option<Vec<u8>>, StoreError>;

    /// Publishes sealed bytes for `fp` into this tier. Idempotent: the
    /// entry is immutable, so publishing an already-present fingerprint
    /// is a no-op-equivalent success.
    ///
    /// # Errors
    ///
    /// Tier-specific trouble, or validation failure for tiers that
    /// verify on ingest.
    fn publish(&self, fp: Fingerprint, bytes: &[u8]) -> Result<(), StoreError>;

    /// The encoded admission digest for `fp`, or `None` when this tier
    /// does not hold one (including tiers that never store digests —
    /// the default). Digests ride beside sealed entries so a pulled
    /// parent can seed a warm start on another machine.
    ///
    /// # Errors
    ///
    /// Tier-specific trouble, as for [`CacheTier::fetch`].
    fn fetch_digest(&self, fp: Fingerprint) -> Result<Option<Vec<u8>>, StoreError> {
        let _ = fp;
        Ok(None)
    }

    /// Publishes the encoded admission digest for `fp`. Digests are as
    /// immutable as their entries, so republishing is idempotent. The
    /// default drops the digest (a tier that can't store them is still
    /// a valid suite tier).
    ///
    /// # Errors
    ///
    /// Tier-specific trouble, as for [`CacheTier::publish`].
    fn publish_digest(&self, fp: Fingerprint, bytes: &[u8]) -> Result<(), StoreError> {
        let _ = (fp, bytes);
        Ok(())
    }
}

impl CacheTier for Store {
    fn describe(&self) -> String {
        format!("local store {}", self.root().display())
    }

    fn fetch(&self, fp: Fingerprint) -> Result<Option<Vec<u8>>, StoreError> {
        self.entry_bytes(fp)
    }

    fn publish(&self, fp: Fingerprint, bytes: &[u8]) -> Result<(), StoreError> {
        self.install_bytes(fp, bytes)
    }

    fn fetch_digest(&self, fp: Fingerprint) -> Result<Option<Vec<u8>>, StoreError> {
        self.digest_bytes(fp)
    }

    fn publish_digest(&self, fp: Fingerprint, bytes: &[u8]) -> Result<(), StoreError> {
        self.install_digest_bytes(fp, bytes)
    }
}

impl CacheTier for crate::remote::HttpTier {
    fn describe(&self) -> String {
        format!("remote cache {}", self.url())
    }

    fn fetch(&self, fp: Fingerprint) -> Result<Option<Vec<u8>>, StoreError> {
        crate::remote::HttpTier::fetch(self, fp)
    }

    fn publish(&self, fp: Fingerprint, bytes: &[u8]) -> Result<(), StoreError> {
        crate::remote::HttpTier::publish(self, fp, bytes)
    }

    fn fetch_digest(&self, fp: Fingerprint) -> Result<Option<Vec<u8>>, StoreError> {
        crate::remote::HttpTier::fetch_digest(self, fp)
    }

    fn publish_digest(&self, fp: Fingerprint, bytes: &[u8]) -> Result<(), StoreError> {
        crate::remote::HttpTier::publish_digest(self, fp, bytes)
    }
}

/// A local suite store optionally backed by a shared remote tier.
///
/// # Examples
///
/// ```
/// use transform_core::spec::parse_mtm;
/// use transform_store::{Store, TieredCache};
/// use transform_synth::SynthOptions;
///
/// let mtm = parse_mtm(
///     "mtm demo {
///        axiom sc_per_loc: acyclic(rf | co | fr | po_loc)
///      }",
/// ).expect("spec parses");
/// let mut opts = SynthOptions::new(4);
/// opts.enumeration.allow_fences = false;
/// opts.enumeration.allow_rmw = false;
/// let dir = std::env::temp_dir().join(format!("tfs-tier-doc-{}", std::process::id()));
/// // No remote configured: the tiered cache degrades to the local store.
/// let cache = TieredCache::new(Store::open(&dir).expect("store opens"));
///
/// let (cold, cold_status) =
///     cache.cached_or_synthesize(&mtm, "sc_per_loc", &opts, 2).expect("synthesizes");
/// let (warm, warm_status) =
///     cache.cached_or_synthesize(&mtm, "sc_per_loc", &opts, 2).expect("reads");
/// assert!(!cold_status.is_hit());
/// assert!(warm_status.is_hit());
/// assert_eq!(cold.elts.len(), warm.elts.len());
/// # std::fs::remove_dir_all(&dir).ok();
/// ```
pub struct TieredCache {
    local: Store,
    remote: Option<Box<dyn CacheTier>>,
}

impl TieredCache {
    /// A local-only tiered cache (no remote fallthrough).
    pub fn new(local: Store) -> TieredCache {
        TieredCache {
            local,
            remote: None,
        }
    }

    /// Adds a remote tier behind the local one.
    #[must_use]
    pub fn with_remote(mut self, remote: Box<dyn CacheTier>) -> TieredCache {
        self.remote = Some(remote);
        self
    }

    /// The local tier.
    pub fn local(&self) -> &Store {
        &self.local
    }

    /// The remote tier, when one is configured.
    pub fn remote(&self) -> Option<&dyn CacheTier> {
        self.remote.as_deref()
    }

    /// Serves the per-axiom suite through the tiers: local, then remote
    /// (read-through: a remote hit is validated into the local tier and
    /// served from there), then synthesis (sealed locally and pushed to
    /// the remote, best-effort). See [`crate::cached_or_synthesize`] for
    /// the local-only contract this extends.
    ///
    /// # Errors
    ///
    /// Only genuine local i/o failures; remote trouble and validation
    /// failures degrade to the next tier.
    ///
    /// # Panics
    ///
    /// Panics when `axiom` is not part of `mtm` (as every synthesis
    /// entry point does).
    pub fn cached_or_synthesize(
        &self,
        mtm: &Mtm,
        axiom: &str,
        opts: &SynthOptions,
        jobs: usize,
    ) -> Result<(Suite, CacheStatus), StoreError> {
        run_tiered(
            &self.local,
            self.remote.as_deref(),
            mtm,
            axiom,
            opts,
            jobs,
            None,
            WarmMode::Off,
        )
    }

    /// [`TieredCache::cached_or_synthesize`] with an explicit
    /// [`WarmMode`]: on a miss, `Auto`/`Require` seed the run from the
    /// sealed bound-N−1 suite (pulled through the tiers if needed) and
    /// seal the result as a delta entry referencing it.
    ///
    /// # Errors
    ///
    /// Local i/o failures, plus [`StoreError::WarmStart`] when
    /// [`WarmMode::Require`] finds no usable parent.
    ///
    /// # Panics
    ///
    /// Panics when `axiom` is not part of `mtm`.
    pub fn cached_or_synthesize_warm(
        &self,
        mtm: &Mtm,
        axiom: &str,
        opts: &SynthOptions,
        jobs: usize,
        warm: WarmMode,
        progress: Option<&Arc<ProgressState>>,
    ) -> Result<(Suite, CacheStatus), StoreError> {
        run_tiered(
            &self.local,
            self.remote.as_deref(),
            mtm,
            axiom,
            opts,
            jobs,
            progress,
            warm,
        )
    }

    /// [`TieredCache::cached_or_synthesize_all`] with an explicit
    /// [`WarmMode`]: the fused run over all missing axioms warm-starts
    /// from their bound-N−1 parents when every parent (and the shared
    /// admission digest) is available, and each missing axiom seals as
    /// a delta entry.
    ///
    /// # Errors
    ///
    /// Local i/o failures, plus [`StoreError::WarmStart`] when
    /// [`WarmMode::Require`] finds no usable parent set.
    pub fn cached_or_synthesize_all_warm(
        &self,
        mtm: &Mtm,
        opts: &SynthOptions,
        jobs: usize,
        warm: WarmMode,
        progress: Option<&Arc<ProgressState>>,
    ) -> Result<BTreeMap<String, (Suite, CacheStatus)>, StoreError> {
        run_tiered_all(
            &self.local,
            self.remote.as_deref(),
            mtm,
            opts,
            jobs,
            progress,
            warm,
        )
    }

    /// [`TieredCache::cached_or_synthesize`] with live telemetry: a
    /// tier hit marks the axiom's progress slot cached
    /// ([`ProgressState::mark_cached`] — so observers render it
    /// distinctly from live synthesis), and a miss publishes the fused
    /// run's counters into `progress` as it executes.
    ///
    /// # Errors
    ///
    /// Only genuine local i/o failures, exactly like
    /// [`TieredCache::cached_or_synthesize`].
    pub fn cached_or_synthesize_observed(
        &self,
        mtm: &Mtm,
        axiom: &str,
        opts: &SynthOptions,
        jobs: usize,
        progress: &Arc<ProgressState>,
    ) -> Result<(Suite, CacheStatus), StoreError> {
        run_tiered(
            &self.local,
            self.remote.as_deref(),
            mtm,
            axiom,
            opts,
            jobs,
            Some(progress),
            WarmMode::Off,
        )
    }

    /// Serves **every** per-axiom suite of `mtm` through the tiers in
    /// one pass: each axiom is looked up locally, then remotely
    /// (read-through), and all the misses are synthesized together in
    /// one fused streamed run — the program space is enumerated once
    /// and each missing axiom's suite is sealed (and pushed to the
    /// remote, best-effort) *as that axiom finishes*, not when the
    /// whole run drains.
    ///
    /// # Errors
    ///
    /// Only genuine local i/o failures; remote trouble and validation
    /// failures degrade to the next tier.
    pub fn cached_or_synthesize_all(
        &self,
        mtm: &Mtm,
        opts: &SynthOptions,
        jobs: usize,
    ) -> Result<BTreeMap<String, (Suite, CacheStatus)>, StoreError> {
        run_tiered_all(
            &self.local,
            self.remote.as_deref(),
            mtm,
            opts,
            jobs,
            None,
            WarmMode::Off,
        )
    }

    /// [`TieredCache::cached_or_synthesize_all`] with live telemetry:
    /// every tier-served axiom is marked cached in `progress` the
    /// moment its lookup resolves, and the misses' fused run publishes
    /// its counters as it executes — an observer watches cached axioms
    /// settle instantly while live ones stream partitions, mass, and
    /// ETA.
    ///
    /// # Errors
    ///
    /// Only genuine local i/o failures, exactly like
    /// [`TieredCache::cached_or_synthesize_all`].
    pub fn cached_or_synthesize_all_observed(
        &self,
        mtm: &Mtm,
        opts: &SynthOptions,
        jobs: usize,
        progress: &Arc<ProgressState>,
    ) -> Result<BTreeMap<String, (Suite, CacheStatus)>, StoreError> {
        run_tiered_all(
            &self.local,
            self.remote.as_deref(),
            mtm,
            opts,
            jobs,
            Some(progress),
            WarmMode::Off,
        )
    }
}

/// The tiered lookup shared by [`TieredCache::cached_or_synthesize`] and
/// the local-only [`crate::cached_or_synthesize`] (which passes no
/// remote).
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_tiered(
    local: &Store,
    remote: Option<&dyn CacheTier>,
    mtm: &Mtm,
    axiom: &str,
    opts: &SynthOptions,
    jobs: usize,
    progress: Option<&Arc<ProgressState>>,
    warm: WarmMode,
) -> Result<(Suite, CacheStatus), StoreError> {
    assert!(
        mtm.axiom(axiom).is_some(),
        "axiom `{axiom}` is not part of {}",
        mtm.name()
    );
    let fp = suite_fingerprint(mtm, axiom, opts);
    let status = match lookup_tiers(local, remote, fp, axiom)? {
        Lookup::Served(suite, status) => {
            if let Some(progress) = progress {
                progress.mark_cached(axiom, suite.elts.len());
            }
            return Ok((suite, status));
        }
        Lookup::Absent(status) => status,
    };

    // Tier 3: synthesize (warm-started when possible), seal locally,
    // push the sealed bytes.
    let warm_plan = prepare_warm(local, remote, mtm, &[axiom], opts, warm)?;
    let pending = local.begin(fp, EntryMeta::describe(mtm, axiom, opts))?;
    // The gate's scope ends before `pending` is sealed or dismantled —
    // it only lives for the streaming run it observes.
    let (stats, completed, artifacts) = {
        let gate = PushGate::new(&pending);
        let sinks: [&dyn SuiteSink; 1] = [&gate];
        let (mut all_stats, _metrics, artifacts) = synthesize_axioms_streamed_incremental(
            mtm,
            &[axiom],
            opts,
            jobs,
            &sinks,
            progress,
            warm_plan.as_ref().map(|plan| &plan.seed),
        );
        let completed = gate.completed();
        (all_stats.remove(0), completed, artifacts)
    };
    if stats.timed_out {
        let suite = pending.into_suite(&stats)?;
        return Ok((
            suite,
            CacheStatus::Uncached {
                reason: "synthesis timed out; partial suites are never cached".into(),
            },
        ));
    }
    match &warm_plan {
        Some(plan) => {
            let maps = artifacts
                .parent_maps
                .as_ref()
                .expect("warm runs report parent maps");
            pending.seal_delta(&stats, plan.parent_fps[0], &maps[0])?;
        }
        None => {
            pending.seal(&stats)?;
        }
    }
    // Record the run's admission digest alongside the sealed entry —
    // the seed the next bound's warm start replays.
    local.write_digest(
        fp,
        &Digest {
            bound: opts.enumeration.bound,
            counts: artifacts.node_counts.clone(),
        },
    )?;
    record_seal(progress, axiom, local, fp);
    if let Some(remote) = remote {
        if completed {
            // Best-effort: a failed push costs the fleet a warm entry,
            // never this run its result.
            if push_with_parents(local, remote, fp) {
                record_push(progress, axiom);
            }
            push_digest(local, remote, fp);
        }
    }
    let suite = read_entry(local, fp, axiom)?;
    Ok((suite, status))
}

/// One axiom's outcome from the local and remote tiers.
enum Lookup {
    /// A tier held the (validated) entry.
    Served(Suite, CacheStatus),
    /// Nothing servable anywhere: synthesis is needed. The carried
    /// status is [`CacheStatus::Miss`], or [`CacheStatus::Rebuilt`]
    /// when a damaged local entry was deleted on the way.
    Absent(CacheStatus),
}

/// Tiers 1 and 2 of the lookup, shared by the single-axiom and the
/// fused all-axiom paths: serve a sealed local entry; on a local miss
/// fetch from the remote, validate *into* the local tier, and serve
/// from there. Every remote failure mode is soft — unreachable remote,
/// damaged payload, local validation refusing the bytes — and degrades
/// to synthesis; only genuine local disk trouble is hard.
fn lookup_tiers(
    local: &Store,
    remote: Option<&dyn CacheTier>,
    fp: Fingerprint,
    axiom: &str,
) -> Result<Lookup, StoreError> {
    let mut status = CacheStatus::Miss;

    // Tier 1: the local store.
    if local.contains(fp) {
        match read_entry(local, fp, axiom) {
            Ok(suite) => return Ok(Lookup::Served(suite, CacheStatus::Hit)),
            Err(StoreError::Io(e)) => return Err(StoreError::Io(e)),
            Err(invalid) => {
                local.remove(fp)?;
                status = CacheStatus::Rebuilt {
                    reason: invalid.to_string(),
                };
            }
        }
    }

    // Tier 2: the remote, read-through. Delta entries pull their
    // parent chain first (each link installed and validated in order).
    if let Some(remote) = remote {
        if let Ok(Some(bytes)) = remote.fetch(fp) {
            match install_with_parents(local, remote, fp, &bytes, MAX_PARENT_CHAIN) {
                Ok(()) => match read_entry(local, fp, axiom) {
                    Ok(suite) => return Ok(Lookup::Served(suite, CacheStatus::RemoteHit)),
                    Err(StoreError::Io(e)) => return Err(StoreError::Io(e)),
                    Err(_invalid) => {
                        // The bytes validated internally but are not the
                        // requested suite (e.g. a misbehaving remote whose
                        // entry names another axiom): evict the installed
                        // entry and fall through to synthesis.
                        local.remove(fp)?;
                    }
                },
                Err(StoreError::Io(e)) => return Err(StoreError::Io(e)),
                Err(_invalid) => {
                    // Corrupt remote bytes: never installed, never
                    // served. Fall through to synthesis.
                }
            }
        }
    }
    Ok(Lookup::Absent(status))
}

/// The all-axiom tiered lookup behind
/// [`TieredCache::cached_or_synthesize_all`] and the local-only
/// [`crate::cached_or_synthesize_all`]: tier hits are served per
/// axiom, and every miss joins **one fused streamed synthesis** whose
/// per-axiom sinks seal + push each suite the moment that axiom's
/// schedule retires ([`SuiteSink::run_done`] fires per axiom, not at
/// the end of the run).
pub(crate) fn run_tiered_all(
    local: &Store,
    remote: Option<&dyn CacheTier>,
    mtm: &Mtm,
    opts: &SynthOptions,
    jobs: usize,
    progress: Option<&Arc<ProgressState>>,
    warm: WarmMode,
) -> Result<BTreeMap<String, (Suite, CacheStatus)>, StoreError> {
    let axioms: Vec<String> = mtm.axioms().iter().map(|a| a.name.clone()).collect();
    let mut out = BTreeMap::new();
    let mut misses: Vec<(String, Fingerprint, CacheStatus)> = Vec::new();
    for axiom in axioms {
        let fp = suite_fingerprint(mtm, &axiom, opts);
        match lookup_tiers(local, remote, fp, &axiom)? {
            Lookup::Served(suite, status) => {
                // Cache-served axioms settle in the progress view the
                // moment their lookup resolves — observers render them
                // distinctly from the axioms about to synthesize live.
                if let Some(progress) = progress {
                    progress.mark_cached(&axiom, suite.elts.len());
                }
                out.insert(axiom, (suite, status));
            }
            Lookup::Absent(status) => misses.push((axiom, fp, status)),
        }
    }
    if misses.is_empty() {
        return Ok(out);
    }

    // One fused run for every miss: enumerate once, examine per axiom,
    // seal each suite from inside the pool as its axiom finishes. A
    // warm run defers its seals to the driver loop below instead — the
    // delta seal needs the parent maps, which the run reports only
    // once it drains.
    let axiom_refs: Vec<&str> = misses.iter().map(|(a, _, _)| a.as_str()).collect();
    let warm_plan = prepare_warm(local, remote, mtm, &axiom_refs, opts, warm)?;
    let gates: Vec<SealOnDone<'_>> = misses
        .iter()
        .map(|(axiom, fp, _)| {
            let pending = local.begin(*fp, EntryMeta::describe(mtm, axiom, opts))?;
            Ok(SealOnDone::new(
                local,
                remote,
                *fp,
                pending,
                axiom,
                progress,
                warm_plan.is_some(),
            ))
        })
        .collect::<Result<_, StoreError>>()?;
    let sink_refs: Vec<&dyn SuiteSink> = gates.iter().map(|g| g as &dyn SuiteSink).collect();
    let (all_stats, _metrics, artifacts) = synthesize_axioms_streamed_incremental(
        mtm,
        &axiom_refs,
        opts,
        jobs,
        &sink_refs,
        progress,
        warm_plan.as_ref().map(|plan| &plan.seed),
    );

    for (i, (((axiom, fp, status), gate), stats)) in
        misses.into_iter().zip(gates).zip(all_stats).enumerate()
    {
        let (pending, seal_outcome) = gate.into_parts();
        if stats.timed_out {
            let pending = pending.expect("timed-out runs are never sealed");
            let suite = pending.into_suite(&stats)?;
            out.insert(
                axiom,
                (
                    suite,
                    CacheStatus::Uncached {
                        reason: "synthesis timed out; partial suites are never cached".into(),
                    },
                ),
            );
            continue;
        }
        match &warm_plan {
            Some(plan) => {
                // Deferred warm seal: the delta entry references the
                // bound-N−1 parent and carries only the new records.
                let pending = pending.expect("deferred warm seals keep the pending entry");
                let maps = artifacts
                    .parent_maps
                    .as_ref()
                    .expect("warm runs report parent maps");
                pending.seal_delta(&stats, plan.parent_fps[i], &maps[i])?;
                record_seal(progress, &axiom, local, fp);
                if let Some(remote) = remote {
                    if push_with_parents(local, remote, fp) {
                        record_push(progress, &axiom);
                    }
                }
            }
            None => {
                // A completed axiom was sealed from the pool; surface
                // any seal failure now (local disk trouble is hard, as
                // ever).
                seal_outcome.expect("run_done seals every completed axiom")?;
            }
        }
        local.write_digest(
            fp,
            &Digest {
                bound: opts.enumeration.bound,
                counts: artifacts.node_counts.clone(),
            },
        )?;
        if let Some(remote) = remote {
            push_digest(local, remote, fp);
        }
        let suite = read_entry(local, fp, &axiom)?;
        out.insert(axiom, (suite, status));
    }
    Ok(out)
}

/// The warm-start inputs of one tiered run: the seed replayed by the
/// pipeline, plus each missing axiom's parent fingerprint (same order
/// as the run's axioms) for the delta seals.
struct WarmPlan {
    seed: WarmSeed,
    parent_fps: Vec<Fingerprint>,
}

/// Assembles a [`WarmPlan`] per [`WarmMode`]: `Off` never warm-starts,
/// `Auto` turns every missing prerequisite into a cold run, `Require`
/// surfaces it as [`StoreError::WarmStart`].
fn prepare_warm(
    local: &Store,
    remote: Option<&dyn CacheTier>,
    mtm: &Mtm,
    axioms: &[&str],
    opts: &SynthOptions,
    mode: WarmMode,
) -> Result<Option<WarmPlan>, StoreError> {
    if mode == WarmMode::Off {
        return Ok(None);
    }
    match gather_warm(local, remote, mtm, axioms, opts) {
        Ok(plan) => Ok(Some(plan)),
        Err(reason) => match mode {
            WarmMode::Require => Err(StoreError::WarmStart(reason)),
            _ => Ok(None),
        },
    }
}

/// Collects and cross-validates everything a warm start rests on: the
/// sealed bound-N−1 suite of every axiom (pulled through the remote
/// tier, parents first, when absent locally) and the shared admission
/// digest, checked against the parent space's node count and each
/// parent's own counters. Any inconsistency is a reason to run cold —
/// a warm start must never be able to produce a different suite.
fn gather_warm(
    local: &Store,
    remote: Option<&dyn CacheTier>,
    mtm: &Mtm,
    axioms: &[&str],
    opts: &SynthOptions,
) -> Result<WarmPlan, String> {
    let bound = opts.enumeration.bound;
    if bound < 2 {
        // A bound-0 parent space is empty: its seed would degenerate to
        // a cold run and could never seal a meaningful delta.
        return Err(format!("warm starts need bound >= 2, got {bound}"));
    }
    let parent_bound = bound - 1;
    let mut popts = opts.clone();
    popts.enumeration.bound = parent_bound;
    let expected_nodes = enumeration_nodes(&popts);

    let mut digest: Option<Digest> = None;
    let mut parent_fps = Vec::with_capacity(axioms.len());
    let mut parents = Vec::with_capacity(axioms.len());
    let mut parent_programs = Vec::with_capacity(axioms.len());
    for &axiom in axioms {
        let pfp = suite_fingerprint(mtm, axiom, &popts);
        if !local.contains(pfp) {
            let Some(remote) = remote else {
                return Err(format!(
                    "no sealed bound-{parent_bound} suite for axiom `{axiom}`"
                ));
            };
            let Some(bytes) = remote.fetch(pfp).ok().flatten() else {
                return Err(format!(
                    "no sealed bound-{parent_bound} suite for axiom `{axiom}` in any tier"
                ));
            };
            install_with_parents(local, remote, pfp, &bytes, MAX_PARENT_CHAIN).map_err(|e| {
                format!("bound-{parent_bound} parent for `{axiom}` failed to install: {e}")
            })?;
        }
        if digest.is_none() {
            // The admission digest is axiom-independent (admission
            // happens before axioms examine), so any parent's copy
            // seeds the run.
            digest = local.read_digest(pfp).ok().flatten();
            if digest.is_none() {
                // A pulled parent leaves its digest behind on the
                // machine that sealed it — fetch the replica so the
                // warm start works here too. Validation happens on
                // install; a bad replica just means running cold.
                if let Some(remote) = remote {
                    if let Some(bytes) = remote.fetch_digest(pfp).ok().flatten() {
                        if local.install_digest_bytes(pfp, &bytes).is_ok() {
                            digest = local.read_digest(pfp).ok().flatten();
                        }
                    }
                }
            }
        }
        let reader = local
            .open_suite(pfp)
            .map_err(|e| format!("bound-{parent_bound} parent for `{axiom}` unreadable: {e}"))?;
        if reader.meta().axiom != axiom {
            return Err(format!(
                "bound-{parent_bound} entry for `{axiom}` names axiom `{}`",
                reader.meta().axiom
            ));
        }
        let stats = reader.stats().clone();
        let mut records = Vec::with_capacity(reader.record_count() as usize);
        for record in reader {
            records.push(record.map_err(|e| {
                format!("bound-{parent_bound} parent for `{axiom}` unreadable: {e}")
            })?);
        }
        parent_fps.push(pfp);
        parent_programs.push(stats.programs);
        parents.push(WarmParent {
            records,
            items: stats.shards.iter().map(|s| s.items).sum(),
            executions: stats.executions,
            forbidden: stats.forbidden,
            minimal: stats.minimal,
        });
    }

    let digest = digest.ok_or_else(|| {
        format!(
            "no admission digest for the bound-{parent_bound} parents \
             (seal them with this build to record one)"
        )
    })?;
    if digest.bound != parent_bound {
        return Err(format!(
            "admission digest is for bound {}, expected {parent_bound}",
            digest.bound
        ));
    }
    if digest.counts.len() as u64 != expected_nodes {
        return Err(format!(
            "admission digest covers {} nodes, the bound-{parent_bound} space has {expected_nodes}",
            digest.counts.len()
        ));
    }
    let planned: u64 = digest.counts.iter().map(|&(_, items)| items).sum();
    let admitted: u64 = digest.counts.iter().map(|&(programs, _)| programs).sum();
    for ((&axiom, parent), &programs) in axioms.iter().zip(&parents).zip(&parent_programs) {
        if parent.items as u64 != planned {
            return Err(format!(
                "parent for `{axiom}` examined {} plan items, its digest planned {planned}",
                parent.items
            ));
        }
        if programs as u64 != admitted {
            return Err(format!(
                "parent for `{axiom}` admitted {programs} programs, its digest admitted {admitted}"
            ));
        }
        if let Some(last) = parent.records.last() {
            if last.index as u64 >= planned {
                return Err(format!(
                    "parent record index {} for `{axiom}` is outside its digest's {planned} plan items",
                    last.index
                ));
            }
        }
    }
    Ok(WarmPlan {
        seed: WarmSeed {
            parent_bound,
            node_counts: digest.counts,
            parents,
        },
        parent_fps,
    })
}

/// Installs possibly-delta bytes into the local tier, fetching and
/// installing missing parents from `remote` first (deepest ancestor
/// first, each link fully validated by [`Store::install_bytes`]).
fn install_with_parents(
    local: &Store,
    remote: &dyn CacheTier,
    fp: Fingerprint,
    bytes: &[u8],
    depth: usize,
) -> Result<(), StoreError> {
    match local.install_bytes(fp, bytes) {
        Ok(()) => Ok(()),
        Err(first) => {
            if depth == 0 {
                return Err(first);
            }
            // Only a delta whose parent is absent can be rescued by
            // pulling more; anything else is a genuine failure.
            let Some(parent) = delta::entry_parent(bytes) else {
                return Err(first);
            };
            if local.contains(parent) {
                return Err(first);
            }
            let Some(parent_bytes) = remote.fetch(parent)? else {
                return Err(first);
            };
            install_with_parents(local, remote, parent, &parent_bytes, depth - 1)?;
            local.install_bytes(fp, bytes)
        }
    }
}

/// Publishes a sealed entry to the remote tier, retrying once with its
/// parent chain (deepest first) when the remote refuses a delta whose
/// parent it does not hold. Returns whether the entry itself landed.
fn push_with_parents(local: &Store, remote: &dyn CacheTier, fp: Fingerprint) -> bool {
    let Ok(Some(bytes)) = local.entry_bytes(fp) else {
        return false;
    };
    if remote.publish(fp, &bytes).is_ok() {
        return true;
    }
    // Walk the chain bottom-up, then publish it top-down so every
    // delta's parent precedes it.
    let mut chain: Vec<(Fingerprint, Vec<u8>)> = Vec::new();
    let mut cursor = delta::entry_parent(&bytes);
    while let Some(parent) = cursor {
        if chain.len() >= MAX_PARENT_CHAIN {
            return false;
        }
        let Ok(Some(parent_bytes)) = local.entry_bytes(parent) else {
            return false;
        };
        cursor = delta::entry_parent(&parent_bytes);
        chain.push((parent, parent_bytes));
    }
    if chain.is_empty() {
        return false;
    }
    for (parent, parent_bytes) in chain.into_iter().rev() {
        if remote.publish(parent, &parent_bytes).is_err() {
            return false;
        }
    }
    remote.publish(fp, &bytes).is_ok()
}

/// Replicates the sealed entry's admission digest to the remote tier,
/// best-effort: a missing replica only costs a remote machine its warm
/// start, never a run its result.
fn push_digest(local: &Store, remote: &dyn CacheTier, fp: Fingerprint) {
    if let Ok(Some(bytes)) = local.digest_bytes(fp) {
        let _ = remote.publish_digest(fp, &bytes);
    }
}

/// The per-axiom [`SuiteSink`] of a fused cached run: streams shards
/// into the axiom's pending store entry and, the moment the axiom's
/// schedule retires ([`SuiteSink::run_done`] with a completed run),
/// seals the entry and pushes the sealed bytes to the remote tier
/// (best-effort) — while other axioms of the same run are still
/// examining.
struct SealOnDone<'a> {
    local: &'a Store,
    remote: Option<&'a dyn CacheTier>,
    fp: Fingerprint,
    /// Consumed by the seal; kept for [`PendingSuite::into_suite`] on
    /// timed-out runs.
    pending: Mutex<Option<PendingSuite>>,
    /// The seal's outcome, surfaced to the driver after the run.
    sealed: Mutex<Option<Result<(), StoreError>>>,
    /// The axiom this gate seals, for journal events.
    axiom: String,
    /// The run's journal target, when the run is observed.
    progress: Option<&'a Arc<ProgressState>>,
    /// Warm runs defer sealing to the driver (the delta seal needs the
    /// parent maps, reported only when the whole run drains); the gate
    /// then only streams shards.
    defer: bool,
}

impl<'a> SealOnDone<'a> {
    #[allow(clippy::too_many_arguments)]
    fn new(
        local: &'a Store,
        remote: Option<&'a dyn CacheTier>,
        fp: Fingerprint,
        pending: PendingSuite,
        axiom: &str,
        progress: Option<&'a Arc<ProgressState>>,
        defer: bool,
    ) -> SealOnDone<'a> {
        SealOnDone {
            local,
            remote,
            fp,
            pending: Mutex::new(Some(pending)),
            sealed: Mutex::new(None),
            axiom: axiom.to_string(),
            progress,
            defer,
        }
    }

    /// Dismantles the gate: the still-pending entry (present only when
    /// the run never sealed) and the seal outcome (present only when it
    /// did).
    fn into_parts(self) -> (Option<PendingSuite>, Option<Result<(), StoreError>>) {
        (
            self.pending
                .into_inner()
                .expect("pending lock is never poisoned"),
            self.sealed
                .into_inner()
                .expect("sealed lock is never poisoned"),
        )
    }
}

impl SuiteSink for SealOnDone<'_> {
    fn shard_done(&self, stats: ShardStats, records: Vec<SuiteRecord>) {
        if let Some(pending) = self
            .pending
            .lock()
            .expect("pending lock is never poisoned")
            .as_ref()
        {
            pending.shard_done(stats, records);
        }
    }

    fn run_done(&self, stats: &SuiteStats) {
        if stats.timed_out {
            return; // never sealed; the driver assembles the partial suite
        }
        if self.defer {
            return; // a warm run's delta seal happens in the driver
        }
        let Some(pending) = self
            .pending
            .lock()
            .expect("pending lock is never poisoned")
            .take()
        else {
            return;
        };
        let result = pending.seal(stats).map(|_| ());
        if result.is_ok() {
            record_seal(self.progress, &self.axiom, self.local, self.fp);
            if let Some(remote) = self.remote {
                // Best-effort: a failed push costs the fleet a warm
                // entry, never this run its result.
                if let Ok(Some(bytes)) = self.local.entry_bytes(self.fp) {
                    if remote.publish(self.fp, &bytes).is_ok() {
                        record_push(self.progress, &self.axiom);
                    }
                }
            }
        }
        *self.sealed.lock().expect("sealed lock is never poisoned") = Some(result);
    }
}

/// The [`SuiteSink`] adapter behind push-on-seal: forwards every shard
/// to the local pending entry and, through the [`SuiteSink::run_done`]
/// hook, records whether the run completed — the gate that lets the
/// tiered cache push the sealed artifact to the remote tier.
struct PushGate<'a> {
    pending: &'a PendingSuite,
    complete: AtomicBool,
}

impl<'a> PushGate<'a> {
    fn new(pending: &'a PendingSuite) -> PushGate<'a> {
        PushGate {
            pending,
            complete: AtomicBool::new(false),
        }
    }

    /// Whether `run_done` reported a completed (un-timed-out) run.
    fn completed(&self) -> bool {
        self.complete.load(Ordering::Acquire)
    }
}

impl SuiteSink for PushGate<'_> {
    fn shard_done(&self, stats: ShardStats, records: Vec<SuiteRecord>) {
        self.pending.shard_done(stats, records);
    }

    fn run_done(&self, stats: &SuiteStats) {
        if !stats.timed_out {
            self.complete.store(true, Ordering::Release);
        }
    }
}

/// The progress slot of `axiom`, for axiom-scoped journal events. The
/// slot table is small (one entry per axiom of the MTM), so a linear
/// scan is fine on this once-per-seal path.
fn axiom_slot(progress: &ProgressState, axiom: &str) -> Option<u32> {
    (0..progress.axiom_count())
        .find(|&slot| progress.axiom_name(slot) == Some(axiom))
        .and_then(|slot| u32::try_from(slot).ok())
}

/// Journals a [`JournalEventKind::Seal`] for `axiom` (`a` = sealed
/// entry bytes). A no-op when the run is unobserved or unjournaled.
fn record_seal(progress: Option<&Arc<ProgressState>>, axiom: &str, local: &Store, fp: Fingerprint) {
    let Some(progress) = progress else { return };
    let sealed_bytes = std::fs::metadata(local.entry_path(fp))
        .map(|m| m.len())
        .unwrap_or(0);
    progress.record(
        JournalEventKind::Seal,
        axiom_slot(progress, axiom),
        sealed_bytes,
        0,
        0,
    );
}

/// Journals a [`JournalEventKind::Push`] for `axiom`. A no-op when the
/// run is unobserved or unjournaled.
fn record_push(progress: Option<&Arc<ProgressState>>, axiom: &str) {
    let Some(progress) = progress else { return };
    progress.record(JournalEventKind::Push, axiom_slot(progress, axiom), 0, 0, 0);
}

/// Reads and fully validates one sealed local entry, also cross-checking
/// that its metadata names the expected axiom (a fingerprint collision
/// or a renamed file would otherwise serve the wrong suite).
pub(crate) fn read_entry(store: &Store, fp: Fingerprint, axiom: &str) -> Result<Suite, StoreError> {
    let reader = store.open_suite(fp)?;
    if reader.meta().axiom != axiom {
        return Err(StoreError::Corrupt(format!(
            "entry is for axiom `{}`, expected `{axiom}`",
            reader.meta().axiom
        )));
    }
    read_suite(reader)
}
