//! Cache tiering: a local store directory backed by an optional shared
//! remote tier, with read-through population and push-on-seal.
//!
//! The lookup order for one synthesis key:
//!
//! 1. **Local tier** — a sealed entry in the local [`Store`] is served
//!    directly (and validated record-by-record, as always).
//! 2. **Remote tier** — on a local miss, the remote tier is asked for
//!    the sealed bytes. A remote hit is *installed into the local tier
//!    first* ([`Store::install_bytes`] fully validates every byte before
//!    publishing), then served from there — so the next lookup is a
//!    local hit, and corrupt remote bytes can never be served.
//! 3. **Synthesis** — on a miss everywhere, the suite is synthesized,
//!    sealed locally, and the sealed bytes are *pushed* to the remote
//!    tier (best-effort), turning this run's work into a fleet-wide
//!    asset. The push is gated on [`transform_par::SuiteSink::run_done`]
//!    reporting a completed (un-timed-out) run — partial suites are
//!    never sealed, hence never pushed.
//!
//! Remote failures are soft on this read path: an unreachable or
//! misbehaving remote degrades the tiered cache to the local-only one.
//! Only genuine local i/o failures surface as errors.

use crate::cache::CacheStatus;
use crate::fingerprint::{suite_fingerprint, Fingerprint};
use crate::store::{read_suite, EntryMeta, PendingSuite, Store, StoreError};
use std::sync::atomic::{AtomicBool, Ordering};
use transform_core::axiom::Mtm;
use transform_par::{synthesize_suite_streamed, SuiteSink};
use transform_synth::{ShardStats, Suite, SuiteRecord, SuiteStats, SynthOptions};

/// One tier of a layered suite cache: somewhere sealed-suite bytes can
/// be fetched from and published to, keyed by [`Fingerprint`].
///
/// Implementations: [`Store`] (a local directory) and
/// [`crate::HttpTier`] (a `transform serve` endpoint). Entries are
/// content-addressed and immutable, so tiers never need invalidation —
/// a fingerprint either resolves to the canonical bytes or to nothing.
pub trait CacheTier: Sync {
    /// A human-readable name for error messages and logs.
    fn describe(&self) -> String;

    /// The sealed bytes for `fp`, or `None` when this tier does not
    /// hold the entry. Callers must treat the bytes as untrusted until
    /// validated (e.g. by [`Store::install_bytes`]).
    ///
    /// # Errors
    ///
    /// Tier-specific trouble: i/o for directory tiers,
    /// [`StoreError::Remote`] for HTTP tiers.
    fn fetch(&self, fp: Fingerprint) -> Result<Option<Vec<u8>>, StoreError>;

    /// Publishes sealed bytes for `fp` into this tier. Idempotent: the
    /// entry is immutable, so publishing an already-present fingerprint
    /// is a no-op-equivalent success.
    ///
    /// # Errors
    ///
    /// Tier-specific trouble, or validation failure for tiers that
    /// verify on ingest.
    fn publish(&self, fp: Fingerprint, bytes: &[u8]) -> Result<(), StoreError>;
}

impl CacheTier for Store {
    fn describe(&self) -> String {
        format!("local store {}", self.root().display())
    }

    fn fetch(&self, fp: Fingerprint) -> Result<Option<Vec<u8>>, StoreError> {
        self.entry_bytes(fp)
    }

    fn publish(&self, fp: Fingerprint, bytes: &[u8]) -> Result<(), StoreError> {
        self.install_bytes(fp, bytes)
    }
}

impl CacheTier for crate::remote::HttpTier {
    fn describe(&self) -> String {
        format!("remote cache {}", self.url())
    }

    fn fetch(&self, fp: Fingerprint) -> Result<Option<Vec<u8>>, StoreError> {
        crate::remote::HttpTier::fetch(self, fp)
    }

    fn publish(&self, fp: Fingerprint, bytes: &[u8]) -> Result<(), StoreError> {
        crate::remote::HttpTier::publish(self, fp, bytes)
    }
}

/// A local suite store optionally backed by a shared remote tier.
///
/// # Examples
///
/// ```
/// use transform_core::spec::parse_mtm;
/// use transform_store::{Store, TieredCache};
/// use transform_synth::SynthOptions;
///
/// let mtm = parse_mtm(
///     "mtm demo {
///        axiom sc_per_loc: acyclic(rf | co | fr | po_loc)
///      }",
/// ).expect("spec parses");
/// let mut opts = SynthOptions::new(4);
/// opts.enumeration.allow_fences = false;
/// opts.enumeration.allow_rmw = false;
/// let dir = std::env::temp_dir().join(format!("tfs-tier-doc-{}", std::process::id()));
/// // No remote configured: the tiered cache degrades to the local store.
/// let cache = TieredCache::new(Store::open(&dir).expect("store opens"));
///
/// let (cold, cold_status) =
///     cache.cached_or_synthesize(&mtm, "sc_per_loc", &opts, 2).expect("synthesizes");
/// let (warm, warm_status) =
///     cache.cached_or_synthesize(&mtm, "sc_per_loc", &opts, 2).expect("reads");
/// assert!(!cold_status.is_hit());
/// assert!(warm_status.is_hit());
/// assert_eq!(cold.elts.len(), warm.elts.len());
/// # std::fs::remove_dir_all(&dir).ok();
/// ```
pub struct TieredCache {
    local: Store,
    remote: Option<Box<dyn CacheTier>>,
}

impl TieredCache {
    /// A local-only tiered cache (no remote fallthrough).
    pub fn new(local: Store) -> TieredCache {
        TieredCache {
            local,
            remote: None,
        }
    }

    /// Adds a remote tier behind the local one.
    #[must_use]
    pub fn with_remote(mut self, remote: Box<dyn CacheTier>) -> TieredCache {
        self.remote = Some(remote);
        self
    }

    /// The local tier.
    pub fn local(&self) -> &Store {
        &self.local
    }

    /// The remote tier, when one is configured.
    pub fn remote(&self) -> Option<&dyn CacheTier> {
        self.remote.as_deref()
    }

    /// Serves the per-axiom suite through the tiers: local, then remote
    /// (read-through: a remote hit is validated into the local tier and
    /// served from there), then synthesis (sealed locally and pushed to
    /// the remote, best-effort). See [`crate::cached_or_synthesize`] for
    /// the local-only contract this extends.
    ///
    /// # Errors
    ///
    /// Only genuine local i/o failures; remote trouble and validation
    /// failures degrade to the next tier.
    ///
    /// # Panics
    ///
    /// Panics when `axiom` is not part of `mtm` (as every synthesis
    /// entry point does).
    pub fn cached_or_synthesize(
        &self,
        mtm: &Mtm,
        axiom: &str,
        opts: &SynthOptions,
        jobs: usize,
    ) -> Result<(Suite, CacheStatus), StoreError> {
        run_tiered(&self.local, self.remote.as_deref(), mtm, axiom, opts, jobs)
    }
}

/// The tiered lookup shared by [`TieredCache::cached_or_synthesize`] and
/// the local-only [`crate::cached_or_synthesize`] (which passes no
/// remote).
pub(crate) fn run_tiered(
    local: &Store,
    remote: Option<&dyn CacheTier>,
    mtm: &Mtm,
    axiom: &str,
    opts: &SynthOptions,
    jobs: usize,
) -> Result<(Suite, CacheStatus), StoreError> {
    assert!(
        mtm.axiom(axiom).is_some(),
        "axiom `{axiom}` is not part of {}",
        mtm.name()
    );
    let fp = suite_fingerprint(mtm, axiom, opts);
    let mut status = CacheStatus::Miss;

    // Tier 1: the local store.
    if local.contains(fp) {
        match read_entry(local, fp, axiom) {
            Ok(suite) => return Ok((suite, CacheStatus::Hit)),
            Err(StoreError::Io(e)) => return Err(StoreError::Io(e)),
            Err(invalid) => {
                local.remove(fp)?;
                status = CacheStatus::Rebuilt {
                    reason: invalid.to_string(),
                };
            }
        }
    }

    // Tier 2: the remote, read-through. Every failure mode here is
    // soft — unreachable remote, damaged payload, local validation
    // refusing the bytes — and degrades to synthesis; only local disk
    // trouble while publishing the validated entry is hard.
    if let Some(remote) = remote {
        if let Ok(Some(bytes)) = remote.fetch(fp) {
            match local.install_bytes(fp, &bytes) {
                Ok(()) => match read_entry(local, fp, axiom) {
                    Ok(suite) => return Ok((suite, CacheStatus::RemoteHit)),
                    Err(StoreError::Io(e)) => return Err(StoreError::Io(e)),
                    Err(_invalid) => {
                        // The bytes validated internally but are not the
                        // requested suite (e.g. a misbehaving remote whose
                        // entry names another axiom): evict the installed
                        // entry and fall through to synthesis.
                        local.remove(fp)?;
                    }
                },
                Err(StoreError::Io(e)) => return Err(StoreError::Io(e)),
                Err(_invalid) => {
                    // Corrupt remote bytes: never installed, never
                    // served. Fall through to synthesis.
                }
            }
        }
    }

    // Tier 3: synthesize, seal locally, push the sealed bytes.
    let pending = local.begin(fp, EntryMeta::describe(mtm, axiom, opts))?;
    // The gate's scope ends before `pending` is sealed or dismantled —
    // it only lives for the streaming run it observes.
    let (stats, completed) = {
        let gate = PushGate::new(&pending);
        let stats = synthesize_suite_streamed(mtm, axiom, opts, jobs, &gate);
        let completed = gate.completed();
        (stats, completed)
    };
    if stats.timed_out {
        let suite = pending.into_suite(&stats)?;
        return Ok((
            suite,
            CacheStatus::Uncached {
                reason: "synthesis timed out; partial suites are never cached".into(),
            },
        ));
    }
    pending.seal(&stats)?;
    if let Some(remote) = remote {
        if completed {
            // Best-effort: a failed push costs the fleet a warm entry,
            // never this run its result.
            if let Ok(Some(bytes)) = local.entry_bytes(fp) {
                let _ = remote.publish(fp, &bytes);
            }
        }
    }
    let suite = read_entry(local, fp, axiom)?;
    Ok((suite, status))
}

/// The [`SuiteSink`] adapter behind push-on-seal: forwards every shard
/// to the local pending entry and, through the [`SuiteSink::run_done`]
/// hook, records whether the run completed — the gate that lets the
/// tiered cache push the sealed artifact to the remote tier.
struct PushGate<'a> {
    pending: &'a PendingSuite,
    complete: AtomicBool,
}

impl<'a> PushGate<'a> {
    fn new(pending: &'a PendingSuite) -> PushGate<'a> {
        PushGate {
            pending,
            complete: AtomicBool::new(false),
        }
    }

    /// Whether `run_done` reported a completed (un-timed-out) run.
    fn completed(&self) -> bool {
        self.complete.load(Ordering::Acquire)
    }
}

impl SuiteSink for PushGate<'_> {
    fn shard_done(&self, stats: ShardStats, records: Vec<SuiteRecord>) {
        self.pending.shard_done(stats, records);
    }

    fn run_done(&self, stats: &SuiteStats) {
        if !stats.timed_out {
            self.complete.store(true, Ordering::Release);
        }
    }
}

/// Reads and fully validates one sealed local entry, also cross-checking
/// that its metadata names the expected axiom (a fingerprint collision
/// or a renamed file would otherwise serve the wrong suite).
pub(crate) fn read_entry(store: &Store, fp: Fingerprint, axiom: &str) -> Result<Suite, StoreError> {
    let reader = store.open_suite(fp)?;
    if reader.meta().axiom != axiom {
        return Err(StoreError::Corrupt(format!(
            "entry is for axiom `{}`, expected `{axiom}`",
            reader.meta().axiom
        )));
    }
    read_suite(reader)
}
