//! The caching policy over the store: serve sealed suites, stream cold
//! runs into new entries, and rebuild — never serve — damaged ones.
//!
//! Both temperatures serve the suite *from the sealed artifact*: a cold
//! run synthesizes through the shard-streaming sink, seals, and then
//! reads its own entry back. A warm run therefore reproduces the cold
//! run's output byte for byte (statistics included — `elapsed` is the
//! recorded synthesis time, not the read time), which is what makes
//! cached results indistinguishable from fresh ones.

use crate::fingerprint::{suite_fingerprint, Fingerprint};
use crate::store::{read_suite, EntryMeta, Store, StoreError};
use transform_core::axiom::Mtm;
use transform_par::synthesize_suite_streamed;
use transform_synth::{Suite, SynthOptions};

/// How a cached lookup was satisfied.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum CacheStatus {
    /// Served from an existing sealed entry.
    Hit,
    /// No entry existed; synthesized and sealed.
    Miss,
    /// An entry existed but failed validation; it was deleted and the
    /// suite resynthesized and re-sealed.
    Rebuilt {
        /// What the validation failure was.
        reason: String,
    },
    /// Synthesized but *not* sealed (the run timed out, so the suite is
    /// partial and must never be served from cache).
    Uncached {
        /// Why the result was not persisted.
        reason: String,
    },
}

impl CacheStatus {
    /// Whether the suite came from a sealed entry without synthesis.
    pub fn is_hit(&self) -> bool {
        matches!(self, CacheStatus::Hit)
    }
}

/// Serves the per-axiom suite from the store, synthesizing (and
/// sealing) on a miss. Corrupt, truncated, or version-mismatched
/// entries are detected by checksums, deleted, and transparently
/// rebuilt.
///
/// # Errors
///
/// Only genuine i/o failures (unreadable store directory, failed
/// writes) surface as errors; validation failures are handled by
/// rebuilding.
///
/// # Panics
///
/// Panics when `axiom` is not part of `mtm` (as every synthesis entry
/// point does).
pub fn cached_or_synthesize(
    store: &Store,
    mtm: &Mtm,
    axiom: &str,
    opts: &SynthOptions,
    jobs: usize,
) -> Result<(Suite, CacheStatus), StoreError> {
    assert!(
        mtm.axiom(axiom).is_some(),
        "axiom `{axiom}` is not part of {}",
        mtm.name()
    );
    let fp = suite_fingerprint(mtm, axiom, opts);
    let mut status = CacheStatus::Miss;
    if store.contains(fp) {
        match read_entry(store, fp, axiom) {
            Ok(suite) => return Ok((suite, CacheStatus::Hit)),
            Err(StoreError::Io(e)) => return Err(StoreError::Io(e)),
            Err(invalid) => {
                store.remove(fp)?;
                status = CacheStatus::Rebuilt {
                    reason: invalid.to_string(),
                };
            }
        }
    }

    let pending = store.begin(fp, EntryMeta::describe(mtm, axiom, opts))?;
    let stats = synthesize_suite_streamed(mtm, axiom, opts, jobs, &pending);
    if stats.timed_out {
        let suite = pending.into_suite(&stats)?;
        return Ok((
            suite,
            CacheStatus::Uncached {
                reason: "synthesis timed out; partial suites are never cached".into(),
            },
        ));
    }
    pending.seal(&stats)?;
    let suite = read_entry(store, fp, axiom)?;
    Ok((suite, status))
}

/// Reads and fully validates one sealed entry, also cross-checking that
/// its metadata names the expected axiom (a fingerprint collision or a
/// renamed file would otherwise serve the wrong suite).
fn read_entry(store: &Store, fp: Fingerprint, axiom: &str) -> Result<Suite, StoreError> {
    let reader = store.open_suite(fp)?;
    if reader.meta().axiom != axiom {
        return Err(StoreError::Corrupt(format!(
            "entry is for axiom `{}`, expected `{axiom}`",
            reader.meta().axiom
        )));
    }
    read_suite(reader)
}
