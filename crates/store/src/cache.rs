//! The caching policy over the store: serve sealed suites, stream cold
//! runs into new entries, and rebuild — never serve — damaged ones.
//!
//! Both temperatures serve the suite *from the sealed artifact*: a cold
//! run synthesizes through the shard-streaming sink, seals, and then
//! reads its own entry back. A warm run therefore reproduces the cold
//! run's output byte for byte (statistics included — `elapsed` is the
//! recorded synthesis time, not the read time), which is what makes
//! cached results indistinguishable from fresh ones.
//!
//! This module is the *local-only* policy; [`crate::tier`] layers an
//! optional shared remote tier (read-through, push-on-seal) behind the
//! same contract.

use crate::store::{Store, StoreError};
use transform_core::axiom::Mtm;
use transform_synth::{Suite, SynthOptions};

/// How a cached lookup was satisfied.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum CacheStatus {
    /// Served from an existing sealed entry in the local tier.
    Hit,
    /// Served from the remote tier: the sealed bytes were fetched,
    /// fully validated into the local tier (read-through population),
    /// and streamed from there — the next lookup is a local [`Hit`].
    ///
    /// [`Hit`]: CacheStatus::Hit
    RemoteHit,
    /// No entry existed anywhere; synthesized and sealed.
    Miss,
    /// An entry existed but failed validation; it was deleted and the
    /// suite resynthesized and re-sealed.
    Rebuilt {
        /// What the validation failure was.
        reason: String,
    },
    /// Synthesized but *not* sealed (the run timed out, so the suite is
    /// partial and must never be served from cache).
    Uncached {
        /// Why the result was not persisted.
        reason: String,
    },
}

impl CacheStatus {
    /// Whether the suite came from a *local* sealed entry without
    /// synthesis or a remote fetch.
    pub fn is_hit(&self) -> bool {
        matches!(self, CacheStatus::Hit)
    }

    /// Whether the suite was served from the remote tier (and installed
    /// into the local one along the way).
    pub fn is_remote_hit(&self) -> bool {
        matches!(self, CacheStatus::RemoteHit)
    }
}

/// Serves the per-axiom suite from the store, synthesizing (and
/// sealing) on a miss. Corrupt, truncated, or version-mismatched
/// entries are detected by checksums, deleted, and transparently
/// rebuilt.
///
/// This is the local-only path — [`crate::TieredCache`] adds a shared
/// remote tier between the local store and synthesis.
///
/// # Errors
///
/// Only genuine i/o failures (unreadable store directory, failed
/// writes) surface as errors; validation failures are handled by
/// rebuilding.
///
/// # Panics
///
/// Panics when `axiom` is not part of `mtm` (as every synthesis entry
/// point does).
pub fn cached_or_synthesize(
    store: &Store,
    mtm: &Mtm,
    axiom: &str,
    opts: &SynthOptions,
    jobs: usize,
) -> Result<(Suite, CacheStatus), StoreError> {
    crate::tier::run_tiered(
        store,
        None,
        mtm,
        axiom,
        opts,
        jobs,
        None,
        crate::tier::WarmMode::Off,
    )
}

/// [`cached_or_synthesize`] with live telemetry: a cache hit marks the
/// axiom's progress slot cached, a miss publishes the synthesis run's
/// counters into `progress` as it executes. See
/// [`transform_par::ProgressState`].
///
/// # Errors
///
/// Only genuine i/o failures, exactly like [`cached_or_synthesize`].
///
/// # Panics
///
/// Panics when `axiom` is not part of `mtm`.
pub fn cached_or_synthesize_observed(
    store: &Store,
    mtm: &Mtm,
    axiom: &str,
    opts: &SynthOptions,
    jobs: usize,
    progress: &std::sync::Arc<transform_par::ProgressState>,
) -> Result<(Suite, CacheStatus), StoreError> {
    crate::tier::run_tiered(
        store,
        None,
        mtm,
        axiom,
        opts,
        jobs,
        Some(progress),
        crate::tier::WarmMode::Off,
    )
}

/// Serves **every** per-axiom suite of `mtm` from the store in one
/// pass: tier hits stream from their sealed entries, and all the
/// misses are synthesized together in one fused streamed run — the
/// program space is enumerated once, and each missing axiom's suite is
/// sealed the moment that axiom finishes, not when the whole run
/// drains. The local-only counterpart of
/// [`crate::TieredCache::cached_or_synthesize_all`].
///
/// # Errors
///
/// Only genuine i/o failures, exactly like [`cached_or_synthesize`].
pub fn cached_or_synthesize_all(
    store: &Store,
    mtm: &Mtm,
    opts: &SynthOptions,
    jobs: usize,
) -> Result<std::collections::BTreeMap<String, (Suite, CacheStatus)>, StoreError> {
    crate::tier::run_tiered_all(
        store,
        None,
        mtm,
        opts,
        jobs,
        None,
        crate::tier::WarmMode::Off,
    )
}

/// [`cached_or_synthesize_all`] with live telemetry: cache-served
/// axioms are marked cached in `progress` as their lookups resolve, and
/// the misses' one fused run publishes its counters while it executes —
/// so an observer renders cached and live axioms distinctly.
///
/// # Errors
///
/// Only genuine i/o failures, exactly like [`cached_or_synthesize`].
pub fn cached_or_synthesize_all_observed(
    store: &Store,
    mtm: &Mtm,
    opts: &SynthOptions,
    jobs: usize,
    progress: &std::sync::Arc<transform_par::ProgressState>,
) -> Result<std::collections::BTreeMap<String, (Suite, CacheStatus)>, StoreError> {
    crate::tier::run_tiered_all(
        store,
        None,
        mtm,
        opts,
        jobs,
        Some(progress),
        crate::tier::WarmMode::Off,
    )
}
