//! The on-disk store: shard-streaming writes, a sealed canonical index
//! per suite, and checksum-validated streaming reads.
//!
//! # Layout
//!
//! One directory holds everything. A sealed suite is a single file named
//! by its [`Fingerprint`]:
//!
//! ```text
//! store/
//!   3f9c…e2a1.tfs            sealed suite (canonical order, checksummed)
//!   tmp-3f9c…e2a1-1234/      an in-progress synthesis (pid-suffixed)
//!     shard-0007.bin         one worker-written shard
//! ```
//!
//! Workers append `shard-*.bin` files as shards retire (the
//! [`transform_par::SuiteSink`] implementation on [`PendingSuite`]);
//! [`PendingSuite::seal`] merges them — sorting the framed records by
//! plan index *without decoding payloads* — into the suite file, then
//! atomically renames it into place. A crash before `seal` leaves only
//! a `tmp-*` directory, which never shadows a sealed entry.
//!
//! # Integrity
//!
//! Every layer is checksummed with FNV-1a 64: the header (magic,
//! version, metadata, statistics, record count), each record payload,
//! and a trailer folding all record checksums. Readers verify the
//! header before returning, each record as it streams, and the trailer
//! at the end — so flipped bytes, truncation, and version skew all
//! surface as [`StoreError`]s, and the cache layer resynthesizes
//! instead of serving damage.

use crate::codec::{
    self, decode_record, decode_suite_stats, encode_record, encode_shard_stats, encode_suite_stats,
    fnv1a64, CodecError, Dec, Enc, Fnv64, FORMAT_VERSION,
};
use crate::fingerprint::Fingerprint;
use std::error::Error;
use std::fmt;
use std::fs::{self, File};
use std::io::{BufReader, Read};
use std::path::{Path, PathBuf};
use std::sync::Mutex;
use transform_core::axiom::Mtm;
use transform_par::SuiteSink;
use transform_synth::{ShardStats, Suite, SuiteRecord, SuiteStats, SynthOptions};

pub(crate) const SUITE_MAGIC: &[u8; 8] = b"TFSUITE\0";
const SHARD_MAGIC: &[u8; 8] = b"TFSHARD\0";
const SUITE_EXT: &str = "tfs";
/// Extension of admission-digest artifacts (`<fingerprint>.tfd`).
const DIGEST_EXT: &str = "tfd";

/// A store failure.
#[derive(Debug)]
pub enum StoreError {
    /// Filesystem trouble (missing file, permissions, disk full).
    Io(std::io::Error),
    /// The file was written by a different format version.
    Version {
        /// The version found in the file.
        found: u32,
    },
    /// The file's bytes fail validation: bad magic, checksum mismatch,
    /// truncation, or undecodable structure.
    Corrupt(String),
    /// A remote cache tier misbehaved: unreachable host, malformed
    /// response, or an unexpected status. Remote failures are soft for
    /// the tiered read path (it falls through to synthesis) but surface
    /// directly from explicit `store push`/`store pull` operations.
    Remote(String),
    /// A warm start was demanded (`--warm-start` without `auto`) but
    /// its prerequisites — the sealed bound-N−1 parent suite and its
    /// admission digest — were unavailable or inconsistent. The
    /// `auto` mode turns every such condition into a cold run instead.
    WarmStart(String),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store i/o: {e}"),
            StoreError::Version { found } => write!(
                f,
                "store format version {found} (this build reads {FORMAT_VERSION})"
            ),
            StoreError::Corrupt(m) => write!(f, "store entry corrupt: {m}"),
            StoreError::Remote(m) => write!(f, "remote cache: {m}"),
            StoreError::WarmStart(m) => write!(f, "warm start unavailable: {m}"),
        }
    }
}

impl Error for StoreError {}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> StoreError {
        StoreError::Io(e)
    }
}

impl From<CodecError> for StoreError {
    fn from(e: CodecError) -> StoreError {
        StoreError::Corrupt(e.to_string())
    }
}

/// The human-readable key of a sealed entry, stored alongside the
/// fingerprint so `query`/`export` can filter without recomputing keys.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct EntryMeta {
    /// The MTM's name (`mtm <name> { … }`).
    pub mtm: String,
    /// The axiom the suite violates.
    pub axiom: String,
    /// The instruction bound.
    pub bound: usize,
    /// The enumeration thread cap, if any.
    pub max_threads: Option<usize>,
    /// Whether `MFENCE` was in the program space.
    pub allow_fences: bool,
    /// Whether RMW pairs were in the program space.
    pub allow_rmw: bool,
    /// Whether identity remaps were in the program space.
    pub allow_identity_remap: bool,
    /// Whether symmetry reduction was applied.
    pub symmetry_reduction: bool,
    /// The candidate-execution backend tag.
    pub backend: String,
}

impl EntryMeta {
    /// Describes one synthesis run's key parameters.
    pub fn describe(mtm: &Mtm, axiom: &str, opts: &SynthOptions) -> EntryMeta {
        let e = &opts.enumeration;
        EntryMeta {
            mtm: mtm.name().to_string(),
            axiom: axiom.to_string(),
            bound: e.bound,
            max_threads: e.max_threads,
            allow_fences: e.allow_fences,
            allow_rmw: e.allow_rmw,
            allow_identity_remap: e.allow_identity_remap,
            symmetry_reduction: e.symmetry_reduction,
            backend: crate::fingerprint::backend_tag(opts.backend).to_string(),
        }
    }

    pub(crate) fn encode(&self, e: &mut Enc) {
        e.string(&self.mtm);
        e.string(&self.axiom);
        e.size(self.bound);
        match self.max_threads {
            Some(t) => {
                e.boolean(true);
                e.size(t);
            }
            None => e.boolean(false),
        }
        e.boolean(self.allow_fences);
        e.boolean(self.allow_rmw);
        e.boolean(self.allow_identity_remap);
        e.boolean(self.symmetry_reduction);
        e.string(&self.backend);
    }

    pub(crate) fn decode(d: &mut Dec<'_>) -> Result<EntryMeta, CodecError> {
        Ok(EntryMeta {
            mtm: d.string()?,
            axiom: d.string()?,
            bound: d.size()?,
            max_threads: if d.boolean()? { Some(d.size()?) } else { None },
            allow_fences: d.boolean()?,
            allow_rmw: d.boolean()?,
            allow_identity_remap: d.boolean()?,
            symmetry_reduction: d.boolean()?,
            backend: d.string()?,
        })
    }
}

/// The persistent suite store rooted at one directory.
pub struct Store {
    root: PathBuf,
}

impl Store {
    /// Opens (creating if needed) a store directory.
    ///
    /// # Errors
    ///
    /// Returns the underlying error when the directory cannot be
    /// created.
    pub fn open(dir: impl AsRef<Path>) -> Result<Store, StoreError> {
        let root = dir.as_ref().to_path_buf();
        fs::create_dir_all(&root)?;
        Ok(Store { root })
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The sealed-suite path of a fingerprint.
    pub fn entry_path(&self, fp: Fingerprint) -> PathBuf {
        self.root.join(format!("{}.{SUITE_EXT}", fp.hex()))
    }

    /// Whether a sealed entry exists for `fp` (validity is established
    /// by reading it).
    pub fn contains(&self, fp: Fingerprint) -> bool {
        self.entry_path(fp).is_file()
    }

    /// Opens a sealed entry for streaming reads, validating magic,
    /// version, and the header checksum up front. Delta entries are
    /// materialized transparently — the parent chain is resolved
    /// through this store and validated link by link, so the reader is
    /// indistinguishable from one over a full entry.
    ///
    /// # Errors
    ///
    /// [`StoreError::Version`] on format skew, [`StoreError::Corrupt`]
    /// on a damaged header or a broken delta chain (missing, corrupt,
    /// or over-deep parents), [`StoreError::Io`] when the file is
    /// missing or unreadable.
    pub fn open_suite(&self, fp: Fingerprint) -> Result<SuiteReader, StoreError> {
        let path = self.entry_path(fp);
        let mut head = [0u8; 8];
        let sniffed = File::open(&path)?.read(&mut head)?;
        if crate::delta::is_delta(&head[..sniffed]) {
            let bytes = fs::read(&path)?;
            let full = crate::delta::materialize(self, &bytes, Some(fp))?;
            return SuiteReader::open_bytes(full, Some(fp));
        }
        SuiteReader::open(&path, Some(fp))
    }

    /// Whether the sealed entry for `fp` is delta-encoded (`None` when
    /// no entry exists). Sniffs the magic only; validity is established
    /// by reading.
    ///
    /// # Errors
    ///
    /// Returns the underlying error when the entry cannot be read.
    pub fn entry_is_delta(&self, fp: Fingerprint) -> Result<Option<bool>, StoreError> {
        let mut head = [0u8; 8];
        match File::open(self.entry_path(fp)) {
            Ok(mut f) => {
                let n = f.read(&mut head)?;
                Ok(Some(crate::delta::is_delta(&head[..n])))
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e.into()),
        }
    }

    /// Deletes the sealed entry for `fp`, if present — the cache layer's
    /// response to a corrupt read. The entry's admission digest (if any)
    /// goes with it; a digest without its entry is meaningless.
    ///
    /// # Errors
    ///
    /// Returns the underlying error when deletion itself fails.
    pub fn remove(&self, fp: Fingerprint) -> Result<(), StoreError> {
        match fs::remove_file(self.digest_path(fp)) {
            Ok(()) => {}
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(e.into()),
        }
        match fs::remove_file(self.entry_path(fp)) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(e.into()),
        }
    }

    /// The admission-digest path of a fingerprint.
    pub fn digest_path(&self, fp: Fingerprint) -> PathBuf {
        self.root.join(format!("{}.{DIGEST_EXT}", fp.hex()))
    }

    /// Writes (atomically) the admission digest for the sealed entry
    /// `fp` — the warm-start seed the next bound replays.
    ///
    /// # Errors
    ///
    /// Returns the underlying error when staging or renaming fails.
    pub fn write_digest(
        &self,
        fp: Fingerprint,
        digest: &crate::delta::Digest,
    ) -> Result<(), StoreError> {
        static NONCE: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let nonce = NONCE.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let staged = self.root.join(format!(
            "tmp-digest-{}-{}-{nonce}",
            fp.hex(),
            std::process::id()
        ));
        fs::write(&staged, crate::delta::encode_digest(fp, digest))?;
        fs::rename(&staged, self.digest_path(fp))?;
        Ok(())
    }

    /// Reads and validates the admission digest for `fp`, or `None`
    /// when no digest was recorded. A damaged digest is an error —
    /// callers fall back to a cold run, never to a wrong warm one.
    ///
    /// # Errors
    ///
    /// [`StoreError::Corrupt`]/[`StoreError::Version`] when the digest
    /// fails validation; [`StoreError::Io`] on read trouble.
    pub fn read_digest(&self, fp: Fingerprint) -> Result<Option<crate::delta::Digest>, StoreError> {
        match fs::read(self.digest_path(fp)) {
            Ok(bytes) => crate::delta::decode_digest(&bytes, fp).map(Some),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e.into()),
        }
    }

    /// The raw encoded digest bytes for `fp`, or `None` when no digest
    /// was recorded — the wire form `GET /v1/digest/<fp>` serves.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on read trouble other than absence.
    pub fn digest_bytes(&self, fp: Fingerprint) -> Result<Option<Vec<u8>>, StoreError> {
        match fs::read(self.digest_path(fp)) {
            Ok(bytes) => Ok(Some(bytes)),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e.into()),
        }
    }

    /// Validates and installs digest bytes received over the wire
    /// (`PUT /v1/digest/<fp>`, or a digest-aware `store pull`): the
    /// bytes must decode as a digest for exactly `fp` before anything
    /// lands on disk, then install atomically like [`Store::write_digest`].
    ///
    /// # Errors
    ///
    /// [`StoreError::Corrupt`]/[`StoreError::Version`] when the bytes
    /// fail validation; [`StoreError::Io`] when staging or renaming
    /// fails.
    pub fn install_digest_bytes(&self, fp: Fingerprint, bytes: &[u8]) -> Result<(), StoreError> {
        crate::delta::decode_digest(bytes, fp)?;
        static NONCE: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let nonce = NONCE.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let staged = self.root.join(format!(
            "tmp-digest-{}-{}-{nonce}",
            fp.hex(),
            std::process::id()
        ));
        fs::write(&staged, bytes)?;
        fs::rename(&staged, self.digest_path(fp))?;
        Ok(())
    }

    /// Digest artifacts whose sealed entry is gone — leftovers `store
    /// gc` sweeps.
    ///
    /// # Errors
    ///
    /// Returns the underlying error when the directory is unreadable.
    pub fn orphan_digests(&self) -> Result<Vec<Fingerprint>, StoreError> {
        let mut out = Vec::new();
        for entry in fs::read_dir(&self.root)? {
            let path = entry?.path();
            if path.extension().and_then(|e| e.to_str()) != Some(DIGEST_EXT) {
                continue;
            }
            if let Some(fp) = path
                .file_stem()
                .and_then(|s| s.to_str())
                .and_then(Fingerprint::from_hex)
            {
                if !self.contains(fp) {
                    out.push(fp);
                }
            }
        }
        out.sort();
        Ok(out)
    }

    /// Every sealed fingerprint in the store, sorted. Files with
    /// non-fingerprint names are ignored (they are not store entries);
    /// validity of each entry is established only when it is read.
    ///
    /// # Errors
    ///
    /// Returns the underlying error when the directory is unreadable.
    pub fn entries(&self) -> Result<Vec<Fingerprint>, StoreError> {
        let mut out = Vec::new();
        for entry in fs::read_dir(&self.root)? {
            let path = entry?.path();
            if path.extension().and_then(|e| e.to_str()) != Some(SUITE_EXT) {
                continue;
            }
            if let Some(fp) = path
                .file_stem()
                .and_then(|s| s.to_str())
                .and_then(Fingerprint::from_hex)
            {
                out.push(fp);
            }
        }
        out.sort();
        Ok(out)
    }

    /// The store's advisory entry index, when present and exactly in
    /// sync with the sealed entries on disk (sorted by fingerprint, like
    /// [`Store::entries`]). `None` — missing, corrupt, version-skewed,
    /// or stale — means "scan entry headers instead"; serving decisions
    /// never rest on the index alone.
    ///
    /// The index is rewritten atomically on every seal and by
    /// [`Store::rebuild_index`].
    pub fn read_index(&self) -> Option<Vec<crate::index::IndexEntry>> {
        let sealed = self.entries().ok()?;
        crate::index::read_valid(&self.root, &sealed)
    }

    /// Rebuilds the index from the sealed entries' headers, atomically.
    /// Unreadable entries are skipped (scans will keep surfacing them).
    /// Returns the number of entries indexed.
    ///
    /// # Errors
    ///
    /// Returns the underlying error when the directory listing or the
    /// index write fails.
    pub fn rebuild_index(&self) -> Result<usize, StoreError> {
        let mut entries = Vec::new();
        for fp in self.entries()? {
            if let Ok(reader) = self.open_suite(fp) {
                entries.push(crate::index::IndexEntry {
                    fingerprint: fp,
                    meta: reader.meta().clone(),
                });
            }
        }
        crate::index::write(&self.root, &entries)?;
        Ok(entries.len())
    }

    /// The raw bytes of a sealed entry, or `None` when no entry exists
    /// for `fp` — the payload `store push` and the HTTP server transfer.
    /// The bytes are the self-validating sealed format; this does *not*
    /// re-validate them (receivers always do, via
    /// [`Store::install_bytes`] or a [`SuiteReader`]).
    ///
    /// # Errors
    ///
    /// Returns the underlying error when the entry exists but cannot be
    /// read.
    pub fn entry_bytes(&self, fp: Fingerprint) -> Result<Option<Vec<u8>>, StoreError> {
        match fs::read(self.entry_path(fp)) {
            Ok(bytes) => Ok(Some(bytes)),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e.into()),
        }
    }

    /// Installs sealed-suite bytes received from elsewhere (a remote
    /// cache tier, an HTTP `PUT`) as the entry for `fp`, after *fully*
    /// validating them: magic, version, header checksum, the
    /// fingerprint recorded in the header (which must equal `fp`),
    /// every record checksum, and the trailer. Nothing is published on
    /// any failure — corrupt remote bytes can never become a servable
    /// entry.
    ///
    /// Delta-entry bytes are validated by materializing them against
    /// this store, so a delta whose parent is not already installed
    /// locally is refused (`delta parent … not in store`) — install
    /// parents first.
    ///
    /// Installation is idempotent: entries are content-addressed and
    /// immutable, so re-installing an existing fingerprint atomically
    /// replaces the file with identical content.
    ///
    /// # Errors
    ///
    /// [`StoreError::Corrupt`]/[`StoreError::Version`] when the bytes
    /// fail validation; [`StoreError::Io`] when staging or renaming
    /// fails.
    pub fn install_bytes(&self, fp: Fingerprint, bytes: &[u8]) -> Result<(), StoreError> {
        // pid + nonce: concurrent installers of the same entry stage to
        // disjoint files; every rename publishes identical content.
        static NONCE: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let nonce = NONCE.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let staged = self.root.join(format!(
            "tmp-install-{}-{}-{nonce}",
            fp.hex(),
            std::process::id()
        ));
        fs::write(&staged, bytes)?;
        let validated = (|| -> Result<EntryMeta, StoreError> {
            if crate::delta::is_delta(bytes) {
                let full = crate::delta::materialize(self, bytes, Some(fp))?;
                let mut reader = SuiteReader::open_bytes(full, Some(fp))?;
                let meta = reader.meta().clone();
                for record in reader.by_ref() {
                    record?;
                }
                return Ok(meta);
            }
            let mut reader = SuiteReader::open(&staged, Some(fp))?;
            let meta = reader.meta().clone();
            for record in reader.by_ref() {
                record?;
            }
            Ok(meta)
        })();
        match validated {
            Ok(meta) => {
                fs::rename(&staged, self.entry_path(fp))?;
                crate::index::update_on_seal(&self.root, fp, &meta);
                Ok(())
            }
            Err(e) => {
                let _ = fs::remove_file(&staged);
                Err(e)
            }
        }
    }

    /// The last-modified time of a sealed entry — the age `store gc`
    /// filters on.
    ///
    /// # Errors
    ///
    /// Returns the underlying error when the entry is missing or its
    /// metadata is unreadable.
    pub fn entry_mtime(&self, fp: Fingerprint) -> Result<std::time::SystemTime, StoreError> {
        Ok(fs::metadata(self.entry_path(fp))?.modified()?)
    }

    /// Leftover `tmp-*` entries from crashed or in-flight runs: shard
    /// directories and index staging files. `store gc` removes them;
    /// callers must ensure no synthesis is currently streaming into the
    /// store.
    ///
    /// # Errors
    ///
    /// Returns the underlying error when the directory is unreadable.
    pub fn stale_tmp_entries(&self) -> Result<Vec<PathBuf>, StoreError> {
        let mut out = Vec::new();
        for entry in fs::read_dir(&self.root)? {
            let path = entry?.path();
            let is_tmp = path
                .file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("tmp-"));
            if is_tmp {
                out.push(path);
            }
        }
        out.sort();
        Ok(out)
    }

    /// Removes every [`Store::stale_tmp_entries`] path, returning how
    /// many were swept.
    ///
    /// # Errors
    ///
    /// Returns the underlying error when a removal fails.
    pub fn sweep_tmp(&self) -> Result<usize, StoreError> {
        let paths = self.stale_tmp_entries()?;
        let count = paths.len();
        for path in paths {
            if path.is_dir() {
                fs::remove_dir_all(&path)?;
            } else {
                fs::remove_file(&path)?;
            }
        }
        Ok(count)
    }

    /// Starts an in-progress entry: a temporary shard directory workers
    /// stream into, sealed atomically by [`PendingSuite::seal`].
    ///
    /// # Errors
    ///
    /// Returns the underlying error when the directory cannot be
    /// created.
    pub fn begin(&self, fp: Fingerprint, meta: EntryMeta) -> Result<PendingSuite, StoreError> {
        // pid + per-process nonce: concurrent synthesis of the same key
        // (two threads, two processes) stream into disjoint directories;
        // the last seal wins the atomic rename with identical content.
        static NONCE: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let nonce = NONCE.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let dir = self
            .root
            .join(format!("tmp-{}-{}-{nonce}", fp.hex(), std::process::id()));
        // A stale directory from a crashed run of this same pid/nonce is
        // re-created fresh; shards would otherwise double-count.
        if dir.exists() {
            fs::remove_dir_all(&dir)?;
        }
        fs::create_dir_all(&dir)?;
        Ok(PendingSuite {
            root: self.root.clone(),
            dir,
            fp,
            meta,
            write_error: Mutex::new(None),
            sealed: false,
        })
    }
}

pub(crate) fn header_bytes(
    fp: Fingerprint,
    meta: &EntryMeta,
    stats: &SuiteStats,
    records: u64,
) -> Vec<u8> {
    let mut e = Enc::new();
    e.u64((fp.0 >> 64) as u64);
    e.u64(fp.0 as u64);
    meta.encode(&mut e);
    encode_suite_stats(&mut e, stats);
    e.varint(records);
    e.into_bytes()
}

/// A merged shard set: per-shard counters plus the still-encoded
/// record payloads, keyed and sorted by plan index.
type MergedShards = (Vec<ShardStats>, Vec<(u64, Vec<u8>)>);

/// An in-progress store entry: the [`SuiteSink`] parallel synthesis
/// streams into, and the seal step that turns shard files into the
/// canonical suite file.
pub struct PendingSuite {
    root: PathBuf,
    dir: PathBuf,
    fp: Fingerprint,
    meta: EntryMeta,
    /// The first shard-write failure, surfaced at seal time (the sink
    /// trait has no error channel — workers must not panic).
    write_error: Mutex<Option<String>>,
    sealed: bool,
}

impl SuiteSink for PendingSuite {
    fn shard_done(&self, stats: ShardStats, records: Vec<SuiteRecord>) {
        let mut e = Enc::new();
        e.raw(SHARD_MAGIC);
        e.u32(FORMAT_VERSION);
        e.u64((self.fp.0 >> 64) as u64);
        e.u64(self.fp.0 as u64);
        for record in &records {
            let payload = encode_record(record);
            e.u8(1);
            e.varint(record.index as u64);
            e.size(payload.len());
            let checksum = fnv1a64(&payload);
            e.raw(&payload);
            e.u64(checksum);
        }
        let mut stats_enc = Enc::new();
        encode_shard_stats(&mut stats_enc, &stats);
        let stats_payload = stats_enc.into_bytes();
        e.u8(0);
        e.size(stats_payload.len());
        let checksum = fnv1a64(&stats_payload);
        e.raw(&stats_payload);
        e.u64(checksum);

        let path = self.dir.join(format!("shard-{:04}.bin", stats.shard));
        if let Err(err) = fs::write(&path, e.into_bytes()) {
            let mut slot = self.write_error.lock().expect("error lock never poisoned");
            slot.get_or_insert_with(|| format!("writing {}: {err}", path.display()));
        }
    }
}

impl PendingSuite {
    /// Reads the streamed shard files back: per-shard counters and the
    /// framed record payloads, still encoded, sorted by plan index.
    fn merge(&self) -> Result<MergedShards, StoreError> {
        if let Some(err) = self
            .write_error
            .lock()
            .expect("error lock never poisoned")
            .take()
        {
            return Err(StoreError::Io(std::io::Error::other(err)));
        }
        let mut shard_paths: Vec<PathBuf> = fs::read_dir(&self.dir)?
            .map(|entry| entry.map(|e| e.path()))
            .collect::<Result<_, _>>()?;
        shard_paths.sort();
        let mut shards = Vec::new();
        let mut records: Vec<(u64, Vec<u8>)> = Vec::new();
        for path in shard_paths {
            let bytes = fs::read(&path)?;
            let mut d = Dec::new(&bytes);
            let magic = d.bytes(8).map_err(StoreError::from)?;
            if magic != SHARD_MAGIC.as_slice() {
                return Err(StoreError::Corrupt(format!(
                    "{}: bad shard magic",
                    path.display()
                )));
            }
            let version = d.u32().map_err(StoreError::from)?;
            if version != FORMAT_VERSION {
                return Err(StoreError::Version { found: version });
            }
            let hi = d.u64().map_err(StoreError::from)?;
            let lo = d.u64().map_err(StoreError::from)?;
            if Fingerprint((u128::from(hi) << 64) | u128::from(lo)) != self.fp {
                return Err(StoreError::Corrupt(format!(
                    "{}: shard belongs to a different suite",
                    path.display()
                )));
            }
            loop {
                match d.u8().map_err(StoreError::from)? {
                    1 => {
                        let index = d.varint().map_err(StoreError::from)?;
                        let (payload, checksum) = read_framed(&mut d)?;
                        if fnv1a64(&payload) != checksum {
                            return Err(StoreError::Corrupt(format!(
                                "{}: shard record checksum mismatch",
                                path.display()
                            )));
                        }
                        records.push((index, payload));
                    }
                    0 => {
                        let (payload, checksum) = read_framed(&mut d)?;
                        if fnv1a64(&payload) != checksum {
                            return Err(StoreError::Corrupt(format!(
                                "{}: shard stats checksum mismatch",
                                path.display()
                            )));
                        }
                        let mut sd = Dec::new(&payload);
                        shards.push(codec::decode_shard_stats(&mut sd).map_err(StoreError::from)?);
                        if !d.at_end() {
                            return Err(StoreError::Corrupt(format!(
                                "{}: bytes after shard trailer",
                                path.display()
                            )));
                        }
                        break;
                    }
                    t => {
                        return Err(StoreError::Corrupt(format!(
                            "{}: invalid shard frame tag {t}",
                            path.display()
                        )))
                    }
                }
            }
        }
        shards.sort_by_key(|s| s.shard);
        records.sort_by_key(|&(index, _)| index);
        if records.windows(2).any(|w| w[0].0 == w[1].0) {
            return Err(StoreError::Corrupt("duplicate plan index in shards".into()));
        }
        Ok((shards, records))
    }

    /// Merges the shard files into the sealed canonical suite file and
    /// atomically publishes it. `stats` are the run's counters, as
    /// returned by [`transform_par::synthesize_suite_streamed`].
    ///
    /// Timed-out (partial) runs must never be sealed — a cache hit on a
    /// partial suite would silently drop members forever.
    ///
    /// # Errors
    ///
    /// Surfaces shard-write failures, unreadable shard files, and final
    /// write/rename failures.
    ///
    /// # Panics
    ///
    /// Panics when `stats.timed_out` is set.
    pub fn seal(mut self, stats: &SuiteStats) -> Result<Fingerprint, StoreError> {
        assert!(!stats.timed_out, "refusing to seal a partial suite");
        let (_, records) = self.merge()?;
        let mut e = Enc::new();
        e.raw(SUITE_MAGIC);
        e.u32(FORMAT_VERSION);
        let header = header_bytes(self.fp, &self.meta, stats, records.len() as u64);
        e.size(header.len());
        e.raw(&header);
        let mut checksum = Fnv64::new();
        checksum.update(SUITE_MAGIC);
        checksum.update(&FORMAT_VERSION.to_le_bytes());
        checksum.update(&header);
        e.u64(checksum.finish());
        let mut trailer = Fnv64::new();
        for (_, payload) in &records {
            e.size(payload.len());
            let record_checksum = fnv1a64(payload);
            e.raw(payload);
            e.u64(record_checksum);
            trailer.update(&record_checksum.to_le_bytes());
        }
        e.u64(trailer.finish());

        let staged = self.dir.join("suite.tfs");
        fs::write(&staged, e.into_bytes())?;
        let target = self.root.join(format!("{}.{SUITE_EXT}", self.fp.hex()));
        fs::rename(&staged, &target)?;
        // Fold the new entry into the store's advisory index (atomic
        // rewrite; best-effort — query/export fall back to scanning
        // headers when the index is missing or stale).
        crate::index::update_on_seal(&self.root, self.fp, &self.meta);
        self.sealed = true;
        let fp = self.fp;
        drop(self); // removes the temp directory
        Ok(fp)
    }

    /// Merges the shard files and seals them as a **delta entry**: the
    /// records at the plan indices in `parent_map` (the warm run's
    /// spliced parent records) are dropped from the payload — the
    /// parent link reproduces them at decode time — and only the
    /// records new at this bound are written. `parent_map` must be the
    /// strictly increasing child plan indices of the parent's records,
    /// exactly as reported by the warm run's
    /// [`transform_par::RunArtifacts`].
    ///
    /// Reading the sealed delta back (via [`Store::open_suite`])
    /// materializes bytes whose record region is identical to what
    /// [`PendingSuite::seal`] would have written for the same run.
    ///
    /// # Errors
    ///
    /// Surfaces shard failures like [`PendingSuite::seal`], plus
    /// [`StoreError::Corrupt`] when `parent_map` does not match the
    /// streamed records.
    ///
    /// # Panics
    ///
    /// Panics when `stats.timed_out` is set.
    pub fn seal_delta(
        mut self,
        stats: &SuiteStats,
        parent: Fingerprint,
        parent_map: &[u64],
    ) -> Result<Fingerprint, StoreError> {
        assert!(!stats.timed_out, "refusing to seal a partial suite");
        let (_, records) = self.merge()?;
        if parent_map.windows(2).any(|w| w[0] >= w[1]) {
            return Err(StoreError::Corrupt(
                "parent map not strictly increasing".into(),
            ));
        }
        let mut new_records =
            Vec::with_capacity(records.len() - parent_map.len().min(records.len()));
        let mut mi = 0usize;
        for (index, payload) in records {
            if mi < parent_map.len() && parent_map[mi] == index {
                mi += 1;
            } else {
                new_records.push((index, payload));
            }
        }
        if mi != parent_map.len() {
            return Err(StoreError::Corrupt(format!(
                "parent map names {} plan indices absent from the run",
                parent_map.len() - mi
            )));
        }
        let bytes = crate::delta::encode_delta(
            self.fp,
            parent,
            &self.meta,
            stats,
            parent_map,
            &new_records,
        );
        let staged = self.dir.join("suite.tfs");
        fs::write(&staged, bytes)?;
        let target = self.root.join(format!("{}.{SUITE_EXT}", self.fp.hex()));
        fs::rename(&staged, &target)?;
        crate::index::update_on_seal(&self.root, self.fp, &self.meta);
        self.sealed = true;
        let fp = self.fp;
        drop(self);
        Ok(fp)
    }

    /// Assembles the in-memory suite from the shard files *without*
    /// sealing — the path for timed-out (partial) runs, which are
    /// returned to the caller but never persisted.
    ///
    /// # Errors
    ///
    /// Surfaces shard-write failures and undecodable shard files.
    pub fn into_suite(self, stats: &SuiteStats) -> Result<Suite, StoreError> {
        let (_, records) = self.merge()?;
        let elts = records
            .into_iter()
            .map(|(_, payload)| decode_record(&payload).map(|r| r.elt))
            .collect::<Result<Vec<_>, _>>()
            .map_err(StoreError::from)?;
        Ok(Suite {
            axiom: self.meta.axiom.clone(),
            elts,
            stats: stats.clone(),
        })
    }
}

impl Drop for PendingSuite {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.dir);
    }
}

fn read_framed(d: &mut Dec<'_>) -> Result<(Vec<u8>, u64), StoreError> {
    let len = d
        .size_bounded(1 << 28, "frame payload")
        .map_err(StoreError::from)?;
    let payload = d.bytes(len).map_err(StoreError::from)?.to_vec();
    let checksum = d.u64().map_err(StoreError::from)?;
    Ok((payload, checksum))
}

fn read_exact_or_corrupt(r: &mut impl Read, buf: &mut [u8], what: &str) -> Result<(), StoreError> {
    r.read_exact(buf).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            StoreError::Corrupt(format!("truncated {what}"))
        } else {
            StoreError::Io(e)
        }
    })
}

fn read_varint_stream(r: &mut impl Read, what: &str) -> Result<u64, StoreError> {
    codec::decode_varint(
        || {
            let mut byte = [0u8; 1];
            read_exact_or_corrupt(r, &mut byte, what)?;
            Ok(byte[0])
        },
        || StoreError::Corrupt(format!("{what}: varint overflow")),
    )
}

/// A buffered streaming reader over one sealed suite: header metadata
/// and statistics up front, then one validated record at a time — a
/// cached suite can be filtered or re-printed without ever
/// materializing all of it.
pub struct SuiteReader {
    reader: Box<dyn Read + Send>,
    fingerprint: Fingerprint,
    meta: EntryMeta,
    stats: SuiteStats,
    record_count: u64,
    yielded: u64,
    trailer: Fnv64,
    finished: bool,
}

impl SuiteReader {
    fn open(path: &Path, expect: Option<Fingerprint>) -> Result<SuiteReader, StoreError> {
        SuiteReader::from_reader(Box::new(BufReader::new(File::open(path)?)), expect)
    }

    /// A reader over in-memory sealed-suite bytes — the serving path
    /// for materialized delta entries, validated identically to a file.
    pub(crate) fn open_bytes(
        bytes: Vec<u8>,
        expect: Option<Fingerprint>,
    ) -> Result<SuiteReader, StoreError> {
        SuiteReader::from_reader(Box::new(std::io::Cursor::new(bytes)), expect)
    }

    fn from_reader(
        mut reader: Box<dyn Read + Send>,
        expect: Option<Fingerprint>,
    ) -> Result<SuiteReader, StoreError> {
        let mut magic = [0u8; 8];
        read_exact_or_corrupt(&mut reader, &mut magic, "suite magic")?;
        if &magic != SUITE_MAGIC {
            return Err(StoreError::Corrupt("bad suite magic".into()));
        }
        let mut version_bytes = [0u8; 4];
        read_exact_or_corrupt(&mut reader, &mut version_bytes, "suite version")?;
        let version = u32::from_le_bytes(version_bytes);
        if version != FORMAT_VERSION {
            return Err(StoreError::Version { found: version });
        }
        let header_len = read_varint_stream(&mut reader, "header length")?;
        if header_len > 1 << 24 {
            return Err(StoreError::Corrupt("header length implausible".into()));
        }
        let mut header = vec![0u8; header_len as usize];
        read_exact_or_corrupt(&mut reader, &mut header, "suite header")?;
        let mut stored_checksum = [0u8; 8];
        read_exact_or_corrupt(&mut reader, &mut stored_checksum, "header checksum")?;
        let mut checksum = Fnv64::new();
        checksum.update(&magic);
        checksum.update(&version_bytes);
        checksum.update(&header);
        if checksum.finish() != u64::from_le_bytes(stored_checksum) {
            return Err(StoreError::Corrupt("header checksum mismatch".into()));
        }

        let mut d = Dec::new(&header);
        let hi = d.u64().map_err(StoreError::from)?;
        let lo = d.u64().map_err(StoreError::from)?;
        let fingerprint = Fingerprint((u128::from(hi) << 64) | u128::from(lo));
        if expect.is_some_and(|fp| fp != fingerprint) {
            return Err(StoreError::Corrupt(
                "entry fingerprint does not match its file name".into(),
            ));
        }
        let meta = EntryMeta::decode(&mut d).map_err(StoreError::from)?;
        let stats = decode_suite_stats(&mut d).map_err(StoreError::from)?;
        let record_count = d.varint().map_err(StoreError::from)?;
        if !d.at_end() {
            return Err(StoreError::Corrupt("trailing bytes in header".into()));
        }
        Ok(SuiteReader {
            reader,
            fingerprint,
            meta,
            stats,
            record_count,
            yielded: 0,
            trailer: Fnv64::new(),
            finished: false,
        })
    }

    /// The entry's fingerprint, as recorded in its header.
    pub fn fingerprint(&self) -> Fingerprint {
        self.fingerprint
    }

    /// The entry's key metadata.
    pub fn meta(&self) -> &EntryMeta {
        &self.meta
    }

    /// The sealed suite's work counters.
    pub fn stats(&self) -> &SuiteStats {
        &self.stats
    }

    /// Number of suite members in the entry.
    pub fn record_count(&self) -> u64 {
        self.record_count
    }

    fn next_validated(&mut self) -> Result<Option<SuiteRecord>, StoreError> {
        if self.finished {
            return Ok(None);
        }
        if self.yielded == self.record_count {
            // All records seen: the trailer must match the fold of their
            // checksums, and the file must end.
            let mut stored = [0u8; 8];
            read_exact_or_corrupt(&mut self.reader, &mut stored, "suite trailer")?;
            if self.trailer.finish() != u64::from_le_bytes(stored) {
                return Err(StoreError::Corrupt("suite trailer mismatch".into()));
            }
            let mut probe = [0u8; 1];
            match self.reader.read(&mut probe)? {
                0 => {
                    self.finished = true;
                    Ok(None)
                }
                _ => Err(StoreError::Corrupt("bytes after suite trailer".into())),
            }
        } else {
            let len = read_varint_stream(&mut self.reader, "record length")?;
            if len > 1 << 28 {
                return Err(StoreError::Corrupt("record length implausible".into()));
            }
            let mut payload = vec![0u8; len as usize];
            read_exact_or_corrupt(&mut self.reader, &mut payload, "record payload")?;
            let mut stored = [0u8; 8];
            read_exact_or_corrupt(&mut self.reader, &mut stored, "record checksum")?;
            let stored = u64::from_le_bytes(stored);
            if fnv1a64(&payload) != stored {
                return Err(StoreError::Corrupt("record checksum mismatch".into()));
            }
            self.trailer.update(&stored.to_le_bytes());
            self.yielded += 1;
            let record = decode_record(&payload).map_err(StoreError::from)?;
            Ok(Some(record))
        }
    }
}

impl Iterator for SuiteReader {
    type Item = Result<SuiteRecord, StoreError>;

    fn next(&mut self) -> Option<Self::Item> {
        match self.next_validated() {
            Ok(Some(record)) => Some(Ok(record)),
            Ok(None) => None,
            Err(e) => {
                // An error ends the stream; the cache layer discards the
                // entry and resynthesizes.
                self.finished = true;
                Some(Err(e))
            }
        }
    }
}

/// Fully reads a sealed suite, validating every record and the trailer.
///
/// # Errors
///
/// Any validation or i/o failure of any record.
pub fn read_suite(mut reader: SuiteReader) -> Result<Suite, StoreError> {
    let mut last_index = None;
    let mut elts = Vec::with_capacity(reader.record_count() as usize);
    let axiom = reader.meta().axiom.clone();
    let stats = reader.stats().clone();
    for record in reader.by_ref() {
        let record = record?;
        if last_index.is_some_and(|last| record.index <= last) {
            return Err(StoreError::Corrupt("records out of canonical order".into()));
        }
        last_index = Some(record.index);
        elts.push(record.elt);
    }
    Ok(Suite { axiom, elts, stats })
}
