//! The HTTP client side of a shared suite cache: a hand-rolled,
//! dependency-free HTTP/1.1 client over [`std::net::TcpStream`] that
//! speaks `transform-serve`'s tiny protocol.
//!
//! | request | meaning |
//! |---|---|
//! | `GET /healthz` | liveness + entry count |
//! | `GET /v1/index` | the store's entry index ([`crate::index::encode`] bytes) |
//! | `HEAD /v1/suite/<fingerprint>` | does a sealed entry exist? |
//! | `GET /v1/suite/<fingerprint>` | the sealed entry's bytes |
//! | `PUT /v1/suite/<fingerprint>` | upload a sealed entry (idempotent) |
//! | `GET /v1/runs` | recent run manifests ([`crate::journal::encode_run_list`] bytes) |
//! | `GET /v1/runs/<id>` | one run's full journal ([`crate::journal::encode_run`] bytes) |
//! | `PUT /v1/runs/<id>` | upload a run journal (rewritable — heartbeats) |
//! | `GET /v1/digest/<fingerprint>` | the sealed entry's admission digest |
//! | `PUT /v1/digest/<fingerprint>` | upload an admission digest (idempotent) |
//! | `POST /v1/jobs` | create a fleet job ([`crate::fleet::JobSpec`] bytes, idempotent) |
//! | `GET /v1/jobs/<id>` | fleet job progress (JSON) |
//! | `POST /v1/jobs/<id>/cut` | abandon a fleet job |
//! | `POST /v1/lease` | lease a partition range ([`crate::fleet::LeaseGrant`] bytes, 204 = no work) |
//! | `POST /v1/lease/<id>/heartbeat` | renew a lease |
//! | `PUT /v1/shard/<job>/<lo>-<hi>` | upload a shard result (idempotent) |
//!
//! Every payload is already self-validating (the sealed suite format and
//! the index encoding both carry checksums), so the transport adds no
//! integrity layer of its own: receivers validate what they got, exactly
//! as they would for local files. Requests are one-shot
//! (`Connection: close`) — suite transfers dominate any keep-alive
//! saving, and one connection per request keeps both ends trivial.

use crate::fingerprint::Fingerprint;
use crate::index::IndexEntry;
use crate::journal::RunManifest;
use crate::store::StoreError;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Largest response body the client will buffer (1 GiB) — far above any
/// real suite, low enough that a misbehaving server cannot exhaust
/// memory.
const MAX_BODY: u64 = 1 << 30;

/// The remote half of a tiered suite cache: one `transform serve`
/// endpoint, addressed as `http://host:port`.
#[derive(Clone, Debug)]
pub struct HttpTier {
    host: String,
    port: u16,
    timeout: Duration,
}

impl HttpTier {
    /// Parses `http://host:port` (an optional trailing `/` is allowed).
    ///
    /// # Errors
    ///
    /// [`StoreError::Remote`] when the URL is not of that shape.
    pub fn new(url: &str) -> Result<HttpTier, StoreError> {
        let rest = url
            .strip_prefix("http://")
            .ok_or_else(|| StoreError::Remote(format!("`{url}`: only http:// URLs are served")))?;
        let rest = rest.strip_suffix('/').unwrap_or(rest);
        let bad = || {
            StoreError::Remote(format!(
                "`{url}`: expected http://host:port (no path, no credentials)"
            ))
        };
        let (host, port) = rest.rsplit_once(':').ok_or_else(bad)?;
        if host.is_empty() || host.contains('/') || host.contains('@') {
            return Err(bad());
        }
        let port: u16 = port.parse().map_err(|_| bad())?;
        Ok(HttpTier {
            host: host.to_string(),
            port,
            timeout: Duration::from_secs(30),
        })
    }

    /// Overrides the per-request connect/read/write timeout (default
    /// 30 s).
    #[must_use]
    pub fn with_timeout(mut self, timeout: Duration) -> HttpTier {
        self.timeout = timeout;
        self
    }

    /// The endpoint in URL form, `http://host:port`.
    pub fn url(&self) -> String {
        format!("http://{}:{}", self.host, self.port)
    }

    /// One request/response exchange. Returns the status code and body.
    fn exchange(
        &self,
        method: &str,
        path: &str,
        body: Option<&[u8]>,
    ) -> Result<(u16, Vec<u8>), StoreError> {
        let remote =
            |e: std::io::Error| StoreError::Remote(format!("{method} {}{path}: {e}", self.url()));
        let mut stream = TcpStream::connect((self.host.as_str(), self.port)).map_err(remote)?;
        stream
            .set_read_timeout(Some(self.timeout))
            .map_err(remote)?;
        stream
            .set_write_timeout(Some(self.timeout))
            .map_err(remote)?;
        let mut request = format!(
            "{method} {path} HTTP/1.1\r\nHost: {}:{}\r\nConnection: close\r\n",
            self.host, self.port
        );
        if let Some(body) = body {
            request.push_str(&format!("Content-Length: {}\r\n", body.len()));
        }
        request.push_str("\r\n");
        stream.write_all(request.as_bytes()).map_err(remote)?;
        if let Some(body) = body {
            stream.write_all(body).map_err(remote)?;
        }

        let (status, headers, early_body) = read_head(&mut stream)
            .map_err(|e| StoreError::Remote(format!("{method} {}{path}: {e}", self.url())))?;
        let declared = content_length(&headers)
            .map_err(|e| StoreError::Remote(format!("{method} {}{path}: {e}", self.url())))?;
        let mut body = early_body;
        if method == "HEAD" {
            return Ok((status, Vec::new()));
        }
        match declared {
            Some(len) if len > MAX_BODY => {
                return Err(StoreError::Remote(format!(
                    "{method} {}{path}: response body of {len} bytes exceeds the {MAX_BODY}-byte cap",
                    self.url()
                )));
            }
            Some(len) => {
                let len = len as usize;
                if body.len() > len {
                    return Err(StoreError::Remote(format!(
                        "{method} {}{path}: more body bytes than Content-Length declared",
                        self.url()
                    )));
                }
                let mut rest = vec![0u8; len - body.len()];
                stream.read_exact(&mut rest).map_err(|e| {
                    StoreError::Remote(format!(
                        "{method} {}{path}: truncated response body: {e}",
                        self.url()
                    ))
                })?;
                body.extend_from_slice(&rest);
            }
            None => {
                // Connection: close and no declared length — read to EOF.
                let mut rest = Vec::new();
                stream
                    .take(MAX_BODY.saturating_sub(body.len() as u64))
                    .read_to_end(&mut rest)
                    .map_err(remote)?;
                body.extend_from_slice(&rest);
            }
        }
        Ok((status, body))
    }

    /// `GET /healthz`: the server's liveness line.
    ///
    /// # Errors
    ///
    /// [`StoreError::Remote`] when the server is unreachable or unwell.
    pub fn health(&self) -> Result<String, StoreError> {
        let (status, body) = self.exchange("GET", "/healthz", None)?;
        if status != 200 {
            return Err(StoreError::Remote(format!(
                "{}/healthz returned status {status}",
                self.url()
            )));
        }
        Ok(String::from_utf8_lossy(&body).into_owned())
    }

    /// `GET /v1/metrics`: the server's Prometheus text exposition —
    /// what `transform top` polls and renders.
    ///
    /// # Errors
    ///
    /// [`StoreError::Remote`] when the server is unreachable or unwell.
    pub fn metrics(&self) -> Result<String, StoreError> {
        let (status, body) = self.exchange("GET", "/v1/metrics", None)?;
        if status != 200 {
            return Err(StoreError::Remote(format!(
                "{}/v1/metrics returned status {status}",
                self.url()
            )));
        }
        Ok(String::from_utf8_lossy(&body).into_owned())
    }

    /// `HEAD /v1/suite/<fp>`: whether the remote holds a sealed entry.
    ///
    /// # Errors
    ///
    /// [`StoreError::Remote`] when the server is unreachable or answers
    /// with an unexpected status.
    pub fn exists(&self, fp: Fingerprint) -> Result<bool, StoreError> {
        let (status, _) = self.exchange("HEAD", &suite_path(fp), None)?;
        match status {
            200 => Ok(true),
            404 => Ok(false),
            other => Err(StoreError::Remote(format!(
                "HEAD {}{} returned status {other}",
                self.url(),
                suite_path(fp)
            ))),
        }
    }

    /// `GET /v1/index`: the remote store's entry index, checksum-valid —
    /// what `store pull` enumerates.
    ///
    /// # Errors
    ///
    /// [`StoreError::Remote`] on transport trouble;
    /// [`StoreError::Corrupt`]/[`StoreError::Version`] when the index
    /// bytes fail validation.
    pub fn index(&self) -> Result<Vec<IndexEntry>, StoreError> {
        let (status, body) = self.exchange("GET", "/v1/index", None)?;
        if status != 200 {
            return Err(StoreError::Remote(format!(
                "{}/v1/index returned status {status}",
                self.url()
            )));
        }
        crate::index::decode(&body)
    }

    /// `GET /v1/suite/<fp>`: the sealed entry's bytes, or `None` when
    /// the remote does not hold it. The bytes are *not yet validated* —
    /// install them through [`crate::Store::install_bytes`], which
    /// refuses anything damaged.
    ///
    /// # Errors
    ///
    /// [`StoreError::Remote`] when the server is unreachable, truncates
    /// the response, or answers with an unexpected status.
    pub fn fetch(&self, fp: Fingerprint) -> Result<Option<Vec<u8>>, StoreError> {
        let (status, body) = self.exchange("GET", &suite_path(fp), None)?;
        match status {
            200 => Ok(Some(body)),
            404 => Ok(None),
            other => Err(StoreError::Remote(format!(
                "GET {}{} returned status {other}",
                self.url(),
                suite_path(fp)
            ))),
        }
    }

    /// `PUT /v1/suite/<fp>`: uploads a sealed entry. Idempotent — the
    /// server accepts a re-upload of an existing entry without rewriting
    /// it (content addressing makes entries immutable).
    ///
    /// # Errors
    ///
    /// [`StoreError::Remote`] when the server is unreachable or rejects
    /// the upload (it validates every byte before publishing).
    pub fn publish(&self, fp: Fingerprint, bytes: &[u8]) -> Result<(), StoreError> {
        let (status, body) = self.exchange("PUT", &suite_path(fp), Some(bytes))?;
        match status {
            200 | 201 => Ok(()),
            other => Err(StoreError::Remote(format!(
                "PUT {}{} returned status {other}: {}",
                self.url(),
                suite_path(fp),
                String::from_utf8_lossy(&body).trim()
            ))),
        }
    }

    /// `GET /v1/runs`: the remote's recent run manifests,
    /// checksum-valid — what `transform top` merges into its fleet view
    /// and `transform runs list --url` renders.
    ///
    /// # Errors
    ///
    /// [`StoreError::Remote`] on transport trouble;
    /// [`StoreError::Corrupt`]/[`StoreError::Version`] when the list
    /// bytes fail validation.
    pub fn runs(&self) -> Result<Vec<RunManifest>, StoreError> {
        let (status, body) = self.exchange("GET", "/v1/runs", None)?;
        if status != 200 {
            return Err(StoreError::Remote(format!(
                "{}/v1/runs returned status {status}",
                self.url()
            )));
        }
        crate::journal::decode_run_list(&body)
    }

    /// `GET /v1/runs/<id>`: one run's full journal bytes, or `None`
    /// when the remote does not hold it. The bytes are *not yet
    /// validated* — decode them through [`crate::journal::decode_run`]
    /// or install via [`crate::Store::install_run_bytes`].
    ///
    /// # Errors
    ///
    /// [`StoreError::Remote`] when the server is unreachable, truncates
    /// the response, or answers with an unexpected status.
    pub fn fetch_run(&self, id: u64) -> Result<Option<Vec<u8>>, StoreError> {
        let (status, body) = self.exchange("GET", &run_path(id), None)?;
        match status {
            200 => Ok(Some(body)),
            404 => Ok(None),
            other => Err(StoreError::Remote(format!(
                "GET {}{} returned status {other}",
                self.url(),
                run_path(id)
            ))),
        }
    }

    /// `PUT /v1/runs/<id>`: uploads a run journal. Unlike suites, run
    /// journals are rewritable — a live run heartbeats its `Running`
    /// manifest and the final write replaces it.
    ///
    /// # Errors
    ///
    /// [`StoreError::Remote`] when the server is unreachable or rejects
    /// the upload (it validates every byte before publishing).
    pub fn publish_run(&self, id: u64, bytes: &[u8]) -> Result<(), StoreError> {
        let (status, body) = self.exchange("PUT", &run_path(id), Some(bytes))?;
        match status {
            200 | 201 => Ok(()),
            other => Err(StoreError::Remote(format!(
                "PUT {}{} returned status {other}: {}",
                self.url(),
                run_path(id),
                String::from_utf8_lossy(&body).trim()
            ))),
        }
    }

    /// `GET /v1/digest/<fp>`: the sealed entry's encoded admission
    /// digest, or `None` when the remote does not hold one. Validate on
    /// install via [`crate::Store::install_digest_bytes`].
    ///
    /// # Errors
    ///
    /// [`StoreError::Remote`] when the server is unreachable, truncates
    /// the response, or answers with an unexpected status.
    pub fn fetch_digest(&self, fp: Fingerprint) -> Result<Option<Vec<u8>>, StoreError> {
        let (status, body) = self.exchange("GET", &digest_path(fp), None)?;
        match status {
            200 => Ok(Some(body)),
            404 => Ok(None),
            other => Err(StoreError::Remote(format!(
                "GET {}{} returned status {other}",
                self.url(),
                digest_path(fp)
            ))),
        }
    }

    /// `PUT /v1/digest/<fp>`: uploads an admission digest. Idempotent
    /// like suite uploads — digests are as immutable as their entries.
    ///
    /// # Errors
    ///
    /// [`StoreError::Remote`] when the server is unreachable or rejects
    /// the upload (it validates every byte before publishing).
    pub fn publish_digest(&self, fp: Fingerprint, bytes: &[u8]) -> Result<(), StoreError> {
        let (status, body) = self.exchange("PUT", &digest_path(fp), Some(bytes))?;
        match status {
            200 | 201 => Ok(()),
            other => Err(StoreError::Remote(format!(
                "PUT {}{} returned status {other}: {}",
                self.url(),
                digest_path(fp),
                String::from_utf8_lossy(&body).trim()
            ))),
        }
    }

    /// `POST /v1/jobs`: registers a fleet job from its encoded
    /// [`crate::fleet::JobSpec`]. Idempotent — the job id is the hash
    /// of the spec, so re-posting the same work re-joins the existing
    /// job. Returns the job id the coordinator derived.
    ///
    /// # Errors
    ///
    /// [`StoreError::Remote`] when the server is unreachable or rejects
    /// the spec.
    pub fn create_job(&self, spec_bytes: &[u8]) -> Result<u64, StoreError> {
        let (status, body) = self.exchange("POST", "/v1/jobs", Some(spec_bytes))?;
        match status {
            200 | 201 => {
                let text = String::from_utf8_lossy(&body);
                u64::from_str_radix(text.trim(), 16).map_err(|_| {
                    StoreError::Remote(format!(
                        "POST {}/v1/jobs answered with a malformed job id `{}`",
                        self.url(),
                        text.trim()
                    ))
                })
            }
            other => Err(StoreError::Remote(format!(
                "POST {}/v1/jobs returned status {other}: {}",
                self.url(),
                String::from_utf8_lossy(&body).trim()
            ))),
        }
    }

    /// `GET /v1/jobs/<id>`: the job's progress counters, or `None`
    /// for an unknown job.
    ///
    /// # Errors
    ///
    /// [`StoreError::Remote`] on transport trouble or a malformed
    /// status document.
    pub fn job_status(&self, job: u64) -> Result<Option<JobStatus>, StoreError> {
        let path = format!("/v1/jobs/{job:016x}");
        let (status, body) = self.exchange("GET", &path, None)?;
        match status {
            200 => {
                let text = String::from_utf8_lossy(&body);
                JobStatus::parse(&text).map(Some).ok_or_else(|| {
                    StoreError::Remote(format!(
                        "GET {}{path} answered with a malformed status document",
                        self.url()
                    ))
                })
            }
            404 => Ok(None),
            other => Err(StoreError::Remote(format!(
                "GET {}{path} returned status {other}",
                self.url()
            ))),
        }
    }

    /// `POST /v1/jobs/<id>/cut`: abandons a fleet job — its unleased
    /// and expired ranges stop being handed out, and it will never
    /// seal. Safe on an already-cut or unknown job.
    ///
    /// # Errors
    ///
    /// [`StoreError::Remote`] when the server is unreachable.
    pub fn cut_job(&self, job: u64) -> Result<(), StoreError> {
        let path = format!("/v1/jobs/{job:016x}/cut");
        // An explicit empty body: the server requires Content-Length on
        // every POST, and `None` would omit the header entirely.
        let (status, body) = self.exchange("POST", &path, Some(b""))?;
        match status {
            200 | 404 => Ok(()),
            other => Err(StoreError::Remote(format!(
                "POST {}{path} returned status {other}: {}",
                self.url(),
                String::from_utf8_lossy(&body).trim()
            ))),
        }
    }

    /// `POST /v1/lease`: asks the coordinator for work. `Some(grant)`
    /// carries a leased range plus the full job spec; `None` means no
    /// work is available right now (poll again later). `worker` is a
    /// display name for the coordinator's bookkeeping.
    ///
    /// # Errors
    ///
    /// [`StoreError::Remote`] on transport trouble;
    /// [`StoreError::Corrupt`] when the grant bytes fail validation.
    pub fn lease(&self, worker: &str) -> Result<Option<crate::fleet::LeaseGrant>, StoreError> {
        let (status, body) = self.exchange("POST", "/v1/lease", Some(worker.as_bytes()))?;
        match status {
            200 => crate::fleet::LeaseGrant::decode(&body)
                .map(Some)
                .map_err(|e| StoreError::Corrupt(format!("lease grant: {e}"))),
            204 => Ok(None),
            other => Err(StoreError::Remote(format!(
                "POST {}/v1/lease returned status {other}",
                self.url()
            ))),
        }
    }

    /// `POST /v1/lease/<id>/heartbeat`: renews a lease. `false` means
    /// the coordinator no longer honors it (expired and reassigned, or
    /// the job was cut) — the worker should abandon the range.
    ///
    /// # Errors
    ///
    /// [`StoreError::Remote`] when the server is unreachable.
    pub fn heartbeat(&self, lease: u64) -> Result<bool, StoreError> {
        let path = format!("/v1/lease/{lease:016x}/heartbeat");
        // Explicit empty body — POST without Content-Length is a 411.
        let (status, _) = self.exchange("POST", &path, Some(b""))?;
        match status {
            200 => Ok(true),
            404 | 410 => Ok(false),
            other => Err(StoreError::Remote(format!(
                "POST {}{path} returned status {other}",
                self.url()
            ))),
        }
    }

    /// `PUT /v1/shard/<job>/<lo>-<hi>`: uploads one encoded
    /// [`crate::fleet::ShardResult`]. Idempotent — a retried upload of
    /// the identical bytes is accepted as a duplicate; a conflicting
    /// upload is rejected with [`crate::fleet::StageOutcome::Mismatch`].
    ///
    /// # Errors
    ///
    /// [`StoreError::Remote`] when the server is unreachable or rejects
    /// the bytes outright (damage, unknown job).
    pub fn put_shard(
        &self,
        job: u64,
        lo: u32,
        hi: u32,
        bytes: &[u8],
    ) -> Result<crate::fleet::StageOutcome, StoreError> {
        let path = format!("/v1/shard/{job:016x}/{lo}-{hi}");
        let (status, body) = self.exchange("PUT", &path, Some(bytes))?;
        match status {
            201 => Ok(crate::fleet::StageOutcome::New),
            200 => Ok(crate::fleet::StageOutcome::Duplicate),
            409 => Ok(crate::fleet::StageOutcome::Mismatch),
            other => Err(StoreError::Remote(format!(
                "PUT {}{path} returned status {other}: {}",
                self.url(),
                String::from_utf8_lossy(&body).trim()
            ))),
        }
    }
}

/// One fleet job's progress as reported by `GET /v1/jobs/<id>`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct JobStatus {
    /// Ranges in the job's plan.
    pub ranges: usize,
    /// Ranges with a staged shard result.
    pub staged: usize,
    /// Ranges currently out on a live lease.
    pub leased: usize,
    /// Whether every range is staged and the suites are sealed.
    pub complete: bool,
    /// Whether the job was cut (abandoned; will never seal).
    pub cut: bool,
}

impl JobStatus {
    /// Extracts the status from the coordinator's JSON document. The
    /// fields are flat `"name":value` pairs, so a scan is enough — no
    /// JSON parser needed on this dependency-free path.
    pub fn parse(text: &str) -> Option<JobStatus> {
        fn field_usize(text: &str, name: &str) -> Option<usize> {
            let at = text.find(&format!("\"{name}\":"))? + name.len() + 3;
            let rest = &text[at..];
            let end = rest
                .find(|c: char| !c.is_ascii_digit())
                .unwrap_or(rest.len());
            rest[..end].parse().ok()
        }
        fn field_bool(text: &str, name: &str) -> Option<bool> {
            let at = text.find(&format!("\"{name}\":"))? + name.len() + 3;
            let rest = &text[at..];
            if rest.starts_with("true") {
                Some(true)
            } else if rest.starts_with("false") {
                Some(false)
            } else {
                None
            }
        }
        Some(JobStatus {
            ranges: field_usize(text, "ranges")?,
            staged: field_usize(text, "staged")?,
            leased: field_usize(text, "leased")?,
            complete: field_bool(text, "complete")?,
            cut: field_bool(text, "cut")?,
        })
    }
}

/// The wire path of one sealed entry.
fn suite_path(fp: Fingerprint) -> String {
    format!("/v1/suite/{}", fp.hex())
}

/// The wire path of one run journal.
fn run_path(id: u64) -> String {
    format!("/v1/runs/{id:016x}")
}

/// The wire path of one admission digest.
fn digest_path(fp: Fingerprint) -> String {
    format!("/v1/digest/{}", fp.hex())
}

/// A parsed response head: status code, lowercased headers, and any
/// body bytes that arrived in the same reads.
type ResponseHead = (u16, Vec<(String, String)>, Vec<u8>);

/// Reads the status line and headers (everything up to the blank line),
/// returning any body bytes that arrived in the same reads.
fn read_head(stream: &mut TcpStream) -> Result<ResponseHead, String> {
    // Headers comfortably fit 16 KiB; a server that sends more is not ours.
    let mut buf = Vec::with_capacity(1024);
    let mut chunk = [0u8; 1024];
    let head_end = loop {
        if let Some(at) = find_blank_line(&buf) {
            break at;
        }
        if buf.len() > 16 * 1024 {
            return Err("response headers exceed 16 KiB".into());
        }
        let n = stream.read(&mut chunk).map_err(|e| e.to_string())?;
        if n == 0 {
            return Err("connection closed before response headers completed".into());
        }
        buf.extend_from_slice(&chunk[..n]);
    };
    let head = std::str::from_utf8(&buf[..head_end]).map_err(|_| "non-UTF-8 response headers")?;
    let mut lines = head.split("\r\n");
    let status_line = lines.next().ok_or("empty response")?;
    let status = parse_status_line(status_line)?;
    let headers = lines
        .filter(|l| !l.is_empty())
        .map(|l| {
            let (name, value) = l.split_once(':').ok_or(format!("malformed header `{l}`"))?;
            Ok((name.trim().to_ascii_lowercase(), value.trim().to_string()))
        })
        .collect::<Result<Vec<_>, String>>()?;
    Ok((status, headers, buf[head_end + 4..].to_vec()))
}

/// Byte offset of the `\r\n\r\n` separating headers from body.
fn find_blank_line(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// `HTTP/1.1 200 OK` → `200`.
fn parse_status_line(line: &str) -> Result<u16, String> {
    let mut parts = line.split_whitespace();
    let version = parts.next().unwrap_or_default();
    if !version.starts_with("HTTP/1.") {
        return Err(format!("not an HTTP/1.x response: `{line}`"));
    }
    parts
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or(format!("malformed status line `{line}`"))
}

/// The declared `Content-Length`, if any.
fn content_length(headers: &[(String, String)]) -> Result<Option<u64>, String> {
    match headers.iter().find(|(name, _)| name == "content-length") {
        None => Ok(None),
        Some((_, value)) => value
            .parse()
            .map(Some)
            .map_err(|_| format!("malformed Content-Length `{value}`")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn url_parsing_accepts_host_port_only() {
        let t = HttpTier::new("http://127.0.0.1:7171").expect("parses");
        assert_eq!(t.url(), "http://127.0.0.1:7171");
        let t = HttpTier::new("http://cache.internal:80/").expect("parses");
        assert_eq!(t.url(), "http://cache.internal:80");
        for bad in [
            "https://127.0.0.1:7171",
            "127.0.0.1:7171",
            "http://127.0.0.1",
            "http://127.0.0.1:notaport",
            "http://:7171",
            "http://user@host:7171",
            "http://host:7171/path",
        ] {
            assert!(HttpTier::new(bad).is_err(), "{bad} should be rejected");
        }
    }

    #[test]
    fn status_lines_and_lengths_parse() {
        assert_eq!(parse_status_line("HTTP/1.1 200 OK").unwrap(), 200);
        assert_eq!(parse_status_line("HTTP/1.0 404 Not Found").unwrap(), 404);
        assert!(parse_status_line("ICY 200 OK").is_err());
        assert!(parse_status_line("HTTP/1.1").is_err());
        let headers = vec![("content-length".to_string(), "42".to_string())];
        assert_eq!(content_length(&headers).unwrap(), Some(42));
        assert_eq!(content_length(&[]).unwrap(), None);
        let bad = vec![("content-length".to_string(), "many".to_string())];
        assert!(content_length(&bad).is_err());
    }

    #[test]
    fn unreachable_hosts_are_remote_errors() {
        // Port 1 on localhost: reliably refused, never listened on.
        let t = HttpTier::new("http://127.0.0.1:1")
            .expect("parses")
            .with_timeout(Duration::from_millis(200));
        match t.health() {
            Err(StoreError::Remote(_)) => {}
            other => panic!("expected a remote error, got {other:?}"),
        }
    }
}
