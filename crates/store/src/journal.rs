//! Persistent run journals: synthesis runs as first-class store
//! artifacts.
//!
//! A journaled synthesis run leaves two things behind:
//!
//! * a **run manifest** — the run's key (MTM, bound, options, jobs),
//!   its outcome ([`RunOutcome`]), and the final counters of its
//!   [`transform_par::ProgressSnapshot`] — enough for `transform runs
//!   list` and the serve fleet view without touching event data; and
//! * the **event journal** — every timestamped
//!   [`transform_par::JournalEvent`] the fused pipeline emitted
//!   (partition enumerate/retire, batch examine, frontier stalls,
//!   seal/push), delta-encoded and checksummed, which `transform runs
//!   export --chrome` turns into an `about://tracing` flamegraph.
//!
//! Both live in one `run-<id>.tfr` file per run, written atomically
//! next to the sealed `.tfs` suites (see the [`crate::store::Store`]
//! run methods in this module). Like suites, run files are
//! self-validating: magic, format version, and a trailing FNV-1a 64
//! checksum; damaged files decode to [`StoreError::Corrupt`] and are
//! skipped by listings, never served.
//!
//! A crashed run is visible by construction: the synthesis driver
//! heartbeats a [`RunOutcome::Running`] manifest while the pipeline
//! executes and rewrites it `Complete`/`Cut` at the end, so a `.tfr`
//! still claiming `Running` long after its mtime went stale is a
//! crash record.
//!
//! # Garbage collection
//!
//! Run journals are advisory history, not cache entries: `store gc
//! --older-than-days N` ages them by mtime exactly like sealed suites,
//! and `tmp-run-*` staging leftovers fall under the ordinary `tmp-*`
//! sweep. Deleting a journal never invalidates a suite — the two are
//! independent artifacts.

use crate::codec::{fnv1a64, Dec, Enc, FORMAT_VERSION};
use crate::store::{Store, StoreError};
use std::fs;
use std::path::PathBuf;
use transform_par::{AxiomState, JournalEvent, JournalEventKind, ProgressSnapshot};

const RUN_MAGIC: &[u8; 8] = b"TFRUNJL\0";
const RUN_LIST_MAGIC: &[u8; 8] = b"TFRUNLS\0";
const RUN_EXT: &str = "tfr";

/// The advisory run-list file's name inside a store directory —
/// the runs counterpart of [`crate::index::INDEX_FILE`].
pub const RUNS_FILE: &str = "runs.tfx";

/// How a journaled run ended (or has not yet).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RunOutcome {
    /// The run is (or was, if the file's mtime is stale) in flight —
    /// the heartbeat manifest a live synthesis rewrites periodically.
    Running,
    /// Every axiom's schedule retired cleanly.
    Complete,
    /// The deadline cut the run; suites are partial and unsealed.
    Cut,
    /// The process died mid-run. Never written by the driver itself —
    /// listings infer it from a stale [`RunOutcome::Running`] manifest.
    Crashed,
}

impl RunOutcome {
    fn as_u8(self) -> u8 {
        match self {
            RunOutcome::Running => 0,
            RunOutcome::Complete => 1,
            RunOutcome::Cut => 2,
            RunOutcome::Crashed => 3,
        }
    }

    fn from_u8(v: u8) -> Option<RunOutcome> {
        Some(match v {
            0 => RunOutcome::Running,
            1 => RunOutcome::Complete,
            2 => RunOutcome::Cut,
            3 => RunOutcome::Crashed,
            _ => return None,
        })
    }

    /// The machine-readable spelling (`transform runs list`, tests).
    pub fn name(self) -> &'static str {
        match self {
            RunOutcome::Running => "running",
            RunOutcome::Complete => "complete",
            RunOutcome::Cut => "cut",
            RunOutcome::Crashed => "crashed",
        }
    }
}

fn axiom_state_u8(s: AxiomState) -> u8 {
    match s {
        AxiomState::Pending => 0,
        AxiomState::Running => 1,
        AxiomState::Complete => 2,
        AxiomState::Cut => 3,
        AxiomState::Cached => 4,
    }
}

fn axiom_state_from_u8(v: u8) -> AxiomState {
    match v {
        1 => AxiomState::Running,
        2 => AxiomState::Complete,
        3 => AxiomState::Cut,
        4 => AxiomState::Cached,
        _ => AxiomState::Pending,
    }
}

/// One axiom's final counters inside a [`RunManifest`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct RunAxiom {
    /// The axiom's name.
    pub name: String,
    /// Where the axiom ended up.
    pub state: AxiomState,
    /// Suite members found (or served, for a cached axiom).
    pub elts: u64,
    /// Plan items examined.
    pub items_examined: u64,
    /// Examine batches retired.
    pub batches_done: u64,
}

/// The summary record of one journaled synthesis run — everything
/// `transform runs list` and the serve fleet view need without
/// decoding event data.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct RunManifest {
    /// The run's identity (its `run-<id>.tfr` file name).
    pub id: u64,
    /// The MTM's name.
    pub mtm: String,
    /// The instruction bound.
    pub bound: usize,
    /// Whether `MFENCE` was in the program space.
    pub allow_fences: bool,
    /// Whether RMW pairs were in the program space.
    pub allow_rmw: bool,
    /// Worker threads the run used.
    pub jobs: usize,
    /// Wall-clock start, microseconds since the Unix epoch.
    pub started_unix_micros: u64,
    /// Run duration so far (final for a finished run), microseconds.
    pub elapsed_micros: u64,
    /// How the run ended (or [`RunOutcome::Running`] while it has not).
    pub outcome: RunOutcome,
    /// Enumeration partitions in the space.
    pub partitions_total: u64,
    /// Partitions admitted through the dedup frontier.
    pub partitions_retired: u64,
    /// Total estimated subtree mass of the space.
    pub mass_total: u64,
    /// Mass of the partitions admitted — for a [`RunOutcome::Cut`] run,
    /// the exact mass retired before the deadline hit.
    pub mass_retired: u64,
    /// Programs admitted (post symmetry reduction).
    pub programs: u64,
    /// Plan items produced by the admitter.
    pub items_planned: u64,
    /// Examine batches created across all axioms.
    pub batches: u64,
    /// Peak live candidate programs.
    pub peak_live_candidates: u64,
    /// The autotuner's final batch size.
    pub final_batch_size: u64,
    /// First partition the deadline cut, if any.
    pub cut_at_partition: Option<u64>,
    /// Per-axiom final counters.
    pub axioms: Vec<RunAxiom>,
}

impl RunManifest {
    /// Builds a manifest from a run's live [`ProgressSnapshot`] — the
    /// heartbeat path while the run executes (`outcome` =
    /// [`RunOutcome::Running`]) and the final write when it ends.
    #[allow(clippy::too_many_arguments)]
    pub fn from_snapshot(
        id: u64,
        mtm: &str,
        bound: usize,
        allow_fences: bool,
        allow_rmw: bool,
        jobs: usize,
        started_unix_micros: u64,
        outcome: RunOutcome,
        snap: &ProgressSnapshot,
    ) -> RunManifest {
        RunManifest {
            id,
            mtm: mtm.to_string(),
            bound,
            allow_fences,
            allow_rmw,
            jobs,
            started_unix_micros,
            elapsed_micros: snap.elapsed.as_micros() as u64,
            outcome,
            partitions_total: snap.partitions_total as u64,
            partitions_retired: snap.partitions_retired as u64,
            mass_total: snap.mass_total,
            mass_retired: snap.mass_retired,
            programs: snap.programs as u64,
            items_planned: snap.items_planned as u64,
            batches: snap.batches as u64,
            peak_live_candidates: snap.peak_live_candidates as u64,
            final_batch_size: snap.final_batch_size as u64,
            cut_at_partition: snap.cut_at_partition.map(|p| p as u64),
            axioms: snap
                .axioms
                .iter()
                .map(|a| RunAxiom {
                    name: a.name.clone(),
                    state: a.state,
                    elts: a.elts as u64,
                    items_examined: a.items_examined as u64,
                    batches_done: a.batches_done as u64,
                })
                .collect(),
        }
    }

    fn encode(&self, e: &mut Enc) {
        e.u64(self.id);
        e.string(&self.mtm);
        e.size(self.bound);
        e.boolean(self.allow_fences);
        e.boolean(self.allow_rmw);
        e.size(self.jobs);
        e.varint(self.started_unix_micros);
        e.varint(self.elapsed_micros);
        e.u8(self.outcome.as_u8());
        e.varint(self.partitions_total);
        e.varint(self.partitions_retired);
        e.varint(self.mass_total);
        e.varint(self.mass_retired);
        e.varint(self.programs);
        e.varint(self.items_planned);
        e.varint(self.batches);
        e.varint(self.peak_live_candidates);
        e.varint(self.final_batch_size);
        match self.cut_at_partition {
            Some(p) => {
                e.boolean(true);
                e.varint(p);
            }
            None => e.boolean(false),
        }
        e.size(self.axioms.len());
        for axiom in &self.axioms {
            e.string(&axiom.name);
            e.u8(axiom_state_u8(axiom.state));
            e.varint(axiom.elts);
            e.varint(axiom.items_examined);
            e.varint(axiom.batches_done);
        }
    }

    fn decode(d: &mut Dec<'_>) -> Result<RunManifest, StoreError> {
        let id = d.u64()?;
        let mtm = d.string()?;
        let bound = d.size()?;
        let allow_fences = d.boolean()?;
        let allow_rmw = d.boolean()?;
        let jobs = d.size()?;
        let started_unix_micros = d.varint()?;
        let elapsed_micros = d.varint()?;
        let outcome_byte = d.u8()?;
        let outcome = RunOutcome::from_u8(outcome_byte).ok_or_else(|| {
            StoreError::Corrupt(format!("invalid run outcome byte {outcome_byte}"))
        })?;
        let partitions_total = d.varint()?;
        let partitions_retired = d.varint()?;
        let mass_total = d.varint()?;
        let mass_retired = d.varint()?;
        let programs = d.varint()?;
        let items_planned = d.varint()?;
        let batches = d.varint()?;
        let peak_live_candidates = d.varint()?;
        let final_batch_size = d.varint()?;
        let cut_at_partition = if d.boolean()? {
            Some(d.varint()?)
        } else {
            None
        };
        let axiom_count = d.size_bounded(1 << 16, "run axioms")?;
        let mut axioms = Vec::with_capacity(axiom_count);
        for _ in 0..axiom_count {
            axioms.push(RunAxiom {
                name: d.string()?,
                state: axiom_state_from_u8(d.u8()?),
                elts: d.varint()?,
                items_examined: d.varint()?,
                batches_done: d.varint()?,
            });
        }
        Ok(RunManifest {
            id,
            mtm,
            bound,
            allow_fences,
            allow_rmw,
            jobs,
            started_unix_micros,
            elapsed_micros,
            outcome,
            partitions_total,
            partitions_retired,
            mass_total,
            mass_retired,
            programs,
            items_planned,
            batches,
            peak_live_candidates,
            final_batch_size,
            cut_at_partition,
            axioms,
        })
    }
}

/// One journaled run in full: its manifest plus every pipeline event.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct RunJournal {
    /// The run's summary record.
    pub manifest: RunManifest,
    /// The timestamped pipeline events, in emission order.
    pub events: Vec<JournalEvent>,
}

/// Encodes a run journal to its on-disk (and on-wire — `GET
/// /v1/runs/<id>` serves exactly these bytes) form: magic, format
/// version, the manifest, the delta-timestamped events, and a trailing
/// FNV-1a 64 checksum.
pub fn encode_run(journal: &RunJournal) -> Vec<u8> {
    let mut e = Enc::new();
    e.raw(RUN_MAGIC);
    e.u32(FORMAT_VERSION);
    journal.manifest.encode(&mut e);
    e.size(journal.events.len());
    let mut prev_t = 0u64;
    for event in &journal.events {
        // Timestamps are non-decreasing (one clock, lock-held emission),
        // so delta encoding keeps hot batch events to a few bytes each.
        e.varint(event.t_micros.saturating_sub(prev_t));
        prev_t = event.t_micros;
        e.u8(event.kind.as_u8());
        // Axiom slot, biased by one so `0` means "not axiom-scoped".
        e.varint(match event.axiom {
            Some(slot) => u64::from(slot) + 1,
            None => 0,
        });
        e.varint(event.a);
        e.varint(event.b);
        e.varint(event.c);
    }
    let mut bytes = e.into_bytes();
    let checksum = fnv1a64(&bytes);
    bytes.extend_from_slice(&checksum.to_le_bytes());
    bytes
}

/// Decodes run-journal bytes — the [`encode_run`] form — validating the
/// trailing checksum, magic, and format version.
///
/// # Errors
///
/// [`StoreError::Corrupt`] on damaged bytes, [`StoreError::Version`] on
/// format skew.
pub fn decode_run(bytes: &[u8]) -> Result<RunJournal, StoreError> {
    let payload = checked_payload(bytes, "run journal")?;
    let mut d = Dec::new(payload);
    if d.bytes(8).map_err(StoreError::from)? != RUN_MAGIC.as_slice() {
        return Err(StoreError::Corrupt("bad run journal magic".into()));
    }
    let version = d.u32().map_err(StoreError::from)?;
    if version != FORMAT_VERSION {
        return Err(StoreError::Version { found: version });
    }
    let manifest = RunManifest::decode(&mut d)?;
    let event_count = d
        .size_bounded(1 << 26, "journal events")
        .map_err(StoreError::from)?;
    let mut events = Vec::with_capacity(event_count.min(1 << 16));
    let mut t = 0u64;
    for _ in 0..event_count {
        t = t.saturating_add(d.varint().map_err(StoreError::from)?);
        let kind_byte = d.u8().map_err(StoreError::from)?;
        let kind = JournalEventKind::from_u8(kind_byte).ok_or_else(|| {
            StoreError::Corrupt(format!("invalid journal event kind byte {kind_byte}"))
        })?;
        let axiom_biased = d.varint().map_err(StoreError::from)?;
        let axiom = if axiom_biased == 0 {
            None
        } else {
            Some(
                u32::try_from(axiom_biased - 1)
                    .map_err(|_| StoreError::Corrupt("axiom slot out of range".into()))?,
            )
        };
        events.push(JournalEvent {
            t_micros: t,
            kind,
            axiom,
            a: d.varint().map_err(StoreError::from)?,
            b: d.varint().map_err(StoreError::from)?,
            c: d.varint().map_err(StoreError::from)?,
        });
    }
    if !d.at_end() {
        return Err(StoreError::Corrupt("trailing bytes in run journal".into()));
    }
    Ok(RunJournal { manifest, events })
}

/// Encodes a run-manifest list — the `runs.tfx` advisory file and the
/// `GET /v1/runs` wire format: magic, format version, the manifests
/// sorted by start time descending (newest first), and a trailing
/// FNV-1a 64 checksum.
pub fn encode_run_list(manifests: &[RunManifest]) -> Vec<u8> {
    let mut sorted: Vec<&RunManifest> = manifests.iter().collect();
    sorted.sort_by_key(|m| std::cmp::Reverse((m.started_unix_micros, m.id)));
    let mut e = Enc::new();
    e.raw(RUN_LIST_MAGIC);
    e.u32(FORMAT_VERSION);
    e.size(sorted.len());
    for manifest in sorted {
        manifest.encode(&mut e);
    }
    let mut bytes = e.into_bytes();
    let checksum = fnv1a64(&bytes);
    bytes.extend_from_slice(&checksum.to_le_bytes());
    bytes
}

/// Decodes a run-manifest list — the [`encode_run_list`] form.
///
/// # Errors
///
/// [`StoreError::Corrupt`] on damaged bytes, [`StoreError::Version`] on
/// format skew.
pub fn decode_run_list(bytes: &[u8]) -> Result<Vec<RunManifest>, StoreError> {
    let payload = checked_payload(bytes, "run list")?;
    let mut d = Dec::new(payload);
    if d.bytes(8).map_err(StoreError::from)? != RUN_LIST_MAGIC.as_slice() {
        return Err(StoreError::Corrupt("bad run list magic".into()));
    }
    let version = d.u32().map_err(StoreError::from)?;
    if version != FORMAT_VERSION {
        return Err(StoreError::Version { found: version });
    }
    let count = d
        .size_bounded(1 << 20, "run list entries")
        .map_err(StoreError::from)?;
    let mut manifests = Vec::with_capacity(count.min(1 << 12));
    for _ in 0..count {
        manifests.push(RunManifest::decode(&mut d)?);
    }
    if !d.at_end() {
        return Err(StoreError::Corrupt("trailing bytes in run list".into()));
    }
    Ok(manifests)
}

/// Splits off and verifies the trailing checksum.
fn checked_payload<'a>(bytes: &'a [u8], what: &str) -> Result<&'a [u8], StoreError> {
    if bytes.len() < 8 {
        return Err(StoreError::Corrupt(format!("{what} truncated")));
    }
    let (payload, stored) = bytes.split_at(bytes.len() - 8);
    let stored = u64::from_le_bytes(stored.try_into().expect("eight checksum bytes"));
    if fnv1a64(payload) != stored {
        return Err(StoreError::Corrupt(format!("{what} checksum mismatch")));
    }
    Ok(payload)
}

/// A fresh, process-unique run identity: wall-clock microseconds folded
/// with the pid and a per-process counter, so concurrent runs (threads
/// or processes) on one store never collide in practice.
pub fn fresh_run_id() -> u64 {
    static COUNTER: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let count = COUNTER.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let micros = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_micros() as u64)
        .unwrap_or(0);
    let mut h = crate::codec::Fnv64::new();
    h.update(&micros.to_le_bytes());
    h.update(&u64::from(std::process::id()).to_le_bytes());
    h.update(&count.to_le_bytes());
    h.finish()
}

impl Store {
    /// The journal path of a run id.
    pub fn run_path(&self, id: u64) -> PathBuf {
        self.root().join(format!("run-{id:016x}.{RUN_EXT}"))
    }

    /// Atomically writes (or rewrites — the heartbeat path) one run's
    /// journal, and folds its manifest into the advisory `runs.tfx`
    /// list, best-effort.
    ///
    /// # Errors
    ///
    /// Returns the underlying error when staging or renaming fails.
    pub fn write_run(&self, journal: &RunJournal) -> Result<(), StoreError> {
        self.stage_run(journal.manifest.id, &encode_run(journal))?;
        update_runs_list(self);
        Ok(())
    }

    /// Installs run-journal bytes received from elsewhere (an HTTP
    /// `PUT`) as the journal for `id`, after fully validating them —
    /// checksum, format version, and that the manifest inside actually
    /// names `id`.
    ///
    /// # Errors
    ///
    /// [`StoreError::Corrupt`]/[`StoreError::Version`] when the bytes
    /// fail validation; [`StoreError::Io`] when staging or renaming
    /// fails.
    pub fn install_run_bytes(&self, id: u64, bytes: &[u8]) -> Result<(), StoreError> {
        let journal = decode_run(bytes)?;
        if journal.manifest.id != id {
            return Err(StoreError::Corrupt(format!(
                "run journal names id {:016x}, expected {id:016x}",
                journal.manifest.id
            )));
        }
        self.stage_run(id, bytes)?;
        update_runs_list(self);
        Ok(())
    }

    fn stage_run(&self, id: u64, bytes: &[u8]) -> Result<(), StoreError> {
        // pid + nonce: concurrent writers (heartbeat vs. final write
        // never race in-process, but two processes might) stage to
        // disjoint files; the last rename wins.
        static NONCE: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let nonce = NONCE.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let staged = self
            .root()
            .join(format!("tmp-run-{id:016x}-{}-{nonce}", std::process::id()));
        fs::write(&staged, bytes)?;
        fs::rename(&staged, self.run_path(id))?;
        Ok(())
    }

    /// The raw journal bytes of a run, or `None` when no journal exists
    /// for `id` — the payload `GET /v1/runs/<id>` serves. Not
    /// re-validated here; receivers always validate (via
    /// [`decode_run`] or [`Store::install_run_bytes`]).
    ///
    /// # Errors
    ///
    /// Returns the underlying error when the file exists but cannot be
    /// read.
    pub fn run_bytes(&self, id: u64) -> Result<Option<Vec<u8>>, StoreError> {
        match fs::read(self.run_path(id)) {
            Ok(bytes) => Ok(Some(bytes)),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e.into()),
        }
    }

    /// Reads and validates one run's journal.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] when the file is missing or unreadable,
    /// [`StoreError::Corrupt`]/[`StoreError::Version`] when its bytes
    /// fail validation.
    pub fn read_run(&self, id: u64) -> Result<RunJournal, StoreError> {
        decode_run(&fs::read(self.run_path(id))?)
    }

    /// Every run's manifest, newest first. Corrupt or unreadable
    /// journal files are skipped (they are damage, not history), as are
    /// files that do not follow the `run-<id>.tfr` naming.
    ///
    /// # Errors
    ///
    /// Returns the underlying error when the directory is unreadable.
    pub fn runs(&self) -> Result<Vec<RunManifest>, StoreError> {
        let mut manifests = Vec::new();
        for id in self.run_ids()? {
            if let Ok(journal) = self.read_run(id) {
                manifests.push(journal.manifest);
            }
        }
        manifests.sort_by_key(|m| std::cmp::Reverse((m.started_unix_micros, m.id)));
        Ok(manifests)
    }

    /// Every run id with a journal file on disk, sorted.
    ///
    /// # Errors
    ///
    /// Returns the underlying error when the directory is unreadable.
    pub fn run_ids(&self) -> Result<Vec<u64>, StoreError> {
        let mut out = Vec::new();
        for entry in fs::read_dir(self.root())? {
            let path = entry?.path();
            if path.extension().and_then(|e| e.to_str()) != Some(RUN_EXT) {
                continue;
            }
            let stem = path.file_stem().and_then(|s| s.to_str());
            if let Some(hex) = stem.and_then(|s| s.strip_prefix("run-")) {
                if hex.len() == 16 {
                    if let Ok(id) = u64::from_str_radix(hex, 16) {
                        out.push(id);
                    }
                }
            }
        }
        out.sort_unstable();
        Ok(out)
    }

    /// Deletes the journal for `id`, if present, and refreshes the
    /// advisory run list.
    ///
    /// # Errors
    ///
    /// Returns the underlying error when deletion itself fails.
    pub fn remove_run(&self, id: u64) -> Result<(), StoreError> {
        match fs::remove_file(self.run_path(id)) {
            Ok(()) => {
                update_runs_list(self);
                Ok(())
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(e.into()),
        }
    }

    /// The last-modified time of a run's journal — the age `store gc`
    /// filters on, and what listings use to flag a stale
    /// [`RunOutcome::Running`] manifest as crashed.
    ///
    /// # Errors
    ///
    /// Returns the underlying error when the journal is missing or its
    /// metadata is unreadable.
    pub fn run_mtime(&self, id: u64) -> Result<std::time::SystemTime, StoreError> {
        Ok(fs::metadata(self.run_path(id))?.modified()?)
    }
}

/// Atomically rewrites the advisory `runs.tfx` manifest list from the
/// journal files on disk. Best-effort by design, exactly like the suite
/// index: a failure must never fail the run write, so errors are
/// swallowed — the worst outcome is a stale list and a full scan.
fn update_runs_list(store: &Store) {
    let Ok(manifests) = store.runs() else { return };
    let bytes = encode_run_list(&manifests);
    static NONCE: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let nonce = NONCE.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let staged = store
        .root()
        .join(format!("tmp-runs-{}-{nonce}", std::process::id()));
    if fs::write(&staged, &bytes).is_ok() {
        let _ = fs::rename(&staged, store.root().join(RUNS_FILE));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_manifest(id: u64, outcome: RunOutcome) -> RunManifest {
        RunManifest {
            id,
            mtm: "x86t_elt".into(),
            bound: 6,
            allow_fences: true,
            allow_rmw: true,
            jobs: 4,
            started_unix_micros: 1_700_000_000_000_000,
            elapsed_micros: 30_291_993,
            outcome,
            partitions_total: 33_044,
            partitions_retired: 33_044,
            mass_total: 123_456,
            mass_retired: 123_456,
            programs: 2_725,
            items_planned: 9_999,
            batches: 501,
            peak_live_candidates: 127,
            final_batch_size: 2_174,
            cut_at_partition: match outcome {
                RunOutcome::Cut => Some(17),
                _ => None,
            },
            axioms: vec![
                RunAxiom {
                    name: "sc_per_loc".into(),
                    state: AxiomState::Complete,
                    elts: 54,
                    items_examined: 9_999,
                    batches_done: 501,
                },
                RunAxiom {
                    name: "tlb_causality".into(),
                    state: AxiomState::Cached,
                    elts: 12,
                    items_examined: 0,
                    batches_done: 0,
                },
            ],
        }
    }

    fn sample_journal(id: u64) -> RunJournal {
        RunJournal {
            manifest: sample_manifest(id, RunOutcome::Complete),
            events: vec![
                JournalEvent {
                    t_micros: 10,
                    kind: JournalEventKind::RunStart,
                    axiom: None,
                    a: 33_044,
                    b: 123_456,
                    c: 4,
                },
                JournalEvent {
                    t_micros: 2_000,
                    kind: JournalEventKind::BatchExamined,
                    axiom: Some(0),
                    a: 64,
                    b: 3,
                    c: 1_500,
                },
                JournalEvent {
                    t_micros: 2_000,
                    kind: JournalEventKind::PartitionRetired,
                    axiom: None,
                    a: 7,
                    b: 12,
                    c: 0,
                },
                JournalEvent {
                    t_micros: 5_000,
                    kind: JournalEventKind::RunEnd,
                    axiom: None,
                    a: 2_725,
                    b: 9_999,
                    c: 501,
                },
            ],
        }
    }

    fn temp_store(tag: &str) -> Store {
        let dir = std::env::temp_dir().join(format!(
            "tfs-journal-{tag}-{}-{:p}",
            std::process::id(),
            &tag
        ));
        let _ = std::fs::remove_dir_all(&dir);
        Store::open(&dir).expect("store opens")
    }

    #[test]
    fn run_journals_round_trip_exactly() {
        let journal = sample_journal(0xdead_beef);
        let bytes = encode_run(&journal);
        assert_eq!(decode_run(&bytes).expect("decodes"), journal);
    }

    #[test]
    fn truncated_or_flipped_journal_bytes_are_rejected() {
        let bytes = encode_run(&sample_journal(1));
        for cut in 0..bytes.len() {
            assert!(
                decode_run(&bytes[..cut]).is_err(),
                "truncation at {cut} must error"
            );
        }
        let mut flipped = bytes.clone();
        flipped[bytes.len() / 2] ^= 0x40;
        assert!(decode_run(&flipped).is_err(), "bit flip must error");
    }

    #[test]
    fn run_lists_round_trip_newest_first() {
        let old = sample_manifest(1, RunOutcome::Complete);
        let mut new = sample_manifest(2, RunOutcome::Cut);
        new.started_unix_micros += 1;
        let bytes = encode_run_list(&[old.clone(), new.clone()]);
        let decoded = decode_run_list(&bytes).expect("decodes");
        assert_eq!(decoded, vec![new, old], "newest first");
    }

    #[test]
    fn store_persists_lists_and_removes_runs() {
        let store = temp_store("crud");
        let journal = sample_journal(42);
        store.write_run(&journal).expect("writes");
        assert_eq!(store.read_run(42).expect("reads"), journal);
        assert_eq!(store.run_ids().expect("ids"), vec![42]);

        // The heartbeat path: rewriting the same id replaces in place.
        let mut finished = journal.clone();
        finished.manifest.outcome = RunOutcome::Cut;
        store.write_run(&finished).expect("rewrites");
        assert_eq!(
            store.read_run(42).expect("reads").manifest.outcome,
            RunOutcome::Cut
        );

        // The advisory list tracks the journals on disk.
        let listed =
            decode_run_list(&std::fs::read(store.root().join(RUNS_FILE)).expect("list exists"))
                .expect("list decodes");
        assert_eq!(listed.len(), 1);
        assert_eq!(listed[0].outcome, RunOutcome::Cut);

        store.remove_run(42).expect("removes");
        assert_eq!(store.run_ids().expect("ids"), Vec::<u64>::new());
        store.remove_run(42).expect("idempotent");
        let _ = std::fs::remove_dir_all(store.root());
    }

    #[test]
    fn corrupt_journals_are_skipped_by_listings_and_refused_by_install() {
        let store = temp_store("corrupt");
        store.write_run(&sample_journal(7)).expect("writes");
        std::fs::write(store.run_path(8), b"not a journal").expect("plants damage");

        let runs = store.runs().expect("lists");
        assert_eq!(runs.len(), 1, "damage is skipped, not served");
        assert_eq!(runs[0].id, 7);

        let good = encode_run(&sample_journal(9));
        assert!(
            store.install_run_bytes(5, &good).is_err(),
            "id mismatch is refused"
        );
        assert!(
            store.install_run_bytes(9, b"junk").is_err(),
            "junk is refused"
        );
        store.install_run_bytes(9, &good).expect("valid install");
        assert_eq!(store.read_run(9).expect("reads").manifest.id, 9);
        let _ = std::fs::remove_dir_all(store.root());
    }

    #[test]
    fn fresh_run_ids_do_not_collide() {
        let a = fresh_run_id();
        let b = fresh_run_id();
        assert_ne!(a, b);
    }
}
