//! `transform-store` — the persistent, content-addressed suite store.
//!
//! The TransForm paper's synthesis runs took up to a week per
//! instruction bound; this crate makes their results durable. A
//! synthesized per-axiom suite is written once into a store directory
//! and addressed by a [`Fingerprint`] of everything that determines its
//! content — the MTM's canonical spec text, the target axiom, the
//! instruction bound, and the enumeration/backend options — so any
//! later `synthesize`, `compare`, or `fig9` invocation with the same
//! inputs streams the sealed artifact instead of resynthesizing.
//!
//! The moving parts:
//!
//! * [`codec`] — a versioned binary encoding for suite records
//!   (program + witness execution + violated axioms) and work
//!   statistics, round-tripping exactly: a decoded witness prints
//!   byte-identically under [`transform_litmus::format::print_elt`].
//! * [`fingerprint`] — the content-address of a synthesis run.
//! * [`store`] — the on-disk format: parallel workers stream shard
//!   files as shards retire ([`store::PendingSuite`] implements
//!   [`transform_par::SuiteSink`]), a deterministic merge seals the
//!   canonical index, and [`store::SuiteReader`] iterates a sealed
//!   suite record-by-record behind checksum validation.
//! * [`delta`] — delta-encoded entries for incremental cross-bound
//!   synthesis: a bound-N suite can reference the sealed bound-N−1
//!   entry as an immutable parent and carry only the records new at
//!   bound N, plus the admission digests warm starts replay.
//! * [`cache`] — the policy: serve sealed entries, stream cold runs in,
//!   and rebuild (never serve) corrupt, truncated, or
//!   version-mismatched files.
//! * [`journal`] — synthesis runs as durable artifacts: a checksummed
//!   binary journal per run (manifest + timestamped pipeline events)
//!   written alongside the sealed suites, the substrate for
//!   `transform runs` and the serve fleet view.
//! * [`index`] — the advisory entry index (fingerprint → key metadata),
//!   rewritten atomically on every seal, so `query`/`export` filter
//!   entries without opening each header; a missing or stale index
//!   falls back to the full scan.
//! * [`tier`] — cache tiering: a [`CacheTier`] abstraction over "places
//!   sealed bytes live", and [`TieredCache`] layering a shared remote
//!   tier behind the local directory (read-through population,
//!   push-on-seal).
//! * [`remote`] — the dependency-free HTTP/1.1 client for a
//!   `transform serve` endpoint ([`HttpTier`]), the remote half of a
//!   fleet-wide shared cache.
//! * [`fleet`] — the distributed-synthesis wire format: job specs,
//!   lease grants, checksummed shard results, idempotent shard
//!   staging, and the coordinator's deterministic merge-to-seal
//!   ([`merge_fleet_job`]).
//!
//! # Examples
//!
//! ```
//! use transform_core::spec::parse_mtm;
//! use transform_store::{cached_or_synthesize, Store};
//! use transform_synth::SynthOptions;
//!
//! let mtm = parse_mtm(
//!     "mtm demo {
//!        axiom sc_per_loc: acyclic(rf | co | fr | po_loc)
//!      }",
//! ).expect("spec parses");
//! let mut opts = SynthOptions::new(4);
//! opts.enumeration.allow_fences = false;
//! opts.enumeration.allow_rmw = false;
//! let dir = std::env::temp_dir().join(format!("tfs-doc-{}", std::process::id()));
//! let store = Store::open(&dir).expect("store opens");
//!
//! let (cold, cold_status) =
//!     cached_or_synthesize(&store, &mtm, "sc_per_loc", &opts, 2).expect("synthesizes");
//! let (warm, warm_status) =
//!     cached_or_synthesize(&store, &mtm, "sc_per_loc", &opts, 2).expect("reads");
//! assert!(!cold_status.is_hit());
//! assert!(warm_status.is_hit());
//! assert_eq!(cold.elts.len(), warm.elts.len());
//! # std::fs::remove_dir_all(&dir).ok();
//! ```

#![deny(missing_docs)]

pub mod cache;
pub mod codec;
pub mod delta;
pub mod fingerprint;
pub mod fleet;
pub mod index;
pub mod journal;
pub mod remote;
pub mod store;
pub mod tier;

pub use cache::{
    cached_or_synthesize, cached_or_synthesize_all, cached_or_synthesize_all_observed,
    cached_or_synthesize_observed, CacheStatus,
};
pub use codec::{CodecError, FORMAT_VERSION};
pub use delta::{
    entry_parent, is_delta, materialize, validate_delta, DeltaHeader, Digest, DELTA_FORMAT_VERSION,
    MAX_PARENT_CHAIN,
};
pub use fingerprint::{suite_fingerprint, Fingerprint};
pub use fleet::{
    balanced_ranges, execute_lease, merge_fleet_job, AxiomShard, JobSpec, LeaseGrant, ShardResult,
    StageOutcome,
};
pub use index::{IndexEntry, INDEX_FILE};
pub use journal::{
    decode_run, decode_run_list, encode_run, encode_run_list, fresh_run_id, RunAxiom, RunJournal,
    RunManifest, RunOutcome, RUNS_FILE,
};
pub use remote::HttpTier;
pub use store::{read_suite, EntryMeta, PendingSuite, Store, StoreError, SuiteReader};
pub use tier::{CacheTier, TieredCache, WarmMode};
