//! The advisory entry index: written atomically on seal, validated
//! against the directory listing on read, and never trusted when stale
//! or damaged — the fallback is always the full header scan.

use std::path::PathBuf;
use transform_core::spec::parse_mtm;
use transform_store::{cached_or_synthesize, Store, INDEX_FILE};
use transform_synth::SynthOptions;

fn opts(bound: usize) -> SynthOptions {
    let mut o = SynthOptions::new(bound);
    o.enumeration.allow_fences = false;
    o.enumeration.allow_rmw = false;
    o
}

fn mtm() -> transform_core::axiom::Mtm {
    parse_mtm(
        "mtm m {
           axiom sc_per_loc: acyclic(rf | co | fr | po_loc)
           axiom invlpg:     acyclic(fr_va | ^po | remap)
         }",
    )
    .expect("spec parses")
}

fn temp_store(tag: &str) -> (PathBuf, Store) {
    let dir = std::env::temp_dir().join(format!("tfs-index-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let store = Store::open(&dir).expect("store opens");
    (dir, store)
}

#[test]
fn seal_maintains_an_exact_index() {
    let (dir, store) = temp_store("seal");
    let m = mtm();
    assert!(store.read_index().is_none(), "no index before any seal");

    cached_or_synthesize(&store, &m, "sc_per_loc", &opts(4), 2).expect("seals");
    let index = store.read_index().expect("index after one seal");
    assert_eq!(index.len(), 1);
    assert_eq!(index[0].meta.axiom, "sc_per_loc");
    assert_eq!(index[0].meta.bound, 4);

    cached_or_synthesize(&store, &m, "invlpg", &opts(4), 2).expect("seals");
    let index = store.read_index().expect("index after two seals");
    assert_eq!(index.len(), 2);
    // Sorted by fingerprint, exactly like Store::entries.
    let listed: Vec<_> = index.iter().map(|e| e.fingerprint).collect();
    assert_eq!(listed, store.entries().expect("listable"));
    // Metadata matches what each entry's own header says.
    for entry in &index {
        let reader = store.open_suite(entry.fingerprint).expect("entry opens");
        assert_eq!(reader.meta(), &entry.meta);
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn stale_and_corrupt_indexes_are_rejected_and_rebuildable() {
    let (dir, store) = temp_store("stale");
    let m = mtm();
    cached_or_synthesize(&store, &m, "sc_per_loc", &opts(4), 2).expect("seals");
    cached_or_synthesize(&store, &m, "invlpg", &opts(4), 2).expect("seals");
    assert!(store.read_index().is_some());

    // Delete one sealed entry behind the store's back: the index now
    // lists an entry that no longer exists, so it must be rejected.
    let victim = store.entries().expect("listable")[0];
    store.remove(victim).expect("removable");
    assert!(
        store.read_index().is_none(),
        "stale index must not be served"
    );

    // An explicit rebuild brings it back in sync.
    let indexed = store.rebuild_index().expect("rebuilds");
    assert_eq!(indexed, 1);
    assert_eq!(store.read_index().expect("valid again").len(), 1);

    // A flipped byte anywhere in the file invalidates it.
    let path = dir.join(INDEX_FILE);
    let mut bytes = std::fs::read(&path).expect("readable");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xff;
    std::fs::write(&path, &bytes).expect("writable");
    assert!(
        store.read_index().is_none(),
        "corrupt index must not be served"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn tmp_entries_are_listed_and_swept() {
    let (dir, store) = temp_store("tmp");
    // A crashed synthesis leaves a shard directory; a crashed index
    // rewrite leaves a staging file. Both must be swept.
    std::fs::create_dir_all(dir.join("tmp-deadbeef-123-0")).expect("mkdir");
    std::fs::write(dir.join("tmp-deadbeef-123-0/shard-0000.bin"), b"junk").expect("write");
    std::fs::write(dir.join("tmp-index-123-0"), b"junk").expect("write");
    assert_eq!(store.stale_tmp_entries().expect("listable").len(), 2);
    assert_eq!(store.sweep_tmp().expect("sweeps"), 2);
    assert!(store.stale_tmp_entries().expect("listable").is_empty());
    std::fs::remove_dir_all(&dir).ok();
}
