//! Corruption injection: flipped bytes, truncation, and version skew in
//! a sealed entry must be *detected* (checksums/version field) and the
//! suite transparently *rebuilt* — damaged bytes are never served.

use proptest::proptest;
use transform_core::axiom::Mtm;
use transform_litmus::format::print_elt;
use transform_store::{cached_or_synthesize, suite_fingerprint, CacheStatus, Store};
use transform_synth::{Suite, SynthOptions};
use transform_x86::x86t_elt;

fn opts() -> SynthOptions {
    let mut o = SynthOptions::new(4);
    o.enumeration.allow_fences = false;
    o.enumeration.allow_rmw = false;
    o
}

fn render(suite: &Suite) -> String {
    let mut out = String::new();
    for (i, elt) in suite.elts.iter().enumerate() {
        out.push_str(&print_elt(&format!("{}_{i}", suite.axiom), &elt.witness));
        out.push('\n');
    }
    out
}

/// Seeds a fresh store with one sealed entry and returns the harness.
struct Harness {
    store: Store,
    dir: std::path::PathBuf,
    mtm: Mtm,
    path: std::path::PathBuf,
    clean_bytes: Vec<u8>,
    clean_rendering: String,
}

impl Harness {
    fn new(tag: &str) -> Harness {
        let dir = std::env::temp_dir().join(format!("tfs-corrupt-{tag}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let store = Store::open(&dir).expect("store opens");
        let mtm = x86t_elt();
        let (suite, _) =
            cached_or_synthesize(&store, &mtm, "sc_per_loc", &opts(), 2).expect("seeds");
        let path = store.entry_path(suite_fingerprint(&mtm, "sc_per_loc", &opts()));
        let clean_bytes = std::fs::read(&path).expect("sealed entry exists");
        Harness {
            store,
            dir,
            mtm,
            path,
            clean_rendering: render(&suite),
            clean_bytes,
        }
    }

    /// Overwrites the entry with `bytes`, then asserts the cache layer
    /// detects the damage, rebuilds, and serves the correct suite.
    fn assert_detected_and_rebuilt(&self, bytes: &[u8], what: &str) {
        std::fs::write(&self.path, bytes).expect("plants damage");
        let (suite, status) =
            cached_or_synthesize(&self.store, &self.mtm, "sc_per_loc", &opts(), 2)
                .expect("rebuild succeeds");
        assert!(
            matches!(status, CacheStatus::Rebuilt { .. }),
            "{what}: expected a rebuild, got {status:?}"
        );
        assert_eq!(
            render(&suite),
            self.clean_rendering,
            "{what}: rebuilt suite must match the clean one"
        );
        // The rebuild resealed a valid entry: the next read is a hit.
        let (_, status) = cached_or_synthesize(&self.store, &self.mtm, "sc_per_loc", &opts(), 2)
            .expect("post-rebuild read");
        assert!(status.is_hit(), "{what}: reseal must restore the entry");
    }
}

impl Drop for Harness {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.dir).ok();
    }
}

#[test]
fn every_single_flipped_byte_is_detected() {
    let h = Harness::new("flip-sweep");
    // Reading a damaged entry directly must error for *every* position
    // (the whole file is covered by header, record, or trailer
    // checksums); the cheap direct read makes an exhaustive sweep
    // affordable.
    let fp = suite_fingerprint(&h.mtm, "sc_per_loc", &opts());
    for at in 0..h.clean_bytes.len() {
        let mut bytes = h.clean_bytes.clone();
        bytes[at] ^= 0x40;
        std::fs::write(&h.path, &bytes).expect("plants damage");
        let outcome = h.store.open_suite(fp).and_then(|r| {
            for record in r {
                record?;
            }
            Ok(())
        });
        assert!(outcome.is_err(), "flip at byte {at} went undetected");
    }
    // Restore so the harness drop leaves a consistent directory.
    std::fs::write(&h.path, &h.clean_bytes).expect("restores");
}

proptest! {
    #![proptest_config(proptest::ProptestConfig::with_cases(24))]
    #[test]
    fn flipped_bytes_are_rebuilt_not_served(at in 0usize..4096, bit in 0u8..8) {
        let h = Harness::new("flip");
        let at = at % h.clean_bytes.len();
        let mut bytes = h.clean_bytes.clone();
        bytes[at] ^= 1 << bit;
        h.assert_detected_and_rebuilt(&bytes, &format!("bit {bit} of byte {at}"));
    }

    #[test]
    fn truncation_is_rebuilt_not_served(cut in 0usize..4096) {
        let h = Harness::new("trunc");
        let cut = cut % h.clean_bytes.len();
        h.assert_detected_and_rebuilt(&h.clean_bytes[..cut], &format!("truncation at {cut}"));
    }
}

#[test]
fn stale_format_versions_are_rebuilt_not_served() {
    let h = Harness::new("version");
    // Bytes 8..12 hold the little-endian format version, right after the
    // 8-byte magic. A future (or ancient) version must be refused before
    // any structure is trusted, then rebuilt.
    let mut bytes = h.clean_bytes.clone();
    let stale = (transform_store::FORMAT_VERSION + 1).to_le_bytes();
    bytes[8..12].copy_from_slice(&stale);
    let fp = suite_fingerprint(&h.mtm, "sc_per_loc", &opts());
    std::fs::write(&h.path, &bytes).expect("plants version skew");
    match h.store.open_suite(fp) {
        Err(transform_store::StoreError::Version { found }) => {
            assert_eq!(found, transform_store::FORMAT_VERSION + 1);
        }
        Err(other) => panic!("expected a version error, got {other}"),
        Ok(_) => panic!("expected a version error, got a reader"),
    }
    h.assert_detected_and_rebuilt(&bytes, "stale version");
}

#[test]
fn garbage_files_are_rebuilt_not_served() {
    let h = Harness::new("garbage");
    h.assert_detected_and_rebuilt(b"definitely not a suite", "garbage file");
    h.assert_detected_and_rebuilt(&[], "empty file");
}
