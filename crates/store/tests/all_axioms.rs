//! The fused all-axiom cache path: one pass serves every per-axiom
//! suite — tier hits from sealed entries, misses through a single
//! fused synthesis run that seals each axiom as it finishes — and the
//! result is indistinguishable from per-axiom lookups.

use transform_store::{
    cached_or_synthesize, cached_or_synthesize_all, suite_fingerprint, CacheStatus, Store,
};
use transform_synth::{Suite, SynthOptions};
use transform_x86::x86t_elt;

fn opts() -> SynthOptions {
    let mut o = SynthOptions::new(4);
    o.enumeration.allow_fences = false;
    o.enumeration.allow_rmw = false;
    o
}

fn temp_store(tag: &str) -> (std::path::PathBuf, Store) {
    let dir = std::env::temp_dir().join(format!("tfs-all-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    (dir.clone(), Store::open(&dir).expect("store opens"))
}

fn assert_same_suite(a: &Suite, b: &Suite, axiom: &str) {
    assert_eq!(a.elts.len(), b.elts.len(), "{axiom}");
    for (x, y) in a.elts.iter().zip(&b.elts) {
        assert_eq!(x.program, y.program, "{axiom}");
        assert_eq!(x.witness, y.witness, "{axiom}");
        assert_eq!(x.violated, y.violated, "{axiom}");
    }
    assert_eq!(a.stats.programs, b.stats.programs, "{axiom}");
    assert_eq!(a.stats.executions, b.stats.executions, "{axiom}");
    assert_eq!(a.stats.forbidden, b.stats.forbidden, "{axiom}");
    assert_eq!(a.stats.minimal, b.stats.minimal, "{axiom}");
}

#[test]
fn cold_all_seals_every_axiom_and_warm_all_hits() {
    let mtm = x86t_elt();
    let (dir, store) = temp_store("cold-warm");
    let o = opts();

    let cold = cached_or_synthesize_all(&store, &mtm, &o, 2).expect("cold all");
    assert_eq!(cold.len(), mtm.axioms().len());
    for (axiom, (suite, status)) in &cold {
        assert_eq!(status, &CacheStatus::Miss, "{axiom}");
        // Sealed from inside the fused pool: the entry exists now.
        assert!(
            store.contains(suite_fingerprint(&mtm, axiom, &o)),
            "{axiom}"
        );
        // And matches the per-axiom engine.
        let solo = transform_par::synthesize_suite_jobs(&mtm, axiom, &o, 2);
        assert_same_suite(suite, &solo, axiom);
    }

    let warm = cached_or_synthesize_all(&store, &mtm, &o, 2).expect("warm all");
    for (axiom, (suite, status)) in &warm {
        assert!(status.is_hit(), "{axiom}: {status:?}");
        assert_same_suite(suite, &cold[axiom].0, axiom);
        // A warm hit reproduces the cold run's stats byte for byte.
        assert_eq!(suite.stats.elapsed, cold[axiom].0.stats.elapsed, "{axiom}");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn mixed_temperatures_serve_hits_and_synthesize_only_misses() {
    let mtm = x86t_elt();
    let (dir, store) = temp_store("mixed");
    let o = opts();

    // Seed exactly one axiom through the single-suite path.
    let (seeded, status) =
        cached_or_synthesize(&store, &mtm, "invlpg", &o, 2).expect("seeds invlpg");
    assert_eq!(status, CacheStatus::Miss);

    let all = cached_or_synthesize_all(&store, &mtm, &o, 2).expect("mixed all");
    for (axiom, (suite, status)) in &all {
        if axiom == "invlpg" {
            assert!(status.is_hit(), "{axiom}: {status:?}");
            assert_same_suite(suite, &seeded, axiom);
        } else {
            assert_eq!(status, &CacheStatus::Miss, "{axiom}");
            assert!(
                store.contains(suite_fingerprint(&mtm, axiom, &o)),
                "{axiom}"
            );
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn timed_out_all_run_is_returned_but_never_sealed() {
    let mtm = x86t_elt();
    let (dir, store) = temp_store("timeout");
    let mut o = opts();
    o.enumeration.bound = 6;
    o.timeout = Some(std::time::Duration::ZERO);

    let all = cached_or_synthesize_all(&store, &mtm, &o, 2).expect("timed-out all");
    for (axiom, (suite, status)) in &all {
        assert!(
            matches!(status, CacheStatus::Uncached { .. }),
            "{axiom}: {status:?}"
        );
        assert!(suite.stats.timed_out, "{axiom}");
        assert!(
            !store.contains(suite_fingerprint(&mtm, axiom, &o)),
            "{axiom}: partial suite must never be sealed"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn corrupt_entry_is_rebuilt_by_the_all_path() {
    let mtm = x86t_elt();
    let (dir, store) = temp_store("rebuild");
    let o = opts();
    cached_or_synthesize_all(&store, &mtm, &o, 2).expect("cold all");

    // Damage one sealed entry behind the cache's back.
    let fp = suite_fingerprint(&mtm, "sc_per_loc", &o);
    let path = store.entry_path(fp);
    let mut bytes = std::fs::read(&path).expect("readable");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xff;
    std::fs::write(&path, &bytes).expect("writable");

    let all = cached_or_synthesize_all(&store, &mtm, &o, 2).expect("rebuild all");
    let (suite, status) = &all["sc_per_loc"];
    assert!(
        matches!(status, CacheStatus::Rebuilt { .. }),
        "expected a rebuild, got {status:?}"
    );
    let solo = transform_par::synthesize_suite_jobs(&mtm, "sc_per_loc", &o, 2);
    assert_same_suite(suite, &solo, "sc_per_loc");
    // Everyone else stayed a clean hit.
    for (axiom, (_, status)) in &all {
        if axiom != "sc_per_loc" {
            assert!(status.is_hit(), "{axiom}: {status:?}");
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}
