//! Warm-start + delta-entry pinning: warm-started suites must be
//! byte-identical to cold synthesis (satellite of the incremental
//! cross-bound path), the delta codec must reject every damaged or
//! unresolvable input (rebuild, never serve), and parent-aware tier
//! transfer must move whole chains.
//!
//! Byte-identity caveat: a sealed header carries `elapsed` and the
//! per-shard breakdown, both scheduling artifacts. The comparisons here
//! therefore byte-compare the *record region* (everything after the
//! header checksum — the suite content) and check the semantic totals
//! field-by-field with elapsed/shards excluded.

use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use proptest::prelude::*;
use transform_core::axiom::Mtm;
use transform_core::spec::parse_mtm;
use transform_store::{
    entry_parent, is_delta, materialize, suite_fingerprint, validate_delta, Fingerprint, Store,
    StoreError, TieredCache, WarmMode,
};
use transform_synth::{Balance, Suite, SuiteStats, SynthOptions};
use transform_x86::x86t_elt;

static NONCE: AtomicU64 = AtomicU64::new(0);

fn temp_store(tag: &str) -> (PathBuf, Store) {
    let dir = std::env::temp_dir().join(format!(
        "tfs-warm-{tag}-{}-{}",
        std::process::id(),
        NONCE.fetch_add(1, Ordering::Relaxed)
    ));
    let store = Store::open(&dir).expect("store opens");
    (dir, store)
}

fn opts(bound: usize) -> SynthOptions {
    let mut o = SynthOptions::new(bound);
    o.enumeration.allow_fences = false;
    o.enumeration.allow_rmw = false;
    o
}

fn render(suite: &Suite) -> String {
    let mut out = format!("axiom {}\n", suite.axiom);
    for elt in &suite.elts {
        out.push_str(&format!(
            "program {:?}\nwitness {:?}\nviolated {:?}\n",
            elt.program,
            elt.witness.to_parts(),
            elt.violated,
        ));
    }
    out
}

/// The semantic (scheduling-independent) half of the sealed stats.
fn totals(stats: &SuiteStats) -> (usize, usize, usize, usize, bool) {
    (
        stats.programs,
        stats.executions,
        stats.forbidden,
        stats.minimal,
        stats.timed_out,
    )
}

/// The bytes after the header checksum of a sealed full entry: the
/// framed records plus the trailer — exactly the content that must not
/// depend on how the suite was produced.
fn record_region(bytes: &[u8]) -> &[u8] {
    // magic(8) + version(4), then varint(header_len), header, fnv64(8).
    let mut at = 12usize;
    let mut len: u64 = 0;
    let mut shift = 0;
    loop {
        let b = bytes[at];
        at += 1;
        len |= u64::from(b & 0x7f) << shift;
        if b & 0x80 == 0 {
            break;
        }
        shift += 7;
    }
    &bytes[at + len as usize + 8..]
}

fn entry_bytes(store: &Store, fp: Fingerprint) -> Vec<u8> {
    store
        .entry_bytes(fp)
        .expect("entry readable")
        .expect("entry present")
}

/// Cold-seals `bound` into `cold`, warm-seals it into `warm` (whose
/// store must already hold the sealed bound−1 parent), and pins the
/// warm result against the cold one: same suite, same semantic totals,
/// byte-identical record region once the delta is materialized.
fn assert_warm_matches_cold(
    cold: &TieredCache,
    warm: &TieredCache,
    mtm: &Mtm,
    axiom: &str,
    o: &SynthOptions,
    jobs: usize,
) {
    let (cold_suite, cold_status) = cold
        .cached_or_synthesize(mtm, axiom, o, jobs)
        .expect("cold synthesis");
    assert!(!cold_status.is_hit(), "cold store must actually synthesize");
    let (warm_suite, warm_status) = warm
        .cached_or_synthesize_warm(mtm, axiom, o, jobs, WarmMode::Require, None)
        .expect("warm synthesis");
    assert!(!warm_status.is_hit(), "warm store must actually synthesize");

    assert_eq!(render(&cold_suite), render(&warm_suite));
    assert_eq!(totals(&cold_suite.stats), totals(&warm_suite.stats));

    let fp = suite_fingerprint(mtm, axiom, o);
    assert_eq!(cold.local().entry_is_delta(fp).unwrap(), Some(false));
    assert_eq!(warm.local().entry_is_delta(fp).unwrap(), Some(true));

    let cold_bytes = entry_bytes(cold.local(), fp);
    let delta_bytes = entry_bytes(warm.local(), fp);
    // Tiny suites can be all header, where the delta's parent-map
    // overhead dominates; the size win only materializes (and is only
    // asserted) once the record region carries real weight.
    if record_region(&cold_bytes).len() >= 1024 {
        assert!(
            delta_bytes.len() < cold_bytes.len(),
            "delta ({}) must undercut the full entry ({})",
            delta_bytes.len(),
            cold_bytes.len()
        );
    }
    let full = materialize(warm.local(), &delta_bytes, Some(fp)).expect("delta materializes");
    assert_eq!(
        record_region(&cold_bytes),
        record_region(&full),
        "materialized warm entry must be byte-identical to the cold seal"
    );
}

#[test]
fn warm_chain_matches_cold_bound_by_bound() {
    // The tentpole pin: step bounds 2→5 warm (each sealing a delta on
    // the previous bound) against independent cold seals. By bound 5
    // the warm store's parent chain is three deltas deep, so reading it
    // also exercises recursive materialization.
    let mtm = x86t_elt();
    let (cold_dir, cold) = temp_store("chain-cold");
    let (warm_dir, warm) = temp_store("chain-warm");
    let cold = TieredCache::new(cold);
    let warm = TieredCache::new(warm);

    let o2 = opts(2);
    let (c2, _) = cold
        .cached_or_synthesize(&mtm, "sc_per_loc", &o2, 2)
        .expect("cold bound 2");
    let (w2, _) = warm
        .cached_or_synthesize(&mtm, "sc_per_loc", &o2, 2)
        .expect("warm-store bound 2 (cold seed)");
    assert_eq!(render(&c2), render(&w2));

    for bound in 3..=5 {
        assert_warm_matches_cold(&cold, &warm, &mtm, "sc_per_loc", &opts(bound), 2);
    }

    // The deepest entry re-reads as a hit through the chain.
    let (again, status) = warm
        .cached_or_synthesize(&mtm, "sc_per_loc", &opts(5), 2)
        .expect("chained delta re-read");
    assert!(status.is_hit());
    let (cold5, _) = cold
        .cached_or_synthesize(&mtm, "sc_per_loc", &opts(5), 2)
        .expect("cold bound 5 re-read");
    assert_eq!(render(&cold5), render(&again));

    fs::remove_dir_all(cold_dir).ok();
    fs::remove_dir_all(warm_dir).ok();
}

#[test]
fn warm_all_axioms_matches_cold() {
    // The fused all-axiom path: every x86t_elt axiom warm-starts from
    // its own bound-2 parent in one run, and each seals a delta whose
    // materialization matches the cold full seal byte-for-byte.
    let mtm = x86t_elt();
    let (cold_dir, cold) = temp_store("all-cold");
    let (warm_dir, warm) = temp_store("all-warm");
    let cold = TieredCache::new(cold);
    let warm = TieredCache::new(warm);

    let o2 = opts(2);
    cold.cached_or_synthesize_all(&mtm, &o2, 2)
        .expect("cold bound 2");
    warm.cached_or_synthesize_all(&mtm, &o2, 2)
        .expect("warm-store bound 2 (cold seed)");

    let o3 = opts(3);
    let cold3 = cold
        .cached_or_synthesize_all(&mtm, &o3, 2)
        .expect("cold bound 3");
    let warm3 = warm
        .cached_or_synthesize_all_warm(&mtm, &o3, 2, WarmMode::Require, None)
        .expect("warm bound 3");
    assert_eq!(cold3.len(), warm3.len());
    for (axiom, (cold_suite, _)) in &cold3 {
        let (warm_suite, _) = &warm3[axiom];
        assert_eq!(render(cold_suite), render(warm_suite), "axiom {axiom}");
        assert_eq!(totals(&cold_suite.stats), totals(&warm_suite.stats));
        let fp = suite_fingerprint(&mtm, axiom, &o3);
        assert_eq!(warm.local().entry_is_delta(fp).unwrap(), Some(true));
        let full = materialize(warm.local(), &entry_bytes(warm.local(), fp), Some(fp))
            .expect("delta materializes");
        assert_eq!(
            record_region(&entry_bytes(cold.local(), fp)),
            record_region(&full),
            "axiom {axiom}"
        );
    }

    fs::remove_dir_all(cold_dir).ok();
    fs::remove_dir_all(warm_dir).ok();
}

#[test]
fn warm_require_without_parent_errors_and_auto_falls_back_cold() {
    let mtm = x86t_elt();
    let (dir, store) = temp_store("modes");
    let cache = TieredCache::new(store);
    let o = opts(3);

    // No bound-2 parent sealed: Require refuses, Auto runs cold.
    let err = cache
        .cached_or_synthesize_warm(&mtm, "sc_per_loc", &o, 2, WarmMode::Require, None)
        .expect_err("Require without a parent must error");
    assert!(
        matches!(err, StoreError::WarmStart(_)),
        "got {err} instead of WarmStart"
    );
    let (_, status) = cache
        .cached_or_synthesize_warm(&mtm, "sc_per_loc", &o, 2, WarmMode::Auto, None)
        .expect("Auto degrades to cold");
    assert!(!status.is_hit());
    let fp = suite_fingerprint(&mtm, "sc_per_loc", &o);
    assert_eq!(
        cache.local().entry_is_delta(fp).unwrap(),
        Some(false),
        "the Auto fallback must seal a full entry"
    );

    fs::remove_dir_all(dir).ok();
}

#[test]
fn corrupt_digest_disables_warm_start_but_not_the_cache() {
    let mtm = x86t_elt();
    let (dir, store) = temp_store("digest");
    let cache = TieredCache::new(store);
    cache
        .cached_or_synthesize(&mtm, "sc_per_loc", &opts(2), 2)
        .expect("seed bound 2");

    let parent_fp = suite_fingerprint(&mtm, "sc_per_loc", &opts(2));
    let digest_path = cache.local().digest_path(parent_fp);
    let mut bytes = fs::read(&digest_path).expect("digest written at seal");
    let last = bytes.len() - 1;
    bytes[last] ^= 0x40;
    fs::write(&digest_path, &bytes).expect("plant damaged digest");

    let o = opts(3);
    let err = cache
        .cached_or_synthesize_warm(&mtm, "sc_per_loc", &o, 2, WarmMode::Require, None)
        .expect_err("Require on a damaged digest must refuse");
    assert!(matches!(err, StoreError::WarmStart(_)));
    let (_, status) = cache
        .cached_or_synthesize_warm(&mtm, "sc_per_loc", &o, 2, WarmMode::Auto, None)
        .expect("Auto shrugs and runs cold");
    assert!(!status.is_hit());
    assert_eq!(
        cache
            .local()
            .entry_is_delta(suite_fingerprint(&mtm, "sc_per_loc", &o))
            .unwrap(),
        Some(false)
    );

    fs::remove_dir_all(dir).ok();
}

/// Seals bound 4 cold and bound 5 warm into one store (both suites are
/// non-empty at these bounds, so the delta carries a real parent map
/// AND real new records); returns the cache plus the child and parent
/// fingerprints.
fn delta_fixture(tag: &str) -> (PathBuf, TieredCache, Mtm, Fingerprint, Fingerprint) {
    let mtm = x86t_elt();
    let (dir, store) = temp_store(tag);
    let cache = TieredCache::new(store);
    cache
        .cached_or_synthesize(&mtm, "sc_per_loc", &opts(4), 2)
        .expect("parent seals");
    cache
        .cached_or_synthesize_warm(&mtm, "sc_per_loc", &opts(5), 2, WarmMode::Require, None)
        .expect("delta seals");
    let parent = suite_fingerprint(&mtm, "sc_per_loc", &opts(4));
    let child = suite_fingerprint(&mtm, "sc_per_loc", &opts(5));
    (dir, cache, mtm, child, parent)
}

#[test]
fn delta_round_trip_reports_its_parent() {
    let (dir, cache, _mtm, child, parent) = delta_fixture("roundtrip");
    let bytes = entry_bytes(cache.local(), child);
    assert!(is_delta(&bytes));
    assert_eq!(entry_parent(&bytes), Some(parent));
    let header = validate_delta(&bytes, Some(child)).expect("delta self-validates");
    assert_eq!(header.fingerprint, child);
    assert_eq!(header.parent, parent);
    assert!(header.meta.bound == 5);
    assert!(
        !header.parent_map.is_empty() && header.new_records > 0,
        "the fixture delta must exercise both halves of the format"
    );
    fs::remove_dir_all(dir).ok();
}

#[test]
fn truncated_delta_never_materializes() {
    let (dir, cache, _mtm, child, _parent) = delta_fixture("truncate");
    let bytes = entry_bytes(cache.local(), child);
    // Every prefix must fail; sample densely rather than exhaustively.
    let mut cuts: Vec<usize> = (0..bytes.len()).step_by(41).collect();
    cuts.extend([0, 1, 7, 8, 11, 12, bytes.len() - 9, bytes.len() - 1]);
    for cut in cuts {
        let err = materialize(cache.local(), &bytes[..cut], Some(child))
            .expect_err("truncated delta must be rejected");
        assert!(
            matches!(err, StoreError::Corrupt(_) | StoreError::Io(_)),
            "cut at {cut}: got {err}"
        );
    }
    fs::remove_dir_all(dir).ok();
}

#[test]
fn missing_parent_refuses_to_serve_and_rebuilds() {
    let (dir, cache, mtm, child, parent) = delta_fixture("missing-parent");
    cache.local().remove(parent).expect("drop the parent");

    match cache.local().open_suite(child) {
        Err(StoreError::Corrupt(_)) => {}
        Err(other) => panic!("got {other} instead of Corrupt"),
        Ok(_) => panic!("an unresolvable delta must not be served"),
    }

    // The cache path treats the broken chain like any damaged entry:
    // rebuild, then serve the fresh seal.
    let (suite, status) = cache
        .cached_or_synthesize(&mtm, "sc_per_loc", &opts(5), 2)
        .expect("rebuild through the cache");
    assert!(matches!(
        status,
        transform_store::CacheStatus::Rebuilt { .. }
    ));
    assert!(!suite.elts.is_empty());
    // The rebuild had no parent to delta against, so it sealed full.
    assert_eq!(cache.local().entry_is_delta(child).unwrap(), Some(false));

    fs::remove_dir_all(dir).ok();
}

#[test]
fn corrupt_parent_breaks_the_chain_but_not_the_delta() {
    let (dir, cache, _mtm, child, parent) = delta_fixture("corrupt-parent");
    let path = cache.local().entry_path(parent);
    let mut bytes = fs::read(&path).expect("parent bytes");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x01;
    fs::write(&path, &bytes).expect("plant damaged parent");

    let delta_bytes = entry_bytes(cache.local(), child);
    validate_delta(&delta_bytes, Some(child)).expect("the delta itself is still intact");
    let err = materialize(cache.local(), &delta_bytes, Some(child))
        .expect_err("a damaged parent must break materialization");
    assert!(matches!(err, StoreError::Corrupt(_)), "got {err}");

    fs::remove_dir_all(dir).ok();
}

#[test]
fn version_skew_is_detected_on_delta_and_parent() {
    let (dir, cache, _mtm, child, parent) = delta_fixture("skew");

    // Bump the parent's format version field (bytes 8..12 after magic).
    let path = cache.local().entry_path(parent);
    let mut bytes = fs::read(&path).expect("parent bytes");
    bytes[8..12].copy_from_slice(&2u32.to_le_bytes());
    fs::write(&path, &bytes).expect("plant skewed parent");
    let delta_bytes = entry_bytes(cache.local(), child);
    let err = materialize(cache.local(), &delta_bytes, Some(child))
        .expect_err("a skewed parent must break materialization");
    assert!(matches!(err, StoreError::Version { found: 2 }), "got {err}");

    // And a skewed delta version field is rejected up front.
    let mut skewed = delta_bytes.clone();
    skewed[8..12].copy_from_slice(&9u32.to_le_bytes());
    let err = validate_delta(&skewed, Some(child)).expect_err("skewed delta");
    assert!(matches!(err, StoreError::Version { found: 9 }), "got {err}");

    fs::remove_dir_all(dir).ok();
}

#[test]
fn install_bytes_validates_delta_chains() {
    let (dir, cache, _mtm, child, parent) = delta_fixture("install");
    let delta_bytes = entry_bytes(cache.local(), child);
    let parent_bytes = entry_bytes(cache.local(), parent);

    // A fresh store without the parent must refuse the delta...
    let (other_dir, other) = temp_store("install-fresh");
    let err = other
        .install_bytes(child, &delta_bytes)
        .expect_err("delta without its parent must not install");
    assert!(matches!(err, StoreError::Corrupt(_)), "got {err}");
    assert!(other.entry_bytes(child).unwrap().is_none());

    // ...and accept it once the parent landed.
    other
        .install_bytes(parent, &parent_bytes)
        .expect("parent installs");
    other
        .install_bytes(child, &delta_bytes)
        .expect("delta installs after its parent");
    assert_eq!(other.entry_is_delta(child).unwrap(), Some(true));

    fs::remove_dir_all(other_dir).ok();
    fs::remove_dir_all(dir).ok();
}

#[test]
fn delta_push_and_parent_aware_pull_move_whole_chains() {
    let mtm = x86t_elt();

    // Machine A seals bound 2 cold + bound 3 warm, pushing both to a
    // shared remote (a plain Store used as the loopback tier).
    let (remote_dir, _) = temp_store("xfer-remote");
    let remote = || Box::new(Store::open(&remote_dir).expect("remote opens"));
    let (a_dir, a_store) = temp_store("xfer-a");
    let a = TieredCache::new(a_store).with_remote(remote());
    a.cached_or_synthesize(&mtm, "sc_per_loc", &opts(2), 2)
        .expect("A seals bound 2");
    let (a3, _) = a
        .cached_or_synthesize_warm(&mtm, "sc_per_loc", &opts(3), 2, WarmMode::Require, None)
        .expect("A seals bound 3 delta");

    let parent = suite_fingerprint(&mtm, "sc_per_loc", &opts(2));
    let child = suite_fingerprint(&mtm, "sc_per_loc", &opts(3));
    let remote_view = Store::open(&remote_dir).expect("remote reopens");
    assert_eq!(remote_view.entry_is_delta(parent).unwrap(), Some(false));
    assert_eq!(
        remote_view.entry_is_delta(child).unwrap(),
        Some(true),
        "the delta must cross the wire as a delta"
    );

    // Machine B holds neither entry: a bound-3 read must pull the delta
    // AND its parent, then serve the materialized suite.
    let (b_dir, b_store) = temp_store("xfer-b");
    let b = TieredCache::new(b_store).with_remote(remote());
    let (b3, status) = b
        .cached_or_synthesize(&mtm, "sc_per_loc", &opts(3), 2)
        .expect("B pulls the chain");
    assert!(
        status.is_remote_hit(),
        "B must be served from the remote, got {status:?}"
    );
    assert_eq!(render(&a3), render(&b3));
    assert_eq!(b.local().entry_is_delta(child).unwrap(), Some(true));
    assert_eq!(
        b.local().entry_is_delta(parent).unwrap(),
        Some(false),
        "the pull must land the parent too"
    );

    // Machine C faces a remote whose parent vanished: the delta cannot
    // be validated locally, so C falls through to cold synthesis rather
    // than serving a broken chain.
    remote_view.remove(parent).expect("drop remote parent");
    let (c_dir, c_store) = temp_store("xfer-c");
    let c = TieredCache::new(c_store).with_remote(remote());
    let (c3, status) = c
        .cached_or_synthesize(&mtm, "sc_per_loc", &opts(3), 2)
        .expect("C resynthesizes");
    assert!(!status.is_hit(), "an unresolvable remote delta must miss");
    assert_eq!(render(&a3), render(&c3));

    fs::remove_dir_all(a_dir).ok();
    fs::remove_dir_all(b_dir).ok();
    fs::remove_dir_all(c_dir).ok();
    fs::remove_dir_all(remote_dir).ok();
}

proptest! {
    #![proptest_config(proptest::prelude::ProptestConfig::with_cases(8))]

    // The cross-bound equivalence property (the issue's headline pin):
    // for random bounds, worker counts, balance modes, and instruction
    // vocabularies, a warm-started suite is byte-identical to the cold
    // one in its record region and identical in its semantic totals.
    #[test]
    fn warm_start_is_byte_identical_to_cold(
        bound in 3usize..=4,
        jobs_idx in 0usize..3,
        mass in any::<bool>(),
        fences in any::<bool>(),
        rmw in any::<bool>(),
        demo_spec in any::<bool>(),
    ) {
        let jobs = [1usize, 2, 4][jobs_idx];
        let (mtm, axiom) = if demo_spec {
            (
                parse_mtm(
                    "mtm demo {
                       axiom sc_per_loc: acyclic(rf | co | fr | po_loc)
                     }",
                )
                .expect("spec parses"),
                "sc_per_loc",
            )
        } else {
            (x86t_elt(), "causality")
        };
        // Fences/rmw widen the space sharply; keep those cases at the
        // smaller bound so the 8-case run stays quick.
        let bound = if fences || rmw { bound.min(3) } else { bound };
        let mut o = opts(bound);
        o.enumeration.allow_fences = fences;
        o.enumeration.allow_rmw = rmw;
        o.balance = if mass { Balance::Mass } else { Balance::Depth };
        let mut parent_o = o.clone();
        parent_o.enumeration.bound = bound - 1;

        let (cold_dir, cold) = temp_store("prop-cold");
        let (warm_dir, warm) = temp_store("prop-warm");
        let cold = TieredCache::new(cold);
        let warm = TieredCache::new(warm);
        warm.cached_or_synthesize(&mtm, axiom, &parent_o, jobs)
            .expect("parent seals cold");
        assert_warm_matches_cold(&cold, &warm, &mtm, axiom, &o, jobs);

        fs::remove_dir_all(cold_dir).ok();
        fs::remove_dir_all(warm_dir).ok();
    }
}
