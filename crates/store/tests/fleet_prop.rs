//! Fleet merge determinism under fault injection.
//!
//! The property the coordinator's ordinal merge must hold: for any
//! partition shape, range tiling, and balance mode — with shards
//! uploaded out of order, uploaded twice, or recomputed after a lease
//! expired — the merged suites carry exactly the records and lossless
//! counters of a single-machine fused run of the same plan.

use proptest::prelude::*;
use transform_store::fleet::StageOutcome;
use transform_store::{
    execute_lease, merge_fleet_job, read_suite, JobSpec, LeaseGrant, Store,
};
use transform_synth::{Balance, SynthOptions};
use transform_x86::x86t_elt;

fn temp_store(tag: &str, case: u64) -> (std::path::PathBuf, Store) {
    let dir = std::env::temp_dir().join(format!(
        "tffleetprop-{tag}-{case}-{}",
        std::process::id()
    ));
    std::fs::remove_dir_all(&dir).ok();
    let store = Store::open(&dir).expect("store opens");
    (dir, store)
}

proptest! {
    #![proptest_config(proptest::prelude::ProptestConfig::with_cases(8))]

    // Satellite acceptance: kill-a-worker (recompute a granted range
    // under a fresh lease), duplicate uploads, and arbitrary staging
    // order never change the sealed bytes.
    #[test]
    fn faulty_fleets_seal_the_single_machine_suite(
        plan_jobs in 1u32..=3,
        chunks in 1usize..=4,
        mass in any::<bool>(),
        duplicate in any::<bool>(),
        reverse in any::<bool>(),
        case in 0u64..1_000_000,
    ) {
        let mtm = x86t_elt();
        let axioms: Vec<&str> = mtm
            .axioms()
            .iter()
            .take(2)
            .map(|a| a.name.as_str())
            .collect();
        let mut o = SynthOptions::new(4);
        o.enumeration.allow_fences = false;
        o.enumeration.allow_rmw = false;
        o.balance = if mass { Balance::Mass } else { Balance::Depth };

        let spec = JobSpec::for_run(&mtm, &axioms, &o, plan_jobs, chunks, 60_000);
        prop_assert!(spec.validate().is_ok());
        let job = spec.id();
        let (dir, store) = temp_store("merge", case);

        // "Workers": compute every range from its grant. The first
        // range is computed twice under different lease ids — the
        // expired-lease reassignment path, where the original worker
        // died and a second one redid the work.
        let mut order: Vec<usize> = (0..spec.ranges.len()).collect();
        if reverse {
            order.reverse();
        }
        for &i in &order {
            let (lo, hi) = spec.ranges[i];
            let grant = LeaseGrant {
                lease: i as u64 + 1,
                job,
                lo,
                hi,
                ttl_ms: spec.lease_ttl_ms,
                spec: spec.clone(),
            };
            let bytes = execute_lease(&grant, 2).expect("range runs").encode();
            if i == 0 {
                let retry = LeaseGrant { lease: 900, ..grant.clone() };
                let redone = execute_lease(&retry, 1).expect("rerun").encode();
                prop_assert_eq!(
                    &redone, &bytes,
                    "a reassigned range recomputes identical bytes at any jobs"
                );
            }
            prop_assert_eq!(
                store.stage_shard(job, lo, hi, &bytes).expect("stages"),
                StageOutcome::New
            );
            if duplicate {
                prop_assert_eq!(
                    store.stage_shard(job, lo, hi, &bytes).expect("re-stages"),
                    StageOutcome::Duplicate
                );
            }
        }

        let sealed =
            merge_fleet_job(&store, &spec, std::time::Duration::ZERO).expect("merges");
        prop_assert_eq!(sealed.len(), axioms.len());
        for (axiom, fp) in axioms.iter().zip(&sealed) {
            let suite = read_suite(store.open_suite(*fp).expect("sealed")).expect("reads");
            let reference =
                transform_par::synthesize_suite_jobs(&mtm, axiom, &o, plan_jobs as usize);
            prop_assert_eq!(suite.elts.len(), reference.elts.len());
            for (a, b) in suite.elts.iter().zip(&reference.elts) {
                prop_assert_eq!(&a.program, &b.program);
                prop_assert_eq!(&a.witness, &b.witness);
                prop_assert_eq!(&a.violated, &b.violated);
            }
            prop_assert_eq!(suite.stats.programs, reference.stats.programs);
            prop_assert_eq!(suite.stats.executions, reference.stats.executions);
            prop_assert_eq!(suite.stats.forbidden, reference.stats.forbidden);
            prop_assert_eq!(suite.stats.minimal, reference.stats.minimal);
            // The merge wrote the warm-start digest for bound N+1.
            prop_assert!(store.digest_bytes(*fp).expect("readable").is_some());
        }

        std::fs::remove_dir_all(&dir).ok();
    }
}
