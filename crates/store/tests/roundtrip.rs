//! Codec and store round-trips: every synthesized suite at bound ≤ 4,
//! on both candidate-execution backends, survives the binary codec and
//! the sealed store byte-identically — both as structures and as
//! `print_elt`/`parse_elt` text.

use transform_litmus::format::{parse_elt, print_elt};
use transform_store::codec::{decode_record, encode_record};
use transform_store::{cached_or_synthesize, suite_fingerprint, Store};
use transform_synth::{synthesize_suite, Backend, Suite, SuiteRecord, SynthOptions};
use transform_x86::x86t_elt;

fn opts(bound: usize, backend: Backend) -> SynthOptions {
    let mut o = SynthOptions::new(bound);
    o.backend = backend;
    o
}

fn temp_store(tag: &str) -> (Store, std::path::PathBuf) {
    let dir = std::env::temp_dir().join(format!("tfs-test-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    (Store::open(&dir).expect("store opens"), dir)
}

/// Renders a whole suite exactly as `transform synthesize` prints it.
fn render(suite: &Suite) -> String {
    let mut out = String::new();
    for (i, elt) in suite.elts.iter().enumerate() {
        out.push_str(&print_elt(&format!("{}_{i}", suite.axiom), &elt.witness));
        out.push('\n');
    }
    out
}

#[test]
fn every_bound_4_suite_round_trips_byte_identically_on_both_backends() {
    let mtm = x86t_elt();
    let mut checked = 0usize;
    for backend in [Backend::Explicit, Backend::Relational] {
        for bound in [3, 4] {
            // Fences and RMW pairs stay enabled (the EnumOptions
            // default): the full bound-4 program space.
            let o = opts(bound, backend);
            for ax in mtm.axioms() {
                let suite = synthesize_suite(&mtm, &ax.name, &o);
                for (i, elt) in suite.elts.iter().enumerate() {
                    let record = SuiteRecord {
                        index: i,
                        elt: elt.clone(),
                    };
                    // Binary: decode(encode(r)) is structurally equal, so
                    // re-encoding is byte-identical.
                    let bytes = encode_record(&record);
                    let decoded = decode_record(&bytes)
                        .unwrap_or_else(|e| panic!("{}[{i}] {backend:?}: {e}", ax.name));
                    assert_eq!(decoded, record, "{}[{i}] {backend:?}", ax.name);
                    assert_eq!(encode_record(&decoded), bytes);

                    // Text: the decoded witness prints byte-identically,
                    // and the text parses back to the same execution.
                    let name = format!("{}_{i}", ax.name);
                    let printed = print_elt(&name, &elt.witness);
                    assert_eq!(print_elt(&name, &decoded.elt.witness), printed);
                    let (parsed_name, parsed) = parse_elt(&printed)
                        .unwrap_or_else(|e| panic!("{name} {backend:?}: {e}\n{printed}"));
                    assert_eq!(parsed_name, name);
                    assert_eq!(parsed, elt.witness, "{name} {backend:?}");
                    checked += 1;
                }
            }
        }
    }
    assert!(checked > 20, "only {checked} members checked");
}

#[test]
fn warm_cache_reads_are_byte_identical_to_cold_runs() {
    let mtm = x86t_elt();
    let (store, dir) = temp_store("warmcold");
    for backend in [Backend::Explicit, Backend::Relational] {
        let o = opts(4, backend);
        for axiom in ["sc_per_loc", "invlpg"] {
            let (cold, cold_status) =
                cached_or_synthesize(&store, &mtm, axiom, &o, 4).expect("cold run");
            assert!(!cold_status.is_hit(), "{axiom} {backend:?}");
            let (warm, warm_status) =
                cached_or_synthesize(&store, &mtm, axiom, &o, 4).expect("warm run");
            assert!(warm_status.is_hit(), "{axiom} {backend:?}");

            // The rendered suites — what the CLI prints — are identical
            // bytes, and so are the preserved statistics.
            assert_eq!(render(&cold), render(&warm), "{axiom} {backend:?}");
            assert_eq!(cold.stats.programs, warm.stats.programs);
            assert_eq!(cold.stats.executions, warm.stats.executions);
            assert_eq!(cold.stats.forbidden, warm.stats.forbidden);
            assert_eq!(cold.stats.minimal, warm.stats.minimal);
            assert_eq!(cold.stats.elapsed, warm.stats.elapsed);
            assert_eq!(cold.stats.shards, warm.stats.shards);

            // And both equal the uncached engine's suite.
            let direct = synthesize_suite(&mtm, axiom, &o);
            assert_eq!(render(&direct), render(&warm), "{axiom} {backend:?}");
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn streaming_reader_iterates_without_materializing() {
    let mtm = x86t_elt();
    let (store, dir) = temp_store("stream");
    let o = opts(4, Backend::Explicit);
    let (suite, _) = cached_or_synthesize(&store, &mtm, "sc_per_loc", &o, 2).expect("seeds");
    let fp = suite_fingerprint(&mtm, "sc_per_loc", &o);

    let mut reader = store.open_suite(fp).expect("opens");
    assert_eq!(reader.meta().axiom, "sc_per_loc");
    assert_eq!(reader.meta().bound, 4);
    assert_eq!(reader.record_count() as usize, suite.elts.len());
    assert_eq!(reader.stats().programs, suite.stats.programs);
    let mut seen = 0usize;
    for (record, elt) in reader.by_ref().zip(&suite.elts) {
        let record = record.expect("validates");
        assert_eq!(&record.elt, elt);
        seen += 1;
    }
    assert_eq!(seen, suite.elts.len());
    assert_eq!(store.entries().expect("lists"), vec![fp]);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn distinct_options_get_distinct_entries() {
    let mtm = x86t_elt();
    let (store, dir) = temp_store("distinct");
    let base = opts(4, Backend::Explicit);
    let mut no_fences = base.clone();
    no_fences.enumeration.allow_fences = false;
    no_fences.enumeration.allow_rmw = false;
    cached_or_synthesize(&store, &mtm, "sc_per_loc", &base, 2).expect("runs");
    cached_or_synthesize(&store, &mtm, "sc_per_loc", &no_fences, 2).expect("runs");
    cached_or_synthesize(&store, &mtm, "invlpg", &no_fences, 2).expect("runs");
    assert_eq!(store.entries().expect("lists").len(), 3);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn timed_out_runs_are_returned_but_never_sealed() {
    let mtm = x86t_elt();
    let (store, dir) = temp_store("timeout");
    let mut o = opts(6, Backend::Explicit);
    o.timeout = Some(std::time::Duration::ZERO);
    let (suite, status) = cached_or_synthesize(&store, &mtm, "sc_per_loc", &o, 2).expect("runs");
    assert!(suite.stats.timed_out);
    assert!(matches!(
        status,
        transform_store::CacheStatus::Uncached { .. }
    ));
    assert!(store.entries().expect("lists").is_empty(), "nothing sealed");
    // No temp litter either: pending directories are cleaned up.
    let leftovers: Vec<_> = std::fs::read_dir(store.root()).expect("readable").collect();
    assert!(leftovers.is_empty(), "{leftovers:?}");
    std::fs::remove_dir_all(&dir).ok();
}
