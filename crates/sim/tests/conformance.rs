//! Machine ↔ model agreement: the operational reference machine may only
//! exhibit behaviors the `x86t_elt` transistency predicate permits.
//!
//! This is the empirical-validation loop the paper's conclusion proposes,
//! with the reference machine standing in for silicon (see DESIGN.md).

use proptest::prelude::*;
use transform_core::figures;
use transform_core::ids::Va;
use transform_litmus::{classic, enhance::enhance};
use transform_sim::{
    certify_runs, check_conformance, detect_with_suite, explore, Bugs, Instr, SimConfig, SimProgram,
};
use transform_synth::engine::{synthesize_suite, SynthOptions};
use transform_x86::x86t_elt;

#[test]
fn every_figure_program_certifies() {
    let mtm = x86t_elt();
    for (name, exec, _) in figures::all_figures() {
        let prog = SimProgram::from_execution(&exec);
        let bad = certify_runs(&prog, &mtm, &SimConfig::correct());
        assert!(bad.is_empty(), "{name}: {} uncertified runs", bad.len());
    }
}

#[test]
fn every_figure_program_certifies_with_capacity_evictions() {
    let mtm = x86t_elt();
    let cfg = SimConfig {
        capacity_evictions: true,
        ..SimConfig::correct()
    };
    for (name, exec, _) in figures::all_figures() {
        let prog = SimProgram::from_execution(&exec);
        let bad = certify_runs(&prog, &mtm, &cfg);
        assert!(bad.is_empty(), "{name}: {} uncertified runs", bad.len());
    }
}

#[test]
fn enhanced_classic_litmus_tests_conform() {
    let mtm = x86t_elt();
    for test in classic::all_tests() {
        let prog = SimProgram::from_execution(&enhance(&test));
        let c = check_conformance(&prog, &mtm, &SimConfig::correct());
        assert!(
            c.conforms(),
            "{}: {} observed outcomes outside the model",
            test.name,
            c.violations.len()
        );
    }
}

#[test]
fn synthesized_invlpg_suite_detects_broken_shootdown() {
    let mtm = x86t_elt();
    let mut opts = SynthOptions::new(5);
    opts.enumeration.allow_fences = false;
    opts.enumeration.allow_rmw = false;
    let suite = synthesize_suite(&mtm, "invlpg", &opts);
    assert!(!suite.elts.is_empty(), "bound 5 synthesizes invlpg ELTs");

    // Sanity: the correct machine conforms on every ELT program.
    let clean = detect_with_suite(&suite, &mtm, &SimConfig::correct());
    assert!(
        clean.detected.is_empty(),
        "correct machine exhibited forbidden outcomes: {:?}",
        clean.detected
    );

    // The broken-shootdown machine is caught by the suite.
    let broken = detect_with_suite(
        &suite,
        &mtm,
        &SimConfig::buggy(Bugs {
            missing_remote_shootdown: true,
            ..Bugs::none()
        }),
    );
    assert!(
        broken.any(),
        "the invlpg suite must expose a broken TLB-shootdown protocol"
    );
}

#[test]
fn invlpg_erratum_detected_by_cross_core_elt() {
    // The smallest erratum-exposing ELT witness is 7 events across two
    // cores (WPTE + 2 remap INVLPGs; a read caching the old mapping, a
    // post-shootdown read, and their walks) — synthesizing bound 7 is a
    // bench-scale job (see benches/), so the ELT is written here in the
    // text syntax and run through the same detection pipeline.
    let (_, witness) = transform_litmus::parse_elt(
        "elt \"invlpg_erratum\" {
           thread C0 {
             WPTE x -> b
             INVLPG x
           }
           thread C1 {
             R x walk      # caches the initial mapping
             INVLPG x      # shootdown IPI
             R x walk      # stale: its walk reads the initial PTE
           }
           remap C0:0 -> C0:1
           remap C0:0 -> C1:1
         }",
    )
    .expect("parses");
    let mtm = x86t_elt();
    assert!(mtm.permits(&witness).violates("invlpg"));

    let prog = SimProgram::from_execution(&witness);
    let correct = check_conformance(&prog, &mtm, &SimConfig::correct());
    assert!(correct.conforms());

    let buggy = check_conformance(
        &prog,
        &mtm,
        &SimConfig::buggy(Bugs {
            invlpg_noop: true,
            ..Bugs::none()
        }),
    );
    assert!(
        !buggy.conforms(),
        "the ELT must expose the AMD INVLPG erratum"
    );
}

/// Random user-level programs (no remaps — those need the remap-coverage
/// structure) must certify on the correct machine.
fn arb_instr() -> impl Strategy<Value = Instr> {
    prop_oneof![
        (0..2usize).prop_map(|v| Instr::Read { va: Va(v) }),
        (0..2usize).prop_map(|v| Instr::Write { va: Va(v) }),
        Just(Instr::Fence),
        (0..2usize).prop_map(|v| Instr::Invlpg { va: Va(v) }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn random_user_programs_certify(
        t0 in proptest::collection::vec(arb_instr(), 0..4),
        t1 in proptest::collection::vec(arb_instr(), 0..3),
    ) {
        let prog = SimProgram::new(vec![t0, t1], [], []);
        let mtm = x86t_elt();
        let bad = certify_runs(&prog, &mtm, &SimConfig::correct());
        prop_assert!(bad.is_empty(), "uncertified: {:?}", bad.first().map(|o| o.render()));
    }

    #[test]
    fn random_programs_have_deterministic_outcome_sets(
        t0 in proptest::collection::vec(arb_instr(), 0..4),
        t1 in proptest::collection::vec(arb_instr(), 0..3),
    ) {
        let prog = SimProgram::new(vec![t0, t1], [], []);
        let a = explore(&prog, &SimConfig::correct());
        let b = explore(&prog, &SimConfig::correct());
        prop_assert_eq!(a.outcomes, b.outcomes);
    }
}
