//! Reconstructing axiomatic candidate executions from machine runs.
//!
//! A terminated [`Run`] records everything the axiomatic side cares about:
//! which accesses walked (and what their walk read), who sourced every
//! read, and the per-location commit orders. [`run_to_execution`] reassembles
//! that into a candidate [`Execution`] in the paper's vocabulary — ghosts
//! attached, `rf`/`co`/`co_pa` filled in from the trace — so a run can be
//! *certified*: a correct machine must only produce runs whose
//! reconstructions are well-formed and permitted by the transistency
//! predicate.

use crate::explore::Run;
use crate::machine::WriteRef;
use crate::program::{Instr, Pos, SimProgram};
use crate::value::{DataVal, PteSrc};
use std::collections::BTreeMap;
use transform_core::exec::{EltBuilder, Execution};
use transform_core::ids::EventId;

/// Rebuilds the candidate execution a run corresponds to.
///
/// The result is *not* guaranteed well-formed: a buggy machine can produce
/// runs (e.g. an access using a TLB entry across an `INVLPG`) that no legal
/// ELT execution describes. Callers certify runs with
/// [`Execution::analyze`] and the MTM's predicate.
pub fn run_to_execution(prog: &SimProgram, run: &Run) -> Execution {
    let mut b = EltBuilder::new();
    let mut main: BTreeMap<Pos, EventId> = BTreeMap::new();
    let mut walk_of: BTreeMap<Pos, EventId> = BTreeMap::new();
    let mut db_of: BTreeMap<Pos, EventId> = BTreeMap::new();

    for t in 0..prog.num_threads() {
        let tid = b.thread();
        for (s, &instr) in prog.thread(t).iter().enumerate() {
            let pos = (t, s);
            let walked = run.walks.contains_key(&pos);
            let id = match instr {
                Instr::Read { va } if walked => {
                    let (r, p) = b.read_walk(tid, va);
                    walk_of.insert(pos, p);
                    r
                }
                Instr::Read { va } => b.read(tid, va),
                Instr::Write { va } if walked => {
                    let (w, d, p) = b.write_walk(tid, va);
                    db_of.insert(pos, d);
                    walk_of.insert(pos, p);
                    w
                }
                Instr::Write { va } => {
                    let (w, d) = b.write(tid, va);
                    db_of.insert(pos, d);
                    w
                }
                Instr::Fence => b.fence(tid),
                Instr::PteWrite { va, new_pa } => b.pte_write(tid, va, new_pa),
                Instr::Invlpg { va } => b.invlpg(tid, va),
                Instr::TlbFlush => b.tlb_flush(tid),
            };
            main.insert(pos, id);
        }
    }

    for (wpte, invlpg) in prog.remap_pairs() {
        b.remap(main[&wpte], main[&invlpg]);
    }
    for rpos in prog.rmw_reads() {
        b.rmw(main[&rpos], main[&(rpos.0, rpos.1 + 1)]);
    }

    // rf: user reads from the recorded observations, walks from the PTE
    // provenance they loaded.
    for (&rpos, &val) in &run.outcome.reads {
        if let DataVal::Write(wpos) = val {
            b.rf(main[&wpos], main[&rpos]);
        }
    }
    for (&pos, &src) in &run.walks {
        match src {
            PteSrc::Init => {}
            PteSrc::Wpte(p) => b.rf(main[&p], walk_of[&pos]),
            PteSrc::Db(p) => b.rf(db_of[&p], walk_of[&pos]),
        }
    }

    // co: per-location commit order; the buggy machine may skip dirty-bit
    // updates, so only positions that actually committed appear.
    for refs in run.commits.values() {
        b.co(refs.iter().map(|&w| match w {
            WriteRef::Data(p) | WriteRef::Wpte(p) => main[&p],
            WriteRef::Db(p) => db_of[&p],
        }));
    }

    // co_pa: the global PTE-write commit order, grouped by target page.
    let mut by_pa: BTreeMap<usize, Vec<EventId>> = BTreeMap::new();
    for &p in &run.wpte_order {
        if let Instr::PteWrite { new_pa, .. } = prog.instr(p) {
            by_pa.entry(new_pa.0).or_default().push(main[&p]);
        }
    }
    for group in by_pa.into_values().filter(|g| g.len() > 1) {
        b.co_pa(group);
    }

    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::explore;
    use crate::machine::{Bugs, SimConfig};
    use crate::value::witness_outcome;
    use transform_core::figures;
    use transform_core::ids::{Pa, Va};

    /// Every run of a correct machine reconstructs to a well-formed
    /// execution with the same outcome.
    fn assert_roundtrip(prog: &SimProgram) {
        let x = explore(prog, &SimConfig::correct());
        assert!(!x.runs.is_empty());
        for run in &x.runs {
            let exec = run_to_execution(prog, run);
            assert!(
                exec.is_well_formed(),
                "reconstruction must be a legal ELT: {:?}",
                exec.analyze().err()
            );
            let out = witness_outcome(&exec).expect("well-formed");
            assert_eq!(out, run.outcome, "outcomes must agree");
        }
    }

    #[test]
    fn roundtrip_store_buffering() {
        let w = |va| Instr::Write { va: Va(va) };
        let r = |va| Instr::Read { va: Va(va) };
        assert_roundtrip(&SimProgram::new(
            vec![vec![w(0), r(1)], vec![w(1), r(0)]],
            [],
            [],
        ));
    }

    #[test]
    fn roundtrip_remap_program() {
        assert_roundtrip(&SimProgram::from_execution(&figures::fig10a_ptwalk2()));
        assert_roundtrip(&SimProgram::from_execution(
            &figures::fig11_cross_core_invlpg(),
        ));
    }

    #[test]
    fn roundtrip_rmw() {
        assert_roundtrip(&SimProgram::new(
            vec![
                vec![Instr::Read { va: Va(0) }, Instr::Write { va: Va(0) }],
                vec![Instr::Read { va: Va(0) }, Instr::Write { va: Va(0) }],
            ],
            [],
            [(0, 0), (1, 0)],
        ));
    }

    #[test]
    fn buggy_stale_hit_reconstructs_ill_formed() {
        // Under the INVLPG erratum the post-shootdown read on the remote
        // core hits a stale entry; the reconstruction has no walk for it
        // after the INVLPG, which the placement rules reject.
        let prog = crate::explore::stale_remote_program();
        let buggy = explore(
            &prog,
            &SimConfig::buggy(Bugs {
                invlpg_noop: true,
                ..Bugs::none()
            }),
        );
        let stale = buggy
            .runs
            .iter()
            .find(|r| r.outcome.reads[&(1, 2)] == DataVal::Init(Pa(0)))
            .expect("erratum produces the stale run");
        let exec = run_to_execution(&prog, stale);
        assert!(
            !exec.is_well_formed(),
            "no legal ELT execution hits a TLB entry across an INVLPG"
        );
    }
}
