//! Exhaustive exploration of the reference machine.
//!
//! [`explore`] enumerates every reachable interleaving of scheduler
//! choices (instruction issue, store-buffer drain, optional capacity
//! eviction) by depth-first search with full-state memoization, and
//! collects the set of distinct terminal [`Run`]s and their observable
//! [`Outcome`]s. ELT programs are a handful of instructions, so the state
//! space is small; [`SimConfig::max_states`] guards against accidents.

use crate::machine::{apply, enabled_moves, SimConfig, State, WriteRef};
use crate::program::{Pos, SimProgram};
use crate::value::{DataVal, Outcome, PteSrc, PteVal};
use std::collections::{BTreeMap, BTreeSet};
use transform_core::ids::{Location, Pa, Va};

/// One terminated run: its observable outcome plus the trace facts needed
/// to reconstruct an axiomatic candidate execution ([`crate::trace`]).
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub struct Run {
    /// The architecturally observable result.
    pub outcome: Outcome,
    /// Accesses that missed the TLB, with the PTE value provenance their
    /// walk read.
    pub walks: BTreeMap<Pos, PteSrc>,
    /// Per-location commit order of every write.
    pub commits: BTreeMap<Location, Vec<WriteRef>>,
    /// Global commit order of the OS PTE writes (the operational
    /// alias-creation order `co_pa`).
    pub wpte_order: Vec<Pos>,
}

/// Exploration statistics.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct ExploreStats {
    /// Distinct machine states visited.
    pub states: usize,
    /// `true` when `max_states` was hit and the result is a lower bound.
    pub truncated: bool,
}

/// The result of exhaustively running a program.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Exploration {
    /// Distinct observable outcomes.
    pub outcomes: BTreeSet<Outcome>,
    /// Distinct terminal runs (an outcome can be produced by several).
    pub runs: BTreeSet<Run>,
    /// Search statistics.
    pub stats: ExploreStats,
}

impl Exploration {
    /// `true` when the outcome is observable on this machine.
    pub fn observes(&self, outcome: &Outcome) -> bool {
        self.outcomes.contains(outcome)
    }
}

/// Exhaustively explores `prog` under `cfg`.
///
/// # Examples
///
/// Store buffering (the paper's Fig. 2a/2b): both reads may return the
/// initial values — the hallmark TSO relaxation.
///
/// ```
/// use transform_core::ids::{Pa, Va};
/// use transform_sim::{explore, DataVal, Instr, SimConfig, SimProgram};
///
/// let w = |va| Instr::Write { va: Va(va) };
/// let r = |va| Instr::Read { va: Va(va) };
/// let prog = SimProgram::new(vec![vec![w(0), r(1)], vec![w(1), r(0)]], [], []);
/// let x = explore(&prog, &SimConfig::correct());
/// assert!(x.outcomes.iter().any(|o| {
///     o.reads[&(0, 1)] == DataVal::Init(Pa(1)) && o.reads[&(1, 1)] == DataVal::Init(Pa(0))
/// }));
/// ```
pub fn explore(prog: &SimProgram, cfg: &SimConfig) -> Exploration {
    let mut seen: BTreeSet<State> = BTreeSet::new();
    let mut stack: Vec<State> = vec![State::initial(prog)];
    seen.insert(stack[0].clone());
    let mut outcomes = BTreeSet::new();
    let mut runs = BTreeSet::new();
    let mut truncated = false;

    while let Some(st) = stack.pop() {
        if st.is_terminal(prog) {
            let run = finish(prog, &st);
            outcomes.insert(run.outcome.clone());
            runs.insert(run);
            continue;
        }
        for mv in enabled_moves(prog, cfg, &st) {
            if seen.len() >= cfg.max_states {
                truncated = true;
                break;
            }
            let next = apply(prog, cfg, &st, mv);
            if seen.insert(next.clone()) {
                stack.push(next);
            }
        }
    }

    Exploration {
        outcomes,
        runs,
        stats: ExploreStats {
            states: seen.len(),
            truncated,
        },
    }
}

fn finish(prog: &SimProgram, st: &State) -> Run {
    let mut outcome = Outcome {
        reads: st.reads.clone(),
        ..Outcome::default()
    };
    for pa in 0..prog.num_pas() {
        let pa = Pa(pa);
        let v = st
            .mem_data
            .get(&pa)
            .map(|&w| DataVal::Write(w))
            .unwrap_or(DataVal::Init(pa));
        outcome.final_data.insert(pa, v);
    }
    for va in 0..prog.num_vas() {
        let va = Va(va);
        let pte = st
            .mem_pte
            .get(&va)
            .copied()
            .unwrap_or_else(|| PteVal::initial(va));
        outcome.final_map.insert(va, pte.mapping.pa);
        if pte.dirty {
            outcome.final_dirty.insert(va);
        }
    }
    Run {
        outcome,
        walks: st.walks.clone(),
        commits: st.commits.clone(),
        wpte_order: st.wpte_done.clone(),
    }
}

/// Test fixture (also used by the `machine`/`check`/`trace` tests): C0
/// remaps `x` and IPIs both cores; C1 cached the old mapping first. The
/// canonical cross-core stale-TLB scenario.
#[cfg(test)]
pub(crate) fn stale_remote_program() -> SimProgram {
    use crate::program::Instr;
    use transform_core::ids::Va;
    SimProgram::new(
        vec![
            vec![
                Instr::PteWrite {
                    va: Va(0),
                    new_pa: Pa(1),
                },
                Instr::Invlpg { va: Va(0) },
            ],
            vec![
                Instr::Read { va: Va(0) },
                Instr::Invlpg { va: Va(0) },
                Instr::Read { va: Va(0) },
            ],
        ],
        [((0, 0), (0, 1)), ((0, 0), (1, 1))],
        [],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::Bugs;
    use crate::program::Instr;

    fn w(va: usize) -> Instr {
        Instr::Write { va: Va(va) }
    }
    fn r(va: usize) -> Instr {
        Instr::Read { va: Va(va) }
    }

    #[test]
    fn single_read_has_one_outcome() {
        let prog = SimProgram::new(vec![vec![r(0)]], [], []);
        let x = explore(&prog, &SimConfig::correct());
        assert_eq!(x.outcomes.len(), 1);
        let o = x.outcomes.first().unwrap();
        assert_eq!(o.reads[&(0, 0)], DataVal::Init(Pa(0)));
        assert!(!x.stats.truncated);
    }

    #[test]
    fn sb_with_fences_forbids_both_stale() {
        let prog = SimProgram::new(
            vec![
                vec![w(0), Instr::Fence, r(1)],
                vec![w(1), Instr::Fence, r(0)],
            ],
            [],
            [],
        );
        let x = explore(&prog, &SimConfig::correct());
        assert!(!x.outcomes.iter().any(|o| {
            o.reads[&(0, 2)] == DataVal::Init(Pa(1)) && o.reads[&(1, 2)] == DataVal::Init(Pa(0))
        }));
    }

    #[test]
    fn rmw_pairs_never_interleave() {
        // Two competing locked RMWs on x: one must see the other's write.
        let prog = SimProgram::new(
            vec![vec![r(0), w(0)], vec![r(0), w(0)]],
            [],
            [(0, 0), (1, 0)],
        );
        let x = explore(&prog, &SimConfig::correct());
        assert!(!x.outcomes.iter().any(|o| {
            o.reads[&(0, 0)] == DataVal::Init(Pa(0)) && o.reads[&(1, 0)] == DataVal::Init(Pa(0))
        }));
    }

    #[test]
    fn remap_changes_final_mapping() {
        let prog = SimProgram::new(
            vec![vec![
                Instr::PteWrite {
                    va: Va(0),
                    new_pa: Pa(1),
                },
                Instr::Invlpg { va: Va(0) },
                r(0),
            ]],
            [((0, 0), (0, 1))],
            [],
        );
        let x = explore(&prog, &SimConfig::correct());
        assert_eq!(x.outcomes.len(), 1);
        let o = x.outcomes.first().unwrap();
        assert_eq!(o.final_map[&Va(0)], Pa(1));
        assert_eq!(o.reads[&(0, 2)], DataVal::Init(Pa(1)), "fresh page read");
    }

    #[test]
    fn invlpg_noop_adds_stale_read_outcome() {
        // C0: WPTE x→b; INVLPG x.  C1: R x (caches a); INVLPG x; R x.
        // The remapping core invalidates locally at the PTE write, so the
        // erratum is observable where it mattered historically: a remote
        // core's shootdown INVLPG fails to evict its cached entry.
        let prog = super::stale_remote_program();
        let correct = explore(&prog, &SimConfig::correct());
        assert!(
            correct
                .outcomes
                .iter()
                .all(|o| o.reads[&(1, 2)] == DataVal::Init(Pa(1))),
            "post-shootdown reads must use the fresh page"
        );

        let buggy = explore(
            &prog,
            &SimConfig::buggy(Bugs {
                invlpg_noop: true,
                ..Bugs::none()
            }),
        );
        assert!(
            buggy
                .outcomes
                .iter()
                .any(|o| o.reads[&(1, 2)] == DataVal::Init(Pa(0))),
            "the erratum lets the post-shootdown read use the stale mapping"
        );
    }

    #[test]
    fn capacity_evictions_do_not_change_data_outcomes_here() {
        let prog = SimProgram::new(vec![vec![r(0), r(0)]], [], []);
        let plain = explore(&prog, &SimConfig::correct());
        let evict = explore(
            &prog,
            &SimConfig {
                capacity_evictions: true,
                ..SimConfig::correct()
            },
        );
        assert_eq!(plain.outcomes, evict.outcomes);
        assert!(evict.stats.states > plain.stats.states);
    }

    #[test]
    fn max_states_truncates() {
        let prog = SimProgram::new(vec![vec![w(0), w(1)], vec![w(1), w(0)]], [], []);
        let cfg = SimConfig {
            max_states: 4,
            ..SimConfig::correct()
        };
        let x = explore(&prog, &cfg);
        assert!(x.stats.truncated);
        assert!(x.stats.states <= 5);
    }
}
