//! Litmus-based validation of an implementation against an MTM.
//!
//! This module closes the loop the paper's conclusion announces as future
//! work — "use the synthesized ELTs to empirically validate `x86t_elt`
//! against real-world … x86 processor implementations" — with the
//! reference machine standing in for silicon:
//!
//! * [`permitted_outcomes`] — every outcome the MTM permits for a program
//!   (over all TLB hit/miss placements and communication choices);
//! * [`check_conformance`] — observed ⊆ permitted, the litmus-testing
//!   soundness statement;
//! * [`certify_runs`] — the stronger per-trace certificate: each run
//!   reconstructs to a well-formed, permitted candidate execution;
//! * [`detect_forbidden`] — runs synthesized ELTs against a (buggy)
//!   machine and reports which of their forbidden outcomes were observed.

use crate::explore::{explore, ExploreStats};
use crate::machine::SimConfig;
use crate::program::{Instr, SimProgram};
use crate::trace::run_to_execution;
use crate::value::{witness_outcome, Outcome};
use std::collections::BTreeSet;
use transform_core::axiom::Mtm;
use transform_core::derive::BaseRel;
use transform_core::exec::Execution;
use transform_synth::engine::Suite;
use transform_synth::execs::executions;
use transform_synth::programs::{PaRef, Program as SynthProgram, SlotOp};

/// Every outcome the MTM permits for `prog`, across all TLB hit/miss
/// placements (a capacity eviction can turn any access into a miss,
/// §III-B2) and all communication choices.
///
/// # Panics
///
/// Panics when the program has more than 16 user accesses (the placement
/// enumeration is exponential; ELT programs are small by design).
pub fn permitted_outcomes(prog: &SimProgram, mtm: &Mtm) -> BTreeSet<Outcome> {
    let accesses: Vec<_> = prog
        .positions()
        .filter(|&p| prog.instr(p).is_access())
        .collect();
    assert!(
        accesses.len() <= 16,
        "placement enumeration over {} accesses is not an ELT-sized problem",
        accesses.len()
    );
    let branch_co_pa = mtm.mentions(BaseRel::CoPa) || mtm.mentions(BaseRel::FrPa);

    let mut out = BTreeSet::new();
    for mask in 0u32..(1 << accesses.len()) {
        let walk_at = |pos| {
            accesses
                .iter()
                .position(|&a| a == pos)
                .map(|i| mask >> i & 1 == 1)
        };
        let threads: Vec<Vec<SlotOp>> = (0..prog.num_threads())
            .map(|t| {
                prog.thread(t)
                    .iter()
                    .enumerate()
                    .map(|(s, &instr)| to_slot_op(prog, instr, walk_at((t, s))))
                    .collect()
            })
            .collect();
        let synth_prog = SynthProgram {
            threads,
            remap: prog.remap_pairs().collect(),
            rmw: prog.rmw_reads().collect(),
        };
        // Ill-formed placements (e.g. a first access without a walk)
        // produce no executions.
        for x in executions(&synth_prog.to_skeleton(), branch_co_pa) {
            if mtm.permits(&x).is_permitted() {
                out.insert(witness_outcome(&x).expect("synthesized executions are legal"));
            }
        }
    }
    out
}

fn to_slot_op(prog: &SimProgram, instr: Instr, walk: Option<bool>) -> SlotOp {
    match instr {
        Instr::Read { va } => SlotOp::Read {
            va: va.0,
            walk: walk.expect("reads are accesses"),
        },
        Instr::Write { va } => SlotOp::Write {
            va: va.0,
            walk: walk.expect("writes are accesses"),
        },
        Instr::Fence => SlotOp::Fence,
        Instr::PteWrite { va, new_pa } => SlotOp::PteWrite {
            va: va.0,
            pa: if new_pa.0 < prog.num_vas() {
                PaRef::Initial(new_pa.0)
            } else {
                PaRef::Fresh(new_pa.0 - prog.num_vas())
            },
        },
        Instr::Invlpg { va } => SlotOp::Invlpg { va: va.0 },
        Instr::TlbFlush => SlotOp::TlbFlush,
    }
}

/// The result of comparing a machine against an MTM on one program.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Conformance {
    /// Outcomes the machine exhibited.
    pub observed: BTreeSet<Outcome>,
    /// Outcomes the MTM permits.
    pub permitted: BTreeSet<Outcome>,
    /// Observed but not permitted — evidence of an implementation bug (or
    /// an unsound MTM).
    pub violations: Vec<Outcome>,
    /// Exploration statistics.
    pub stats: ExploreStats,
}

impl Conformance {
    /// `true` when every observed outcome is permitted.
    pub fn conforms(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Checks observed ⊆ permitted for one program.
pub fn check_conformance(prog: &SimProgram, mtm: &Mtm, cfg: &SimConfig) -> Conformance {
    let x = explore(prog, cfg);
    let permitted = permitted_outcomes(prog, mtm);
    let violations = x
        .outcomes
        .iter()
        .filter(|o| !permitted.contains(o))
        .cloned()
        .collect();
    Conformance {
        observed: x.outcomes,
        permitted,
        violations,
        stats: x.stats,
    }
}

/// Certifies every run of `prog` under `cfg`: each must reconstruct to a
/// well-formed candidate execution that `mtm` permits. Returns the
/// offending outcomes (empty for a correct machine and sound MTM).
pub fn certify_runs(prog: &SimProgram, mtm: &Mtm, cfg: &SimConfig) -> Vec<Outcome> {
    let x = explore(prog, cfg);
    let mut bad = Vec::new();
    for run in &x.runs {
        let exec = run_to_execution(prog, run);
        let ok = exec.is_well_formed() && mtm.permits(&exec).is_permitted();
        if !ok {
            bad.push(run.outcome.clone());
        }
    }
    bad.sort();
    bad.dedup();
    bad
}

/// Runs the forbidden outcome of `witness` against a machine: `true` when
/// the machine can exhibit it.
///
/// Outcome equality is coarser than execution equality: a forbidden
/// execution can share its observable outcome with a *permitted* execution
/// of the same program (the paper makes the same point about
/// `tlb_causality`, whose violations are architecturally subsumed by
/// `causality`). Use [`detect_with_suite`] / [`check_conformance`] for
/// bug detection; this predicate is the raw outcome screen.
///
/// # Errors
///
/// Returns the [`transform_core::wellformed::WellformedError`] when the
/// witness itself is not a legal ELT execution.
pub fn witness_observed(
    witness: &Execution,
    cfg: &SimConfig,
) -> Result<bool, transform_core::wellformed::WellformedError> {
    let outcome = witness_outcome(witness)?;
    let prog = SimProgram::from_execution(witness);
    Ok(explore(&prog, cfg).observes(&outcome))
}

/// Which ELTs of a batch of forbidden witnesses a machine exposes.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Detection {
    /// Number of witnesses tried.
    pub total: usize,
    /// Indices of witnesses whose forbidden outcome was observed.
    pub detected: Vec<usize>,
}

impl Detection {
    /// `true` when at least one forbidden outcome was observed.
    pub fn any(&self) -> bool {
        !self.detected.is_empty()
    }
}

/// Runs every forbidden witness against the machine, flagging those whose
/// exact forbidden outcome shows up. Outcome-imprecise (see
/// [`witness_observed`]); prefer [`detect_with_suite`] for real detection.
pub fn detect_forbidden<'a, I>(witnesses: I, cfg: &SimConfig) -> Detection
where
    I: IntoIterator<Item = &'a Execution>,
{
    let mut total = 0;
    let mut detected = Vec::new();
    for (i, w) in witnesses.into_iter().enumerate() {
        total += 1;
        if witness_observed(w, cfg).unwrap_or(false) {
            detected.push(i);
        }
    }
    Detection { total, detected }
}

/// Runs a synthesized per-axiom suite against the machine the way a litmus
/// harness would: each ELT program is explored exhaustively and an ELT
/// *detects* a bug when the machine exhibits an outcome the MTM does not
/// permit for that program. On a correct implementation the result is
/// empty for any sound MTM.
pub fn detect_with_suite(suite: &Suite, mtm: &Mtm, cfg: &SimConfig) -> Detection {
    let mut total = 0;
    let mut detected = Vec::new();
    for (i, elt) in suite.elts.iter().enumerate() {
        total += 1;
        let prog = SimProgram::from_execution(&elt.witness);
        if !check_conformance(&prog, mtm, cfg).conforms() {
            detected.push(i);
        }
    }
    Detection { total, detected }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::Bugs;
    use crate::program::Instr;
    use transform_core::figures;
    use transform_core::ids::Va;

    fn x86t_elt_local() -> Mtm {
        // A local copy of the x86t_elt predicate (the `transform-x86`
        // crate depends on this one downstream, so tests spell it out via
        // the spec DSL).
        transform_core::spec::parse_mtm(
            "mtm x86t_elt {
               axiom sc_per_loc:     acyclic(rf | co | fr | po_loc)
               axiom rmw_atomicity:  empty(rmw & (fr ; co))
               axiom causality:      acyclic(rfe | co | fr | ppo | fence)
               axiom invlpg:         acyclic(fr_va | ^po | remap)
               axiom tlb_causality:  acyclic(ptw_source | com)
             }",
        )
        .expect("spec parses")
    }

    #[test]
    fn store_buffering_conforms_and_is_weak() {
        let w = |va| Instr::Write { va: Va(va) };
        let r = |va| Instr::Read { va: Va(va) };
        let prog = SimProgram::new(vec![vec![w(0), r(1)], vec![w(1), r(0)]], [], []);
        let mtm = x86t_elt_local();
        let c = check_conformance(&prog, &mtm, &SimConfig::correct());
        assert!(c.conforms(), "violations: {:?}", c.violations);
        // The machine is strictly weaker than "everything permitted":
        // both-stale is observed, and permitted contains it.
        assert!(c.observed.len() >= 3);
        assert!(c.permitted.len() >= c.observed.len());
    }

    #[test]
    fn certified_runs_on_figure_programs() {
        let mtm = x86t_elt_local();
        for (name, exec, _) in figures::all_figures() {
            let prog = SimProgram::from_execution(&exec);
            let bad = certify_runs(&prog, &mtm, &SimConfig::correct());
            assert!(bad.is_empty(), "{name}: uncertified runs {bad:?}");
        }
    }

    #[test]
    fn forbidden_witnesses_never_observed_on_correct_machine() {
        let cfg = SimConfig::correct();
        for (name, exec, permitted) in figures::all_figures() {
            if permitted {
                continue;
            }
            assert!(
                !witness_observed(&exec, &cfg).expect("figures are legal ELTs"),
                "{name}: correct machine exhibited a forbidden outcome"
            );
        }
    }

    #[test]
    fn invlpg_erratum_detected_by_stale_read_elt() {
        // C0: WPTE x→b; INVLPG.  C1: R x; INVLPG; R x — the post-shootdown
        // read's stale outcome is forbidden (invlpg axiom) and the erratum
        // exposes it on the remote core.
        let prog = crate::explore::stale_remote_program();
        let mtm = x86t_elt_local();
        let buggy = SimConfig::buggy(Bugs {
            invlpg_noop: true,
            ..Bugs::none()
        });
        let c = check_conformance(&prog, &mtm, &buggy);
        assert!(!c.conforms(), "the erratum must violate the MTM");
        // And the correct machine conforms on the same program.
        assert!(check_conformance(&prog, &mtm, &SimConfig::correct()).conforms());
    }

    #[test]
    fn broken_shootdown_exposes_fig11() {
        let buggy = SimConfig::buggy(Bugs {
            missing_remote_shootdown: true,
            ..Bugs::none()
        });
        let w = figures::fig11_cross_core_invlpg();
        assert!(witness_observed(&w, &buggy).expect("legal ELT"));
        assert!(!witness_observed(&w, &SimConfig::correct()).expect("legal ELT"));
    }

    #[test]
    fn missing_dirty_update_breaks_conformance() {
        let prog = SimProgram::new(vec![vec![Instr::Write { va: Va(0) }]], [], []);
        let mtm = x86t_elt_local();
        let buggy = SimConfig::buggy(Bugs {
            missing_dirty_update: true,
            ..Bugs::none()
        });
        let c = check_conformance(&prog, &mtm, &buggy);
        assert!(!c.conforms(), "a clean PTE after a store is not permitted");
    }

    #[test]
    fn detection_batches_report_indices() {
        let buggy = SimConfig::buggy(Bugs {
            missing_remote_shootdown: true,
            ..Bugs::none()
        });
        let witnesses = [
            figures::fig11_cross_core_invlpg(),
            figures::fig2c_sb_elt_aliased(),
        ];
        let d = detect_forbidden(witnesses.iter(), &buggy);
        assert_eq!(d.total, 2);
        assert!(d.detected.contains(&0), "fig11 targets exactly this bug");
    }
}
