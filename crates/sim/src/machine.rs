//! The operational reference machine: x86-TSO cores with virtual memory.
//!
//! Each core owns a FIFO store buffer with store-to-load forwarding (the
//! standard operational model of x86-TSO) and a private TLB. Page tables
//! live in coherent shared memory; hardware page-table walks read committed
//! memory (walkers do not snoop store buffers), fill the local TLB, and are
//! performed atomically with the access that misses. User writes enqueue
//! both their data store and their dirty-bit PTE update; OS PTE writes
//! drain the buffer and update the page table atomically (kernels fence
//! around remap), then release the `INVLPG` IPIs attached to them by
//! `remap` edges.
//!
//! [`Bugs`] injects implementation defects — most prominently the
//! AMD Athlon™ 64 / Opteron™ erratum the paper's introduction cites, where
//! `INVLPG` fails to invalidate the designated TLB entry.

use crate::program::{Instr, Pos, SimProgram};
use crate::value::{DataVal, PteSrc, PteVal};
use std::collections::{BTreeMap, VecDeque};
use transform_core::ids::{Location, Mapping, Pa, Va};

/// Injectable implementation defects.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct Bugs {
    /// `INVLPG` executes but leaves the TLB entry intact — the AMD
    /// Athlon™ 64 / Opteron™ erratum described in the paper's introduction
    /// (revision guide \[4\]): stale address mappings stay usable.
    pub invlpg_noop: bool,
    /// Remap `INVLPG`s on *remote* cores are delivered without
    /// synchronizing on the PTE write becoming visible, and do not evict —
    /// a broken TLB-shootdown protocol: remote cores may keep translating
    /// (and re-walking) with the old mapping while the IPI has already
    /// "run".
    pub missing_remote_shootdown: bool,
    /// User writes skip their dirty-bit PTE update: the OS can no longer
    /// tell modified pages apart.
    pub missing_dirty_update: bool,
}

impl Bugs {
    /// A correct implementation.
    pub fn none() -> Bugs {
        Bugs::default()
    }
}

/// Exploration configuration.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SimConfig {
    /// Which defects the machine exhibits.
    pub bugs: Bugs,
    /// Model TLB capacity/conflict evictions: any TLB entry may
    /// spontaneously disappear between instructions (§III-B2 of the paper
    /// treats these as a third source of TLB misses).
    pub capacity_evictions: bool,
    /// Abort exploration after this many distinct machine states.
    pub max_states: usize,
}

impl Default for SimConfig {
    fn default() -> SimConfig {
        SimConfig {
            bugs: Bugs::none(),
            capacity_evictions: false,
            max_states: 1 << 22,
        }
    }
}

impl SimConfig {
    /// A correct machine with default exploration limits.
    pub fn correct() -> SimConfig {
        SimConfig::default()
    }

    /// A machine exhibiting the given defects.
    pub fn buggy(bugs: Bugs) -> SimConfig {
        SimConfig {
            bugs,
            ..SimConfig::default()
        }
    }
}

/// A store-buffer entry.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub(crate) enum SbEntry {
    /// A user store to a physical page.
    Data { pa: Pa, val: Pos },
    /// A dirty-bit PTE update. Hardware performs these as locked RMWs that
    /// re-check the PTE (§III-A2 notes the RMW nature): if the committed
    /// PTE descends from a different mapping era (`PteVal::origin`) when
    /// the update lands, the update is dropped (superseded) instead of
    /// clobbering a newer mapping.
    Pte { va: Va, val: PteVal },
}

/// The identity of a committed write, for per-location commit logs.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum WriteRef {
    /// A user data write.
    Data(Pos),
    /// An OS PTE write.
    Wpte(Pos),
    /// A dirty-bit update (of the user write at the position).
    Db(Pos),
}

#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub(crate) struct Core {
    pub pc: usize,
    pub tlb: BTreeMap<Va, PteVal>,
    pub sb: VecDeque<SbEntry>,
}

/// A complete machine state, including the observation log (so that two
/// states are interchangeable exactly when their futures produce the same
/// outcomes *and* their pasts recorded the same observations).
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub(crate) struct State {
    pub cores: Vec<Core>,
    /// Committed data memory; absent pages hold their initial value.
    pub mem_data: BTreeMap<Pa, Pos>,
    /// Committed page-table entries; absent VAs hold the initial PTE.
    pub mem_pte: BTreeMap<Va, PteVal>,
    /// PTE writes that have become globally visible, in commit order
    /// (used both for IPI gating and as the operational `co_pa`).
    pub wpte_done: Vec<Pos>,
    /// Values returned by retired user reads.
    pub reads: BTreeMap<Pos, DataVal>,
    /// Which accesses missed the TLB, and what their walk read.
    pub walks: BTreeMap<Pos, PteSrc>,
    /// Per-location commit order.
    pub commits: BTreeMap<Location, Vec<WriteRef>>,
}

impl State {
    pub fn initial(prog: &SimProgram) -> State {
        State {
            cores: vec![Core::default(); prog.num_threads()],
            mem_data: BTreeMap::new(),
            mem_pte: BTreeMap::new(),
            wpte_done: Vec::new(),
            reads: BTreeMap::new(),
            walks: BTreeMap::new(),
            commits: BTreeMap::new(),
        }
    }

    /// All cores retired, all buffers drained.
    pub fn is_terminal(&self, prog: &SimProgram) -> bool {
        self.cores
            .iter()
            .enumerate()
            .all(|(t, c)| c.pc == prog.thread(t).len() && c.sb.is_empty())
    }
}

/// One scheduler choice.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub(crate) enum Move {
    /// Issue the next instruction of a core.
    Issue(usize),
    /// Commit the oldest store-buffer entry of a core to memory.
    Drain(usize),
    /// Spontaneously evict one TLB entry (capacity/conflict eviction).
    Evict(usize, Va),
}

/// Enumerates the moves enabled in `st`.
pub(crate) fn enabled_moves(prog: &SimProgram, cfg: &SimConfig, st: &State) -> Vec<Move> {
    let mut out = Vec::new();
    for (t, core) in st.cores.iter().enumerate() {
        if !core.sb.is_empty() {
            out.push(Move::Drain(t));
        }
        if core.pc < prog.thread(t).len() && issue_enabled(prog, cfg, st, t) {
            out.push(Move::Issue(t));
        }
        if cfg.capacity_evictions {
            for &va in core.tlb.keys() {
                out.push(Move::Evict(t, va));
            }
        }
    }
    out
}

fn issue_enabled(prog: &SimProgram, cfg: &SimConfig, st: &State, t: usize) -> bool {
    let pos = (t, st.cores[t].pc);
    match prog.instr(pos) {
        // MFENCE, locked RMWs, and kernel remap code drain the buffer.
        Instr::Fence | Instr::PteWrite { .. } => st.cores[t].sb.is_empty(),
        Instr::Read { .. } if prog.is_rmw_read(pos) => st.cores[t].sb.is_empty(),
        // A TLB miss triggers a page-table walk; walks are coherent with
        // the core's own stores to the *walked* PTE (a buffered dirty-bit
        // update for this VA must not be invisible to the walker), so any
        // such entries drain first. Stores to other locations may stay
        // buffered — that is the TSO relaxation.
        Instr::Read { va } | Instr::Write { va } => {
            st.cores[t].tlb.contains_key(&va)
                || st.cores[t]
                    .sb
                    .iter()
                    .all(|e| !matches!(e, SbEntry::Pte { va: eva, .. } if *eva == va))
        }
        Instr::Invlpg { .. } | Instr::TlbFlush => match prog.remap_source(pos) {
            // Remap IPIs run only once their PTE write is globally
            // visible — unless the shootdown protocol is broken and the
            // IPI is on a remote core.
            Some(wpte) => {
                let broken_remote = cfg.bugs.missing_remote_shootdown && wpte.0 != t;
                broken_remote || st.wpte_done.contains(&wpte)
            }
            None => true,
        },
    }
}

/// Applies a move, producing the successor state.
pub(crate) fn apply(prog: &SimProgram, cfg: &SimConfig, st: &State, mv: Move) -> State {
    let mut st = st.clone();
    match mv {
        Move::Evict(t, va) => {
            st.cores[t].tlb.remove(&va);
        }
        Move::Drain(t) => {
            let entry = st.cores[t].sb.pop_front().expect("Drain requires entries");
            commit(&mut st, entry);
        }
        Move::Issue(t) => issue(prog, cfg, &mut st, t),
    }
    st
}

fn commit(st: &mut State, entry: SbEntry) {
    match entry {
        SbEntry::Data { pa, val } => {
            st.mem_data.insert(pa, val);
            st.commits
                .entry(Location::Data(pa))
                .or_default()
                .push(WriteRef::Data(val));
        }
        SbEntry::Pte { va, val } => {
            let wref = match val.src {
                PteSrc::Db(pos) => WriteRef::Db(pos),
                PteSrc::Wpte(pos) => WriteRef::Wpte(pos),
                PteSrc::Init => unreachable!("initial PTEs are never buffered"),
            };
            let current = st
                .mem_pte
                .get(&va)
                .copied()
                .unwrap_or_else(|| PteVal::initial(va));
            let log = st.commits.entry(Location::Pte(va)).or_default();
            let lands = matches!(val.src, PteSrc::Wpte(_)) || current.origin == val.origin;
            if lands {
                // OS PTE writes always land; a dirty-bit update lands when
                // the PTE still belongs to the mapping era it was computed
                // against (then it only re-asserts the mapping and sets
                // the dirty flag).
                st.mem_pte.insert(va, val);
                log.push(wref);
            } else {
                // The locked dirty-bit RMW finds a remapped PTE and drops
                // the update; in coherence order it is superseded — it
                // sits immediately before the write that outran it.
                let at = log.len().saturating_sub(1);
                log.insert(at, wref);
            }
        }
    }
}

/// Translates `va` on core `t`, walking the page table on a miss. The walk
/// is recorded against `pos` (the access performing it). Returns the full
/// TLB entry so stores know which PTE contents their dirty-bit update was
/// computed against.
fn translate(st: &mut State, t: usize, va: Va, pos: Pos) -> PteVal {
    if let Some(entry) = st.cores[t].tlb.get(&va) {
        return *entry;
    }
    // Page-table walk: read the committed PTE (walkers do not snoop store
    // buffers), fill the TLB.
    let pte = st
        .mem_pte
        .get(&va)
        .copied()
        .unwrap_or_else(|| PteVal::initial(va));
    st.cores[t].tlb.insert(va, pte);
    st.walks.insert(pos, pte.src);
    pte
}

/// Reads `pa` on core `t`: newest matching store-buffer entry (store
/// forwarding) or committed memory.
fn read_data(st: &State, t: usize, pa: Pa) -> DataVal {
    for entry in st.cores[t].sb.iter().rev() {
        if let SbEntry::Data { pa: epa, val } = entry {
            if *epa == pa {
                return DataVal::Write(*val);
            }
        }
    }
    st.mem_data
        .get(&pa)
        .map(|&w| DataVal::Write(w))
        .unwrap_or(DataVal::Init(pa))
}

fn issue(prog: &SimProgram, cfg: &SimConfig, st: &mut State, t: usize) {
    let pos = (t, st.cores[t].pc);
    match prog.instr(pos) {
        Instr::Fence => {
            debug_assert!(st.cores[t].sb.is_empty());
            st.cores[t].pc += 1;
        }
        Instr::Read { va } => {
            let pte = translate(st, t, va, pos);
            if prog.is_rmw_read(pos) {
                issue_rmw(prog, cfg, st, t, pos, pte);
            } else {
                let v = read_data(st, t, pte.mapping.pa);
                st.reads.insert(pos, v);
                st.cores[t].pc += 1;
            }
        }
        Instr::Write { va } => {
            let pte = translate(st, t, va, pos);
            st.cores[t].sb.push_back(SbEntry::Data {
                pa: pte.mapping.pa,
                val: pos,
            });
            if !cfg.bugs.missing_dirty_update {
                st.cores[t].sb.push_back(SbEntry::Pte {
                    va,
                    val: PteVal {
                        mapping: pte.mapping,
                        dirty: true,
                        src: PteSrc::Db(pos),
                        origin: pte.origin,
                    },
                });
            }
            st.cores[t].pc += 1;
        }
        Instr::PteWrite { va, new_pa } => {
            debug_assert!(st.cores[t].sb.is_empty());
            // The remapping core's own TLB entry is dropped as part of the
            // kernel remap routine: x86t_elt's invlpg axiom forbids any
            // same-core access po-after the PTE write from using the stale
            // mapping (fr_va + ^po alone already cycles), so a compliant
            // implementation must invalidate locally at the write — the
            // remap-invoked INVLPGs only cover the *other* cores' TLBs
            // (and the local one redundantly).
            st.cores[t].tlb.remove(&va);
            commit(
                st,
                SbEntry::Pte {
                    va,
                    val: PteVal {
                        mapping: Mapping { va, pa: new_pa },
                        dirty: false,
                        src: PteSrc::Wpte(pos),
                        origin: Some(pos),
                    },
                },
            );
            st.wpte_done.push(pos);
            st.cores[t].pc += 1;
        }
        Instr::Invlpg { va } => {
            let noop = cfg.bugs.invlpg_noop
                || (cfg.bugs.missing_remote_shootdown
                    && prog.remap_source(pos).is_some_and(|wpte| wpte.0 != t));
            if !noop {
                st.cores[t].tlb.remove(&va);
            }
            st.cores[t].pc += 1;
        }
        Instr::TlbFlush => {
            // The full flush is not subject to the INVLPG erratum, but a
            // broken shootdown protocol drops remote IPIs of any kind.
            let noop = cfg.bugs.missing_remote_shootdown
                && prog.remap_source(pos).is_some_and(|wpte| wpte.0 != t);
            if !noop {
                st.cores[t].tlb.clear();
            }
            st.cores[t].pc += 1;
        }
    }
}

/// A locked RMW: buffer already drained; read and write memory atomically
/// (data store, then dirty-bit update, both globally visible at once).
fn issue_rmw(prog: &SimProgram, cfg: &SimConfig, st: &mut State, t: usize, rpos: Pos, pte: PteVal) {
    debug_assert!(st.cores[t].sb.is_empty());
    let v = read_data(st, t, pte.mapping.pa);
    st.reads.insert(rpos, v);
    let wpos = (t, rpos.1 + 1);
    debug_assert!(matches!(prog.instr(wpos), Instr::Write { .. }));
    commit(
        st,
        SbEntry::Data {
            pa: pte.mapping.pa,
            val: wpos,
        },
    );
    if !cfg.bugs.missing_dirty_update {
        commit(
            st,
            SbEntry::Pte {
                va: pte.mapping.va,
                val: PteVal {
                    mapping: pte.mapping,
                    dirty: true,
                    src: PteSrc::Db(wpos),
                    origin: pte.origin,
                },
            },
        );
    }
    st.cores[t].pc += 2;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_all(prog: &SimProgram, cfg: &SimConfig, st: State, moves: &[Move]) -> State {
        moves.iter().fold(st, |st, &mv| apply(prog, cfg, &st, mv))
    }

    #[test]
    fn store_forwarding_reads_own_buffer() {
        // W x; R x on one core: the read forwards from the buffer before
        // the store commits.
        let prog = SimProgram::new(
            vec![vec![Instr::Write { va: Va(0) }, Instr::Read { va: Va(0) }]],
            [],
            [],
        );
        let cfg = SimConfig::correct();
        let st = run_all(
            &prog,
            &cfg,
            State::initial(&prog),
            &[Move::Issue(0), Move::Issue(0)],
        );
        assert_eq!(st.reads[&(0, 1)], DataVal::Write((0, 0)));
        assert_eq!(st.cores[0].sb.len(), 2, "data store + dirty-bit update");
        assert!(st.mem_data.is_empty(), "nothing committed yet");
    }

    #[test]
    fn fence_blocks_until_drained() {
        let prog = SimProgram::new(vec![vec![Instr::Write { va: Va(0) }, Instr::Fence]], [], []);
        let cfg = SimConfig::correct();
        let st = run_all(&prog, &cfg, State::initial(&prog), &[Move::Issue(0)]);
        assert!(!enabled_moves(&prog, &cfg, &st).contains(&Move::Issue(0)));
        let st = run_all(&prog, &cfg, st, &[Move::Drain(0), Move::Drain(0)]);
        assert!(enabled_moves(&prog, &cfg, &st).contains(&Move::Issue(0)));
    }

    #[test]
    fn walk_fills_tlb_and_is_recorded() {
        let prog = SimProgram::new(vec![vec![Instr::Read { va: Va(0) }]], [], []);
        let cfg = SimConfig::correct();
        let st = run_all(&prog, &cfg, State::initial(&prog), &[Move::Issue(0)]);
        assert_eq!(st.walks[&(0, 0)], PteSrc::Init);
        assert_eq!(st.cores[0].tlb[&Va(0)].mapping.pa, Pa(0));
        assert_eq!(st.reads[&(0, 0)], DataVal::Init(Pa(0)));
    }

    #[test]
    fn remap_invlpg_waits_for_pte_write() {
        // C0: WPTE x→b ... C1: INVLPG x (remap-invoked).
        let prog = SimProgram::new(
            vec![
                vec![
                    Instr::PteWrite {
                        va: Va(0),
                        new_pa: Pa(1),
                    },
                    Instr::Invlpg { va: Va(0) },
                ],
                vec![Instr::Invlpg { va: Va(0) }],
            ],
            [((0, 0), (0, 1)), ((0, 0), (1, 0))],
            [],
        );
        let cfg = SimConfig::correct();
        let st = State::initial(&prog);
        assert!(
            !enabled_moves(&prog, &cfg, &st).contains(&Move::Issue(1)),
            "IPI must wait for the PTE write"
        );
        let st = apply(&prog, &cfg, &st, Move::Issue(0));
        assert!(enabled_moves(&prog, &cfg, &st).contains(&Move::Issue(1)));
    }

    #[test]
    fn invlpg_evicts_unless_buggy() {
        let prog = SimProgram::new(
            vec![vec![Instr::Read { va: Va(0) }, Instr::Invlpg { va: Va(0) }]],
            [],
            [],
        );
        let correct = SimConfig::correct();
        let st = run_all(
            &prog,
            &correct,
            State::initial(&prog),
            &[Move::Issue(0), Move::Issue(0)],
        );
        assert!(st.cores[0].tlb.is_empty());

        let buggy = SimConfig::buggy(Bugs {
            invlpg_noop: true,
            ..Bugs::none()
        });
        let st = run_all(
            &prog,
            &buggy,
            State::initial(&prog),
            &[Move::Issue(0), Move::Issue(0)],
        );
        assert!(
            st.cores[0].tlb.contains_key(&Va(0)),
            "the AMD erratum keeps the stale entry"
        );
    }

    #[test]
    fn rmw_commits_atomically() {
        let prog = SimProgram::new(
            vec![vec![Instr::Read { va: Va(0) }, Instr::Write { va: Va(0) }]],
            [],
            [(0, 0)],
        );
        let cfg = SimConfig::correct();
        let st = run_all(&prog, &cfg, State::initial(&prog), &[Move::Issue(0)]);
        assert_eq!(st.cores[0].pc, 2, "read and write retire together");
        assert!(st.cores[0].sb.is_empty(), "locked ops bypass the buffer");
        assert_eq!(st.mem_data[&Pa(0)], (0, 1));
        assert!(st.mem_pte[&Va(0)].dirty);
    }

    #[test]
    fn capacity_evictions_only_when_enabled() {
        let prog = SimProgram::new(vec![vec![Instr::Read { va: Va(0) }]], [], []);
        let cfg = SimConfig::correct();
        let st = run_all(&prog, &cfg, State::initial(&prog), &[Move::Issue(0)]);
        assert!(enabled_moves(&prog, &cfg, &st).is_empty(), "terminal");
        let cfg = SimConfig {
            capacity_evictions: true,
            ..SimConfig::correct()
        };
        assert_eq!(enabled_moves(&prog, &cfg, &st), vec![Move::Evict(0, Va(0))]);
    }
}
