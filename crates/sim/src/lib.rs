//! `transform-sim` — an operational x86-TSO + virtual-memory reference
//! machine for validating memory transistency models.
//!
//! The TransForm paper (ISCA 2020) closes by proposing to "use the
//! synthesized ELTs to empirically validate `x86t_elt` against real-world
//! operating systems and x86 processor implementations". Real silicon is
//! out of scope for a library, so this crate builds the closest executable
//! stand-in: a small multicore machine with
//!
//! * FIFO **store buffers** with store-to-load forwarding (the standard
//!   operational account of x86-TSO),
//! * per-core **TLBs** filled by hardware page-table walks that read the
//!   committed page tables,
//! * **dirty-bit updates** buffered alongside their stores, and
//! * an OS-level **remap/IPI protocol**: PTE writes are fenced and become
//!   globally visible before the `INVLPG`s they invoke may run.
//!
//! [`explore()`] enumerates every interleaving of an ELT program and returns
//! the set of observable [`Outcome`]s; [`check`] compares those outcomes
//! against a formal MTM (observed ⊆ permitted), certifies individual runs
//! by reconstructing candidate executions ([`trace`]), and — with
//! [`Bugs`] injected — demonstrates that TransForm-synthesized ELTs detect
//! classic transistency errata such as the AMD Athlon™ 64 / Opteron™
//! `INVLPG` bug cited in the paper's introduction.
//!
//! # Examples
//!
//! The forbidden outcome of the paper's Fig. 11 is unobservable on the
//! correct machine but appears once the TLB-shootdown protocol is broken:
//!
//! ```
//! use transform_core::figures;
//! use transform_sim::{witness_observed, Bugs, SimConfig};
//!
//! # fn main() -> Result<(), transform_core::wellformed::WellformedError> {
//! let witness = figures::fig11_cross_core_invlpg();
//! assert!(!witness_observed(&witness, &SimConfig::correct())?);
//!
//! let broken = SimConfig::buggy(Bugs {
//!     missing_remote_shootdown: true,
//!     ..Bugs::none()
//! });
//! assert!(witness_observed(&witness, &broken)?);
//! # Ok(())
//! # }
//! ```

pub mod check;
pub mod explore;
pub mod machine;
pub mod program;
pub mod trace;
pub mod value;

pub use check::{
    certify_runs, check_conformance, detect_forbidden, detect_with_suite, permitted_outcomes,
    witness_observed, Conformance, Detection,
};
pub use explore::{explore, Exploration, ExploreStats, Run};
pub use machine::{Bugs, SimConfig, WriteRef};
pub use program::{Instr, Pos, SimProgram};
pub use trace::run_to_execution;
pub use value::{witness_outcome, DataVal, Outcome, PteSrc, PteVal};
