//! Symbolic values and observable outcomes.
//!
//! TransForm represents all stored values symbolically (§II-A of the
//! paper): a read observation is the *identity* of the write it returned,
//! not a bit pattern. [`Outcome`] is the complete architecturally visible
//! result of one run of an ELT program — what a litmus-testing harness
//! would record — and is computed identically from a machine run
//! ([`crate::explore()`]) and from an axiomatic candidate execution
//! ([`witness_outcome`]), so the two semantics can be compared outcome by
//! outcome.

use crate::program::Pos;
use std::collections::{BTreeMap, BTreeSet};
use transform_core::event::EventKind;
use transform_core::exec::Execution;
use transform_core::ids::{EventId, Location, Mapping, Pa, ThreadId, Va};
use transform_core::wellformed::WellformedError;

/// The symbolic value held by a data location or returned by a user read.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum DataVal {
    /// The initial contents of physical page `Pa` (every page starts with
    /// a distinct symbolic value).
    Init(Pa),
    /// The value stored by the user write at this program position.
    Write(Pos),
}

/// The provenance of a page-table entry's contents.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum PteSrc {
    /// The initial mapping installed before the test (VA *i* ↦ PA *i*).
    Init,
    /// Written by the OS PTE write at this position.
    Wpte(Pos),
    /// Written by the dirty-bit update of the user write at this position.
    Db(Pos),
}

/// The contents of one page-table entry (or of a TLB entry caching it).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct PteVal {
    /// The address mapping stored in the entry.
    pub mapping: Mapping,
    /// The dirty flag.
    pub dirty: bool,
    /// Which write produced these contents.
    pub src: PteSrc,
    /// The *mapping era*: the OS PTE write this mapping descends from
    /// (`None` = the initial mapping). Dirty-bit updates inherit their
    /// parent's era; the machine uses it to recognize a dirty-bit RMW
    /// racing against a newer remap (the paper's `rf_pa` provenance,
    /// operationally).
    pub origin: Option<Pos>,
}

impl PteVal {
    /// The pristine PTE for `va`: the identity mapping, clean.
    pub fn initial(va: Va) -> PteVal {
        PteVal {
            mapping: Mapping { va, pa: Pa(va.0) },
            dirty: false,
            src: PteSrc::Init,
            origin: None,
        }
    }
}

/// The architecturally observable result of one terminated run.
///
/// Two runs (or a run and an axiomatic candidate execution) are the same
/// behavior exactly when their `Outcome`s are equal.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct Outcome {
    /// What every user read returned, keyed by program position.
    pub reads: BTreeMap<Pos, DataVal>,
    /// Final contents of every physical page in the test's universe.
    pub final_data: BTreeMap<Pa, DataVal>,
    /// Final VA → PA mapping of every page-table entry.
    pub final_map: BTreeMap<Va, Pa>,
    /// VAs whose PTE ends the run with the dirty flag set.
    pub final_dirty: BTreeSet<Va>,
}

impl Outcome {
    /// A single-line rendering, for reports and failure messages.
    pub fn render(&self) -> String {
        let reads: Vec<String> = self
            .reads
            .iter()
            .map(|(&(t, s), v)| format!("C{t}:{s}={}", render_val(*v)))
            .collect();
        let mem: Vec<String> = self
            .final_data
            .iter()
            .map(|(pa, v)| format!("[{pa}]={}", render_val(*v)))
            .collect();
        let maps: Vec<String> = self
            .final_map
            .iter()
            .map(|(va, pa)| {
                let d = if self.final_dirty.contains(va) {
                    "*"
                } else {
                    ""
                };
                format!("{va}→{pa}{d}")
            })
            .collect();
        format!(
            "reads {{{}}} mem {{{}}} map {{{}}}",
            reads.join(", "),
            mem.join(", "),
            maps.join(", ")
        )
    }
}

fn render_val(v: DataVal) -> String {
    match v {
        DataVal::Init(pa) => format!("init({pa})"),
        DataVal::Write((t, s)) => format!("W@C{t}:{s}"),
    }
}

/// Computes the [`Outcome`] encoded by an axiomatic candidate execution:
/// read values from `rf`, final memory and PTE contents from the coherence
/// maxima.
///
/// # Errors
///
/// Returns the underlying [`WellformedError`] when the execution violates
/// the placement rules (its outcome is then meaningless).
pub fn witness_outcome(x: &Execution) -> Result<Outcome, WellformedError> {
    let a = x.analyze()?;
    let mut pos_of: BTreeMap<EventId, Pos> = BTreeMap::new();
    for t in 0..x.num_threads() {
        for (s, &e) in x.po_of(ThreadId(t)).iter().enumerate() {
            pos_of.insert(e, (t, s));
        }
    }

    let mut out = Outcome::default();

    for e in x.events() {
        if e.kind != EventKind::Read {
            continue;
        }
        let v = match x.rf_source(e.id) {
            Some(w) => DataVal::Write(pos_of[&w]),
            None => match a.location(e.id) {
                Some(Location::Data(pa)) => DataVal::Init(pa),
                _ => unreachable!("user reads access data locations"),
            },
        };
        out.reads.insert(pos_of[&e.id], v);
    }

    // Coherence maxima: the last write per location is the one with no
    // outgoing co edge.
    let co_max = |loc: Location| -> Option<EventId> {
        x.events()
            .iter()
            .filter(|e| e.kind.is_write() && a.location(e.id) == Some(loc))
            .find(|w| {
                !x.co_pairs()
                    .iter()
                    .any(|&(from, to)| from == w.id && a.location(to) == Some(loc))
            })
            .map(|w| w.id)
    };

    for pa in 0..x.num_pas() {
        let pa = Pa(pa);
        let v = match co_max(Location::Data(pa)) {
            Some(w) => DataVal::Write(pos_of[&w]),
            None => DataVal::Init(pa),
        };
        out.final_data.insert(pa, v);
    }

    for va in 0..x.num_vas() {
        let va = Va(va);
        match co_max(Location::Pte(va)) {
            Some(w) => {
                let m = a.mapping(w).expect("PTE-location writes carry mappings");
                out.final_map.insert(va, m.pa);
                if x.event(w).kind == EventKind::DirtyBitWrite {
                    out.final_dirty.insert(va);
                }
            }
            None => {
                out.final_map.insert(va, x.initial_pa(va));
            }
        }
    }

    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use transform_core::figures;

    #[test]
    fn initial_pte_is_identity_and_clean() {
        let p = PteVal::initial(Va(2));
        assert_eq!(p.mapping.pa, Pa(2));
        assert!(!p.dirty);
        assert_eq!(p.src, PteSrc::Init);
    }

    #[test]
    fn fig2b_outcome_reads_both_writes() {
        // sb mapped to an ELT: R1 reads W2 (y), R3 reads W0 (x).
        let out = witness_outcome(&figures::fig2b_sb_elt()).expect("well-formed");
        assert_eq!(out.reads.len(), 2);
        assert!(out.reads.values().all(|v| matches!(v, DataVal::Write(_))));
        // Both user writes dirty their pages.
        assert_eq!(out.final_dirty.len(), 2);
        // No remaps: mappings still initial.
        assert_eq!(out.final_map[&Va(0)], Pa(0));
        assert_eq!(out.final_map[&Va(1)], Pa(1));
    }

    #[test]
    fn fig10a_outcome_reads_stale_initial_page() {
        // The forbidden ptwalk2 outcome: the read returns the *old* page's
        // initial value even though x was remapped to b.
        let out = witness_outcome(&figures::fig10a_ptwalk2()).expect("well-formed");
        assert_eq!(out.reads[&(0, 2)], DataVal::Init(Pa(0)));
        assert_eq!(out.final_map[&Va(0)], Pa(1));
        assert!(out.final_dirty.is_empty());
    }

    #[test]
    fn outcome_orders_and_renders() {
        let out = witness_outcome(&figures::fig10a_ptwalk2()).expect("well-formed");
        let s = out.render();
        assert!(s.contains("reads"), "render: {s}");
        assert!(s.contains("init(a)"), "render: {s}");
        assert!(s.contains("x→b"), "render: {s}");
    }
}
