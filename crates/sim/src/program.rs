//! Machine-level programs — the input the reference machine executes.
//!
//! An enhanced litmus test *program* is the part of an ELT that an
//! implementation can actually run: the per-core streams of user-facing and
//! OS-support instructions, the remap attachments between PTE writes and
//! the `INVLPG`s they invoke, and the RMW pairings. Ghost instructions
//! (walks, dirty-bit updates) are deliberately absent — the machine decides
//! dynamically when hardware performs them, exactly as real hardware does.

use std::collections::{BTreeMap, BTreeSet};
use transform_core::event::EventKind;
use transform_core::exec::Execution;
use transform_core::ids::{Pa, ThreadId, Va};

/// A `(thread, slot)` program position.
pub type Pos = (usize, usize);

/// One instruction of a machine-level program.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Instr {
    /// User-facing load.
    Read {
        /// Effective virtual address.
        va: Va,
    },
    /// User-facing store.
    Write {
        /// Effective virtual address.
        va: Va,
    },
    /// `MFENCE`.
    Fence,
    /// OS support: a system call rewrites the PTE of `va`, remapping it to
    /// `new_pa`.
    PteWrite {
        /// The VA being remapped.
        va: Va,
        /// The page it now maps to.
        new_pa: Pa,
    },
    /// OS support: evict `va`'s TLB entry on the issuing core.
    Invlpg {
        /// The VA whose entry is evicted.
        va: Va,
    },
    /// OS support: flush the issuing core's entire TLB (extended IPI).
    TlbFlush,
}

impl Instr {
    /// The VA the instruction touches, if any.
    pub fn va(self) -> Option<Va> {
        match self {
            Instr::Read { va }
            | Instr::Write { va }
            | Instr::PteWrite { va, .. }
            | Instr::Invlpg { va } => Some(va),
            Instr::Fence | Instr::TlbFlush => None,
        }
    }

    /// `true` for the user loads and stores that need address translation.
    pub fn is_access(self) -> bool {
        matches!(self, Instr::Read { .. } | Instr::Write { .. })
    }
}

/// A runnable ELT program: instruction streams plus remap/RMW structure.
///
/// # Examples
///
/// ```
/// use transform_core::figures;
/// use transform_sim::SimProgram;
///
/// let p = SimProgram::from_execution(&figures::fig10a_ptwalk2());
/// assert_eq!(p.num_threads(), 1);
/// assert_eq!(p.thread(0).len(), 3); // WPTE; INVLPG; R — the walk is implicit
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SimProgram {
    threads: Vec<Vec<Instr>>,
    /// `INVLPG` position → the PTE write that invoked it.
    remap_invoker: BTreeMap<Pos, Pos>,
    /// Positions of reads that open an RMW (the write is the next slot).
    rmw_reads: BTreeSet<Pos>,
    num_vas: usize,
    num_pas: usize,
}

impl SimProgram {
    /// Builds a program from raw parts.
    ///
    /// # Panics
    ///
    /// Panics when the remap or RMW structure refers to positions that do
    /// not hold instructions of the right kind, or when an RMW read is not
    /// followed by a same-VA write.
    pub fn new(
        threads: Vec<Vec<Instr>>,
        remap: impl IntoIterator<Item = (Pos, Pos)>,
        rmw_reads: impl IntoIterator<Item = Pos>,
    ) -> SimProgram {
        let mut num_vas = 0;
        let mut num_pas = 0;
        for i in threads.iter().flatten() {
            if let Some(va) = i.va() {
                num_vas = num_vas.max(va.0 + 1);
            }
            if let Instr::PteWrite { new_pa, .. } = i {
                num_pas = num_pas.max(new_pa.0 + 1);
            }
        }
        num_pas = num_pas.max(num_vas);
        let p = SimProgram {
            threads,
            remap_invoker: remap.into_iter().map(|(w, i)| (i, w)).collect(),
            rmw_reads: rmw_reads.into_iter().collect(),
            num_vas,
            num_pas,
        };
        for (&inv, &wpte) in &p.remap_invoker {
            assert!(
                matches!(p.instr(inv), Instr::Invlpg { .. } | Instr::TlbFlush),
                "remap target {inv:?} is not a TLB eviction"
            );
            assert!(
                matches!(p.instr(wpte), Instr::PteWrite { .. }),
                "remap source {wpte:?} is not a PTE write"
            );
        }
        for &(t, s) in &p.rmw_reads {
            let (r, w) = (p.instr((t, s)), p.instr((t, s + 1)));
            assert!(
                matches!((r, w), (Instr::Read { va: rv }, Instr::Write { va: wv }) if rv == wv),
                "rmw at {:?} is not an adjacent same-VA read/write pair",
                (t, s)
            );
        }
        p
    }

    /// Extracts the runnable program of a candidate execution, discarding
    /// ghosts and communication. This is how synthesized ELTs are turned
    /// into litmus *tests* to run against an implementation.
    pub fn from_execution(x: &Execution) -> SimProgram {
        let mut threads = Vec::new();
        let mut pos_of = BTreeMap::new();
        for t in 0..x.num_threads() {
            let mut row = Vec::new();
            for (s, &e) in x.po_of(ThreadId(t)).iter().enumerate() {
                pos_of.insert(e, (t, s));
                let ev = x.event(e);
                row.push(match ev.kind {
                    EventKind::Read => Instr::Read { va: ev.va_unwrap() },
                    EventKind::Write => Instr::Write { va: ev.va_unwrap() },
                    EventKind::Fence => Instr::Fence,
                    EventKind::PteWrite { new_pa } => Instr::PteWrite {
                        va: ev.va_unwrap(),
                        new_pa,
                    },
                    EventKind::Invlpg => Instr::Invlpg { va: ev.va_unwrap() },
                    EventKind::TlbFlush => Instr::TlbFlush,
                    EventKind::Ptw | EventKind::DirtyBitWrite => {
                        unreachable!("ghosts are not in program order")
                    }
                });
            }
            threads.push(row);
        }
        SimProgram::new(
            threads,
            x.remap_pairs()
                .iter()
                .map(|&(w, i)| (pos_of[&w], pos_of[&i])),
            x.rmw_pairs().iter().map(|&(r, _)| pos_of[&r]),
        )
    }

    /// Number of cores.
    pub fn num_threads(&self) -> usize {
        self.threads.len()
    }

    /// The instruction stream of core `t`.
    pub fn thread(&self, t: usize) -> &[Instr] {
        &self.threads[t]
    }

    /// The instruction at a position.
    ///
    /// # Panics
    ///
    /// Panics when the position is out of range.
    pub fn instr(&self, pos: Pos) -> Instr {
        self.threads[pos.0][pos.1]
    }

    /// Number of distinct VAs referenced.
    pub fn num_vas(&self) -> usize {
        self.num_vas
    }

    /// Size of the physical-page universe (initial pages plus remap
    /// targets).
    pub fn num_pas(&self) -> usize {
        self.num_pas
    }

    /// The PTE write that invoked this `INVLPG`, or `None` for a spurious
    /// invalidation.
    pub fn remap_source(&self, invlpg: Pos) -> Option<Pos> {
        self.remap_invoker.get(&invlpg).copied()
    }

    /// All `(wpte, invlpg)` remap attachments.
    pub fn remap_pairs(&self) -> impl Iterator<Item = (Pos, Pos)> + '_ {
        self.remap_invoker.iter().map(|(&i, &w)| (w, i))
    }

    /// `true` when the read at `pos` opens an RMW.
    pub fn is_rmw_read(&self, pos: Pos) -> bool {
        self.rmw_reads.contains(&pos)
    }

    /// `true` when the write at `pos` closes an RMW.
    pub fn is_rmw_write(&self, pos: Pos) -> bool {
        pos.1 > 0 && self.rmw_reads.contains(&(pos.0, pos.1 - 1))
    }

    /// Positions of the RMW-opening reads.
    pub fn rmw_reads(&self) -> impl Iterator<Item = Pos> + '_ {
        self.rmw_reads.iter().copied()
    }

    /// Every position in the program, in `(thread, slot)` order.
    pub fn positions(&self) -> impl Iterator<Item = Pos> + '_ {
        self.threads
            .iter()
            .enumerate()
            .flat_map(|(t, row)| (0..row.len()).map(move |s| (t, s)))
    }

    /// Total instruction count (ghosts excluded — they are implicit).
    pub fn len(&self) -> usize {
        self.threads.iter().map(Vec::len).sum()
    }

    /// `true` when the program has no instructions.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use transform_core::figures;

    #[test]
    fn fig10a_program_strips_ghosts() {
        let p = SimProgram::from_execution(&figures::fig10a_ptwalk2());
        assert_eq!(p.len(), 3);
        assert!(matches!(p.instr((0, 0)), Instr::PteWrite { .. }));
        assert!(matches!(p.instr((0, 1)), Instr::Invlpg { .. }));
        assert!(matches!(p.instr((0, 2)), Instr::Read { .. }));
        assert_eq!(p.remap_source((0, 1)), Some((0, 0)));
        assert_eq!(p.remap_source((0, 2)), None);
    }

    #[test]
    fn fig11_program_has_cross_core_remap() {
        let p = SimProgram::from_execution(&figures::fig11_cross_core_invlpg());
        assert_eq!(p.num_threads(), 2);
        let remaps: Vec<_> = p.remap_pairs().collect();
        assert_eq!(remaps.len(), 2, "one INVLPG per core");
        assert!(remaps.iter().all(|&(w, _)| w == (0, 0)));
    }

    #[test]
    fn universe_counts_cover_remap_targets() {
        let p = SimProgram::new(
            vec![vec![
                Instr::PteWrite {
                    va: Va(0),
                    new_pa: Pa(2),
                },
                Instr::Invlpg { va: Va(0) },
            ]],
            [((0, 0), (0, 1))],
            [],
        );
        assert_eq!(p.num_vas(), 1);
        assert_eq!(p.num_pas(), 3);
    }

    #[test]
    #[should_panic(expected = "rmw")]
    fn rmw_must_be_adjacent_same_va() {
        SimProgram::new(
            vec![vec![Instr::Read { va: Va(0) }, Instr::Write { va: Va(1) }]],
            [],
            [(0, 0)],
        );
    }
}
