//! Fleet acceptance over a real socket: a loopback coordinator leases
//! mass-balanced partition ranges to workers, workers run the fused
//! pipeline and upload shard results over HTTP, and the merged suites
//! are byte-identical (fingerprint, records, counters) to a
//! single-machine fused run — including under duplicate uploads,
//! conflicting uploads, and dead-lease reclamation.

use transform_serve::{ServeOptions, Server};
use transform_store::fleet::StageOutcome;
use transform_store::{
    execute_lease, read_suite, suite_fingerprint, HttpTier, JobSpec, Store,
};
use transform_synth::SynthOptions;
use transform_x86::x86t_elt;

fn opts() -> SynthOptions {
    let mut o = SynthOptions::new(4);
    o.enumeration.allow_fences = false;
    o.enumeration.allow_rmw = false;
    o
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("tffleet-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("mkdir");
    dir
}

#[test]
fn leased_workers_reproduce_the_single_machine_run() {
    let mtm = x86t_elt();
    let axioms: Vec<&str> = mtm.axioms().iter().map(|a| a.name.as_str()).collect();
    let o = opts();

    let origin = temp_dir("coord");
    let server = Server::bind(&origin, "127.0.0.1:0", ServeOptions::default()).expect("binds");
    let url = format!("http://{}", server.local_addr());
    let handle = server.spawn();
    let client = HttpTier::new(&url).expect("valid URL");

    // The client-side plan: 2 fleet workers over a 2-job partition
    // shape, generous TTL (no expiry in this test).
    let spec = JobSpec::for_run(&mtm, &axioms, &o, 2, 2, 60_000);
    let ranges = spec.ranges.clone();
    assert!(ranges.len() >= 2, "the plan split into multiple ranges");
    let job = client.create_job(&spec.encode()).expect("job accepted");
    assert_eq!(job, spec.id(), "the coordinator derived the content id");
    // Re-posting the identical spec re-joins the same job.
    assert_eq!(client.create_job(&spec.encode()).expect("idempotent"), job);

    // Drive the fleet: lease until the coordinator runs dry, computing
    // each range like a worker would and uploading the shard result.
    let mut first_upload: Option<(u64, u32, u32, Vec<u8>)> = None;
    let mut leased = 0;
    while let Some(grant) = client.lease("test-worker").expect("lease call") {
        leased += 1;
        assert!(client.heartbeat(grant.lease).expect("heartbeat call"));
        let result = execute_lease(&grant, 2).expect("range runs");
        let bytes = result.encode();
        assert_eq!(
            client
                .put_shard(grant.job, grant.lo, grant.hi, &bytes)
                .expect("upload"),
            StageOutcome::New
        );
        if first_upload.is_none() {
            first_upload = Some((grant.job, grant.lo, grant.hi, bytes));
        }
    }
    assert_eq!(leased, ranges.len(), "every range was leased exactly once");

    // The last upload sealed the job inside its PUT.
    let status = client.job_status(job).expect("status call").expect("known");
    assert!(status.complete, "all ranges staged seals the job");
    assert_eq!(status.staged, ranges.len());

    // Fingerprint-level byte-identity: the fleet-sealed suites decode
    // to exactly the records and lossless counters of a local fused
    // run (headers differ only in elapsed/shard breakdown).
    let store = Store::open(&origin).expect("opens");
    for axiom in &axioms {
        let fp = suite_fingerprint(&mtm, axiom, &o);
        let sealed = read_suite(store.open_suite(fp).expect("sealed entry"))
            .expect("suite reads back");
        let reference = transform_par::synthesize_suite_jobs(&mtm, axiom, &o, 2);
        assert_eq!(sealed.elts.len(), reference.elts.len(), "{axiom}");
        for (a, b) in sealed.elts.iter().zip(&reference.elts) {
            assert_eq!(a.program, b.program, "{axiom}");
            assert_eq!(a.witness, b.witness, "{axiom}");
            assert_eq!(a.violated, b.violated, "{axiom}");
        }
        assert_eq!(sealed.stats.programs, reference.stats.programs, "{axiom}");
        assert_eq!(sealed.stats.executions, reference.stats.executions);
        assert_eq!(sealed.stats.forbidden, reference.stats.forbidden);
        assert_eq!(sealed.stats.minimal, reference.stats.minimal);

        // The merge also wrote the warm-start digest, replicated over
        // `GET /v1/digest/<fp>` for digest-aware pulls.
        let local = store.digest_bytes(fp).expect("readable").expect("written");
        let remote = client.fetch_digest(fp).expect("fetch").expect("served");
        assert_eq!(local, remote);
    }

    // Idempotent re-upload: the identical bytes are a duplicate, not a
    // conflict, even after the job sealed.
    let (ujob, ulo, uhi, ubytes) = first_upload.expect("at least one upload");
    assert_eq!(
        client.put_shard(ujob, ulo, uhi, &ubytes).expect("retry"),
        StageOutcome::Duplicate
    );
    // Conflicting bytes for a staged range are refused.
    assert_eq!(
        client
            .put_shard(ujob, ranges[1].0, ranges[1].1, &ubytes)
            .expect("conflict path"),
        StageOutcome::Mismatch
    );
    // Garbage is rejected outright (400), never staged.
    assert!(client.put_shard(ujob, ulo, uhi, b"garbage").is_err());
    // A drained fleet leases nothing, and stale leases are not honored.
    assert!(client.lease("test-worker").expect("drained").is_none());
    assert!(!client.heartbeat(u64::MAX).expect("bogus lease"));

    handle.shutdown();
    std::fs::remove_dir_all(&origin).ok();
}

#[test]
fn expired_leases_are_reassigned_and_the_merge_still_seals() {
    let mtm = x86t_elt();
    let axioms = vec![mtm.axioms()[0].name.as_str()];
    let o = opts();

    let origin = temp_dir("expiry");
    let server = Server::bind(&origin, "127.0.0.1:0", ServeOptions::default()).expect("binds");
    let url = format!("http://{}", server.local_addr());
    let handle = server.spawn();
    let client = HttpTier::new(&url).expect("valid URL");

    // TTL 0: every lease is expired by the next lease call — the
    // "worker died mid-lease" path, forced deterministically.
    let spec = JobSpec::for_run(&mtm, &axioms, &o, 2, 2, 0);
    let job = client.create_job(&spec.encode()).expect("job accepted");

    // The first grant dies unheartbeaten; the same range comes back
    // under a fresh lease.
    let dead = client.lease("w1").expect("lease").expect("work pending");
    let retry = client.lease("w2").expect("lease").expect("reassigned");
    assert_eq!((dead.lo, dead.hi), (retry.lo, retry.hi));
    assert_ne!(dead.lease, retry.lease);
    assert!(!client.heartbeat(dead.lease).expect("dead lease refused"));

    // Complete the job from scratch: leases keep cycling (TTL 0), so
    // track which ranges are staged and upload each exactly once; the
    // coordinator accepts uploads regardless of lease state.
    let mut staged: std::collections::HashSet<(u32, u32)> = std::collections::HashSet::new();
    while staged.len() < spec.ranges.len() {
        let grant = client.lease("w3").expect("lease").expect("work cycles");
        if !staged.insert((grant.lo, grant.hi)) {
            continue;
        }
        let bytes = execute_lease(&grant, 1).expect("range runs").encode();
        let outcome = client
            .put_shard(grant.job, grant.lo, grant.hi, &bytes)
            .expect("upload");
        assert_eq!(outcome, StageOutcome::New);
    }
    let status = client.job_status(job).expect("status").expect("known");
    assert!(status.complete, "expiry and reassignment never block the seal");

    // The sealed suite still matches the local engine exactly.
    let store = Store::open(&origin).expect("opens");
    let fp = suite_fingerprint(&mtm, axioms[0], &o);
    let sealed = read_suite(store.open_suite(fp).expect("sealed")).expect("reads");
    let reference = transform_synth::synthesize_suite(&mtm, axioms[0], &o);
    assert_eq!(sealed.elts.len(), reference.elts.len());
    for (a, b) in sealed.elts.iter().zip(&reference.elts) {
        assert_eq!(a.program, b.program);
        assert_eq!(a.witness, b.witness);
        assert_eq!(a.violated, b.violated);
    }
    assert_eq!(sealed.stats.executions, reference.stats.executions);

    handle.shutdown();
    std::fs::remove_dir_all(&origin).ok();
}

#[test]
fn bad_job_specs_are_refused_at_submission() {
    let mtm = x86t_elt();
    let o = opts();
    let origin = temp_dir("badspec");
    let server = Server::bind(&origin, "127.0.0.1:0", ServeOptions::default()).expect("binds");
    let url = format!("http://{}", server.local_addr());
    let handle = server.spawn();
    let client = HttpTier::new(&url).expect("valid URL");

    // Garbage bytes are not a job.
    assert!(client.create_job(b"not a job spec").is_err());

    // A wrong fingerprint is caught server-side — the coordinator
    // recomputes each axiom's suite key from the model text.
    let mut spec = JobSpec::for_run(&mtm, &["sc_per_loc"], &o, 2, 2, 60_000);
    spec.axioms[0].1 = transform_store::Fingerprint(42);
    assert!(client.create_job(&spec.encode()).is_err());

    // Ranges that do not tile the plan's partition count are refused.
    let mut spec = JobSpec::for_run(&mtm, &["sc_per_loc"], &o, 2, 2, 60_000);
    let last = spec.ranges.last_mut().expect("non-empty");
    last.1 += 1;
    assert!(client.create_job(&spec.encode()).is_err());

    // Unknown jobs answer 404 everywhere.
    assert!(client.job_status(0xdead).expect("status call").is_none());

    handle.shutdown();
    std::fs::remove_dir_all(&origin).ok();
}
