//! The acceptance path: a loopback `transform-serve` instance serves a
//! previously sealed bound-4 suite to a cold client byte-identically to
//! local synthesis, read-through populates the client's local tier, and
//! corrupt remote bytes are detected and never served.

use std::io::{Read, Write};
use std::net::TcpListener;
use transform_litmus::format::print_elt;
use transform_serve::{ServeOptions, Server};
use transform_store::{
    cached_or_synthesize, suite_fingerprint, CacheStatus, HttpTier, Store, TieredCache,
};
use transform_synth::{Suite, SynthOptions};
use transform_x86::x86t_elt;

const AXIOM: &str = "invlpg";

fn opts() -> SynthOptions {
    let mut o = SynthOptions::new(4);
    o.enumeration.allow_fences = false;
    o.enumeration.allow_rmw = false;
    o
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("tfloop-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("mkdir");
    dir
}

/// Renders a suite exactly as `transform synthesize` prints it.
fn render(suite: &Suite) -> String {
    let mut out = String::new();
    for (i, elt) in suite.elts.iter().enumerate() {
        out.push_str(&print_elt(&format!("{}_{i}", suite.axiom), &elt.witness));
        out.push('\n');
    }
    out
}

#[test]
fn cold_client_reads_through_the_loopback_server() {
    let mtm = x86t_elt();

    // The reference: plain local synthesis.
    let reference = render(&transform_synth::synthesize_suite(&mtm, AXIOM, &opts()));

    // A server whose store already holds the sealed bound-4 suite.
    let origin = temp_dir("origin");
    {
        let store = Store::open(&origin).expect("store opens");
        cached_or_synthesize(&store, &mtm, AXIOM, &opts(), 2).expect("seeds the origin");
    }
    let server = Server::bind(&origin, "127.0.0.1:0", ServeOptions::default()).expect("binds");
    let url = format!("http://{}", server.local_addr());
    let handle = server.spawn();

    // A cold client: empty local tier, the server as remote tier.
    let local = temp_dir("client");
    let cache = TieredCache::new(Store::open(&local).expect("store opens"))
        .with_remote(Box::new(HttpTier::new(&url).expect("valid URL")));
    let (suite, status) = cache
        .cached_or_synthesize(&mtm, AXIOM, &opts(), 2)
        .expect("tiered read");
    assert!(
        status.is_remote_hit(),
        "expected a remote hit, got {status:?}"
    );
    assert_eq!(
        render(&suite),
        reference,
        "remote-served suite must be byte-identical to local synthesis"
    );

    // Read-through population: the client's local tier now holds the
    // sealed entry, byte-identical to the origin's, and the next lookup
    // is a *local* hit with the same bytes.
    let fp = suite_fingerprint(&mtm, AXIOM, &opts());
    let origin_bytes = Store::open(&origin)
        .expect("opens")
        .entry_bytes(fp)
        .expect("readable")
        .expect("origin entry");
    let local_bytes = cache
        .local()
        .entry_bytes(fp)
        .expect("readable")
        .expect("read-through populated the local tier");
    assert_eq!(local_bytes, origin_bytes);
    let (warm, warm_status) = cache
        .cached_or_synthesize(&mtm, AXIOM, &opts(), 2)
        .expect("warm read");
    assert!(warm_status.is_hit(), "got {warm_status:?}");
    assert_eq!(render(&warm), reference);

    handle.shutdown();
    std::fs::remove_dir_all(&origin).ok();
    std::fs::remove_dir_all(&local).ok();
}

#[test]
fn unreachable_remote_degrades_to_local_synthesis() {
    let mtm = x86t_elt();
    let local = temp_dir("no-remote");
    // Port 1: reliably refused.
    let cache = TieredCache::new(Store::open(&local).expect("store opens")).with_remote(Box::new(
        HttpTier::new("http://127.0.0.1:1").expect("valid URL"),
    ));
    let (suite, status) = cache
        .cached_or_synthesize(&mtm, AXIOM, &opts(), 2)
        .expect("degrades to synthesis");
    assert_eq!(status, CacheStatus::Miss);
    assert_eq!(
        render(&suite),
        render(&transform_synth::synthesize_suite(&mtm, AXIOM, &opts()))
    );
    std::fs::remove_dir_all(&local).ok();
}

/// A remote entry that is internally valid — right header fingerprint,
/// clean checksums — but holds a *different suite* than the requested
/// key: install-level validation passes, and only the tiered read's
/// axiom cross-check can catch it. It must be evicted and fall through
/// to synthesis, never be served or survive in the local tier.
#[test]
fn wrong_suite_behind_the_right_fingerprint_is_evicted_not_served() {
    use transform_par::synthesize_suite_streamed;
    use transform_store::EntryMeta;

    let mtm = x86t_elt();
    let reference = render(&transform_synth::synthesize_suite(&mtm, AXIOM, &opts()));
    let fp = suite_fingerprint(&mtm, AXIOM, &opts());

    // Forge an entry: sc_per_loc's suite sealed under invlpg's
    // fingerprint. Checksums and the recorded fingerprint all validate.
    let forge_dir = temp_dir("forge");
    let forged = {
        let store = Store::open(&forge_dir).expect("opens");
        let pending = store
            .begin(fp, EntryMeta::describe(&mtm, "sc_per_loc", &opts()))
            .expect("begins");
        let stats = synthesize_suite_streamed(&mtm, "sc_per_loc", &opts(), 2, &pending);
        pending.seal(&stats).expect("seals");
        store
            .entry_bytes(fp)
            .expect("readable")
            .expect("forged entry")
    };

    let (url, _poison) = spawn_poison_server(forged, None);
    let local = temp_dir("forge-client");
    let cache = TieredCache::new(Store::open(&local).expect("store opens"))
        .with_remote(Box::new(HttpTier::new(&url).expect("valid URL")));
    let (suite, status) = cache
        .cached_or_synthesize(&mtm, AXIOM, &opts(), 2)
        .expect("falls through to synthesis, not a hard error");
    assert!(!status.is_remote_hit(), "got {status:?}");
    assert_eq!(render(&suite), reference);
    // The local tier holds the freshly synthesized suite for AXIOM, not
    // the forged one.
    let reader = cache.local().open_suite(fp).expect("validates");
    assert_eq!(reader.meta().axiom, AXIOM);

    std::fs::remove_dir_all(&forge_dir).ok();
    std::fs::remove_dir_all(&local).ok();
}

/// A fake remote that frames damaged suite bytes in valid HTTP — the
/// transport succeeds, so only payload validation can catch it.
fn spawn_poison_server(
    body: Vec<u8>,
    truncate_to: Option<usize>,
) -> (String, std::thread::JoinHandle<()>) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("binds");
    let url = format!("http://{}", listener.local_addr().expect("addr"));
    let thread = std::thread::spawn(move || {
        // Serve until the listener is dropped with the test.
        for stream in listener.incoming() {
            let Ok(mut stream) = stream else { return };
            let mut buf = [0u8; 4096];
            let _ = stream.read(&mut buf);
            match truncate_to {
                // Honest Content-Length, corrupt payload.
                None => {
                    let _ = write!(
                        stream,
                        "HTTP/1.1 200 OK\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
                        body.len()
                    );
                    let _ = stream.write_all(&body);
                }
                // Declared length exceeds what is sent: a truncated
                // transfer, detected at the transport layer.
                Some(cut) => {
                    let _ = write!(
                        stream,
                        "HTTP/1.1 200 OK\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
                        body.len()
                    );
                    let _ = stream.write_all(&body[..cut]);
                }
            }
            let _ = stream.flush();
        }
    });
    (url, thread)
}

#[test]
fn corrupt_remote_bytes_are_detected_and_never_served() {
    let mtm = x86t_elt();
    let reference = render(&transform_synth::synthesize_suite(&mtm, AXIOM, &opts()));
    let fp = suite_fingerprint(&mtm, AXIOM, &opts());

    // Sealed bytes with one bit flipped mid-file.
    let seed = temp_dir("poison-seed");
    let store = Store::open(&seed).expect("opens");
    cached_or_synthesize(&store, &mtm, AXIOM, &opts(), 2).expect("seeds");
    let mut damaged = store
        .entry_bytes(fp)
        .expect("readable")
        .expect("entry sealed");
    let mid = damaged.len() / 2;
    damaged[mid] ^= 0x10;

    let (url, _poison) = spawn_poison_server(damaged, None);
    let local = temp_dir("poison-client");
    let cache = TieredCache::new(Store::open(&local).expect("store opens"))
        .with_remote(Box::new(HttpTier::new(&url).expect("valid URL")));
    let (suite, status) = cache
        .cached_or_synthesize(&mtm, AXIOM, &opts(), 2)
        .expect("falls back to synthesis");
    assert!(
        !status.is_remote_hit(),
        "corrupt remote bytes must never count as a remote hit"
    );
    assert_eq!(
        render(&suite),
        reference,
        "the suite served must come from clean synthesis, not the poisoned remote"
    );
    // The local tier holds a freshly sealed entry that validates clean
    // — the poisoned payload was never installed (it cannot validate).
    let mut reader = cache.local().open_suite(fp).expect("validates");
    assert!(reader.by_ref().all(|r| r.is_ok()), "local entry is clean");
    let (warm, warm_status) = cache
        .cached_or_synthesize(&mtm, AXIOM, &opts(), 2)
        .expect("warm read");
    assert!(warm_status.is_hit(), "got {warm_status:?}");
    assert_eq!(render(&warm), reference);

    std::fs::remove_dir_all(&seed).ok();
    std::fs::remove_dir_all(&local).ok();
}

#[test]
fn truncated_remote_responses_are_detected_and_never_served() {
    let mtm = x86t_elt();
    let reference = render(&transform_synth::synthesize_suite(&mtm, AXIOM, &opts()));
    let fp = suite_fingerprint(&mtm, AXIOM, &opts());

    let seed = temp_dir("trunc-seed");
    let store = Store::open(&seed).expect("opens");
    cached_or_synthesize(&store, &mtm, AXIOM, &opts(), 2).expect("seeds");
    let bytes = store
        .entry_bytes(fp)
        .expect("readable")
        .expect("entry sealed");
    let cut = bytes.len() / 3;

    let (url, _poison) = spawn_poison_server(bytes, Some(cut));
    let local = temp_dir("trunc-client");
    let cache = TieredCache::new(Store::open(&local).expect("store opens")).with_remote(Box::new(
        HttpTier::new(&url)
            .expect("valid URL")
            .with_timeout(std::time::Duration::from_millis(500)),
    ));
    let (suite, status) = cache
        .cached_or_synthesize(&mtm, AXIOM, &opts(), 2)
        .expect("falls back to synthesis");
    assert!(!status.is_remote_hit());
    assert_eq!(render(&suite), reference);

    std::fs::remove_dir_all(&seed).ok();
    std::fs::remove_dir_all(&local).ok();
}

/// One raw HTTP/1.1 GET, returning the response body as text.
fn http_get(addr: std::net::SocketAddr, path: &str) -> String {
    let mut stream = std::net::TcpStream::connect(addr).expect("connects");
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: loopback\r\nConnection: close\r\n\r\n"
    )
    .expect("writes");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("reads");
    let (_head, body) = response
        .split_once("\r\n\r\n")
        .expect("response has a header/body split");
    body.to_string()
}

/// One counter's value out of the Prometheus-style plaintext.
fn metric(body: &str, name: &str) -> u64 {
    body.lines()
        .find_map(|l| l.strip_prefix(&format!("{name} ")))
        .unwrap_or_else(|| panic!("metric {name} missing from:\n{body}"))
        .trim()
        .parse()
        .expect("metric value parses")
}

#[test]
fn metrics_endpoint_reports_requests_hits_puts_and_bytes() {
    let mtm = x86t_elt();
    let root = temp_dir("metrics");
    let server = Server::bind(&root, "127.0.0.1:0", ServeOptions::default()).expect("binds");
    let addr = server.local_addr();
    let url = format!("http://{addr}");
    let handle = server.spawn();
    let client = HttpTier::new(&url).expect("valid URL");

    // Cold scrape: every counter is present and zero.
    let cold = http_get(addr, "/v1/metrics");
    for name in [
        "transform_serve_suite_hits_total",
        "transform_serve_suite_misses_total",
        "transform_serve_puts_accepted_total",
        "transform_serve_puts_rejected_total",
        "transform_serve_bytes_served_total",
        "transform_serve_bytes_received_total",
    ] {
        assert_eq!(metric(&cold, name), 0, "{name} on a cold server");
    }
    assert_eq!(metric(&cold, "transform_serve_entries"), 0);

    // Drive traffic: one miss, one upload, one hit.
    let fp = suite_fingerprint(&mtm, AXIOM, &opts());
    assert!(client.fetch(fp).expect("miss round-trips").is_none());
    let seed = temp_dir("metrics-seed");
    let store = Store::open(&seed).expect("opens");
    cached_or_synthesize(&store, &mtm, AXIOM, &opts(), 2).expect("seeds");
    let bytes = store
        .entry_bytes(fp)
        .expect("readable")
        .expect("entry sealed");
    client.publish(fp, &bytes).expect("uploads");
    let served = client
        .fetch(fp)
        .expect("hit round-trips")
        .expect("entry present");
    assert_eq!(served, bytes);

    let warm = http_get(addr, "/v1/metrics");
    assert_eq!(metric(&warm, "transform_serve_suite_hits_total"), 1);
    assert_eq!(metric(&warm, "transform_serve_suite_misses_total"), 1);
    assert_eq!(metric(&warm, "transform_serve_puts_accepted_total"), 1);
    assert_eq!(metric(&warm, "transform_serve_puts_rejected_total"), 0);
    assert_eq!(metric(&warm, "transform_serve_entries"), 1);
    assert_eq!(
        metric(&warm, "transform_serve_bytes_received_total"),
        bytes.len() as u64,
        "the PUT body is the only ingested payload"
    );
    assert_eq!(
        metric(&warm, "transform_serve_bytes_served_total"),
        bytes.len() as u64,
        "the served entry is the only payload sent"
    );
    assert!(metric(&warm, "transform_serve_requests_total") >= 4);

    // A rejected upload counts as rejected and as received bytes.
    let mut damaged = bytes.clone();
    let mid = damaged.len() / 2;
    damaged[mid] ^= 0xff;
    assert!(
        client.publish(fp, &damaged).is_err(),
        "damaged upload bytes must be refused even for a present entry"
    );
    let after = http_get(addr, "/v1/metrics");
    assert_eq!(metric(&after, "transform_serve_puts_rejected_total"), 1);
    assert_eq!(
        metric(&after, "transform_serve_bytes_received_total"),
        2 * bytes.len() as u64
    );

    handle.shutdown();
    std::fs::remove_dir_all(&root).ok();
    std::fs::remove_dir_all(&seed).ok();
}

/// The fused all-axiom path through a tiered cache: axioms the remote
/// holds are remote hits, the rest synthesize in one fused run, and
/// push-on-seal publishes each freshly sealed suite to the server.
#[test]
fn fused_all_axiom_run_reads_through_and_pushes_per_axiom() {
    let mtm = x86t_elt();

    // The origin serves one pre-sealed axiom.
    let origin = temp_dir("all-origin");
    {
        let store = Store::open(&origin).expect("opens");
        cached_or_synthesize(&store, &mtm, AXIOM, &opts(), 2).expect("seeds the origin");
    }
    let server = Server::bind(&origin, "127.0.0.1:0", ServeOptions::default()).expect("binds");
    let url = format!("http://{}", server.local_addr());
    let handle = server.spawn();

    let local = temp_dir("all-client");
    let cache = TieredCache::new(Store::open(&local).expect("store opens"))
        .with_remote(Box::new(HttpTier::new(&url).expect("valid URL")));
    let all = cache
        .cached_or_synthesize_all(&mtm, &opts(), 2)
        .expect("fused all");
    assert_eq!(all.len(), mtm.axioms().len());
    let origin_store = Store::open(&origin).expect("opens");
    for (axiom, (suite, status)) in &all {
        let reference = transform_synth::synthesize_suite(&mtm, axiom, &opts());
        assert_eq!(render(suite), render(&reference), "{axiom}");
        let fp = suite_fingerprint(&mtm, axiom, &opts());
        if axiom == AXIOM {
            assert!(status.is_remote_hit(), "{axiom}: {status:?}");
        } else {
            assert_eq!(status, &CacheStatus::Miss, "{axiom}");
            // Push-on-seal: the freshly synthesized axiom reached the
            // served origin store.
            assert!(
                origin_store.contains(fp),
                "{axiom}: push-on-seal never reached the server"
            );
        }
        assert!(cache.local().contains(fp), "{axiom}: local tier missing");
    }

    handle.shutdown();
    std::fs::remove_dir_all(&origin).ok();
    std::fs::remove_dir_all(&local).ok();
}

/// One raw HTTP/1.1 GET, returning (head, body) — for asserting on
/// response headers, not just payloads.
fn http_get_raw(addr: std::net::SocketAddr, path: &str) -> (String, String) {
    let mut stream = std::net::TcpStream::connect(addr).expect("connects");
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: loopback\r\nConnection: close\r\n\r\n"
    )
    .expect("writes");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("reads");
    let (head, body) = response
        .split_once("\r\n\r\n")
        .expect("response has a header/body split");
    (head.to_string(), body.to_string())
}

/// One raw HTTP/1.1 PUT, returning the status code.
fn http_put(addr: std::net::SocketAddr, path: &str, body: &[u8]) -> u16 {
    let mut stream = std::net::TcpStream::connect(addr).expect("connects");
    write!(
        stream,
        "PUT {path} HTTP/1.1\r\nHost: loopback\r\nConnection: close\r\nContent-Length: {}\r\n\r\n",
        body.len()
    )
    .expect("writes head");
    stream.write_all(body).expect("writes body");
    let mut response = Vec::new();
    stream.read_to_end(&mut response).expect("reads");
    let head = String::from_utf8_lossy(&response);
    head.split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status parses")
}

/// The run-journal fleet path end to end: a client publishes a journal
/// (`PUT /v1/runs/<id>`), the fleet list serves its manifest
/// (`GET /v1/runs`), the full journal round-trips byte-identically
/// (`GET /v1/runs/<id>`), and damaged uploads are refused.
#[test]
fn run_journals_publish_list_and_fetch_over_loopback() {
    use transform_par::{JournalEvent, JournalEventKind};
    use transform_store::{decode_run, decode_run_list, encode_run, RunJournal, RunOutcome};

    let root = temp_dir("runs");
    let server = Server::bind(&root, "127.0.0.1:0", ServeOptions::default()).expect("binds");
    let addr = server.local_addr();
    let url = format!("http://{}", addr);
    let handle = server.spawn();
    let client = HttpTier::new(&url).expect("valid URL");

    // An empty server lists no runs and 404s unknown ids.
    assert_eq!(client.runs().expect("empty list decodes").len(), 0);
    assert_eq!(client.fetch_run(0x1234).expect("fetch works"), None);

    // Build a small journal by hand (the CLI layer normally does this
    // from a live ProgressState) and publish it.
    let manifest = transform_store::RunManifest {
        id: 0xfeed_f00d,
        mtm: "x86t_elt".into(),
        bound: 4,
        allow_fences: false,
        allow_rmw: false,
        jobs: 2,
        started_unix_micros: 1_700_000_000_000_000,
        elapsed_micros: 250_000,
        outcome: RunOutcome::Complete,
        partitions_total: 10,
        partitions_retired: 10,
        mass_total: 100,
        mass_retired: 100,
        programs: 42,
        items_planned: 17,
        batches: 3,
        peak_live_candidates: 5,
        final_batch_size: 64,
        cut_at_partition: None,
        axioms: Vec::new(),
    };
    let journal = RunJournal {
        manifest,
        events: vec![JournalEvent {
            t_micros: 1,
            kind: JournalEventKind::RunStart,
            axiom: None,
            a: 10,
            b: 100,
            c: 2,
        }],
    };
    let bytes = encode_run(&journal);
    client
        .publish_run(journal.manifest.id, &bytes)
        .expect("publishes");

    // The fleet list now carries the manifest, and the journal fetches
    // back byte-identically.
    let listed = client.runs().expect("list decodes");
    assert_eq!(listed.len(), 1);
    assert_eq!(listed[0], journal.manifest);
    let fetched = client
        .fetch_run(journal.manifest.id)
        .expect("fetches")
        .expect("present");
    assert_eq!(fetched, bytes);
    assert_eq!(decode_run(&fetched).expect("decodes"), journal);

    // Re-publishing (the heartbeat path) is accepted with 200.
    let path = format!("/v1/runs/{:016x}", journal.manifest.id);
    assert_eq!(http_put(addr, &path, &bytes), 200);

    // Damage is refused: wrong id in the URL, corrupt bytes, bad id.
    assert_eq!(http_put(addr, "/v1/runs/0000000000000001", &bytes), 400);
    let mut corrupt = bytes.clone();
    let mid = corrupt.len() / 2;
    corrupt[mid] ^= 0x40;
    assert_eq!(http_put(addr, &path, &corrupt), 400);
    assert_eq!(http_put(addr, "/v1/runs/not-hex", &bytes), 400);
    // The list still serves only the intact journal.
    assert_eq!(client.runs().expect("list decodes").len(), 1);
    // And unsupported methods on runs paths answer 405, not 404.
    let still_listed = decode_run_list(
        &Store::open(&root)
            .expect("store opens")
            .runs()
            .map(|m| transform_store::encode_run_list(&m))
            .expect("encodes"),
    )
    .expect("decodes");
    assert_eq!(still_listed.len(), 1);

    handle.shutdown();
    std::fs::remove_dir_all(&root).ok();
}

/// A legal Prometheus metric name: `[a-zA-Z_:][a-zA-Z0-9_:]*`.
fn is_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// `/v1/metrics` conforms to the Prometheus text format (0.0.4): the
/// versioned Content-Type, a `# HELP` and `# TYPE` line preceding every
/// family's samples, legal metric names, parseable values, and the
/// per-route breakdown covering every route class.
#[test]
fn metrics_conform_to_prometheus_text_format() {
    let root = temp_dir("prom");
    let server = Server::bind(&root, "127.0.0.1:0", ServeOptions::default()).expect("binds");
    let addr = server.local_addr();
    let handle = server.spawn();

    // Touch two routes so the breakdown has something to count.
    http_get_raw(addr, "/healthz");
    http_get_raw(addr, "/no/such/path");

    let (head, body) = http_get_raw(addr, "/v1/metrics");
    assert!(
        head.to_ascii_lowercase()
            .contains("content-type: text/plain; version=0.0.4"),
        "scrapers negotiate on the 0.0.4 version tag, got:\n{head}"
    );

    let mut helped = std::collections::HashSet::new();
    let mut typed = std::collections::HashMap::new();
    let mut samples = 0usize;
    for line in body.lines() {
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let family = rest.split_whitespace().next().expect("HELP names a family");
            assert!(rest.len() > family.len(), "HELP without text: {line}");
            helped.insert(family.to_string());
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            let family = parts.next().expect("TYPE names a family");
            let kind = parts.next().expect("TYPE names a kind");
            assert!(
                matches!(
                    kind,
                    "counter" | "gauge" | "summary" | "histogram" | "untyped"
                ),
                "unknown TYPE: {line}"
            );
            typed.insert(family.to_string(), kind.to_string());
            continue;
        }
        assert!(!line.starts_with('#'), "stray comment form: {line}");
        assert!(!line.is_empty(), "blank line inside the exposition");

        // `name{labels} value` or `name value`.
        let (name_and_labels, value) = line.rsplit_once(' ').expect("sample has a value");
        value
            .parse::<f64>()
            .unwrap_or_else(|_| panic!("unparseable value: {line}"));
        let name = name_and_labels
            .split_once('{')
            .map_or(name_and_labels, |(n, _)| n);
        assert!(is_metric_name(name), "illegal metric name: {name}");
        // A summary or histogram family declares `x` but samples
        // `x_sum`/`x_count` — and, for histograms, `x_bucket`.
        let family = name
            .strip_suffix("_bucket")
            .filter(|f| typed.get(*f).map(String::as_str) == Some("histogram"))
            .or_else(|| {
                name.strip_suffix("_sum")
                    .or_else(|| name.strip_suffix("_count"))
                    .filter(|f| {
                        matches!(
                            typed.get(*f).map(String::as_str),
                            Some("summary") | Some("histogram")
                        )
                    })
            })
            .unwrap_or(name);
        assert!(
            typed.contains_key(family),
            "sample before its # TYPE: {line}"
        );
        assert!(helped.contains(family), "sample before its # HELP: {line}");
        samples += 1;
    }
    assert!(samples > 0, "no samples at all:\n{body}");

    // The per-route breakdown names every route class, and the traffic
    // above landed where it should.
    let labeled = |route: &str| {
        let needle = format!("transform_serve_route_requests_total{{route=\"{route}\"}} ");
        body.lines()
            .find_map(|l| l.strip_prefix(needle.as_str()))
            .unwrap_or_else(|| panic!("route {route} missing from:\n{body}"))
            .parse::<u64>()
            .expect("route counter parses")
    };
    for route in transform_serve::ROUTE_NAMES {
        labeled(route);
    }
    assert_eq!(labeled("healthz"), 1);
    assert_eq!(labeled("other"), 1);
    assert!(metric(&body, "transform_serve_in_flight") <= 1);
    // Latency counts mirror the request counts, per route.
    for route in transform_serve::ROUTE_NAMES {
        let needle = format!("transform_serve_route_latency_seconds_count{{route=\"{route}\"}} ");
        let count: u64 = body
            .lines()
            .find_map(|l| l.strip_prefix(needle.as_str()))
            .unwrap_or_else(|| panic!("latency count for {route} missing"))
            .parse()
            .expect("count parses");
        assert_eq!(count, labeled(route), "{route}");
    }
    // Histogram buckets are cumulative per route, and the +Inf bucket
    // equals the request count (Prometheus' histogram invariant).
    let bucket = |route: &str, le: &str| -> u64 {
        let needle = format!(
            "transform_serve_route_latency_seconds_bucket{{route=\"{route}\",le=\"{le}\"}} "
        );
        body.lines()
            .find_map(|l| l.strip_prefix(needle.as_str()))
            .unwrap_or_else(|| panic!("bucket le={le} for {route} missing"))
            .parse()
            .expect("bucket parses")
    };
    for route in transform_serve::ROUTE_NAMES {
        let mut prev = 0u64;
        for le in transform_serve::LATENCY_BUCKETS_SECONDS {
            let v = bucket(route, &le.to_string());
            assert!(v >= prev, "{route}: buckets must be cumulative");
            prev = v;
        }
        let inf = bucket(route, "+Inf");
        assert!(inf >= prev, "{route}: +Inf caps the finite buckets");
        assert_eq!(inf, labeled(route), "{route}: +Inf equals the count");
    }

    handle.shutdown();
    std::fs::remove_dir_all(&root).ok();
}
