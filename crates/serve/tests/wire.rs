//! The wire path end to end: sealed bytes must survive `PUT` → `GET`
//! byte-identically, damaged bytes must be refused on *both* sides of
//! the wire, and concurrent `PUT`s of one entry must all land on the
//! identical sealed artifact.

use proptest::proptest;
use std::sync::OnceLock;
use transform_core::axiom::Mtm;
use transform_core::spec::parse_mtm;
use transform_serve::{ServeOptions, Server, ServerHandle};
use transform_store::{
    cached_or_synthesize, suite_fingerprint, Fingerprint, HttpTier, Store, StoreError,
};
use transform_synth::SynthOptions;

fn mtm() -> Mtm {
    parse_mtm(
        "mtm wiretest {
           axiom sc_per_loc: acyclic(rf | co | fr | po_loc)
           axiom invlpg:     acyclic(fr_va | ^po | remap)
         }",
    )
    .expect("spec parses")
}

fn opts() -> SynthOptions {
    let mut o = SynthOptions::new(4);
    o.enumeration.allow_fences = false;
    o.enumeration.allow_rmw = false;
    o
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("tfserve-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("mkdir");
    dir
}

/// Every bound-4 suite of the test MTM, synthesized and sealed once
/// for the whole test file: (axiom, fingerprint, sealed bytes).
fn sealed_suites() -> &'static Vec<(String, Fingerprint, Vec<u8>)> {
    static SEALED: OnceLock<Vec<(String, Fingerprint, Vec<u8>)>> = OnceLock::new();
    SEALED.get_or_init(|| {
        let dir = temp_dir("seed");
        let store = Store::open(&dir).expect("store opens");
        let m = mtm();
        let mut out = Vec::new();
        for axiom in ["sc_per_loc", "invlpg"] {
            cached_or_synthesize(&store, &m, axiom, &opts(), 2).expect("seeds");
            let fp = suite_fingerprint(&m, axiom, &opts());
            let bytes = store
                .entry_bytes(fp)
                .expect("readable")
                .expect("entry sealed");
            out.push((axiom.to_string(), fp, bytes));
        }
        std::fs::remove_dir_all(&dir).ok();
        out
    })
}

/// The invlpg entry — the fixed subject of the non-property tests.
fn sealed_suite() -> (&'static Fingerprint, &'static Vec<u8>) {
    let (_, fp, bytes) = &sealed_suites()[1];
    (fp, bytes)
}

fn spawn_server(tag: &str) -> (ServerHandle, std::path::PathBuf) {
    let dir = temp_dir(tag);
    let server = Server::bind(&dir, "127.0.0.1:0", ServeOptions::default()).expect("binds");
    (server.spawn(), dir)
}

#[test]
fn reupload_is_idempotent_and_indexed() {
    let (fp, bytes) = sealed_suite();
    let (handle, dir) = spawn_server("roundtrip");
    let client = HttpTier::new(&handle.url()).expect("valid URL");

    // Nothing there yet.
    assert!(!client.exists(*fp).expect("HEAD answers"));
    assert_eq!(client.fetch(*fp).expect("GET answers"), None);

    client
        .publish(*fp, bytes)
        .expect("PUT accepts sealed bytes");
    assert!(client.exists(*fp).expect("HEAD answers"));

    // Re-upload is idempotent, and the index lists the entry.
    client.publish(*fp, bytes).expect("re-PUT is idempotent");
    let index = client.index().expect("index serves");
    assert_eq!(index.len(), 1);
    assert_eq!(index[0].fingerprint, *fp);
    assert_eq!(index[0].meta.axiom, "invlpg");
    assert_eq!(index[0].meta.bound, 4);

    handle.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

proptest! {
    #![proptest_config(proptest::ProptestConfig::with_cases(16))]

    /// Any sealed suite round-trips PUT → GET byte-identically.
    #[test]
    fn put_get_round_trips_byte_identically(which in 0usize..4) {
        let suites = sealed_suites();
        let (axiom, fp, bytes) = &suites[which % suites.len()];
        let (handle, dir) = spawn_server("roundtrip-prop");
        let client = HttpTier::new(&handle.url()).expect("valid URL");
        client.publish(*fp, bytes).expect("PUT accepts sealed bytes");
        let served = client
            .fetch(*fp)
            .expect("GET answers")
            .expect("entry now exists");
        assert_eq!(&served, bytes, "{axiom}: served bytes must be identical");
        handle.shutdown();
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Any single flipped byte in an upload is refused: the server
    /// publishes nothing, and the entry stays absent.
    #[test]
    fn corrupt_uploads_are_rejected_and_never_published(at in 0usize..1 << 20, bit in 0u8..8) {
        let (fp, bytes) = sealed_suite();
        let (handle, dir) = spawn_server("put-corrupt");
        let client = HttpTier::new(&handle.url()).expect("valid URL");
        let mut damaged = bytes.clone();
        let at = at % damaged.len();
        damaged[at] ^= 1 << bit;
        match client.publish(*fp, &damaged) {
            Err(StoreError::Remote(m)) => assert!(m.contains("400"), "{m}"),
            other => panic!("bit {bit} of byte {at}: expected a 400 rejection, got {other:?}"),
        }
        assert!(!client.exists(*fp).expect("HEAD answers"), "damage published");
        // The rejected upload left no entry and no staged litter behind.
        let server_store = Store::open(&dir).expect("opens");
        assert!(server_store.entries().expect("lists").is_empty());
        assert!(server_store.stale_tmp_entries().expect("lists").is_empty());
        handle.shutdown();
        std::fs::remove_dir_all(&dir).ok();
    }

    /// An upload addressed to the wrong fingerprint is refused even
    /// though its bytes are internally valid.
    #[test]
    fn mis_addressed_uploads_are_rejected(nonce in 0u64..u64::MAX) {
        let (fp, bytes) = sealed_suite();
        let wrong = Fingerprint(fp.0 ^ u128::from(nonce | 1));
        let (handle, dir) = spawn_server("put-misaddr");
        let client = HttpTier::new(&handle.url()).expect("valid URL");
        match client.publish(wrong, bytes) {
            Err(StoreError::Remote(m)) => assert!(m.contains("400"), "{m}"),
            other => panic!("expected a 400 rejection, got {other:?}"),
        }
        assert!(!client.exists(wrong).expect("HEAD answers"));
        assert!(!client.exists(*fp).expect("HEAD answers"));
        handle.shutdown();
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn concurrent_puts_of_one_entry_are_idempotent() {
    let (fp, bytes) = sealed_suite();
    let (handle, dir) = spawn_server("put-race");
    let url = handle.url();

    // Eight clients race to publish the same sealed entry.
    std::thread::scope(|scope| {
        for _ in 0..8 {
            let url = &url;
            scope.spawn(move || {
                let client = HttpTier::new(url).expect("valid URL");
                client.publish(*fp, bytes).expect("concurrent PUT succeeds");
            });
        }
    });

    let client = HttpTier::new(&url).expect("valid URL");
    let served = client
        .fetch(*fp)
        .expect("GET answers")
        .expect("entry exists");
    assert_eq!(&served, bytes, "racing PUTs must land identical content");
    let server_store = Store::open(&dir).expect("opens");
    assert_eq!(server_store.entries().expect("lists"), vec![*fp]);
    assert!(
        server_store.stale_tmp_entries().expect("lists").is_empty(),
        "no staged litter may survive the race"
    );
    handle.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn health_and_unknown_routes_answer() {
    let (handle, dir) = spawn_server("routes");
    let client = HttpTier::new(&handle.url()).expect("valid URL");
    let health = client.health().expect("healthz serves");
    assert!(health.contains("transform-serve ok"), "{health}");
    assert!(health.contains("entries: 0"), "{health}");
    // A malformed fingerprint is a 400, not a panic or a 404.
    match client.fetch(Fingerprint(0)) {
        Ok(None) => {}
        other => panic!("absent entry must be a clean miss, got {other:?}"),
    }
    handle.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}
