//! Minimal server-side HTTP/1.1: request parsing and response writing
//! over a [`TcpStream`], with hard caps on header and body sizes.
//!
//! Only what the suite-store protocol needs is implemented: one request
//! per connection (`Connection: close` both ways), `Content-Length`
//! framing (no chunked encoding), no compression, no TLS. The client
//! half lives in [`transform_store::remote`]; the two halves are
//! deliberately independent — each parses what the other produces, so a
//! framing bug cannot hide by being symmetric.

use std::io::{self, Read, Write};
use std::net::TcpStream;

/// Largest accepted request head (request line + headers).
const MAX_HEAD: usize = 16 * 1024;
/// Largest accepted request body (1 GiB) — far above any real suite.
pub const MAX_BODY: u64 = 1 << 30;

/// One parsed request.
#[derive(Debug)]
pub struct Request {
    /// `GET`, `HEAD`, `PUT`, …
    pub method: String,
    /// The request target, e.g. `/v1/suite/<hex>`.
    pub path: String,
    /// The request body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
}

/// Why a request could not be parsed — each maps to one error status.
#[derive(Debug)]
pub enum RequestError {
    /// The connection died or was malformed beyond responding.
    Io(io::Error),
    /// Parse failure worth a `400 Bad Request`.
    Bad(String),
    /// A body-bearing request without `Content-Length` (`411`).
    LengthRequired,
    /// The declared body exceeds [`MAX_BODY`] (`413`).
    TooLarge,
}

impl From<io::Error> for RequestError {
    fn from(e: io::Error) -> RequestError {
        RequestError::Io(e)
    }
}

/// Reads and parses one request from the stream.
///
/// # Errors
///
/// [`RequestError`] for dead connections, malformed heads, missing
/// lengths, and oversized bodies.
pub fn read_request(stream: &mut TcpStream) -> Result<Request, RequestError> {
    let mut buf = Vec::with_capacity(1024);
    let mut chunk = [0u8; 1024];
    let head_end = loop {
        if let Some(at) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
            break at;
        }
        if buf.len() > MAX_HEAD {
            return Err(RequestError::Bad("request head exceeds 16 KiB".into()));
        }
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(RequestError::Bad(
                "connection closed before the request head completed".into(),
            ));
        }
        buf.extend_from_slice(&chunk[..n]);
    };
    let head = std::str::from_utf8(&buf[..head_end])
        .map_err(|_| RequestError::Bad("non-UTF-8 request head".into()))?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or_default();
    let mut parts = request_line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| RequestError::Bad("empty request line".into()))?
        .to_string();
    let path = parts
        .next()
        .ok_or_else(|| RequestError::Bad(format!("malformed request line `{request_line}`")))?
        .to_string();
    if !parts.next().is_some_and(|v| v.starts_with("HTTP/1.")) {
        return Err(RequestError::Bad(format!(
            "not an HTTP/1.x request line: `{request_line}`"
        )));
    }

    let mut content_length: Option<u64> = None;
    for line in lines.filter(|l| !l.is_empty()) {
        let Some((name, value)) = line.split_once(':') else {
            return Err(RequestError::Bad(format!("malformed header `{line}`")));
        };
        if name.trim().eq_ignore_ascii_case("content-length") {
            content_length =
                Some(value.trim().parse().map_err(|_| {
                    RequestError::Bad(format!("malformed Content-Length `{value}`"))
                })?);
        }
    }

    let mut body = buf[head_end + 4..].to_vec();
    match content_length {
        None => {
            if method == "PUT" || method == "POST" {
                return Err(RequestError::LengthRequired);
            }
            if !body.is_empty() {
                return Err(RequestError::Bad(
                    "body bytes on a request without Content-Length".into(),
                ));
            }
        }
        Some(len) if len > MAX_BODY => return Err(RequestError::TooLarge),
        Some(len) => {
            let len = len as usize;
            if body.len() > len {
                return Err(RequestError::Bad(
                    "more body bytes than Content-Length declared".into(),
                ));
            }
            // Grow with the bytes that actually arrive — a declared
            // Content-Length must not commit an allocation up front, or
            // a stalling client could pin gigabytes per worker.
            let remaining = (len - body.len()) as u64;
            let got = stream.take(remaining).read_to_end(&mut body)?;
            if (got as u64) < remaining {
                return Err(RequestError::Bad(
                    "connection closed before the declared body completed".into(),
                ));
            }
        }
    }
    Ok(Request { method, path, body })
}

/// The reason phrase of the handful of statuses the server emits.
fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        201 => "Created",
        204 => "No Content",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        410 => "Gone",
        411 => "Length Required",
        413 => "Payload Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Response",
    }
}

/// Writes a response head: status line, `Content-Length`,
/// `Connection: close`, and a content type.
///
/// # Errors
///
/// The underlying write failure.
pub fn write_head(
    stream: &mut TcpStream,
    status: u16,
    content_length: u64,
    content_type: &str,
) -> io::Result<()> {
    write!(
        stream,
        "HTTP/1.1 {status} {}\r\nContent-Length: {content_length}\r\nContent-Type: {content_type}\r\nConnection: close\r\n\r\n",
        reason(status)
    )
}

/// Writes a complete response with an in-memory body.
///
/// # Errors
///
/// The underlying write failure.
pub fn respond(
    stream: &mut TcpStream,
    status: u16,
    body: &[u8],
    content_type: &str,
) -> io::Result<()> {
    write_head(stream, status, body.len() as u64, content_type)?;
    stream.write_all(body)
}

/// Writes a plain-text response (the error and health paths).
///
/// # Errors
///
/// The underlying write failure.
pub fn respond_text(stream: &mut TcpStream, status: u16, text: &str) -> io::Result<()> {
    respond(stream, status, text.as_bytes(), "text/plain; charset=utf-8")
}
