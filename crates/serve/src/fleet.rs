//! The coordinator half of a synthesis fleet: jobs, leases, and the
//! seal-on-last-shard trigger.
//!
//! A fleet job arrives as an encoded [`JobSpec`] (`POST /v1/jobs`,
//! idempotent — the id is the hash of the spec). Workers pull work with
//! `POST /v1/lease`: the coordinator hands out one `(lo, hi)` partition
//! range per lease, expiring leases that missed their heartbeat so a
//! dead worker's range goes back into the pool. Shard uploads land in
//! the store's staging area; the upload that completes the last range
//! triggers the deterministic merge ([`merge_fleet_job`]) inside that
//! request, so a job's suites are sealed by the time the final `PUT`
//! returns.
//!
//! All state lives behind one mutex — the fleet control plane is a few
//! dozen operations per second at most; the data plane (shard bodies,
//! suite bytes) never touches it.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};
use transform_store::fleet::{merge_fleet_job, JobSpec, LeaseGrant};
use transform_store::Store;

/// One range's place in the lease lifecycle.
#[derive(Clone, Debug)]
enum RangeState {
    /// Not yet leased (or reclaimed from an expired lease).
    Pending,
    /// Out with a worker until `expires` (heartbeats push it forward).
    Leased {
        /// The lease id heartbeats echo.
        lease: u64,
        /// When the lease lapses without a heartbeat.
        expires: Instant,
    },
    /// A validated shard result is staged for this range.
    Done,
}

/// One fleet job's full coordinator-side state.
struct JobState {
    spec: JobSpec,
    /// When the job was created — the sealed suites' wall-clock.
    created: Instant,
    /// Parallel to `spec.ranges`.
    ranges: Vec<RangeState>,
    /// A cut job stops leasing and will never seal.
    cut: bool,
    /// Every range staged and the suites sealed.
    sealed: bool,
    /// A failed merge, surfaced through the status document.
    seal_error: Option<String>,
}

/// A job's progress counters, as served by `GET /v1/jobs/<id>`.
#[derive(Clone, Debug)]
pub struct FleetJobStatus {
    /// Ranges in the job's plan.
    pub ranges: usize,
    /// Ranges with a staged shard result.
    pub staged: usize,
    /// Ranges currently out on a live (unexpired) lease.
    pub leased: usize,
    /// Every range staged and the suites sealed.
    pub complete: bool,
    /// The job was cut and will never seal.
    pub cut: bool,
    /// The merge failed (a staged shard failed validation, or disk
    /// trouble while sealing).
    pub error: Option<String>,
}

impl FleetJobStatus {
    /// The JSON document `GET /v1/jobs/<id>` serves. Flat `"name":value`
    /// pairs — the client scans for them without a JSON parser.
    pub fn to_json(&self, job: u64) -> String {
        let mut out = format!(
            "{{\"job\":\"{job:016x}\",\"ranges\":{},\"staged\":{},\"leased\":{},\"complete\":{},\"cut\":{}",
            self.ranges, self.staged, self.leased, self.complete, self.cut
        );
        if let Some(error) = &self.error {
            out.push_str(&format!(
                ",\"error\":\"{}\"",
                error.replace('\\', "\\\\").replace('"', "\\\"")
            ));
        }
        out.push_str("}\n");
        out
    }
}

/// What [`FleetState::shard_staged`] did with a completed range.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum StagedOutcome {
    /// The range is recorded; other ranges are still outstanding.
    Recorded,
    /// This was the last range: the job's suites merged and sealed.
    Sealed,
    /// This was the last range but the merge failed (the error is in
    /// the job's status document).
    SealFailed,
    /// The job is unknown to this coordinator.
    UnknownJob,
    /// The range is not part of the job's plan.
    UnknownRange,
}

/// The coordinator's lease and job table.
#[derive(Default)]
pub struct FleetState {
    jobs: Mutex<HashMap<u64, JobState>>,
    next_lease: AtomicU64,
}

impl FleetState {
    /// An empty fleet.
    pub fn new() -> FleetState {
        FleetState {
            jobs: Mutex::new(HashMap::new()),
            // Lease ids start at 1 so 0 never names a live lease.
            next_lease: AtomicU64::new(1),
        }
    }

    /// Registers a job (idempotent: re-posting a spec re-joins the
    /// existing job). Returns `(job id, newly created)`.
    pub fn create_job(&self, spec: JobSpec) -> (u64, bool) {
        let job = spec.id();
        let mut jobs = self.jobs.lock().expect("fleet lock is never poisoned");
        let new = !jobs.contains_key(&job);
        if new {
            let ranges = vec![RangeState::Pending; spec.ranges.len()];
            jobs.insert(
                job,
                JobState {
                    spec,
                    created: Instant::now(),
                    ranges,
                    cut: false,
                    sealed: false,
                    seal_error: None,
                },
            );
        }
        (job, new)
    }

    /// Hands out one partition range, reclaiming expired leases first.
    /// Returns the grant (or `None` when no work is pending) and how
    /// many expired leases were reclaimed on the way — the
    /// `leases_expired` metric's increment.
    pub fn lease(&self) -> (Option<LeaseGrant>, u64) {
        let now = Instant::now();
        let mut jobs = self.jobs.lock().expect("fleet lock is never poisoned");
        let mut expired = 0u64;
        // Deterministic handout order: jobs by id, ranges by ordinal.
        let mut ids: Vec<u64> = jobs.keys().copied().collect();
        ids.sort_unstable();
        let mut grant = None;
        for id in ids {
            let job = jobs.get_mut(&id).expect("id came from the map");
            for state in &mut job.ranges {
                if let RangeState::Leased { expires, .. } = state {
                    if *expires <= now {
                        *state = RangeState::Pending;
                        expired += 1;
                    }
                }
            }
            if grant.is_some() || job.cut || job.sealed || job.seal_error.is_some() {
                continue;
            }
            for (ordinal, state) in job.ranges.iter_mut().enumerate() {
                if matches!(state, RangeState::Pending) {
                    let lease = self.next_lease.fetch_add(1, Ordering::Relaxed);
                    let (lo, hi) = job.spec.ranges[ordinal];
                    *state = RangeState::Leased {
                        lease,
                        expires: now + Duration::from_millis(job.spec.lease_ttl_ms),
                    };
                    grant = Some(LeaseGrant {
                        lease,
                        job: id,
                        lo,
                        hi,
                        ttl_ms: job.spec.lease_ttl_ms,
                        spec: job.spec.clone(),
                    });
                    break;
                }
            }
        }
        (grant, expired)
    }

    /// Renews a lease. `false` means the coordinator no longer honors
    /// it: unknown id, already reclaimed and reassigned, the range
    /// completed, or the job was cut — the worker should drop the work.
    pub fn heartbeat(&self, lease: u64) -> bool {
        let now = Instant::now();
        let mut jobs = self.jobs.lock().expect("fleet lock is never poisoned");
        for job in jobs.values_mut() {
            if job.cut {
                continue;
            }
            for state in &mut job.ranges {
                if let RangeState::Leased {
                    lease: held,
                    expires,
                } = state
                {
                    if *held == lease {
                        // An expired-but-unreclaimed lease is safely
                        // renewable — nobody else was granted the range.
                        *expires = now + Duration::from_millis(job.spec.lease_ttl_ms);
                        return true;
                    }
                }
            }
        }
        false
    }

    /// Cuts a job: stops leasing its ranges; it will never seal.
    /// Returns whether the job was known.
    pub fn cut(&self, job: u64) -> bool {
        let mut jobs = self.jobs.lock().expect("fleet lock is never poisoned");
        match jobs.get_mut(&job) {
            Some(state) => {
                state.cut = true;
                true
            }
            None => false,
        }
    }

    /// The job's progress counters, or `None` for an unknown job.
    pub fn status(&self, job: u64) -> Option<FleetJobStatus> {
        let now = Instant::now();
        let jobs = self.jobs.lock().expect("fleet lock is never poisoned");
        let state = jobs.get(&job)?;
        let staged = state
            .ranges
            .iter()
            .filter(|r| matches!(r, RangeState::Done))
            .count();
        let leased = state
            .ranges
            .iter()
            .filter(|r| matches!(r, RangeState::Leased { expires, .. } if *expires > now))
            .count();
        Some(FleetJobStatus {
            ranges: state.ranges.len(),
            staged,
            leased,
            complete: state.sealed,
            cut: state.cut,
            error: state.seal_error.clone(),
        })
    }

    /// Records that a shard result for `(lo, hi)` is staged in `store`,
    /// and — when it was the job's last outstanding range — runs the
    /// deterministic merge and seals the suites before returning.
    ///
    /// Idempotent: re-recording a staged range (duplicate uploads,
    /// uploads racing a lease expiry) changes nothing. A cut job
    /// records ranges but never seals.
    pub fn shard_staged(&self, store: &Store, job: u64, lo: u32, hi: u32) -> StagedOutcome {
        let mut jobs = self.jobs.lock().expect("fleet lock is never poisoned");
        let Some(state) = jobs.get_mut(&job) else {
            return StagedOutcome::UnknownJob;
        };
        let Some(ordinal) = state.spec.ranges.iter().position(|&r| r == (lo, hi)) else {
            return StagedOutcome::UnknownRange;
        };
        state.ranges[ordinal] = RangeState::Done;
        if state.sealed
            || state.cut
            || state.seal_error.is_some()
            || !state.ranges.iter().all(|r| matches!(r, RangeState::Done))
        {
            return StagedOutcome::Recorded;
        }
        // Last range in: merge-to-seal inside this request, holding the
        // fleet lock — sealing is the one moment the job's state must
        // not move under us, and the control plane can afford the wait.
        match merge_fleet_job(store, &state.spec, state.created.elapsed()) {
            Ok(_) => {
                state.sealed = true;
                StagedOutcome::Sealed
            }
            Err(e) => {
                state.seal_error = Some(e.to_string());
                StagedOutcome::SealFailed
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use transform_store::Fingerprint;

    fn spec(ttl_ms: u64) -> JobSpec {
        JobSpec {
            mtm_name: "demo".to_string(),
            model: "mtm demo { axiom a: acyclic(po) }".to_string(),
            axioms: vec![("a".to_string(), Fingerprint(7))],
            bound: 4,
            max_threads: None,
            allow_fences: false,
            allow_rmw: false,
            allow_identity_remap: false,
            symmetry_reduction: true,
            backend: "explicit".to_string(),
            mass_balance: true,
            plan_jobs: 2,
            lease_ttl_ms: ttl_ms,
            ranges: vec![(0, 2), (2, 5)],
        }
    }

    #[test]
    fn jobs_create_idempotently_and_lease_in_order() {
        let fleet = FleetState::new();
        let (job, new) = fleet.create_job(spec(10_000));
        assert!(new);
        let (again, new) = fleet.create_job(spec(10_000));
        assert_eq!(job, again);
        assert!(!new);

        let (first, expired) = fleet.lease();
        assert_eq!(expired, 0);
        let first = first.expect("work is pending");
        assert_eq!((first.lo, first.hi), (0, 2));
        assert_eq!(first.job, job);
        let (second, _) = fleet.lease();
        assert_eq!(second.map(|g| (g.lo, g.hi)), Some((2, 5)));
        let (none, _) = fleet.lease();
        assert!(none.is_none(), "both ranges are out");
    }

    #[test]
    fn expired_leases_are_reclaimed_and_reassigned() {
        let fleet = FleetState::new();
        fleet.create_job(spec(0)); // instantly expiring leases
        let (first, _) = fleet.lease();
        let first = first.expect("work is pending");
        // The zero-TTL lease is already expired: the next call reclaims
        // it (and its sibling grant below) and hands the range out anew.
        let (second, expired) = fleet.lease();
        let second = second.expect("reclaimed work is pending");
        assert!(expired >= 1, "the dead lease was reclaimed");
        assert_eq!((second.lo, second.hi), (first.lo, first.hi));
        assert_ne!(second.lease, first.lease, "a fresh lease id");
        assert!(
            !fleet.heartbeat(first.lease),
            "the dead lease is no longer honored"
        );
    }

    #[test]
    fn heartbeats_keep_a_lease_alive() {
        let fleet = FleetState::new();
        fleet.create_job(spec(60_000));
        let (grant, _) = fleet.lease();
        let grant = grant.expect("work is pending");
        assert!(fleet.heartbeat(grant.lease));
        assert!(!fleet.heartbeat(grant.lease + 999), "unknown lease");
    }

    #[test]
    fn cut_jobs_stop_leasing_and_report_cut() {
        let fleet = FleetState::new();
        let (job, _) = fleet.create_job(spec(10_000));
        assert!(fleet.cut(job));
        let (grant, _) = fleet.lease();
        assert!(grant.is_none(), "cut jobs lease nothing");
        let status = fleet.status(job).expect("job is known");
        assert!(status.cut);
        assert!(!fleet.cut(job ^ 1), "unknown job");
    }

    #[test]
    fn status_documents_render_scannable_json() {
        let status = FleetJobStatus {
            ranges: 4,
            staged: 2,
            leased: 1,
            complete: false,
            cut: false,
            error: Some("disk \"full\"".to_string()),
        };
        let json = status.to_json(0xabcd);
        assert!(json.contains("\"job\":\"000000000000abcd\""));
        assert!(json.contains("\"ranges\":4"));
        assert!(json.contains("\"staged\":2"));
        assert!(json.contains("\"leased\":1"));
        assert!(json.contains("\"complete\":false"));
        assert!(json.contains("\"error\":\"disk \\\"full\\\"\""));
    }
}
