//! The suite-store server: a bounded thread-per-connection accept pool
//! over one [`Store`] directory.
//!
//! # Concurrency
//!
//! The accept loop feeds a bounded connection queue drained by a fixed
//! pool of worker threads — the same bounded-queue-of-work idiom as
//! `transform-par`'s shard pool, applied to connections instead of
//! shards. A full queue blocks the accept loop (TCP's listen backlog
//! absorbs the burst), so a slow disk degrades to queueing, never to
//! unbounded thread spawning.
//!
//! # Safety of writes
//!
//! `PUT` ingests through [`Store::install_bytes`]: the body is staged to
//! a temporary file, *every byte* is validated (header checksum, each
//! record, the trailer, and the fingerprint in the header against the
//! one in the URL), and only then atomically renamed into place. Two
//! concurrent `PUT`s of the same fingerprint stage to disjoint files
//! and both rename to identical content — idempotence falls out of
//! content addressing.

use crate::fleet::{FleetState, StagedOutcome};
use crate::http::{read_request, respond, respond_text, write_head, Request, RequestError};
use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use transform_store::fleet::{JobSpec, StageOutcome};
use transform_store::{suite_fingerprint, Fingerprint, Store, StoreError};

/// The route classes `/v1/metrics` breaks request and latency counters
/// down by, in rendering order. `other` absorbs unknown paths and
/// disallowed methods.
pub const ROUTE_NAMES: [&str; 15] = [
    "healthz",
    "metrics",
    "index",
    "suite_get",
    "suite_put",
    "runs_list",
    "run_get",
    "run_put",
    "digest_get",
    "digest_put",
    "jobs",
    "lease",
    "heartbeat",
    "shard_put",
    "other",
];

/// Classifies a parsed request into a [`ROUTE_NAMES`] slot.
fn route_slot(method: &str, path: &str) -> usize {
    match (method, path) {
        ("GET" | "HEAD", "/healthz") => 0,
        ("GET" | "HEAD", "/v1/metrics") => 1,
        ("GET", "/v1/index") => 2,
        ("GET" | "HEAD", p) if p.starts_with("/v1/suite/") => 3,
        ("PUT", p) if p.starts_with("/v1/suite/") => 4,
        ("GET" | "HEAD", "/v1/runs") => 5,
        ("GET" | "HEAD", p) if p.starts_with("/v1/runs/") => 6,
        ("PUT", p) if p.starts_with("/v1/runs/") => 7,
        ("GET" | "HEAD", p) if p.starts_with("/v1/digest/") => 8,
        ("PUT", p) if p.starts_with("/v1/digest/") => 9,
        ("POST", "/v1/jobs") => 10,
        ("GET" | "HEAD" | "POST", p) if p.starts_with("/v1/jobs/") => 10,
        ("POST", "/v1/lease") => 11,
        ("POST", p) if p.starts_with("/v1/lease/") && p.ends_with("/heartbeat") => 12,
        ("PUT", p) if p.starts_with("/v1/shard/") => 13,
        _ => 14,
    }
}

/// The route-latency histogram's fixed upper bounds, in seconds —
/// the `le` labels of `transform_serve_route_latency_seconds_bucket`
/// (the implicit `+Inf` bucket rides on the request count). Chosen to
/// bracket the server's real spread: sub-millisecond metadata routes
/// through multi-second cold suite transfers.
pub const LATENCY_BUCKETS_SECONDS: [f64; 6] = [0.001, 0.005, 0.025, 0.1, 0.5, 2.5];

/// One route class's share of the traffic: how many requests it
/// answered, how long answering took (summed), and the latency
/// distribution over [`LATENCY_BUCKETS_SECONDS`].
#[derive(Debug, Default)]
pub struct RouteMetrics {
    /// Requests dispatched to this route.
    pub requests: AtomicU64,
    /// Total time spent answering them, in microseconds (the
    /// histogram's `_sum` sample, rendered in seconds).
    pub latency_micros: AtomicU64,
    /// Requests whose latency landed in each
    /// [`LATENCY_BUCKETS_SECONDS`] band (non-cumulative; the render
    /// step accumulates them into Prometheus' cumulative `_bucket`
    /// convention). Latencies above the last bound count only toward
    /// the implicit `+Inf` bucket, i.e. [`RouteMetrics::requests`].
    pub latency_buckets: [AtomicU64; 6],
}

/// Request counters, readable while the server runs (`/healthz`
/// reports them human-readably; `/v1/metrics` exposes them as
/// Prometheus text format 0.0.4 for scrapers).
#[derive(Debug, Default)]
pub struct ServeMetrics {
    /// Requests accepted (any method, any path).
    pub requests: AtomicU64,
    /// `GET /v1/suite/…` responses that served a sealed entry.
    pub suite_hits: AtomicU64,
    /// `GET`/`HEAD /v1/suite/…` responses for absent entries.
    pub suite_misses: AtomicU64,
    /// `PUT /v1/suite/…` uploads validated and published.
    pub puts_accepted: AtomicU64,
    /// `PUT /v1/suite/…` uploads refused (damaged or mis-addressed).
    pub puts_rejected: AtomicU64,
    /// Payload bytes served: sealed-entry bodies and index encodings
    /// (response heads and error text excluded).
    pub bytes_served: AtomicU64,
    /// Payload bytes received: `PUT` bodies, accepted or refused (they
    /// crossed the wire either way).
    pub bytes_received: AtomicU64,
    /// Connections currently being handled (parse through response).
    pub in_flight: AtomicU64,
    /// Fleet jobs registered (`POST /v1/jobs` with an unseen spec).
    pub jobs_created: AtomicU64,
    /// Fleet jobs whose suites merged and sealed.
    pub jobs_completed: AtomicU64,
    /// Partition-range leases handed out.
    pub leases_granted: AtomicU64,
    /// Leases reclaimed after missing their heartbeat.
    pub leases_expired: AtomicU64,
    /// Lease heartbeats received (renewed or refused).
    pub heartbeats: AtomicU64,
    /// Shard uploads staged as new results.
    pub shards_accepted: AtomicU64,
    /// Shard uploads that duplicated an already-staged result.
    pub shards_duplicate: AtomicU64,
    /// Per-route request and latency counters, indexed like
    /// [`ROUTE_NAMES`]. Parse failures never reach a route, so the
    /// route totals can lag `requests` by the malformed share.
    pub routes: [RouteMetrics; 15],
}

impl ServeMetrics {
    /// Credits one answered request to its route class.
    fn observe_route(&self, method: &str, path: &str, elapsed: std::time::Duration) {
        let slot = &self.routes[route_slot(method, path)];
        slot.requests.fetch_add(1, Ordering::Relaxed);
        slot.latency_micros
            .fetch_add(elapsed.as_micros() as u64, Ordering::Relaxed);
        let seconds = elapsed.as_secs_f64();
        if let Some(band) = LATENCY_BUCKETS_SECONDS.iter().position(|&le| seconds <= le) {
            slot.latency_buckets[band].fetch_add(1, Ordering::Relaxed);
        }
    }

    /// The Prometheus text-format (0.0.4) rendering `/v1/metrics`
    /// serves: every metric family gets a `# HELP` and `# TYPE` line
    /// before its samples; per-route samples carry a `route` label.
    pub fn render(&self, entries: u64) -> String {
        let counter = |name: &str, help: &str, value: u64| {
            format!("# HELP {name} {help}\n# TYPE {name} counter\n{name} {value}\n")
        };
        let gauge = |name: &str, help: &str, value: u64| {
            format!("# HELP {name} {help}\n# TYPE {name} gauge\n{name} {value}\n")
        };
        let mut out = String::new();
        out.push_str(&counter(
            "transform_serve_requests_total",
            "Requests accepted (any method, any path).",
            self.requests.load(Ordering::Relaxed),
        ));
        out.push_str(&counter(
            "transform_serve_suite_hits_total",
            "Suite GETs that served a sealed entry.",
            self.suite_hits.load(Ordering::Relaxed),
        ));
        out.push_str(&counter(
            "transform_serve_suite_misses_total",
            "Suite GET/HEAD responses for absent entries.",
            self.suite_misses.load(Ordering::Relaxed),
        ));
        out.push_str(&counter(
            "transform_serve_puts_accepted_total",
            "Suite uploads validated and published.",
            self.puts_accepted.load(Ordering::Relaxed),
        ));
        out.push_str(&counter(
            "transform_serve_puts_rejected_total",
            "Suite uploads refused as damaged or mis-addressed.",
            self.puts_rejected.load(Ordering::Relaxed),
        ));
        out.push_str(&counter(
            "transform_serve_bytes_served_total",
            "Payload bytes served: sealed-entry bodies and index encodings.",
            self.bytes_served.load(Ordering::Relaxed),
        ));
        out.push_str(&counter(
            "transform_serve_bytes_received_total",
            "Payload bytes received in PUT bodies, accepted or refused.",
            self.bytes_received.load(Ordering::Relaxed),
        ));
        out.push_str(&counter(
            "transform_serve_jobs_created_total",
            "Fleet jobs registered.",
            self.jobs_created.load(Ordering::Relaxed),
        ));
        out.push_str(&counter(
            "transform_serve_jobs_completed_total",
            "Fleet jobs merged and sealed.",
            self.jobs_completed.load(Ordering::Relaxed),
        ));
        out.push_str(&counter(
            "transform_serve_leases_granted_total",
            "Partition-range leases handed out.",
            self.leases_granted.load(Ordering::Relaxed),
        ));
        out.push_str(&counter(
            "transform_serve_leases_expired_total",
            "Leases reclaimed after missing their heartbeat.",
            self.leases_expired.load(Ordering::Relaxed),
        ));
        out.push_str(&counter(
            "transform_serve_heartbeats_total",
            "Lease heartbeats received.",
            self.heartbeats.load(Ordering::Relaxed),
        ));
        out.push_str(&counter(
            "transform_serve_shards_accepted_total",
            "Shard uploads staged as new results.",
            self.shards_accepted.load(Ordering::Relaxed),
        ));
        out.push_str(&counter(
            "transform_serve_shards_duplicate_total",
            "Shard uploads duplicating an already-staged result.",
            self.shards_duplicate.load(Ordering::Relaxed),
        ));
        out.push_str(&gauge(
            "transform_serve_entries",
            "Sealed suite entries in the served store.",
            entries,
        ));
        out.push_str(&gauge(
            "transform_serve_in_flight",
            "Connections currently being handled.",
            self.in_flight.load(Ordering::Relaxed),
        ));
        out.push_str(
            "# HELP transform_serve_route_requests_total Requests answered, by route class.\n\
             # TYPE transform_serve_route_requests_total counter\n",
        );
        for (name, route) in ROUTE_NAMES.iter().zip(&self.routes) {
            out.push_str(&format!(
                "transform_serve_route_requests_total{{route=\"{name}\"}} {}\n",
                route.requests.load(Ordering::Relaxed),
            ));
        }
        out.push_str(
            "# HELP transform_serve_route_latency_seconds Time spent answering requests, by route class.\n\
             # TYPE transform_serve_route_latency_seconds histogram\n",
        );
        for (name, route) in ROUTE_NAMES.iter().zip(&self.routes) {
            let requests = route.requests.load(Ordering::Relaxed);
            // Prometheus buckets are cumulative, and the +Inf bucket
            // must equal the count — accumulate the per-band counters.
            let mut below = 0u64;
            for (le, band) in LATENCY_BUCKETS_SECONDS.iter().zip(&route.latency_buckets) {
                below += band.load(Ordering::Relaxed);
                out.push_str(&format!(
                    "transform_serve_route_latency_seconds_bucket{{route=\"{name}\",le=\"{le}\"}} {below}\n",
                ));
            }
            out.push_str(&format!(
                "transform_serve_route_latency_seconds_bucket{{route=\"{name}\",le=\"+Inf\"}} {requests}\n",
            ));
            let sum = route.latency_micros.load(Ordering::Relaxed) as f64 / 1e6;
            out.push_str(&format!(
                "transform_serve_route_latency_seconds_sum{{route=\"{name}\"}} {sum:.6}\n\
                 transform_serve_route_latency_seconds_count{{route=\"{name}\"}} {requests}\n",
            ));
        }
        out
    }
}

/// Tuning knobs for [`Server::bind`].
#[derive(Clone, Debug)]
pub struct ServeOptions {
    /// Worker threads handling connections (the accept pool size).
    pub threads: usize,
    /// Log one line per request to stderr.
    pub verbose: bool,
}

impl Default for ServeOptions {
    fn default() -> ServeOptions {
        ServeOptions {
            threads: 4,
            verbose: false,
        }
    }
}

/// A bound suite-store server, ready to [`Server::run`] (blocking) or
/// [`Server::spawn`] (background, with a shutdown handle).
///
/// # Examples
///
/// Serving a store and checking liveness through the client half:
///
/// ```
/// use transform_serve::{ServeOptions, Server};
/// use transform_store::HttpTier;
///
/// let dir = std::env::temp_dir().join(format!("serve-doc-{}", std::process::id()));
/// std::fs::create_dir_all(&dir).expect("mkdir");
/// // Port 0: the OS picks a free loopback port.
/// let server = Server::bind(&dir, "127.0.0.1:0", ServeOptions::default()).expect("binds");
/// let url = format!("http://{}", server.local_addr());
/// let handle = server.spawn();
///
/// let client = HttpTier::new(&url).expect("valid URL");
/// assert!(client.health().expect("server is up").contains("ok"));
/// assert!(client.index().expect("index serves").is_empty());
///
/// handle.shutdown();
/// # std::fs::remove_dir_all(&dir).ok();
/// ```
pub struct Server {
    store: Arc<Store>,
    listener: TcpListener,
    addr: SocketAddr,
    opts: ServeOptions,
    metrics: Arc<ServeMetrics>,
    fleet: Arc<FleetState>,
    stop: Arc<AtomicBool>,
}

impl Server {
    /// Opens (creating if needed) the store at `root` and binds `addr`
    /// (e.g. `127.0.0.1:7171`; port `0` lets the OS pick).
    ///
    /// # Errors
    ///
    /// Store-open or bind failure.
    pub fn bind(root: impl AsRef<Path>, addr: &str, opts: ServeOptions) -> io::Result<Server> {
        let store = Store::open(root).map_err(io::Error::other)?;
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        Ok(Server {
            store: Arc::new(store),
            listener,
            addr,
            opts,
            metrics: Arc::new(ServeMetrics::default()),
            fleet: Arc::new(FleetState::new()),
            stop: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The bound address (resolves port `0` to the real port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The server's request counters.
    pub fn metrics(&self) -> Arc<ServeMetrics> {
        Arc::clone(&self.metrics)
    }

    /// Serves until [`ServerHandle::shutdown`] flips the stop flag (or
    /// forever, when no handle exists). Blocks the calling thread.
    ///
    /// # Errors
    ///
    /// A failed `accept` on the listening socket; per-connection errors
    /// are contained to their connection.
    pub fn run(self) -> io::Result<()> {
        let queue = Arc::new(ConnQueue::new(self.opts.threads * 2));
        let mut workers = Vec::with_capacity(self.opts.threads);
        for _ in 0..self.opts.threads.max(1) {
            let queue = Arc::clone(&queue);
            let store = Arc::clone(&self.store);
            let metrics = Arc::clone(&self.metrics);
            let fleet = Arc::clone(&self.fleet);
            let verbose = self.opts.verbose;
            workers.push(std::thread::spawn(move || {
                while let Some(stream) = queue.pop() {
                    handle_connection(&store, &metrics, &fleet, stream, verbose);
                }
            }));
        }
        let mut accept_error = None;
        for stream in self.listener.incoming() {
            if self.stop.load(Ordering::Acquire) {
                break;
            }
            match stream {
                Ok(stream) => queue.push(stream),
                Err(e) => {
                    accept_error = Some(e);
                    break;
                }
            }
        }
        queue.close();
        for worker in workers {
            let _ = worker.join();
        }
        match accept_error {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Runs the server on a background thread, returning a handle that
    /// can stop it — the shape tests and benches use; the CLI calls
    /// [`Server::run`] directly.
    pub fn spawn(self) -> ServerHandle {
        let stop = Arc::clone(&self.stop);
        let addr = self.addr;
        let metrics = Arc::clone(&self.metrics);
        let thread = std::thread::spawn(move || self.run());
        ServerHandle {
            addr,
            stop,
            metrics,
            thread,
        }
    }
}

/// Controls a [`Server::spawn`]ed server.
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    metrics: Arc<ServeMetrics>,
    thread: std::thread::JoinHandle<io::Result<()>>,
}

impl ServerHandle {
    /// The served address.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The served endpoint as a client URL, `http://host:port`.
    pub fn url(&self) -> String {
        format!("http://{}", self.addr)
    }

    /// The server's request counters.
    pub fn metrics(&self) -> Arc<ServeMetrics> {
        Arc::clone(&self.metrics)
    }

    /// Stops the accept loop, drains in-flight connections, and joins
    /// the server thread.
    pub fn shutdown(self) {
        self.stop.store(true, Ordering::Release);
        // Unblock the accept loop with one throwaway connection.
        let _ = TcpStream::connect(self.addr);
        let _ = self.thread.join();
    }
}

/// The bounded connection queue between the accept loop and workers. A
/// full queue blocks the producer (backpressure to the TCP backlog); a
/// closed queue drains remaining connections, then releases workers.
struct ConnQueue {
    state: Mutex<(VecDeque<TcpStream>, bool)>,
    readable: Condvar,
    writable: Condvar,
    capacity: usize,
}

impl ConnQueue {
    fn new(capacity: usize) -> ConnQueue {
        ConnQueue {
            state: Mutex::new((VecDeque::new(), false)),
            readable: Condvar::new(),
            writable: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    fn push(&self, stream: TcpStream) {
        let mut st = self.state.lock().expect("queue lock is never poisoned");
        while st.0.len() >= self.capacity && !st.1 {
            st = self
                .writable
                .wait(st)
                .expect("queue lock is never poisoned");
        }
        if !st.1 {
            st.0.push_back(stream);
            self.readable.notify_one();
        }
    }

    fn pop(&self) -> Option<TcpStream> {
        let mut st = self.state.lock().expect("queue lock is never poisoned");
        loop {
            if let Some(stream) = st.0.pop_front() {
                self.writable.notify_one();
                return Some(stream);
            }
            if st.1 {
                return None;
            }
            st = self
                .readable
                .wait(st)
                .expect("queue lock is never poisoned");
        }
    }

    fn close(&self) {
        let mut st = self.state.lock().expect("queue lock is never poisoned");
        st.1 = true;
        self.readable.notify_all();
        self.writable.notify_all();
    }
}

/// Serves one connection: parse, route, respond, close. All failures
/// are contained here — a bad request gets an error status, a dead
/// socket is dropped.
fn handle_connection(
    store: &Store,
    metrics: &ServeMetrics,
    fleet: &FleetState,
    stream: TcpStream,
    verbose: bool,
) {
    metrics.in_flight.fetch_add(1, Ordering::Relaxed);
    serve_connection(store, metrics, fleet, stream, verbose);
    metrics.in_flight.fetch_sub(1, Ordering::Relaxed);
}

/// The body of [`handle_connection`], split out so the in-flight gauge
/// brackets every exit path (parse failures return early).
fn serve_connection(
    store: &Store,
    metrics: &ServeMetrics,
    fleet: &FleetState,
    mut stream: TcpStream,
    verbose: bool,
) {
    // A stuck peer must not pin a worker forever.
    let _ = stream.set_read_timeout(Some(std::time::Duration::from_secs(30)));
    let _ = stream.set_write_timeout(Some(std::time::Duration::from_secs(30)));
    metrics.requests.fetch_add(1, Ordering::Relaxed);
    let request = match read_request(&mut stream) {
        Ok(request) => request,
        Err(RequestError::Io(_)) => return,
        Err(RequestError::Bad(m)) => {
            let _ = respond_text(&mut stream, 400, &format!("{m}\n"));
            return;
        }
        Err(RequestError::LengthRequired) => {
            let _ = respond_text(&mut stream, 411, "Content-Length required\n");
            return;
        }
        Err(RequestError::TooLarge) => {
            let _ = respond_text(&mut stream, 413, "request body too large\n");
            return;
        }
    };
    let begun = std::time::Instant::now();
    let status = route(store, metrics, fleet, &mut stream, &request).unwrap_or(0);
    metrics.observe_route(&request.method, &request.path, begun.elapsed());
    if verbose {
        eprintln!(
            "transform-serve: {} {} -> {status}",
            request.method, request.path
        );
    }
}

/// Dispatches one request, returning the status it answered with (for
/// logging; `Err` means the socket died mid-response).
fn route(
    store: &Store,
    metrics: &ServeMetrics,
    fleet: &FleetState,
    stream: &mut TcpStream,
    request: &Request,
) -> io::Result<u16> {
    match (request.method.as_str(), request.path.as_str()) {
        ("GET" | "HEAD", "/healthz") => {
            let entries = store.entries().map(|e| e.len()).unwrap_or(0);
            let body = format!(
                "transform-serve ok\nentries: {entries}\nrequests: {}\nsuite hits: {}\nsuite misses: {}\nputs accepted: {}\nputs rejected: {}\n",
                metrics.requests.load(Ordering::Relaxed),
                metrics.suite_hits.load(Ordering::Relaxed),
                metrics.suite_misses.load(Ordering::Relaxed),
                metrics.puts_accepted.load(Ordering::Relaxed),
                metrics.puts_rejected.load(Ordering::Relaxed),
            );
            if request.method == "HEAD" {
                write_head(stream, 200, body.len() as u64, "text/plain; charset=utf-8")?;
            } else {
                respond_text(stream, 200, &body)?;
            }
            Ok(200)
        }
        ("GET" | "HEAD", "/v1/metrics") => {
            let entries = store.entries().map(|e| e.len()).unwrap_or(0);
            let body = metrics.render(entries as u64);
            // Prometheus scrapers negotiate on this exact version tag.
            if request.method == "HEAD" {
                write_head(stream, 200, body.len() as u64, "text/plain; version=0.0.4")?;
            } else {
                respond(stream, 200, body.as_bytes(), "text/plain; version=0.0.4")?;
            }
            Ok(200)
        }
        ("GET", "/v1/index") => {
            // Prefer the advisory index; rebuild it when missing or
            // stale so the response always reflects the sealed entries.
            let entries = store
                .read_index()
                .or_else(|| store.rebuild_index().ok().and_then(|_| store.read_index()));
            match entries {
                Some(entries) => {
                    let bytes = transform_store::index::encode(&entries);
                    respond(stream, 200, &bytes, "application/octet-stream")?;
                    metrics
                        .bytes_served
                        .fetch_add(bytes.len() as u64, Ordering::Relaxed);
                    Ok(200)
                }
                None => {
                    respond_text(stream, 500, "index unavailable\n")?;
                    Ok(500)
                }
            }
        }
        (method @ ("GET" | "HEAD"), path) if path.starts_with("/v1/suite/") => {
            let Some(fp) = parse_suite_path(path) else {
                respond_text(stream, 400, "malformed fingerprint\n")?;
                return Ok(400);
            };
            // Validate the header before serving a single byte: a
            // damaged entry is a miss, not a payload.
            let reader = match store.open_suite(fp) {
                Ok(reader) => reader,
                Err(StoreError::Io(e)) if e.kind() == io::ErrorKind::NotFound => {
                    metrics.suite_misses.fetch_add(1, Ordering::Relaxed);
                    respond_text(stream, 404, "no such entry\n")?;
                    return Ok(404);
                }
                Err(_) => {
                    metrics.suite_misses.fetch_add(1, Ordering::Relaxed);
                    respond_text(stream, 404, "entry failed validation\n")?;
                    return Ok(404);
                }
            };
            drop(reader);
            // The entry can vanish between validation and this open
            // (`store gc` against a served root): still answer a clean
            // 404 rather than dropping the connection headerless.
            let path = store.entry_path(fp);
            let opened = std::fs::File::open(&path).and_then(|f| {
                let len = f.metadata()?.len();
                Ok((f, len))
            });
            let (mut file, len) = match opened {
                Ok(opened) => opened,
                Err(e) if e.kind() == io::ErrorKind::NotFound => {
                    metrics.suite_misses.fetch_add(1, Ordering::Relaxed);
                    respond_text(stream, 404, "no such entry\n")?;
                    return Ok(404);
                }
                Err(e) => return Err(e),
            };
            write_head(stream, 200, len, "application/octet-stream")?;
            if method == "GET" {
                // Stream in chunks — suite entries can be large, and the
                // worker never needs the whole file in memory.
                let mut chunk = vec![0u8; 64 * 1024];
                loop {
                    let n = file.read(&mut chunk)?;
                    if n == 0 {
                        break;
                    }
                    stream.write_all(&chunk[..n])?;
                }
                metrics.suite_hits.fetch_add(1, Ordering::Relaxed);
                metrics.bytes_served.fetch_add(len, Ordering::Relaxed);
            }
            Ok(200)
        }
        ("PUT", path) if path.starts_with("/v1/suite/") => {
            // The body crossed the wire regardless of what happens to
            // it — count it before any refusal.
            metrics
                .bytes_received
                .fetch_add(request.body.len() as u64, Ordering::Relaxed);
            let Some(fp) = parse_suite_path(path) else {
                respond_text(stream, 400, "malformed fingerprint\n")?;
                return Ok(400);
            };
            let already = store.contains(fp);
            match store.install_bytes(fp, &request.body) {
                Ok(()) => {
                    metrics.puts_accepted.fetch_add(1, Ordering::Relaxed);
                    let status = if already { 200 } else { 201 };
                    respond_text(stream, status, "sealed\n")?;
                    Ok(status)
                }
                // A delta whose parent this store does not (yet) hold is
                // not damage — the client pushed out of order. 409 tells
                // it to land the parent chain first and retry.
                Err(e @ StoreError::Corrupt(_)) if is_missing_parent(&e) => {
                    metrics.puts_rejected.fetch_add(1, Ordering::Relaxed);
                    respond_text(stream, 409, &format!("{e} (push the parent first)\n"))?;
                    Ok(409)
                }
                Err(e @ (StoreError::Corrupt(_) | StoreError::Version { .. })) => {
                    metrics.puts_rejected.fetch_add(1, Ordering::Relaxed);
                    respond_text(stream, 400, &format!("{e}\n"))?;
                    Ok(400)
                }
                Err(e) => {
                    respond_text(stream, 500, &format!("{e}\n"))?;
                    Ok(500)
                }
            }
        }
        (method @ ("GET" | "HEAD"), "/v1/runs") => {
            // Scan-backed (corrupt journals are skipped, never served);
            // the encoding carries its own checksum, like the index.
            match store.runs() {
                Ok(manifests) => {
                    let bytes = transform_store::encode_run_list(&manifests);
                    if method == "HEAD" {
                        write_head(stream, 200, bytes.len() as u64, "application/octet-stream")?;
                    } else {
                        respond(stream, 200, &bytes, "application/octet-stream")?;
                        metrics
                            .bytes_served
                            .fetch_add(bytes.len() as u64, Ordering::Relaxed);
                    }
                    Ok(200)
                }
                Err(e) => {
                    respond_text(stream, 500, &format!("{e}\n"))?;
                    Ok(500)
                }
            }
        }
        (method @ ("GET" | "HEAD"), path) if path.starts_with("/v1/runs/") => {
            let Some(id) = parse_run_path(path) else {
                respond_text(stream, 400, "malformed run id\n")?;
                return Ok(400);
            };
            match store.run_bytes(id) {
                Ok(Some(bytes)) => {
                    if method == "HEAD" {
                        write_head(stream, 200, bytes.len() as u64, "application/octet-stream")?;
                    } else {
                        respond(stream, 200, &bytes, "application/octet-stream")?;
                        metrics
                            .bytes_served
                            .fetch_add(bytes.len() as u64, Ordering::Relaxed);
                    }
                    Ok(200)
                }
                Ok(None) => {
                    respond_text(stream, 404, "no such run\n")?;
                    Ok(404)
                }
                Err(e) => {
                    respond_text(stream, 500, &format!("{e}\n"))?;
                    Ok(500)
                }
            }
        }
        ("PUT", path) if path.starts_with("/v1/runs/") => {
            // The body crossed the wire regardless of what happens to
            // it — count it before any refusal.
            metrics
                .bytes_received
                .fetch_add(request.body.len() as u64, Ordering::Relaxed);
            let Some(id) = parse_run_path(path) else {
                respond_text(stream, 400, "malformed run id\n")?;
                return Ok(400);
            };
            let already = store.run_path(id).is_file();
            match store.install_run_bytes(id, &request.body) {
                Ok(()) => {
                    // 200 on a rewrite (run journals heartbeat in
                    // place), 201 on first sight — mirroring suite PUT.
                    let status = if already { 200 } else { 201 };
                    respond_text(stream, status, "journaled\n")?;
                    Ok(status)
                }
                Err(e @ (StoreError::Corrupt(_) | StoreError::Version { .. })) => {
                    respond_text(stream, 400, &format!("{e}\n"))?;
                    Ok(400)
                }
                Err(e) => {
                    respond_text(stream, 500, &format!("{e}\n"))?;
                    Ok(500)
                }
            }
        }
        (method @ ("GET" | "HEAD"), path) if path.starts_with("/v1/digest/") => {
            let Some(fp) = parse_digest_path(path) else {
                respond_text(stream, 400, "malformed fingerprint\n")?;
                return Ok(400);
            };
            match store.digest_bytes(fp) {
                Ok(Some(bytes)) => {
                    if method == "HEAD" {
                        write_head(stream, 200, bytes.len() as u64, "application/octet-stream")?;
                    } else {
                        respond(stream, 200, &bytes, "application/octet-stream")?;
                        metrics
                            .bytes_served
                            .fetch_add(bytes.len() as u64, Ordering::Relaxed);
                    }
                    Ok(200)
                }
                Ok(None) => {
                    respond_text(stream, 404, "no such digest\n")?;
                    Ok(404)
                }
                Err(e) => {
                    respond_text(stream, 500, &format!("{e}\n"))?;
                    Ok(500)
                }
            }
        }
        ("PUT", path) if path.starts_with("/v1/digest/") => {
            // The body crossed the wire regardless of what happens to
            // it — count it before any refusal.
            metrics
                .bytes_received
                .fetch_add(request.body.len() as u64, Ordering::Relaxed);
            let Some(fp) = parse_digest_path(path) else {
                respond_text(stream, 400, "malformed fingerprint\n")?;
                return Ok(400);
            };
            let already = store.digest_path(fp).is_file();
            match store.install_digest_bytes(fp, &request.body) {
                Ok(()) => {
                    // 200 on a rewrite (digests are deterministic for a
                    // fingerprint), 201 on first sight — like suite PUT.
                    let status = if already { 200 } else { 201 };
                    respond_text(stream, status, "digested\n")?;
                    Ok(status)
                }
                Err(e @ (StoreError::Corrupt(_) | StoreError::Version { .. })) => {
                    respond_text(stream, 400, &format!("{e}\n"))?;
                    Ok(400)
                }
                Err(e) => {
                    respond_text(stream, 500, &format!("{e}\n"))?;
                    Ok(500)
                }
            }
        }
        ("POST", "/v1/jobs") => {
            metrics
                .bytes_received
                .fetch_add(request.body.len() as u64, Ordering::Relaxed);
            let spec = match JobSpec::decode(&request.body) {
                Ok(spec) => spec,
                Err(e) => {
                    respond_text(stream, 400, &format!("{e}\n"))?;
                    return Ok(400);
                }
            };
            if let Err(e) = validate_job_spec(&spec) {
                respond_text(stream, 400, &format!("{e}\n"))?;
                return Ok(400);
            }
            let (job, new) = fleet.create_job(spec);
            if new {
                metrics.jobs_created.fetch_add(1, Ordering::Relaxed);
            }
            let status = if new { 201 } else { 200 };
            respond_text(stream, status, &format!("{job:016x}\n"))?;
            Ok(status)
        }
        (method @ ("GET" | "HEAD"), path) if path.starts_with("/v1/jobs/") => {
            let Some(job) = parse_job_path(path) else {
                respond_text(stream, 400, "malformed job id\n")?;
                return Ok(400);
            };
            match fleet.status(job) {
                Some(status) => {
                    let body = status.to_json(job);
                    if method == "HEAD" {
                        write_head(stream, 200, body.len() as u64, "application/json")?;
                    } else {
                        respond(stream, 200, body.as_bytes(), "application/json")?;
                    }
                    Ok(200)
                }
                None => {
                    respond_text(stream, 404, "no such job\n")?;
                    Ok(404)
                }
            }
        }
        ("POST", path) if path.starts_with("/v1/jobs/") && path.ends_with("/cut") => {
            let Some(job) = path
                .strip_suffix("/cut")
                .and_then(|p| parse_job_path(p))
            else {
                respond_text(stream, 400, "malformed job id\n")?;
                return Ok(400);
            };
            if fleet.cut(job) {
                respond_text(stream, 200, "cut\n")?;
                Ok(200)
            } else {
                respond_text(stream, 404, "no such job\n")?;
                Ok(404)
            }
        }
        ("POST", "/v1/lease") => {
            let (grant, expired) = fleet.lease();
            if expired > 0 {
                metrics.leases_expired.fetch_add(expired, Ordering::Relaxed);
            }
            match grant {
                Some(grant) => {
                    metrics.leases_granted.fetch_add(1, Ordering::Relaxed);
                    let bytes = grant.encode();
                    respond(stream, 200, &bytes, "application/octet-stream")?;
                    metrics
                        .bytes_served
                        .fetch_add(bytes.len() as u64, Ordering::Relaxed);
                    Ok(200)
                }
                None => {
                    // 204: the fleet is healthy but has nothing pending
                    // — workers back off and poll again.
                    respond(stream, 204, b"", "text/plain; charset=utf-8")?;
                    Ok(204)
                }
            }
        }
        ("POST", path) if path.starts_with("/v1/lease/") && path.ends_with("/heartbeat") => {
            metrics.heartbeats.fetch_add(1, Ordering::Relaxed);
            let Some(lease) = parse_heartbeat_path(path) else {
                respond_text(stream, 400, "malformed lease id\n")?;
                return Ok(400);
            };
            if fleet.heartbeat(lease) {
                respond_text(stream, 200, "renewed\n")?;
                Ok(200)
            } else {
                // 410: the lease lapsed (or never existed) — the range
                // may already be re-leased; the worker should drop it.
                respond_text(stream, 410, "lease not honored\n")?;
                Ok(410)
            }
        }
        ("PUT", path) if path.starts_with("/v1/shard/") => {
            metrics
                .bytes_received
                .fetch_add(request.body.len() as u64, Ordering::Relaxed);
            let Some((job, lo, hi)) = parse_shard_path(path) else {
                respond_text(stream, 400, "malformed shard path\n")?;
                return Ok(400);
            };
            match store.stage_shard(job, lo, hi, &request.body) {
                Ok(outcome @ (StageOutcome::New | StageOutcome::Duplicate)) => {
                    if outcome == StageOutcome::New {
                        metrics.shards_accepted.fetch_add(1, Ordering::Relaxed);
                    } else {
                        metrics.shards_duplicate.fetch_add(1, Ordering::Relaxed);
                    }
                    // Record with the coordinator; the last range in
                    // merges and seals before this response goes out.
                    match fleet.shard_staged(store, job, lo, hi) {
                        StagedOutcome::Sealed => {
                            metrics.jobs_completed.fetch_add(1, Ordering::Relaxed);
                        }
                        StagedOutcome::UnknownJob => {
                            // Staged bytes for a job this coordinator
                            // never saw (e.g. it restarted): conflict,
                            // not success — the upload cannot complete
                            // a job.
                            respond_text(stream, 404, "no such job\n")?;
                            return Ok(404);
                        }
                        StagedOutcome::Recorded
                        | StagedOutcome::SealFailed
                        | StagedOutcome::UnknownRange => {}
                    }
                    let status = if outcome == StageOutcome::New { 201 } else { 200 };
                    respond_text(stream, status, "staged\n")?;
                    Ok(status)
                }
                Ok(StageOutcome::Mismatch) => {
                    respond_text(
                        stream,
                        409,
                        "shard conflicts with its address or an already-staged upload\n",
                    )?;
                    Ok(409)
                }
                Err(e @ (StoreError::Corrupt(_) | StoreError::Version { .. })) => {
                    respond_text(stream, 400, &format!("{e}\n"))?;
                    Ok(400)
                }
                Err(e) => {
                    respond_text(stream, 500, &format!("{e}\n"))?;
                    Ok(500)
                }
            }
        }
        (_, path)
            if path.starts_with("/v1/suite/")
                || path.starts_with("/v1/runs")
                || path.starts_with("/v1/digest/")
                || path.starts_with("/v1/jobs")
                || path.starts_with("/v1/lease")
                || path.starts_with("/v1/shard/")
                || path == "/v1/index"
                || path == "/v1/metrics"
                || path == "/healthz" =>
        {
            respond_text(stream, 405, "method not allowed\n")?;
            Ok(405)
        }
        _ => {
            respond_text(stream, 404, "not found\n")?;
            Ok(404)
        }
    }
}

/// Whether an install failure is the out-of-order-delta case: the
/// uploaded bytes are intact but reference a parent entry this store
/// does not hold.
fn is_missing_parent(e: &StoreError) -> bool {
    matches!(e, StoreError::Corrupt(m) if m.contains("not in store"))
}

/// `/v1/suite/<32 hex chars>` → the fingerprint.
fn parse_suite_path(path: &str) -> Option<Fingerprint> {
    Fingerprint::from_hex(path.strip_prefix("/v1/suite/")?)
}

/// `/v1/runs/<16 hex chars>` → the run id.
fn parse_run_path(path: &str) -> Option<u64> {
    let hex = path.strip_prefix("/v1/runs/")?;
    if hex.len() != 16 || !hex.bytes().all(|b| b.is_ascii_hexdigit()) {
        return None;
    }
    u64::from_str_radix(hex, 16).ok()
}

/// `/v1/digest/<32 hex chars>` → the fingerprint.
fn parse_digest_path(path: &str) -> Option<Fingerprint> {
    Fingerprint::from_hex(path.strip_prefix("/v1/digest/")?)
}

/// `/v1/jobs/<16 hex chars>` → the job id.
fn parse_job_path(path: &str) -> Option<u64> {
    parse_hex16(path.strip_prefix("/v1/jobs/")?)
}

/// `/v1/lease/<16 hex chars>/heartbeat` → the lease id.
fn parse_heartbeat_path(path: &str) -> Option<u64> {
    parse_hex16(
        path.strip_prefix("/v1/lease/")?
            .strip_suffix("/heartbeat")?,
    )
}

/// `/v1/shard/<16 hex chars>/<lo>-<hi>` → the shard address.
fn parse_shard_path(path: &str) -> Option<(u64, u32, u32)> {
    let rest = path.strip_prefix("/v1/shard/")?;
    let (job_hex, range) = rest.split_once('/')?;
    let job = parse_hex16(job_hex)?;
    let (lo, hi) = range.split_once('-')?;
    Some((job, lo.parse().ok()?, hi.parse().ok()?))
}

/// A 16-hex-digit id (jobs, leases — same shape as run ids).
fn parse_hex16(hex: &str) -> Option<u64> {
    if hex.len() != 16 || !hex.bytes().all(|b| b.is_ascii_hexdigit()) {
        return None;
    }
    u64::from_str_radix(hex, 16).ok()
}

/// Server-side vetting of a posted job spec, beyond its own codec
/// checks: the model must parse, its name and suite fingerprints must
/// match what the spec claims, and the ranges must tile the partition
/// plan. Catching drift here turns a would-be merge failure (or worse,
/// suites sealed under wrong fingerprints) into a `400` at submission.
fn validate_job_spec(spec: &JobSpec) -> Result<(), String> {
    spec.validate().map_err(|e| e.to_string())?;
    let mtm = transform_core::spec::parse_mtm(&spec.model)
        .map_err(|e| format!("job spec model does not parse: {e}"))?;
    if mtm.name() != spec.mtm_name {
        return Err(format!(
            "job spec names MTM `{}` but its model parses as `{}`",
            spec.mtm_name,
            mtm.name()
        ));
    }
    let opts = spec.synth_options().map_err(|e| e.to_string())?;
    for (axiom, fp) in &spec.axioms {
        let expected = suite_fingerprint(&mtm, axiom, &opts);
        if expected != *fp {
            return Err(format!(
                "job spec fingerprint for axiom `{axiom}` does not match its parameters"
            ));
        }
    }
    let partitions = transform_par::space_for(&opts, spec.plan_jobs as usize).partition_count();
    let covered = spec.ranges.last().map(|&(_, hi)| hi as usize).unwrap_or(0);
    if covered != partitions {
        return Err(format!(
            "job spec ranges cover {covered} partitions but the plan has {partitions}"
        ));
    }
    Ok(())
}
