//! `transform-serve` — the HTTP suite-store server: one sealed suite
//! store shared by a whole fleet.
//!
//! TransForm's expensive artifact is the synthesized ELT suite (the
//! paper's runs took up to a week per bound); `transform-store` made
//! suites durable on one machine, and this crate makes them *shared*:
//! a hand-rolled, dependency-free HTTP/1.1 server over
//! [`std::net::TcpListener`] exposing a store directory, so every prior
//! synthesis run anywhere in the fleet becomes a cache hit everywhere
//! else. Content addressing does the heavy lifting — entries are
//! immutable and self-validating, so replication is a byte copy and no
//! tier ever needs invalidation.
//!
//! # Protocol
//!
//! | request | response |
//! |---|---|
//! | `GET /healthz` | liveness, entry count, request counters |
//! | `GET /v1/metrics` | the counters in Prometheus text format 0.0.4 (requests, hits/misses, puts, bytes, per-route request/latency breakdowns, in-flight gauge) |
//! | `GET /v1/index` | the entry index (`transform_store::index::encode` bytes) |
//! | `HEAD /v1/suite/<fingerprint>` | `200` when sealed, `404` otherwise |
//! | `GET /v1/suite/<fingerprint>` | the sealed entry's bytes, streamed |
//! | `PUT /v1/suite/<fingerprint>` | validate **every byte**, seal atomically; idempotent |
//! | `GET /v1/runs` | recent run manifests (`transform_store::encode_run_list` bytes) |
//! | `GET /v1/runs/<id>` | one run's full journal, checksummed |
//! | `PUT /v1/runs/<id>` | validate and publish a run journal (rewritable — live runs heartbeat) |
//! | `GET /v1/digest/<fingerprint>` | a suite's warm-start digest, checksummed |
//! | `PUT /v1/digest/<fingerprint>` | validate and publish a digest; idempotent |
//! | `POST /v1/jobs` | register a fleet job (an encoded `JobSpec`; idempotent — the id is the spec's hash) |
//! | `GET /v1/jobs/<id>` | job progress as flat JSON (`ranges`/`staged`/`leased`/`complete`/`cut`) |
//! | `POST /v1/jobs/<id>/cut` | stop leasing the job's ranges; it will never seal |
//! | `POST /v1/lease` | lease one partition range (`200` + encoded grant, or `204` when none pending) |
//! | `POST /v1/lease/<id>/heartbeat` | renew a lease (`410` once it lapsed) |
//! | `PUT /v1/shard/<job>/<lo>-<hi>` | stage a shard result; the last range in seals the job's suites |
//!
//! The job/lease/shard rows are the **synthesis fleet** control plane:
//! the server doubles as a coordinator ([`FleetState`]) that leases
//! mass-balanced partition ranges to remote workers, reclaims leases
//! whose worker stopped heartbeating, and — when the last range's
//! shard lands — runs the deterministic ordinal merge so the sealed
//! suites are byte-identical to a single-machine run.
//!
//! The client half ([`transform_store::HttpTier`]) lives in the store
//! crate, wired behind its [`transform_store::CacheTier`] abstraction,
//! so `synthesize`/`compare`/`fig9 --cache-url http://…` read through
//! a remote cache transparently: local tier first, remote fallthrough,
//! read-through population of the local tier, push-on-seal of fresh
//! results.
//!
//! Trust model: the server validates uploads byte-for-byte before
//! publishing, and clients re-validate everything they fetch before
//! installing it locally — damage on either side of the wire is
//! detected, refused, and falls back to synthesis. There is no
//! authentication; deploy it inside the trust boundary that already
//! shares the store directory today.

#![deny(missing_docs)]

pub mod fleet;
pub mod http;
pub mod server;

pub use fleet::{FleetJobStatus, FleetState, StagedOutcome};
pub use server::{
    RouteMetrics, ServeMetrics, ServeOptions, Server, ServerHandle, LATENCY_BUCKETS_SECONDS,
    ROUTE_NAMES,
};
