//! `check -` and `simulate -` read the ELT from stdin — exercised
//! against the real binary, since the library API has no stdin hook.

use std::io::Write;
use std::process::{Command, Stdio};
use transform_core::figures;
use transform_litmus::format::print_elt;

fn run_with_stdin(args: &[&str], input: &str) -> (String, String, bool) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_transform"))
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("binary spawns");
    child
        .stdin
        .as_mut()
        .expect("stdin piped")
        .write_all(input.as_bytes())
        .expect("stdin writable");
    let out = child.wait_with_output().expect("binary exits");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

#[test]
fn check_reads_the_elt_from_stdin() {
    let elt = print_elt("ptwalk2", &figures::fig10a_ptwalk2());
    let (stdout, stderr, ok) = run_with_stdin(&["check", "-"], &elt);
    assert!(ok, "stderr: {stderr}");
    assert!(stdout.contains("forbidden"), "{stdout}");
    assert!(stdout.contains("invlpg"), "{stdout}");
}

#[test]
fn simulate_reads_the_elt_from_stdin() {
    let elt = print_elt("ptwalk2", &figures::fig10a_ptwalk2());
    let (stdout, stderr, ok) = run_with_stdin(&["simulate", "-"], &elt);
    assert!(ok, "stderr: {stderr}");
    assert!(stdout.contains("observed ⊆ permitted"), "{stdout}");
}

#[test]
fn stdin_parse_errors_name_stdin_not_a_file() {
    let (_, stderr, ok) = run_with_stdin(&["check", "-"], "not an elt");
    assert!(!ok);
    assert!(stderr.contains("-:"), "{stderr}");
}
