//! `transform-cli` — the `transform` command-line tool.
//!
//! A thin, dependency-free front end over the TransForm workspace:
//!
//! * `table1` — print the paper's Table I (the MTM vocabulary);
//! * `figures` — evaluate every paper figure under `x86t_elt`;
//! * `check` — parse an ELT file and report its verdict;
//! * `synthesize` — generate a per-axiom spanning-set suite;
//! * `compare` — the §VI-B COATCheck comparison;
//! * `simulate` — run an ELT program on the operational reference
//!   machine, optionally with an injected bug.
//!
//! The command logic lives in this library crate (returning the output as
//! a `String`) so it is unit-testable; `main.rs` only prints.

mod opts;

use opts::Opts;
use std::collections::BTreeMap;
use std::time::Duration;
use transform_core::axiom::Mtm;
use transform_core::spec::parse_mtm;
use transform_core::{figures, pretty, vocab};
use transform_litmus::format::{parse_elt, print_elt};
use transform_par::{default_jobs, synthesize_suite_jobs};
use transform_sim::{check_conformance, explore, Bugs, SimConfig, SimProgram};
use transform_synth::engine::{Backend, SynthOptions};
use transform_synth::programs::Program;
use transform_x86::{compare_suite, synthesized_keys, x86_tso, x86t_elt};

/// The usage banner printed on errors.
pub const USAGE: &str = "\
usage: transform <command> [options]

commands:
  table1                        print the MTM vocabulary (Table I)
  figures [--dot NAME]          evaluate the paper figures under x86t_elt
  check FILE [--mtm M]          verdict for an ELT file (text syntax)
  synthesize --axiom A --bound N [--mtm M] [--max-threads T]
             [--fences] [--rmw] [--timeout-secs S] [--quiet]
             [--jobs N|auto] [--backend explicit|relational]
  compare --bound N [--timeout-secs S] [--jobs N|auto]
  simulate FILE [--bug invlpg-noop|shootdown|dirty-bit] [--evictions]

--mtm accepts `x86t_elt` (default), `x86tso`, or a path to a spec file.
--jobs runs synthesis on N worker threads (`auto` = all cores); the
suite is byte-identical for every N.";

/// Runs a command line, returning its stdout text.
///
/// # Errors
///
/// Returns a human-readable message for unknown commands, bad flags,
/// unreadable files, and parse failures.
pub fn run(args: &[String]) -> Result<String, String> {
    let mut opts = Opts::new(args);
    let cmd = opts.positional().ok_or("missing command")?;
    match cmd.as_str() {
        "table1" => {
            opts.finish()?;
            Ok(vocab::render_table_i())
        }
        "figures" => cmd_figures(opts),
        "check" => cmd_check(opts),
        "synthesize" => cmd_synthesize(opts),
        "compare" => cmd_compare(opts),
        "simulate" => cmd_simulate(opts),
        other => Err(format!("unknown command `{other}`")),
    }
}

fn load_mtm(spec: Option<String>) -> Result<Mtm, String> {
    match spec.as_deref() {
        None | Some("x86t_elt") => Ok(x86t_elt()),
        Some("x86tso") | Some("x86-tso") => Ok(x86_tso()),
        Some(path) => {
            let src = std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read MTM spec `{path}`: {e}"))?;
            parse_mtm(&src).map_err(|e| format!("{path}: {e}"))
        }
    }
}

fn cmd_figures(mut opts: Opts) -> Result<String, String> {
    let dot = opts.value("--dot");
    opts.finish()?;
    let mtm = x86t_elt();
    let mut out = String::new();
    for (name, x, expect) in figures::all_figures() {
        if let Some(want) = &dot {
            if want == name {
                let a = x.analyze().map_err(|e| e.to_string())?;
                return Ok(pretty::dot(&a));
            }
            continue;
        }
        let v = mtm.permits(&x);
        let verdict = if v.is_permitted() {
            "permitted".to_string()
        } else {
            format!("forbidden ({})", v.violated.join(", "))
        };
        debug_assert_eq!(v.is_permitted(), expect);
        out.push_str(&format!("{name:28} {:2} events  {verdict}\n", x.size()));
    }
    if out.is_empty() {
        return Err("no figure with that name (try without --dot for the list)".into());
    }
    Ok(out)
}

fn cmd_check(mut opts: Opts) -> Result<String, String> {
    let file = opts.positional().ok_or("check needs an ELT file")?;
    let mtm = load_mtm(opts.value("--mtm"))?;
    opts.finish()?;
    let src = std::fs::read_to_string(&file).map_err(|e| format!("cannot read `{file}`: {e}"))?;
    let (name, x) = parse_elt(&src).map_err(|e| format!("{file}: {e}"))?;
    let a = x
        .analyze()
        .map_err(|e| format!("`{name}` is not a well-formed ELT: {e}"))?;
    let v = mtm.evaluate(&a);
    let mut out = pretty::render(&a);
    out.push_str(&format!(
        "\n{} under {}: {}\n",
        if name.is_empty() { "<elt>" } else { &name },
        mtm.name(),
        if v.is_permitted() {
            "permitted".to_string()
        } else {
            format!("forbidden — violates {}", v.violated.join(", "))
        }
    ));
    Ok(out)
}

fn cmd_synthesize(mut opts: Opts) -> Result<String, String> {
    let axiom = opts
        .value("--axiom")
        .ok_or("synthesize needs --axiom <name>")?;
    let bound: usize = opts
        .value("--bound")
        .ok_or("synthesize needs --bound <events>")?
        .parse()
        .map_err(|_| "--bound must be a number")?;
    let mtm = load_mtm(opts.value("--mtm"))?;
    let mut sopts = SynthOptions::new(bound);
    if let Some(t) = opts.value("--max-threads") {
        sopts.enumeration.max_threads =
            Some(t.parse().map_err(|_| "--max-threads must be a number")?);
    }
    sopts.enumeration.allow_fences = opts.flag("--fences");
    sopts.enumeration.allow_rmw = opts.flag("--rmw");
    if let Some(s) = opts.value("--timeout-secs") {
        sopts.timeout = Some(Duration::from_secs(
            s.parse().map_err(|_| "--timeout-secs must be a number")?,
        ));
    }
    if let Some(b) = opts.value("--backend") {
        sopts.backend = parse_backend(&b)?;
    }
    let jobs = parse_jobs(opts.value("--jobs"))?;
    let quiet = opts.flag("--quiet");
    opts.finish()?;
    if mtm.axiom(&axiom).is_none() {
        return Err(format!(
            "axiom `{axiom}` is not part of {}; it has: {}",
            mtm.name(),
            mtm.axioms()
                .iter()
                .map(|a| a.name.as_str())
                .collect::<Vec<_>>()
                .join(", ")
        ));
    }
    let suite = synthesize_suite_jobs(&mtm, &axiom, &sopts, jobs);
    let mut out = String::new();
    if !quiet {
        for (i, elt) in suite.elts.iter().enumerate() {
            out.push_str(&print_elt(&format!("{axiom}_{i}"), &elt.witness));
            out.push('\n');
        }
    }
    out.push_str(&format!(
        "suite `{}` @ bound {}: {} ELTs ({} programs explored, {} executions, {} forbidden, {} minimal) in {:.2?} on {} worker{}{}\n",
        axiom,
        bound,
        suite.elts.len(),
        suite.stats.programs,
        suite.stats.executions,
        suite.stats.forbidden,
        suite.stats.minimal,
        suite.stats.elapsed,
        jobs,
        if jobs == 1 { "" } else { "s" },
        if suite.stats.timed_out { " [timed out]" } else { "" },
    ));
    Ok(out)
}

fn parse_backend(name: &str) -> Result<Backend, String> {
    match name {
        "explicit" => Ok(Backend::Explicit),
        "relational" | "sat" => Ok(Backend::Relational),
        other => Err(format!(
            "unknown --backend `{other}` (expected `explicit` or `relational`)"
        )),
    }
}

fn parse_jobs(value: Option<String>) -> Result<usize, String> {
    match value.as_deref() {
        None => Ok(1),
        Some("auto") | Some("0") => Ok(default_jobs()),
        Some(n) => {
            let n: usize = n.parse().map_err(|_| "--jobs must be a number or `auto`")?;
            Ok(n.max(1))
        }
    }
}

fn cmd_compare(mut opts: Opts) -> Result<String, String> {
    let bound: usize = opts
        .value("--bound")
        .unwrap_or_else(|| "7".into())
        .parse()
        .map_err(|_| "--bound must be a number")?;
    let timeout = Duration::from_secs(
        opts.value("--timeout-secs")
            .unwrap_or_else(|| "60".into())
            .parse()
            .map_err(|_| "--timeout-secs must be a number")?,
    );
    let jobs = parse_jobs(opts.value("--jobs"))?;
    opts.finish()?;
    let mtm = x86t_elt();
    let mut suites = BTreeMap::new();
    for ax in mtm.axioms() {
        let mut sopts = SynthOptions::new(bound);
        sopts.timeout = Some(timeout);
        suites.insert(
            ax.name.clone(),
            synthesize_suite_jobs(&mtm, &ax.name, &sopts, jobs),
        );
    }
    let keys = synthesized_keys(suites.values());
    let cmp = compare_suite(&transform_x86::coatcheck::suite(), &keys);
    Ok(transform_x86::compare::render(&cmp))
}

fn cmd_simulate(mut opts: Opts) -> Result<String, String> {
    let file = opts.positional().ok_or("simulate needs an ELT file")?;
    let mut cfg = SimConfig::correct();
    if let Some(bug) = opts.value("--bug") {
        cfg.bugs = match bug.as_str() {
            "invlpg-noop" => Bugs {
                invlpg_noop: true,
                ..Bugs::none()
            },
            "shootdown" => Bugs {
                missing_remote_shootdown: true,
                ..Bugs::none()
            },
            "dirty-bit" => Bugs {
                missing_dirty_update: true,
                ..Bugs::none()
            },
            other => return Err(format!("unknown --bug `{other}`")),
        };
    }
    cfg.capacity_evictions = opts.flag("--evictions");
    let mtm = load_mtm(opts.value("--mtm"))?;
    opts.finish()?;
    let src = std::fs::read_to_string(&file).map_err(|e| format!("cannot read `{file}`: {e}"))?;
    let (name, x) = parse_elt(&src).map_err(|e| format!("{file}: {e}"))?;
    let prog = SimProgram::from_execution(&x);
    let exploration = explore(&prog, &cfg);
    let conf = check_conformance(&prog, &mtm, &cfg);
    let mut out = format!(
        "{}: {} outcomes over {} states{}\n",
        if name.is_empty() { "<elt>" } else { &name },
        exploration.outcomes.len(),
        exploration.stats.states,
        if exploration.stats.truncated {
            " [truncated]"
        } else {
            ""
        }
    );
    for o in &exploration.outcomes {
        let mark = if conf.violations.contains(o) {
            "  FORBIDDEN "
        } else {
            "  ok        "
        };
        out.push_str(&format!("{mark}{}\n", o.render()));
    }
    out.push_str(&format!(
        "conformance vs {}: {}\n",
        mtm.name(),
        if conf.conforms() {
            "observed ⊆ permitted".to_string()
        } else {
            format!("{} forbidden outcome(s) observed", conf.violations.len())
        }
    ));
    Ok(out)
}

/// Re-export for tests: the program-level canonical key of a synthesized
/// witness (used to deduplicate CLI output).
pub fn program_of(x: &transform_core::exec::Execution) -> Program {
    Program::from_execution(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_str(line: &str) -> Result<String, String> {
        let args: Vec<String> = line.split_whitespace().map(str::to_string).collect();
        run(&args)
    }

    #[test]
    fn table1_lists_the_vocabulary() {
        let out = run_str("table1").expect("runs");
        for name in [
            "rf_ptw", "rf_pa", "co_pa", "fr_pa", "fr_va", "remap", "ghost",
        ] {
            assert!(out.contains(name), "missing {name} in:\n{out}");
        }
    }

    #[test]
    fn figures_reports_verdicts() {
        let out = run_str("figures").expect("runs");
        assert!(out.contains("fig10a_ptwalk2"));
        assert!(out.contains("forbidden"));
        assert!(out.contains("permitted"));
        assert!(out.contains("ext_cross_core_flush"));
    }

    #[test]
    fn figures_dot_produces_graphviz() {
        let out = run_str("figures --dot fig10a_ptwalk2").expect("runs");
        assert!(out.starts_with("digraph"));
    }

    #[test]
    fn synthesize_minimal_invlpg_suite() {
        let out = run_str("synthesize --axiom invlpg --bound 4 --quiet").expect("runs");
        assert!(out.contains("suite `invlpg` @ bound 4"), "{out}");
    }

    #[test]
    fn synthesize_jobs_produce_identical_suites() {
        let base = run_str("synthesize --axiom invlpg --bound 4").expect("runs");
        for line in [
            "synthesize --axiom invlpg --bound 4 --jobs 4",
            "synthesize --axiom invlpg --bound 4 --jobs auto",
            "synthesize --axiom invlpg --bound 4 --jobs 4 --backend relational",
        ] {
            let out = run_str(line).expect("runs");
            // Everything except the trailing summary line (whose timing
            // and worker count legitimately differ) is byte-identical.
            let elts = |s: &str| {
                s.lines()
                    .filter(|l| !l.starts_with("suite `"))
                    .collect::<Vec<_>>()
                    .join("\n")
            };
            assert_eq!(elts(&base), elts(&out), "{line}");
        }
    }

    #[test]
    fn synthesize_summary_reports_workers() {
        let out = run_str("synthesize --axiom invlpg --bound 4 --quiet --jobs 2").expect("runs");
        assert!(out.contains("on 2 workers"), "{out}");
        let out = run_str("synthesize --axiom invlpg --bound 4 --quiet").expect("runs");
        assert!(out.contains("on 1 worker"), "{out}");
    }

    #[test]
    fn bad_jobs_and_backend_values_are_rejected() {
        let e = run_str("synthesize --axiom invlpg --bound 4 --jobs many").unwrap_err();
        assert!(e.contains("--jobs"), "{e}");
        let e = run_str("synthesize --axiom invlpg --bound 4 --backend alloy").unwrap_err();
        assert!(e.contains("alloy"), "{e}");
    }

    #[test]
    fn synthesize_rejects_unknown_axiom() {
        let e = run_str("synthesize --axiom nope --bound 4").unwrap_err();
        assert!(e.contains("nope"), "{e}");
    }

    #[test]
    fn unknown_flags_are_rejected() {
        let e = run_str("table1 --frobnicate").unwrap_err();
        assert!(e.contains("frobnicate"), "{e}");
    }

    #[test]
    fn check_and_simulate_roundtrip_through_a_file() {
        let dir = std::env::temp_dir().join("transform-cli-test");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("ptwalk2.elt");
        std::fs::write(&path, print_elt("ptwalk2", &figures::fig10a_ptwalk2())).expect("write");
        let p = path.to_str().expect("utf-8 path");

        let out = run_str(&format!("check {p}")).expect("runs");
        assert!(out.contains("forbidden"), "{out}");
        assert!(out.contains("invlpg"), "{out}");

        let out = run_str(&format!("simulate {p}")).expect("runs");
        assert!(out.contains("observed ⊆ permitted"), "{out}");

        let out = run_str(&format!("simulate {p} --bug shootdown")).expect("runs");
        assert!(out.contains("outcomes"), "{out}");
    }
}
