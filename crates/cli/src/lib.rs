//! `transform-cli` — the `transform` command-line tool.
//!
//! A thin, dependency-free front end over the TransForm workspace:
//!
//! * `table1` — print the paper's Table I (the MTM vocabulary);
//! * `figures` — evaluate every paper figure under `x86t_elt`;
//! * `check` — parse an ELT file (or stdin) and report its verdict;
//! * `synthesize` — generate a per-axiom spanning-set suite, optionally
//!   through the persistent suite cache (`--cache DIR`);
//! * `compare` — the §VI-B COATCheck comparison;
//! * `simulate` — run an ELT program on the operational reference
//!   machine, optionally with an injected bug;
//! * `query` — filter the ELTs of a suite cache by axiom, bound, shape,
//!   fences, and rmw without resynthesizing anything;
//! * `export` — dump cached ELTs in the text syntax;
//! * `store verify` — offline re-checksum of every cached suite,
//!   reporting (and optionally removing) corrupt entries;
//! * `store gc` — age out cached suites by mtime and/or a keep-list of
//!   fingerprints, and sweep leftover shard directories;
//! * `serve` — serve a suite store over HTTP as a fleet-wide shared
//!   cache (`transform-serve`); clients point `--cache-url` at it; the
//!   same instance doubles as the synthesis-fleet coordinator;
//! * `worker` — a fleet worker: lease mass-balanced partition ranges
//!   from a coordinator, run the fused pipeline over each, heartbeat
//!   while computing, and upload content-addressed shard results;
//! * `top` — a live fleet view of a `serve` instance, polled from its
//!   Prometheus `/v1/metrics` endpoint and merged with the recent run
//!   manifests of `/v1/runs`;
//! * `runs` — list, inspect, and export the journals that cached
//!   synthesis runs record (`export --chrome` emits a Chrome
//!   trace-event file for `about://tracing`);
//! * `store push` / `store pull` — bulk-replicate sealed entries to /
//!   from a served cache.
//!
//! Every subcommand answers `--help` with its flags and one worked
//! example (the `help` module).
//!
//! The command logic lives in this library crate (returning the output as
//! a `String`) so it is unit-testable; `main.rs` only prints.

mod help;
mod opts;
mod progress;
mod runs;

use opts::Opts;
use progress::{parse_progress, ProgressMode, Reporter};
use std::collections::{BTreeMap, BTreeSet};
use std::io::Read;
use std::sync::Arc;
use std::time::Duration;
use transform_core::axiom::Mtm;
use transform_core::spec::parse_mtm;
use transform_core::{figures, pretty, vocab};
use transform_litmus::format::{parse_elt, print_elt};
use transform_par::{
    synthesize_all_jobs, synthesize_all_jobs_observed, synthesize_suite_jobs,
    synthesize_suite_jobs_observed, ProgressState,
};
use transform_sim::{check_conformance, explore, Bugs, SimConfig, SimProgram};
use transform_store::{
    cached_or_synthesize, cached_or_synthesize_all, cached_or_synthesize_all_observed,
    cached_or_synthesize_observed, execute_lease, is_delta, validate_delta, CacheTier, EntryMeta,
    Fingerprint, HttpTier, JobSpec, Store, TieredCache, WarmMode,
};
use transform_synth::engine::{Backend, Suite, SynthOptions};
use transform_synth::programs::{Balance, Program, SlotOp};
use transform_synth::SuiteRecord;
use transform_x86::{compare_suite, synthesized_keys, x86_tso, x86t_elt};

/// The usage banner printed on errors.
pub const USAGE: &str = "\
usage: transform <command> [options]

commands:
  table1                        print the MTM vocabulary (Table I)
  figures [--dot NAME]          evaluate the paper figures under x86t_elt
  check FILE|- [--mtm M]        verdict for an ELT file (text syntax)
  synthesize --axiom A|--all --bound N [--mtm M] [--max-threads T]
             [--fences] [--rmw] [--timeout-secs S] [--quiet]
             [--jobs N|auto] [--backend explicit|relational]
             [--partition-size N|auto] [--balance mass|depth]
             [--progress[=human|json]] [--warm-start[=auto]]
             [--cache DIR] [--cache-url URL] [--out FILE]
             [--workers URL[,URL...]] [--lease-ttl-secs S]
             [--fleet-ranges N]
  compare --bound N [--timeout-secs S] [--jobs N|auto]
          [--partition-size N|auto] [--balance mass|depth]
          [--progress[=human|json]]
          [--cache DIR] [--cache-url URL]
  simulate FILE|- [--bug invlpg-noop|shootdown|dirty-bit] [--evictions]
  query --cache DIR [--mtm-name M] [--axiom A] [--bound N]
        [--backend B] [--shape S] [--fences] [--rmw]
  export --cache DIR [same filters as query] [--out FILE]
  serve --root DIR [--addr HOST:PORT] [--threads N] [--verbose]
  worker --url URL [--jobs N|auto] [--poll-secs N] [--drain]
         [--idle-secs N] [--name NAME]
  top --url URL [--interval-secs N] [--once]
  runs list [--outcome O] [--since ISO8601]
       |show ID|export ID --chrome [--out FILE]
       (--cache DIR | --url URL)
  store verify --cache DIR [--remove-corrupt]
  store gc --cache DIR [--older-than-days N] [--keep-list FILE]
        [--dry-run]
  store push --cache DIR --url URL [--fingerprint FP]
  store pull --cache DIR --url URL [--fingerprint FP]

Every command answers `transform <command> --help` with its flags and a
worked example.

--mtm accepts `x86t_elt` (default), `x86tso`, or a path to a spec file.
--jobs runs synthesis on N worker threads (`auto` = all cores); the
suite is byte-identical for every N. `synthesize --all` streams every
axiom of the MTM through one fused run (the program space is
enumerated once; no shared plan is built up front). --partition-size
pins the streaming engine's examine-batch granularity (`auto`, the
default, adapts it to the observed throughput); --balance picks how
the enumeration splits into work units (`mass`, the default, sizes
partitions by estimated subtree work; `depth` is the fixed-depth
baseline). Neither ever changes the suite.
--progress streams live per-axiom telemetry (partitions/mass retired,
programs, ELTs, mass-based ETA) to stderr while synthesis runs —
`json` emits one object per line; stdout stays byte-identical either
way. `top` polls a serve instance's /v1/metrics and /v1/runs for a
live fleet view, in-flight synthesis runs included.
--cache makes synthesis stream from / seal into a persistent suite
store keyed on (MTM, axiom, bound, options); corrupt or stale entries
are detected by checksums and rebuilt.
--warm-start (needs --cache) seeds a bound-N run from the sealed
bound-N\u{2212}1 suite in the store: fully-covered partitions are skipped and
the result seals as a delta entry referencing the parent — the served
suite stays byte-identical to a cold run. Bare --warm-start fails when
the parent or its admission digest is missing; `=auto` falls back to a
cold (full) run instead. Cached runs also record a
checksummed run journal (manifest + timestamped span events) into the
store — `runs` lists and inspects them, and `runs export --chrome`
turns one into a Chrome trace-event file. --cache-url adds a shared
`transform serve` endpoint behind the local store: local miss, remote
fetch (validated byte-for-byte), push-on-seal. `check -` and
`simulate -` read the ELT from stdin. `serve` exposes a store directory
over HTTP for a fleet-wide shared cache; `store push`/`store pull`
bulk-replicate sealed entries (admission digests included, so pulled
parents seed --warm-start) to/from one. A `serve` instance is also the
synthesis-fleet coordinator: `synthesize --workers URL` registers the
run as a fleet job there, `transform worker --url URL` processes lease
partition ranges and upload shard results, and the client pulls the
fleet-sealed suites — byte-identical to a single-machine run at any
worker count, including under worker death and lease expiry.";

/// Runs a command line, returning its stdout text.
///
/// # Errors
///
/// Returns a human-readable message for unknown commands, bad flags,
/// unreadable files, and parse failures.
pub fn run(args: &[String]) -> Result<String, String> {
    let mut opts = Opts::new(args);
    let cmd = opts.positional().ok_or("missing command")?;
    // `store` resolves --help against its subcommand inside cmd_store.
    if cmd != "store" && opts.flag("--help") {
        return help::help_for(&cmd, None).ok_or(format!("unknown command `{cmd}`"));
    }
    match cmd.as_str() {
        "table1" => {
            opts.finish()?;
            Ok(vocab::render_table_i())
        }
        "figures" => cmd_figures(opts),
        "check" => cmd_check(opts),
        "synthesize" => cmd_synthesize(opts),
        "compare" => cmd_compare(opts),
        "simulate" => cmd_simulate(opts),
        "query" => cmd_query(opts),
        "export" => cmd_export(opts),
        "serve" => cmd_serve(opts),
        "worker" => cmd_worker(opts),
        "top" => cmd_top(opts),
        "runs" => cmd_runs(opts),
        "store" => cmd_store(opts),
        other => Err(format!("unknown command `{other}`")),
    }
}

/// Reads an ELT source: a file path, or stdin for `-`.
fn read_source(path: &str) -> Result<String, String> {
    if path == "-" {
        let mut src = String::new();
        std::io::stdin()
            .read_to_string(&mut src)
            .map_err(|e| format!("cannot read stdin: {e}"))?;
        return Ok(src);
    }
    std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))
}

fn load_mtm(spec: Option<String>) -> Result<Mtm, String> {
    match spec.as_deref() {
        None | Some("x86t_elt") => Ok(x86t_elt()),
        Some("x86tso") | Some("x86-tso") => Ok(x86_tso()),
        Some(path) => {
            let src = std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read MTM spec `{path}`: {e}"))?;
            parse_mtm(&src).map_err(|e| format!("{path}: {e}"))
        }
    }
}

fn cmd_figures(mut opts: Opts) -> Result<String, String> {
    let dot = opts.value("--dot");
    opts.finish()?;
    let mtm = x86t_elt();
    let mut out = String::new();
    for (name, x, expect) in figures::all_figures() {
        if let Some(want) = &dot {
            if want == name {
                let a = x.analyze().map_err(|e| e.to_string())?;
                return Ok(pretty::dot(&a));
            }
            continue;
        }
        let v = mtm.permits(&x);
        let verdict = if v.is_permitted() {
            "permitted".to_string()
        } else {
            format!("forbidden ({})", v.violated.join(", "))
        };
        debug_assert_eq!(v.is_permitted(), expect);
        out.push_str(&format!("{name:28} {:2} events  {verdict}\n", x.size()));
    }
    if out.is_empty() {
        return Err("no figure with that name (try without --dot for the list)".into());
    }
    Ok(out)
}

fn cmd_check(mut opts: Opts) -> Result<String, String> {
    let file = opts.positional().ok_or("check needs an ELT file (or -)")?;
    let mtm = load_mtm(opts.value("--mtm"))?;
    opts.finish()?;
    let src = read_source(&file)?;
    let (name, x) = parse_elt(&src).map_err(|e| format!("{file}: {e}"))?;
    let a = x
        .analyze()
        .map_err(|e| format!("`{name}` is not a well-formed ELT: {e}"))?;
    let v = mtm.evaluate(&a);
    let mut out = pretty::render(&a);
    out.push_str(&format!(
        "\n{} under {}: {}\n",
        if name.is_empty() { "<elt>" } else { &name },
        mtm.name(),
        if v.is_permitted() {
            "permitted".to_string()
        } else {
            format!("forbidden — violates {}", v.violated.join(", "))
        }
    ));
    Ok(out)
}

fn cmd_synthesize(mut opts: Opts) -> Result<String, String> {
    let axiom = opts.value("--axiom");
    let all = opts.flag("--all");
    let bound: usize = opts
        .value("--bound")
        .ok_or("synthesize needs --bound <events>")?
        .parse()
        .map_err(|_| "--bound must be a number")?;
    let mtm = load_mtm(opts.value("--mtm"))?;
    let mut sopts = SynthOptions::new(bound);
    if let Some(t) = opts.value("--max-threads") {
        sopts.enumeration.max_threads =
            Some(t.parse().map_err(|_| "--max-threads must be a number")?);
    }
    sopts.enumeration.allow_fences = opts.flag("--fences");
    sopts.enumeration.allow_rmw = opts.flag("--rmw");
    if let Some(s) = opts.value("--timeout-secs") {
        sopts.timeout = Some(Duration::from_secs(
            s.parse().map_err(|_| "--timeout-secs must be a number")?,
        ));
    }
    if let Some(b) = opts.value("--backend") {
        sopts.backend = parse_backend(&b)?;
    }
    sopts.partition_size = parse_partition_size(opts.value("--partition-size"))?;
    if let Some(b) = opts.value("--balance") {
        sopts.balance = parse_balance(&b)?;
    }
    let jobs = opts.jobs()?;
    let quiet = opts.flag("--quiet");
    let progress_mode = parse_progress(opts.optional_value("--progress"))?;
    let warm = parse_warm_start(opts.optional_value("--warm-start"))?;
    let cache = opts.value("--cache");
    let cache_url = opts.value("--cache-url");
    let out_file = opts.value("--out");
    let workers = opts.value("--workers");
    let lease_ttl = Duration::from_secs(
        opts.value("--lease-ttl-secs")
            .map(|s| s.parse().map_err(|_| "--lease-ttl-secs must be a number"))
            .transpose()?
            .unwrap_or(30)
            .max(1),
    );
    let fleet_ranges: usize = opts
        .value("--fleet-ranges")
        .map(|s| s.parse().map_err(|_| "--fleet-ranges must be a number"))
        .transpose()?
        .unwrap_or_else(|| (jobs * 2).max(4))
        .max(1);
    opts.finish()?;
    if warm != WarmMode::Off && cache.is_none() {
        return Err(
            "--warm-start needs --cache DIR (the sealed bound-N\u{2212}1 parent suite and its \
             admission digest live there)"
                .into(),
        );
    }
    let axioms: Vec<String> = match (axiom, all) {
        (Some(_), true) => return Err("--axiom and --all are mutually exclusive".into()),
        (None, false) => return Err("synthesize needs --axiom <name> or --all".into()),
        (Some(axiom), false) => {
            if mtm.axiom(&axiom).is_none() {
                return Err(format!(
                    "axiom `{axiom}` is not part of {}; it has: {}",
                    mtm.name(),
                    mtm.axioms()
                        .iter()
                        .map(|a| a.name.as_str())
                        .collect::<Vec<_>>()
                        .join(", ")
                ));
            }
            vec![axiom]
        }
        (None, true) => mtm.axioms().iter().map(|a| a.name.clone()).collect(),
    };
    // --workers: the fleet client. The run becomes a coordinator job;
    // remote `transform worker` processes compute the leased ranges and
    // the sealed suites are pulled back — byte-identical to the local
    // paths below at any worker count.
    if let Some(urls) = workers {
        if warm != WarmMode::Off {
            return Err(
                "--warm-start does not combine with --workers (leased ranges always run cold; \
                 `store pull` replicates the parent digest for local warm starts instead)"
                    .into(),
            );
        }
        if cache_url.is_some() {
            return Err(
                "--workers and --cache-url are mutually exclusive (the first --workers URL \
                 already serves as the shared remote tier)"
                    .into(),
            );
        }
        let dir = cache.as_deref().ok_or(
            "--workers needs --cache DIR for the local tier (the fleet-sealed suites are \
             pulled and validated into it)",
        )?;
        let suites =
            fleet_synthesize(&mtm, &axioms, &sopts, jobs, dir, &urls, fleet_ranges, lease_ttl, progress_mode)?;
        return render_synthesize_output(&axioms, bound, jobs, &suites, quiet, out_file.as_deref());
    }
    // --progress: a shared atomics block the run publishes into and a
    // reporter thread renders from (stderr only — stdout is identical
    // to an unobserved run). Cached runs observe unconditionally so the
    // run journal records them; observation never changes the suite.
    let (progress, reporter) = start_progress(progress_mode, &axioms, cache.is_some());
    let recorder = start_recorder(
        progress.as_ref(),
        cache.as_deref(),
        cache_url.as_deref(),
        &mtm,
        &sopts,
        jobs,
    )?;
    let suites = if all {
        // One fused run for every axiom: the program space is
        // enumerated once, and no shared plan is built before workers
        // start.
        synthesize_all_maybe_cached(
            &mtm,
            &sopts,
            jobs,
            cache.as_deref(),
            cache_url.as_deref(),
            progress.as_ref(),
            warm,
        )?
    } else {
        let suite = synthesize_maybe_cached(
            &mtm,
            &axioms[0],
            &sopts,
            jobs,
            cache.as_deref(),
            cache_url.as_deref(),
            progress.as_ref(),
            warm,
        )?;
        std::iter::once((axioms[0].clone(), suite)).collect()
    };
    if let Some(reporter) = reporter {
        reporter.finish();
    }
    if let Some(recorder) = recorder {
        recorder.finish();
    }
    render_synthesize_output(&axioms, bound, jobs, &suites, quiet, out_file.as_deref())
}

/// The tail every `synthesize` path shares — fleet-pulled and locally
/// synthesized suites print identically.
fn render_synthesize_output(
    axioms: &[String],
    bound: usize,
    jobs: usize,
    suites: &BTreeMap<String, Suite>,
    quiet: bool,
    out_file: Option<&str>,
) -> Result<String, String> {
    let mut out = String::new();
    let render_all = || -> String { axioms.iter().map(|ax| render_suite(&suites[ax])).collect() };
    if let Some(path) = out_file {
        std::fs::write(path, render_all()).map_err(|e| format!("cannot write `{path}`: {e}"))?;
        let elts: usize = suites.values().map(|s| s.elts.len()).sum();
        out.push_str(&format!("wrote {elts} ELTs to {path}\n"));
    } else if !quiet {
        out.push_str(&render_all());
    }
    for ax in axioms {
        out.push_str(&suite_summary(ax, bound, &suites[ax], jobs));
    }
    Ok(out)
}

/// The `--workers` client: registers the run as a fleet job on every
/// listed coordinator (idempotent — the job id is the spec's content
/// hash), waits while `transform worker` processes lease the
/// mass-balanced partition ranges and upload shard results, and pulls
/// the fleet-sealed suites (validated byte-for-byte) through the tiered
/// cache. The coordinator's deterministic ordinal merge makes the
/// sealed suites byte-identical to a single-machine run at any worker
/// count, including under worker death, lease expiry, and duplicate
/// uploads.
#[allow(clippy::too_many_arguments)]
fn fleet_synthesize(
    mtm: &Mtm,
    axioms: &[String],
    sopts: &SynthOptions,
    jobs: usize,
    dir: &str,
    urls: &str,
    ranges: usize,
    lease_ttl: Duration,
    progress: Option<ProgressMode>,
) -> Result<BTreeMap<String, Suite>, String> {
    let urls: Vec<&str> = urls
        .split(',')
        .map(str::trim)
        .filter(|u| !u.is_empty())
        .collect();
    if urls.is_empty() {
        return Err("--workers needs at least one coordinator URL".into());
    }
    // URLs first: a bad URL must not leave an empty store behind.
    let coordinators: Vec<HttpTier> = urls
        .iter()
        .map(|u| HttpTier::new(u).map_err(|e| e.to_string()))
        .collect::<Result<_, _>>()?;
    let store = Store::open(dir).map_err(|e| format!("cannot open cache `{dir}`: {e}"))?;

    let names: Vec<&str> = axioms.iter().map(String::as_str).collect();
    let spec = JobSpec::for_run(
        mtm,
        &names,
        sopts,
        jobs.max(1) as u32,
        ranges,
        lease_ttl.as_millis() as u64,
    );
    let job = spec.id();
    for c in &coordinators {
        let accepted = c
            .create_job(&spec.encode())
            .map_err(|e| format!("coordinator `{}`: {e}", c.url()))?;
        if accepted != job {
            return Err(format!(
                "coordinator `{}` registered job {accepted:016x} for spec {job:016x} — \
                 coordinator/client version skew",
                c.url()
            ));
        }
    }
    // Poll the primary coordinator until every range's shard is staged
    // and the merge sealed the suites (or the deadline cuts the job).
    let primary = &coordinators[0];
    let started = std::time::Instant::now();
    let mut last = String::new();
    loop {
        let status = primary
            .job_status(job)
            .map_err(|e| format!("coordinator `{}`: {e}", primary.url()))?
            .ok_or_else(|| {
                format!(
                    "coordinator `{}` lost job {job:016x} (restarted?); re-run to re-register",
                    primary.url()
                )
            })?;
        if let Some(mode) = progress {
            let line = match mode {
                ProgressMode::Human => format!(
                    "fleet {job:016x}: {}/{} ranges staged, {} leased",
                    status.staged, status.ranges, status.leased
                ),
                ProgressMode::Json => format!(
                    "{{\"fleet\":\"{job:016x}\",\"ranges\":{},\"staged\":{},\"leased\":{},\
                     \"complete\":{}}}",
                    status.ranges, status.staged, status.leased, status.complete
                ),
            };
            if line != last {
                eprintln!("{line}");
                last = line;
            }
        }
        if status.cut {
            return Err(format!(
                "fleet job {job:016x} was cut on the coordinator; the suites never sealed"
            ));
        }
        if status.complete {
            break;
        }
        if let Some(deadline) = sopts.timeout {
            if started.elapsed() >= deadline {
                for c in &coordinators {
                    c.cut_job(job).ok();
                }
                return Err(format!(
                    "fleet job {job:016x} hit the --timeout-secs deadline after {:.0?}; cut on \
                     the coordinator with {}/{} ranges staged",
                    started.elapsed(),
                    status.staged,
                    status.ranges,
                ));
            }
        }
        std::thread::sleep(Duration::from_millis(250));
    }
    // Every suite is sealed on the coordinator: read each through the
    // tiered cache, so the bytes are validated into the local store and
    // served exactly like any other remote hit.
    let remote = HttpTier::new(urls[0]).map_err(|e| e.to_string())?;
    let tiered = TieredCache::new(store).with_remote(Box::new(remote));
    let mut suites = BTreeMap::new();
    for axiom in axioms {
        let (suite, _status) = tiered
            .cached_or_synthesize(mtm, axiom, sopts, jobs)
            .map_err(|e| format!("cache `{dir}` + `{}`: {e}", urls[0]))?;
        suites.insert(axiom.clone(), suite);
    }
    Ok(suites)
}

/// `transform worker`: the fleet worker loop. Leases mass-balanced
/// partition ranges from a coordinator, runs the fused pipeline over
/// each leased range (the whole admission prefix is replayed for global
/// dedup, only the leased range is examined), heartbeats while it
/// computes, and uploads the content-addressed shard result. Uploads
/// are idempotent and checksummed, so retries and duplicate completions
/// are conflict-free.
fn cmd_worker(mut opts: Opts) -> Result<String, String> {
    let url = opts
        .value("--url")
        .ok_or("worker needs --url http://host:port (the coordinator)")?;
    let jobs = opts.jobs()?;
    let poll = Duration::from_secs(
        opts.value("--poll-secs")
            .map(|s| s.parse().map_err(|_| "--poll-secs must be a number"))
            .transpose()?
            .unwrap_or(1)
            .max(1),
    );
    let drain = opts.flag("--drain");
    let idle = Duration::from_secs(
        opts.value("--idle-secs")
            .map(|s| s.parse().map_err(|_| "--idle-secs must be a number"))
            .transpose()?
            .unwrap_or(5)
            .max(1),
    );
    let name = opts
        .value("--name")
        .unwrap_or_else(|| format!("worker-{}", std::process::id()));
    opts.finish()?;
    let client = HttpTier::new(&url).map_err(|e| e.to_string())?;
    let mut completed = 0usize;
    let mut idle_since: Option<std::time::Instant> = None;
    loop {
        let grant = match client.lease(&name) {
            Ok(grant) => grant,
            Err(e) => {
                if drain {
                    return Err(format!("coordinator `{url}`: {e}"));
                }
                eprintln!("transform worker: coordinator `{url}`: {e}");
                std::thread::sleep(poll);
                continue;
            }
        };
        let Some(grant) = grant else {
            // No work right now. A draining worker waits out the idle
            // grace first — a fleet client may still be registering the
            // job, or a peer's death may put a range back on offer.
            let since = *idle_since.get_or_insert_with(std::time::Instant::now);
            if drain && since.elapsed() >= idle {
                break;
            }
            std::thread::sleep(poll.min(Duration::from_millis(250)));
            continue;
        };
        idle_since = None;
        eprintln!(
            "transform worker: leased job {:016x} range {}..{} (lease {:016x}, ttl {}ms)",
            grant.job, grant.lo, grant.hi, grant.lease, grant.ttl_ms
        );
        if work_one_lease(&url, &grant, jobs)? {
            completed += 1;
        }
    }
    Ok(format!(
        "worker `{name}`: {completed} range{} computed and uploaded\n",
        if completed == 1 { "" } else { "s" }
    ))
}

/// Computes one leased range and uploads its shard result, renewing the
/// lease from a side thread the whole time. Returns whether the upload
/// landed; a failed range is abandoned (`false`) so its lease expires
/// and the coordinator reassigns it.
fn work_one_lease(
    url: &str,
    grant: &transform_store::LeaseGrant,
    jobs: usize,
) -> Result<bool, String> {
    use std::sync::atomic::{AtomicBool, Ordering};
    let stop = Arc::new(AtomicBool::new(false));
    let beat = {
        let stop = Arc::clone(&stop);
        let client = HttpTier::new(url).map_err(|e| e.to_string())?;
        let lease = grant.lease;
        // Renew at a third of the TTL, floored so tiny TTLs still beat.
        let cadence = Duration::from_millis((grant.ttl_ms / 3).clamp(50, 10_000));
        std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                // A refused renewal means the lease lapsed and the range
                // was reassigned. Keep computing anyway — uploads are
                // idempotent, so a duplicate completion is harmless —
                // but stop beating a dead lease.
                if let Ok(false) = client.heartbeat(lease) {
                    return;
                }
                let mut slept = Duration::ZERO;
                while slept < cadence && !stop.load(Ordering::Relaxed) {
                    let slice = Duration::from_millis(25).min(cadence - slept);
                    std::thread::sleep(slice);
                    slept += slice;
                }
            }
        })
    };
    let result = execute_lease(grant, jobs);
    stop.store(true, Ordering::Relaxed);
    let _ = beat.join();
    let result = match result {
        Ok(result) => result,
        Err(e) => {
            eprintln!(
                "transform worker: range {}..{} failed: {e} (lease left to expire)",
                grant.lo, grant.hi
            );
            return Ok(false);
        }
    };
    let bytes = result.encode();
    let client = HttpTier::new(url).map_err(|e| e.to_string())?;
    let mut delay = Duration::from_millis(200);
    for attempt in 1..=3 {
        match client.put_shard(grant.job, grant.lo, grant.hi, &bytes) {
            Ok(outcome) => {
                eprintln!(
                    "transform worker: uploaded job {:016x} range {}..{} ({} bytes, {:?})",
                    grant.job,
                    grant.lo,
                    grant.hi,
                    bytes.len(),
                    outcome
                );
                return Ok(true);
            }
            Err(e) if attempt < 3 => {
                eprintln!("transform worker: upload attempt {attempt} failed: {e}; retrying");
                std::thread::sleep(delay);
                delay *= 2;
            }
            Err(e) => {
                return Err(format!(
                    "upload of job {:016x} range {}..{} failed after {attempt} attempts: {e}",
                    grant.job, grant.lo, grant.hi
                ))
            }
        }
    }
    unreachable!("the retry loop returns on success or final failure")
}

/// The one-line per-suite summary `synthesize` prints (per axiom, for
/// `--all` runs).
fn suite_summary(axiom: &str, bound: usize, suite: &Suite, jobs: usize) -> String {
    format!(
        "suite `{}` @ bound {}: {} ELTs ({} programs explored, {} executions, {} forbidden, {} minimal) in {:.2?} on {} worker{}{}\n",
        axiom,
        bound,
        suite.elts.len(),
        suite.stats.programs,
        suite.stats.executions,
        suite.stats.forbidden,
        suite.stats.minimal,
        suite.stats.elapsed,
        jobs,
        if jobs == 1 { "" } else { "s" },
        if suite.stats.timed_out { " [timed out]" } else { "" },
    )
}

/// Builds the progress state + reporter pair behind `--progress` and
/// the run journal. No mode and no journal means no observation at all
/// — the run takes the plain, un-instrumented entry points; a
/// journaled run allocates the event buffer even without a reporter.
fn start_progress(
    mode: Option<ProgressMode>,
    axioms: &[String],
    journal: bool,
) -> (Option<Arc<ProgressState>>, Option<Reporter>) {
    if mode.is_none() && !journal {
        return (None, None);
    }
    let state = Arc::new(if journal {
        ProgressState::with_journal(axioms)
    } else {
        ProgressState::new(axioms)
    });
    let reporter = mode.map(|mode| Reporter::start(Arc::clone(&state), mode));
    (Some(state), reporter)
}

/// Starts the run-journal recorder for a cached synthesis run: a
/// heartbeat keeps a `Running` manifest in the store (and on the
/// remote tier) while the run executes, and `finish` seals the full
/// journal. `None` when the run is uncached — journals live in the
/// store, so there is nowhere to record one.
fn start_recorder(
    progress: Option<&Arc<ProgressState>>,
    cache: Option<&str>,
    cache_url: Option<&str>,
    mtm: &Mtm,
    sopts: &SynthOptions,
    jobs: usize,
) -> Result<Option<runs::JournalRecorder>, String> {
    match (progress, cache) {
        (Some(progress), Some(dir)) => runs::JournalRecorder::start(
            dir,
            cache_url,
            mtm.name(),
            sopts.enumeration.bound,
            sopts.enumeration.allow_fences,
            sopts.enumeration.allow_rmw,
            jobs,
            Arc::clone(progress),
        )
        .map(Some),
        _ => Ok(None),
    }
}

/// The `synthesize`/`compare` synthesis step: straight through the
/// engine, through the persistent suite store when `--cache` is given,
/// and through the tiered local+remote cache when `--cache-url` names a
/// shared `transform serve` endpoint too. Cached and fresh runs print
/// identically — a warm run (local or remote) serves the sealed
/// artifact of the cold one, statistics included. A `progress` handle
/// observes the run (cache hits marked cached, live runs publishing
/// their counters) without changing any of that.
#[allow(clippy::too_many_arguments)]
fn synthesize_maybe_cached(
    mtm: &Mtm,
    axiom: &str,
    sopts: &SynthOptions,
    jobs: usize,
    cache: Option<&str>,
    cache_url: Option<&str>,
    progress: Option<&Arc<ProgressState>>,
    warm: WarmMode,
) -> Result<Suite, String> {
    match (cache, cache_url) {
        (None, None) => Ok(match progress {
            Some(p) => synthesize_suite_jobs_observed(mtm, axiom, sopts, jobs, p),
            None => synthesize_suite_jobs(mtm, axiom, sopts, jobs),
        }),
        (None, Some(_)) => Err(
            "--cache-url needs --cache DIR for the local tier (remote hits are \
             validated into it, and fresh suites are sealed there before the push)"
                .into(),
        ),
        (Some(dir), None) => {
            let store = Store::open(dir).map_err(|e| format!("cannot open cache `{dir}`: {e}"))?;
            let (suite, _status) = if warm != WarmMode::Off {
                TieredCache::new(store)
                    .cached_or_synthesize_warm(mtm, axiom, sopts, jobs, warm, progress)
            } else {
                match progress {
                    Some(p) => cached_or_synthesize_observed(&store, mtm, axiom, sopts, jobs, p),
                    None => cached_or_synthesize(&store, mtm, axiom, sopts, jobs),
                }
            }
            .map_err(|e| format!("cache `{dir}`: {e}"))?;
            Ok(suite)
        }
        (Some(dir), Some(url)) => {
            // URL first: a bad URL must not leave an empty store behind.
            let remote = HttpTier::new(url).map_err(|e| e.to_string())?;
            let store = Store::open(dir).map_err(|e| format!("cannot open cache `{dir}`: {e}"))?;
            let tiered = TieredCache::new(store).with_remote(Box::new(remote));
            let (suite, _status) = if warm != WarmMode::Off {
                tiered.cached_or_synthesize_warm(mtm, axiom, sopts, jobs, warm, progress)
            } else {
                match progress {
                    Some(p) => tiered.cached_or_synthesize_observed(mtm, axiom, sopts, jobs, p),
                    None => tiered.cached_or_synthesize(mtm, axiom, sopts, jobs),
                }
            }
            .map_err(|e| format!("cache `{dir}` + `{url}`: {e}"))?;
            Ok(suite)
        }
    }
}

/// The `synthesize --all`/`compare` synthesis step: every per-axiom
/// suite of the MTM through **one fused streamed run** — straight
/// through the engine, through the persistent suite store when
/// `--cache` is given (tier hits served per axiom, all misses
/// synthesized together and sealed per axiom as each finishes), and
/// through the tiered local+remote cache when `--cache-url` names a
/// shared `transform serve` endpoint too.
#[allow(clippy::too_many_arguments)]
fn synthesize_all_maybe_cached(
    mtm: &Mtm,
    sopts: &SynthOptions,
    jobs: usize,
    cache: Option<&str>,
    cache_url: Option<&str>,
    progress: Option<&Arc<ProgressState>>,
    warm: WarmMode,
) -> Result<BTreeMap<String, Suite>, String> {
    match (cache, cache_url) {
        (None, None) => Ok(match progress {
            Some(p) => synthesize_all_jobs_observed(mtm, sopts, jobs, p),
            None => synthesize_all_jobs(mtm, sopts, jobs),
        }),
        (None, Some(_)) => Err(
            "--cache-url needs --cache DIR for the local tier (remote hits are \
             validated into it, and fresh suites are sealed there before the push)"
                .into(),
        ),
        (Some(dir), None) => {
            let store = Store::open(dir).map_err(|e| format!("cannot open cache `{dir}`: {e}"))?;
            let all = if warm != WarmMode::Off {
                TieredCache::new(store)
                    .cached_or_synthesize_all_warm(mtm, sopts, jobs, warm, progress)
            } else {
                match progress {
                    Some(p) => cached_or_synthesize_all_observed(&store, mtm, sopts, jobs, p),
                    None => cached_or_synthesize_all(&store, mtm, sopts, jobs),
                }
            }
            .map_err(|e| format!("cache `{dir}`: {e}"))?;
            Ok(all.into_iter().map(|(ax, (s, _))| (ax, s)).collect())
        }
        (Some(dir), Some(url)) => {
            // URL first: a bad URL must not leave an empty store behind.
            let remote = HttpTier::new(url).map_err(|e| e.to_string())?;
            let store = Store::open(dir).map_err(|e| format!("cannot open cache `{dir}`: {e}"))?;
            let tiered = TieredCache::new(store).with_remote(Box::new(remote));
            let all = if warm != WarmMode::Off {
                tiered.cached_or_synthesize_all_warm(mtm, sopts, jobs, warm, progress)
            } else {
                match progress {
                    Some(p) => tiered.cached_or_synthesize_all_observed(mtm, sopts, jobs, p),
                    None => tiered.cached_or_synthesize_all(mtm, sopts, jobs),
                }
            }
            .map_err(|e| format!("cache `{dir}` + `{url}`: {e}"))?;
            Ok(all.into_iter().map(|(ax, (s, _))| (ax, s)).collect())
        }
    }
}

/// Renders a suite's members exactly as `synthesize` prints them.
fn render_suite(suite: &Suite) -> String {
    let mut out = String::new();
    for (i, elt) in suite.elts.iter().enumerate() {
        out.push_str(&print_elt(&format!("{}_{i}", suite.axiom), &elt.witness));
        out.push('\n');
    }
    out
}

fn parse_backend(name: &str) -> Result<Backend, String> {
    match name {
        "explicit" => Ok(Backend::Explicit),
        "relational" | "sat" => Ok(Backend::Relational),
        other => Err(format!(
            "unknown --backend `{other}` (expected `explicit` or `relational`)"
        )),
    }
}

/// `--warm-start` → `Require` (fail loudly when the parent is absent);
/// `--warm-start=auto` → `Auto` (fall back to a cold run); absent →
/// `Off`.
fn parse_warm_start(flag: Option<Option<String>>) -> Result<WarmMode, String> {
    match flag {
        None => Ok(WarmMode::Off),
        Some(None) => Ok(WarmMode::Require),
        Some(Some(mode)) => match mode.as_str() {
            "auto" => Ok(WarmMode::Auto),
            "require" => Ok(WarmMode::Require),
            other => Err(format!(
                "unknown --warm-start mode `{other}` (expected `auto` or `require`)"
            )),
        },
    }
}

fn parse_balance(name: &str) -> Result<Balance, String> {
    Balance::parse(name)
        .ok_or_else(|| format!("unknown --balance `{name}` (expected `mass` or `depth`)"))
}

fn parse_partition_size(value: Option<String>) -> Result<Option<usize>, String> {
    match value.as_deref() {
        None | Some("auto") => Ok(None),
        Some(n) => {
            let n: usize = n
                .parse()
                .map_err(|_| "--partition-size must be a positive number or `auto`")?;
            if n == 0 {
                return Err("--partition-size must be a positive number or `auto`".into());
            }
            Ok(Some(n))
        }
    }
}

fn cmd_compare(mut opts: Opts) -> Result<String, String> {
    let bound: usize = opts
        .value("--bound")
        .unwrap_or_else(|| "7".into())
        .parse()
        .map_err(|_| "--bound must be a number")?;
    let timeout = Duration::from_secs(
        opts.value("--timeout-secs")
            .unwrap_or_else(|| "300".into())
            .parse()
            .map_err(|_| "--timeout-secs must be a number")?,
    );
    let jobs = opts.jobs()?;
    let mut sopts = SynthOptions::new(bound);
    sopts.timeout = Some(timeout);
    sopts.partition_size = parse_partition_size(opts.value("--partition-size"))?;
    if let Some(b) = opts.value("--balance") {
        sopts.balance = parse_balance(&b)?;
    }
    let progress_mode = parse_progress(opts.optional_value("--progress"))?;
    let cache = opts.value("--cache");
    let cache_url = opts.value("--cache-url");
    opts.finish()?;
    let mtm = x86t_elt();
    let axioms: Vec<String> = mtm.axioms().iter().map(|a| a.name.clone()).collect();
    let (progress, reporter) = start_progress(progress_mode, &axioms, cache.is_some());
    let recorder = start_recorder(
        progress.as_ref(),
        cache.as_deref(),
        cache_url.as_deref(),
        &mtm,
        &sopts,
        jobs,
    )?;
    // One fused run covers every axiom (the budget spans the whole
    // run); cached axioms stream from their sealed entries.
    let suites = synthesize_all_maybe_cached(
        &mtm,
        &sopts,
        jobs,
        cache.as_deref(),
        cache_url.as_deref(),
        progress.as_ref(),
        WarmMode::Off,
    )?;
    if let Some(reporter) = reporter {
        reporter.finish();
    }
    if let Some(recorder) = recorder {
        recorder.finish();
    }
    let keys = synthesized_keys(suites.values());
    let cmp = compare_suite(&transform_x86::coatcheck::suite(), &keys);
    Ok(transform_x86::compare::render(&cmp))
}

/// `transform top`: a live fleet view of a `transform serve` instance,
/// polled from its `/v1/metrics` endpoint. `--once` prints a single
/// frame (scripts, CI smoke tests); otherwise redraws until killed.
fn cmd_top(mut opts: Opts) -> Result<String, String> {
    let url = opts
        .value("--url")
        .ok_or("top needs --url http://host:port")?;
    let interval: u64 = opts
        .value("--interval-secs")
        .map(|s| s.parse().map_err(|_| "--interval-secs must be a number"))
        .transpose()?
        .unwrap_or(2)
        .max(1);
    let once = opts.flag("--once");
    opts.finish()?;
    let remote = HttpTier::new(&url).map_err(|e| e.to_string())?;
    let scrape = || -> Result<std::collections::BTreeMap<String, f64>, String> {
        let text = remote
            .metrics()
            .map_err(|e| format!("cannot scrape `{url}`: {e}"))?;
        Ok(progress::parse_prometheus(&text))
    };
    // The runs section is best-effort: a server predating /v1/runs
    // still renders its metrics, with the section marked unavailable.
    let runs_section = || match remote.runs() {
        Ok(manifests) => runs::render_runs_section(&manifests),
        Err(_) => "runs: unavailable (server has no /v1/runs)\n".to_string(),
    };
    let first = scrape()?;
    if once {
        return Ok(format!(
            "{}{}",
            progress::render_top(&url, None, &first, interval as f64),
            runs_section(),
        ));
    }
    use std::io::IsTerminal;
    let tty = std::io::stdout().is_terminal();
    let mut prev = first;
    let initial = format!(
        "{}{}",
        progress::render_top(&url, None, &prev, interval as f64),
        runs_section(),
    );
    // The frame height varies (runs appear and finish), so redraws
    // climb over the *previous* frame, not the new one.
    let mut drawn = initial.lines().count();
    print!("{initial}");
    loop {
        std::thread::sleep(Duration::from_secs(interval));
        // A transient scrape failure (server restarting) keeps polling.
        let cur = match scrape() {
            Ok(cur) => cur,
            Err(e) => {
                eprintln!("transform top: {e}");
                continue;
            }
        };
        let frame = format!(
            "{}{}",
            progress::render_top(&url, Some(&prev), &cur, interval as f64),
            runs_section(),
        );
        if tty {
            // Redraw in place.
            print!("\x1b[{drawn}A");
            for line in frame.lines() {
                println!("\x1b[2K{line}");
            }
            drawn = frame.lines().count();
        } else {
            print!("{frame}");
        }
        use std::io::Write as _;
        std::io::stdout().flush().ok();
        prev = cur;
    }
}

/// Where `transform runs` reads journals from: a local store directory
/// or a served fleet cache.
enum RunSource {
    Local(Store),
    Remote(HttpTier),
}

impl RunSource {
    /// Resolves the `--cache DIR | --url URL` pair (exactly one).
    fn parse(opts: &mut Opts) -> Result<RunSource, String> {
        match (opts.value("--cache"), opts.value("--url")) {
            (Some(dir), None) => Store::open(&dir)
                .map(RunSource::Local)
                .map_err(|e| format!("cannot open cache `{dir}`: {e}")),
            (None, Some(url)) => HttpTier::new(&url)
                .map(RunSource::Remote)
                .map_err(|e| e.to_string()),
            (None, None) => Err("runs needs --cache DIR or --url http://host:port".into()),
            (Some(_), Some(_)) => Err("--cache and --url are mutually exclusive for `runs`".into()),
        }
    }

    /// Every recorded manifest, newest first.
    fn manifests(&self) -> Result<Vec<transform_store::RunManifest>, String> {
        match self {
            RunSource::Local(store) => store.runs().map_err(|e| e.to_string()),
            RunSource::Remote(remote) => remote.runs().map_err(|e| e.to_string()),
        }
    }

    /// One run's full journal; a missing or corrupt one is an error.
    fn journal(&self, id: u64) -> Result<transform_store::RunJournal, String> {
        match self {
            RunSource::Local(store) => store
                .read_run(id)
                .map_err(|e| format!("run {id:016x}: {e}")),
            RunSource::Remote(remote) => {
                let bytes = remote
                    .fetch_run(id)
                    .map_err(|e| e.to_string())?
                    .ok_or(format!("the remote has no run {id:016x}"))?;
                transform_store::decode_run(&bytes).map_err(|e| format!("run {id:016x}: {e}"))
            }
        }
    }
}

/// `transform runs`: list, inspect, and export the journals that
/// cached synthesis runs record.
fn cmd_runs(mut opts: Opts) -> Result<String, String> {
    let sub = opts
        .positional()
        .ok_or("runs needs a subcommand: list | show | export")?;
    match sub.as_str() {
        "list" => {
            let outcome = opts
                .value("--outcome")
                .map(|s| runs::parse_outcome(&s))
                .transpose()?;
            let since = opts
                .value("--since")
                .map(|s| runs::parse_since(&s))
                .transpose()?;
            let source = RunSource::parse(&mut opts)?;
            opts.finish()?;
            let mut manifests = source.manifests()?;
            if let Some(outcome) = outcome {
                manifests.retain(|m| m.outcome == outcome);
            }
            if let Some(since) = since {
                manifests.retain(|m| m.started_unix_micros >= since);
            }
            Ok(runs::render_runs_list(&manifests))
        }
        "show" => {
            let id = opts.positional().ok_or("runs show needs a run id")?;
            let source = RunSource::parse(&mut opts)?;
            opts.finish()?;
            let journal = source.journal(runs::parse_run_id(&id)?)?;
            Ok(runs::render_run_show(&journal))
        }
        "export" => {
            let id = opts.positional().ok_or("runs export needs a run id")?;
            if !opts.flag("--chrome") {
                return Err(
                    "runs export needs --chrome (the Chrome trace-event format is the only \
                     exporter today)"
                        .into(),
                );
            }
            let out_file = opts.value("--out");
            let source = RunSource::parse(&mut opts)?;
            opts.finish()?;
            let journal = source.journal(runs::parse_run_id(&id)?)?;
            let trace = runs::chrome_trace(&journal);
            match out_file {
                Some(path) => {
                    std::fs::write(&path, &trace)
                        .map_err(|e| format!("cannot write `{path}`: {e}"))?;
                    Ok(format!(
                        "wrote {} trace events to {path}\n",
                        journal.events.len()
                    ))
                }
                None => Ok(trace),
            }
        }
        other => Err(format!(
            "unknown runs subcommand `{other}` (expected `list`, `show`, or `export`)"
        )),
    }
}

/// Entry- and test-level filters shared by `query` and `export`.
struct CacheFilter {
    mtm: Option<String>,
    axiom: Option<String>,
    bound: Option<usize>,
    backend: Option<String>,
    shape: Option<String>,
    fences: bool,
    rmw: bool,
}

impl CacheFilter {
    /// Consumes the filter flags from `opts`.
    fn parse(opts: &mut Opts) -> Result<CacheFilter, String> {
        Ok(CacheFilter {
            mtm: opts.value("--mtm-name"),
            axiom: opts.value("--axiom"),
            bound: opts
                .value("--bound")
                .map(|b| b.parse().map_err(|_| "--bound must be a number"))
                .transpose()?,
            backend: opts.value("--backend"),
            shape: opts.value("--shape"),
            fences: opts.flag("--fences"),
            rmw: opts.flag("--rmw"),
        })
    }

    fn admits_entry(&self, meta: &EntryMeta) -> bool {
        self.mtm.as_deref().is_none_or(|m| m == meta.mtm)
            && self.axiom.as_deref().is_none_or(|a| a == meta.axiom)
            && self.bound.is_none_or(|b| b == meta.bound)
            && self.backend.as_deref().is_none_or(|b| b == meta.backend)
    }

    fn admits_record(&self, record: &SuiteRecord) -> bool {
        let program = &record.elt.program;
        self.shape.as_deref().is_none_or(|s| s == shape_of(program))
            && (!self.fences
                || program
                    .threads
                    .iter()
                    .flatten()
                    .any(|op| matches!(op, SlotOp::Fence)))
            && (!self.rmw || !program.rmw.is_empty())
    }
}

/// The slots-per-thread signature of a program, e.g. `2+1`.
fn shape_of(program: &Program) -> String {
    program
        .threads
        .iter()
        .map(|t| t.len().to_string())
        .collect::<Vec<_>>()
        .join("+")
}

/// Streams matching records out of a cache: one callback per match,
/// entry metadata included. Unreadable entries are reported, skipped,
/// and never partially served. Returns (entries scanned, entries
/// matched, records matched).
fn scan_cache(
    dir: &str,
    filter: &CacheFilter,
    mut on_match: impl FnMut(&EntryMeta, usize, &SuiteRecord),
    warnings: &mut String,
) -> Result<(usize, usize, usize, usize), String> {
    let store = Store::open(dir).map_err(|e| format!("cannot open cache `{dir}`: {e}"))?;
    // The advisory index lets non-matching entries be skipped without
    // opening their headers; a missing or stale index degrades to the
    // header scan (indexed metadata is re-checked against the opened
    // header either way, so the index can only prune, never mis-serve).
    let entries: Vec<(transform_store::Fingerprint, Option<EntryMeta>)> = match store.read_index() {
        Some(index) => index
            .into_iter()
            .map(|e| (e.fingerprint, Some(e.meta)))
            .collect(),
        None => store
            .entries()
            .map_err(|e| format!("cache `{dir}`: {e}"))?
            .into_iter()
            .map(|fp| (fp, None))
            .collect(),
    };
    let mut scanned = 0usize;
    let mut deltas = 0usize;
    let mut entries_matched = 0usize;
    let mut records_matched = 0usize;
    for (fp, indexed_meta) in entries {
        scanned += 1;
        if store.entry_is_delta(fp).ok().flatten() == Some(true) {
            deltas += 1;
        }
        if let Some(meta) = &indexed_meta {
            if !filter.admits_entry(meta) {
                continue;
            }
        }
        let reader = match store.open_suite(fp) {
            Ok(reader) => reader,
            Err(e) => {
                warnings.push_str(&format!("# skipping {fp}: {e}\n"));
                continue;
            }
        };
        let meta = reader.meta().clone();
        if !filter.admits_entry(&meta) {
            continue;
        }
        // Matches are buffered until the whole entry validates: a
        // corrupt tail record must not leave half an entry in the
        // output ("detect and rebuild, never serve" applies to query
        // and export too).
        let mut matches: Vec<(usize, SuiteRecord)> = Vec::new();
        let mut broken = false;
        for (i, record) in reader.enumerate() {
            match record {
                Ok(record) => {
                    if filter.admits_record(&record) {
                        matches.push((i, record));
                    }
                }
                Err(e) => {
                    warnings.push_str(&format!("# skipping {fp}: {e}\n"));
                    broken = true;
                    break;
                }
            }
        }
        if broken {
            continue;
        }
        entries_matched += 1;
        records_matched += matches.len();
        for (i, record) in &matches {
            on_match(&meta, *i, record);
        }
    }
    Ok((scanned, deltas, entries_matched, records_matched))
}

fn cmd_query(mut opts: Opts) -> Result<String, String> {
    let dir = opts.value("--cache").ok_or("query needs --cache DIR")?;
    let filter = CacheFilter::parse(&mut opts)?;
    opts.finish()?;
    let mut body = String::new();
    let mut warnings = String::new();
    let (scanned, deltas, entries, records) = scan_cache(
        &dir,
        &filter,
        |meta, i, record| {
            body.push_str(&format!(
                "{axiom}@{bound} {backend:<10} {name:<20} shape={shape:<7} events={events:<2} violates={violates}\n",
                axiom = meta.axiom,
                bound = meta.bound,
                backend = meta.backend,
                name = format!("{}_{i}", meta.axiom),
                shape = shape_of(&record.elt.program),
                events = record.elt.program.size(),
                violates = record.elt.violated.join(","),
            ));
        },
        &mut warnings,
    )?;
    Ok(format!(
        "{warnings}{body}{records} matching ELT{} in {entries} suite{} ({scanned} cached suite{} scanned, {deltas} delta-encoded)\n",
        if records == 1 { "" } else { "s" },
        if entries == 1 { "" } else { "s" },
        if scanned == 1 { "" } else { "s" },
    ))
}

fn cmd_export(mut opts: Opts) -> Result<String, String> {
    let dir = opts.value("--cache").ok_or("export needs --cache DIR")?;
    let filter = CacheFilter::parse(&mut opts)?;
    let out_file = opts.value("--out");
    opts.finish()?;
    let mut body = String::new();
    let mut warnings = String::new();
    let (_, _, _, records) = scan_cache(
        &dir,
        &filter,
        |meta, i, record| {
            body.push_str(&format!(
                "# suite {} @ bound {} ({})\n",
                meta.axiom, meta.bound, meta.backend
            ));
            body.push_str(&print_elt(
                &format!("{}_{i}", meta.axiom),
                &record.elt.witness,
            ));
            body.push('\n');
        },
        &mut warnings,
    )?;
    match out_file {
        Some(path) => {
            std::fs::write(&path, &body).map_err(|e| format!("cannot write `{path}`: {e}"))?;
            Ok(format!("{warnings}exported {records} ELTs to {path}\n"))
        }
        None => Ok(format!("{warnings}{body}")),
    }
}

/// `transform serve`: expose a store directory over HTTP as a
/// fleet-wide shared cache. Blocks until the process is stopped.
fn cmd_serve(mut opts: Opts) -> Result<String, String> {
    let root = opts.value("--root").ok_or("serve needs --root DIR")?;
    let addr = opts
        .value("--addr")
        .unwrap_or_else(|| "127.0.0.1:7171".into());
    let threads: usize = opts
        .value("--threads")
        .map(|t| t.parse().map_err(|_| "--threads must be a number"))
        .transpose()?
        .unwrap_or(4)
        .max(1);
    let verbose = opts.flag("--verbose");
    opts.finish()?;
    let server = transform_serve::Server::bind(
        &root,
        &addr,
        transform_serve::ServeOptions { threads, verbose },
    )
    .map_err(|e| format!("cannot serve `{root}` on `{addr}`: {e}"))?;
    eprintln!(
        "transform-serve: serving {root} on http://{} ({threads} worker{})",
        server.local_addr(),
        if threads == 1 { "" } else { "s" },
    );
    server.run().map_err(|e| format!("serve: {e}"))?;
    Ok(String::new())
}

fn cmd_store(mut opts: Opts) -> Result<String, String> {
    let sub = opts.positional();
    if opts.flag("--help") {
        return help::help_for("store", sub.as_deref())
            .ok_or_else(|| format!("unknown store subcommand `{}`", sub.unwrap_or_default()));
    }
    let sub = sub.ok_or("store needs a subcommand: verify | gc | push | pull")?;
    match sub.as_str() {
        "verify" => cmd_store_verify(opts),
        "gc" => cmd_store_gc(opts),
        "push" => cmd_store_push(opts),
        "pull" => cmd_store_pull(opts),
        other => Err(format!(
            "unknown store subcommand `{other}` (expected `verify`, `gc`, `push`, or `pull`)"
        )),
    }
}

/// The `--cache DIR --url URL` pair shared by `store push` and
/// `store pull`.
fn store_remote_args(opts: &mut Opts, what: &str) -> Result<(Store, HttpTier), String> {
    let dir = opts
        .value("--cache")
        .ok_or_else(|| format!("store {what} needs --cache DIR"))?;
    let url = opts
        .value("--url")
        .ok_or_else(|| format!("store {what} needs --url http://host:port"))?;
    let store = Store::open(&dir).map_err(|e| format!("cannot open cache `{dir}`: {e}"))?;
    let remote = HttpTier::new(&url).map_err(|e| e.to_string())?;
    Ok((store, remote))
}

fn parse_fingerprint_flag(opts: &mut Opts) -> Result<Option<Fingerprint>, String> {
    opts.value("--fingerprint")
        .map(|s| Fingerprint::from_hex(&s).ok_or(format!("`{s}` is not a fingerprint")))
        .transpose()
}

/// Pushes `fp`'s whole parent chain (deepest ancestor first), then
/// `fp` itself, skipping whatever the remote already holds. Returns
/// `true` when `fp` itself was already present (the caller's "skipped"
/// tally; newly-pushed parents count through `pushed` like any entry).
#[allow(clippy::too_many_arguments)]
fn push_chain(
    store: &Store,
    remote: &HttpTier,
    present: &Option<BTreeSet<Fingerprint>>,
    on_remote: &mut BTreeSet<Fingerprint>,
    out: &mut String,
    pushed: &mut usize,
    fp: Fingerprint,
    depth: usize,
) -> Result<bool, String> {
    let already = on_remote.contains(&fp)
        || match present {
            Some(present) => present.contains(&fp),
            None => remote.exists(fp).map_err(|e| e.to_string())?,
        };
    if already {
        on_remote.insert(fp);
        return Ok(true);
    }
    let bytes = store
        .entry_bytes(fp)
        .map_err(|e| e.to_string())?
        .ok_or(format!("no sealed entry {fp} in the local store"))?;
    if let Some(parent) = transform_store::entry_parent(&bytes) {
        if depth == 0 {
            return Err(format!("{fp}: delta parent chain exceeds the cap"));
        }
        push_chain(
            store,
            remote,
            present,
            on_remote,
            out,
            pushed,
            parent,
            depth - 1,
        )?;
    }
    CacheTier::publish(remote, fp, &bytes).map_err(|e| e.to_string())?;
    out.push_str(&format!("pushed {fp} ({} bytes)\n", bytes.len()));
    *pushed += 1;
    // Digest-aware push: the entry's admission digest rides along, so
    // a `store pull` on another machine can seed `--warm-start` from
    // the replicated parent exactly like a locally synthesized one.
    if let Some(digest) = store.digest_bytes(fp).map_err(|e| e.to_string())? {
        remote
            .publish_digest(fp, &digest)
            .map_err(|e| format!("digest {fp}: {e}"))?;
        out.push_str(&format!("pushed digest for {fp} ({} bytes)\n", digest.len()));
    }
    on_remote.insert(fp);
    Ok(false)
}

fn cmd_store_push(mut opts: Opts) -> Result<String, String> {
    let (store, remote) = store_remote_args(&mut opts, "push")?;
    let only = parse_fingerprint_flag(&mut opts)?;
    opts.finish()?;
    let entries = match only {
        Some(fp) => vec![fp],
        None => store.entries().map_err(|e| e.to_string())?,
    };
    // One index fetch enumerates the remote instead of a HEAD per
    // entry; a remote whose index endpoint fails degrades to HEADs.
    let present: Option<BTreeSet<Fingerprint>> = remote
        .index()
        .ok()
        .map(|index| index.into_iter().map(|e| e.fingerprint).collect());
    let mut out = String::new();
    let (mut pushed, mut skipped) = (0usize, 0usize);
    // Parent-first: the remote validates a delta against the parent it
    // already holds, so a delta's chain must land before the delta —
    // whatever order the entry listing has.
    let mut on_remote: BTreeSet<Fingerprint> = BTreeSet::new();
    for fp in entries {
        let already = push_chain(
            &store,
            &remote,
            &present,
            &mut on_remote,
            &mut out,
            &mut pushed,
            fp,
            transform_store::MAX_PARENT_CHAIN,
        )?;
        if already {
            skipped += 1;
        }
    }
    out.push_str(&format!(
        "{pushed} entr{} pushed to {}, {skipped} already present\n",
        if pushed == 1 { "y" } else { "ies" },
        remote.url(),
    ));
    Ok(out)
}

/// Pulls `fp`, first resolving any delta parents it needs (deepest
/// ancestor installed first, so every install validates against a
/// complete local chain).
fn pull_chain(
    store: &Store,
    remote: &HttpTier,
    out: &mut String,
    pulled: &mut usize,
    fp: Fingerprint,
    depth: usize,
) -> Result<(), String> {
    let bytes = CacheTier::fetch(remote, fp)
        .map_err(|e| e.to_string())?
        .ok_or(format!("remote {} has no entry {fp}", remote.url()))?;
    if let Some(parent) = transform_store::entry_parent(&bytes) {
        if !store.contains(parent) {
            if depth == 0 {
                return Err(format!("{fp}: delta parent chain exceeds the cap"));
            }
            pull_chain(store, remote, out, pulled, parent, depth - 1)?;
        }
    }
    // Full byte-for-byte validation before anything is published.
    store
        .install_bytes(fp, &bytes)
        .map_err(|e| format!("{fp}: {e}"))?;
    out.push_str(&format!("pulled {fp} ({} bytes)\n", bytes.len()));
    *pulled += 1;
    pull_digest(store, remote, out, fp)?;
    Ok(())
}

/// Digest-aware pull: fetches `fp`'s admission digest when the remote
/// holds one and the local store does not, so a pulled parent entry
/// seeds `--warm-start` exactly like a locally synthesized one. A
/// remote without the digest endpoint (or without the digest) is not an
/// error — the entry is still fully usable, just not warm-startable.
fn pull_digest(
    store: &Store,
    remote: &HttpTier,
    out: &mut String,
    fp: Fingerprint,
) -> Result<(), String> {
    if store.digest_bytes(fp).map_err(|e| e.to_string())?.is_some() {
        return Ok(());
    }
    let Ok(Some(bytes)) = remote.fetch_digest(fp) else {
        return Ok(());
    };
    // Checksum-validated before install, like every pulled artifact.
    store
        .install_digest_bytes(fp, &bytes)
        .map_err(|e| format!("digest {fp}: {e}"))?;
    out.push_str(&format!("pulled digest for {fp} ({} bytes)\n", bytes.len()));
    Ok(())
}

fn cmd_store_pull(mut opts: Opts) -> Result<String, String> {
    let (store, remote) = store_remote_args(&mut opts, "pull")?;
    let only = parse_fingerprint_flag(&mut opts)?;
    opts.finish()?;
    let wanted = match only {
        Some(fp) => vec![fp],
        None => remote
            .index()
            .map_err(|e| e.to_string())?
            .into_iter()
            .map(|e| e.fingerprint)
            .collect(),
    };
    let mut out = String::new();
    let (mut pulled, mut skipped) = (0usize, 0usize);
    for fp in wanted {
        if store.contains(fp) {
            // Already-present entries may still be missing their
            // admission digest (pulled before digests replicated).
            pull_digest(&store, &remote, &mut out, fp)?;
            skipped += 1;
            continue;
        }
        pull_chain(
            &store,
            &remote,
            &mut out,
            &mut pulled,
            fp,
            transform_store::MAX_PARENT_CHAIN,
        )?;
    }
    out.push_str(&format!(
        "{pulled} entr{} pulled from {}, {skipped} already present\n",
        if pulled == 1 { "y" } else { "ies" },
        remote.url(),
    ));
    Ok(out)
}

/// One entry's verification verdict. Delta entries are judged twice:
/// their own bytes first, then the parent chain — damage in a *parent*
/// must not condemn an intact child (removing the child would not fix
/// anything; removing the damaged parent is what `--remove-corrupt`
/// does, via the parent's own row).
enum EntryHealth {
    /// Fully valid: header, every record checksum, trailer — and for a
    /// delta, the whole parent chain.
    Ok {
        /// Records served (post-materialization for deltas).
        records: u64,
        /// The entry's key metadata.
        meta: EntryMeta,
        /// The delta's parent link, `None` for full entries.
        parent: Option<Fingerprint>,
    },
    /// The entry's own bytes are damaged; `--remove-corrupt` removes it.
    Corrupt(transform_store::StoreError),
    /// A delta whose own bytes are intact but whose parent chain does
    /// not resolve; kept under `--remove-corrupt`.
    BrokenChain(transform_store::StoreError),
}

/// Fully re-validates one sealed entry: header, every record checksum,
/// and the trailer; delta entries additionally resolve (and thereby
/// validate) their parent chain.
fn validate_entry(store: &Store, fp: Fingerprint) -> EntryHealth {
    let bytes = match store.entry_bytes(fp) {
        Ok(Some(bytes)) => bytes,
        Ok(None) => {
            return EntryHealth::Corrupt(transform_store::StoreError::Corrupt(
                "entry vanished mid-scan".into(),
            ))
        }
        Err(e) => return EntryHealth::Corrupt(e),
    };
    let parent = if is_delta(&bytes) {
        match validate_delta(&bytes, Some(fp)) {
            Ok(header) => Some(header.parent),
            Err(e) => return EntryHealth::Corrupt(e),
        }
    } else {
        None
    };
    let read_through = || -> Result<(u64, EntryMeta), transform_store::StoreError> {
        let mut reader = store.open_suite(fp)?;
        let meta = reader.meta().clone();
        let mut records = 0u64;
        for record in reader.by_ref() {
            record?;
            records += 1;
        }
        Ok((records, meta))
    };
    match read_through() {
        Ok((records, meta)) => EntryHealth::Ok {
            records,
            meta,
            parent,
        },
        Err(e) if parent.is_some() => EntryHealth::BrokenChain(e),
        Err(e) => EntryHealth::Corrupt(e),
    }
}

fn cmd_store_verify(mut opts: Opts) -> Result<String, String> {
    let dir = opts
        .value("--cache")
        .ok_or("store verify needs --cache DIR")?;
    let remove = opts.flag("--remove-corrupt");
    opts.finish()?;
    let store = Store::open(&dir).map_err(|e| format!("cannot open cache `{dir}`: {e}"))?;
    let entries = store.entries().map_err(|e| format!("cache `{dir}`: {e}"))?;
    let mut out = String::new();
    let mut corrupt = Vec::new();
    let mut broken_chains = 0usize;
    for &fp in &entries {
        match validate_entry(&store, fp) {
            EntryHealth::Ok {
                records,
                meta,
                parent,
            } => out.push_str(&format!(
                "{fp} ok       {records:>6} records  {}@{} ({}){}\n",
                meta.axiom,
                meta.bound,
                meta.backend,
                match parent {
                    Some(parent) => format!("  delta of {parent}"),
                    None => String::new(),
                }
            )),
            EntryHealth::Corrupt(e) => {
                out.push_str(&format!("{fp} CORRUPT  {e}\n"));
                corrupt.push(fp);
            }
            EntryHealth::BrokenChain(e) => {
                broken_chains += 1;
                out.push_str(&format!(
                    "{fp} BROKEN CHAIN  {e} (delta intact; fix or remove its parent)\n"
                ));
            }
        }
    }
    // Run journals re-validate the same way: decode is checksummed end
    // to end, so a damaged journal surfaces here instead of at read.
    let run_ids = store.run_ids().map_err(|e| format!("cache `{dir}`: {e}"))?;
    let mut runs_corrupt = Vec::new();
    for &id in &run_ids {
        if let Err(e) = store.read_run(id) {
            out.push_str(&format!("run {id:016x} CORRUPT  {e}\n"));
            runs_corrupt.push(id);
        }
    }
    out.push_str(&format!(
        "run journals: {} ok, {} corrupt\n",
        run_ids.len() - runs_corrupt.len(),
        runs_corrupt.len(),
    ));
    if remove {
        for &id in &runs_corrupt {
            store
                .remove_run(id)
                .map_err(|e| format!("cannot remove run {id:016x}: {e}"))?;
        }
    }
    out.push_str(match store.read_index() {
        Some(_) => "index: ok\n",
        None => "index: missing or stale (scans fall back to entry headers)\n",
    });
    if remove && !corrupt.is_empty() {
        for &fp in &corrupt {
            store
                .remove(fp)
                .map_err(|e| format!("cannot remove {fp}: {e}"))?;
        }
        // Best-effort: a failed rebuild only costs scans their fast path.
        store.rebuild_index().ok();
    }
    out.push_str(&format!(
        "{} ok, {} corrupt{} of {} sealed entr{}{}\n",
        entries.len() - corrupt.len() - broken_chains,
        corrupt.len(),
        if broken_chains > 0 {
            format!(
                ", {broken_chains} broken chain{}",
                if broken_chains == 1 { "" } else { "s" }
            )
        } else {
            String::new()
        },
        entries.len(),
        if entries.len() == 1 { "y" } else { "ies" },
        if remove && !corrupt.is_empty() {
            " (corrupt entries removed)"
        } else {
            ""
        },
    ));
    Ok(out)
}

fn cmd_store_gc(mut opts: Opts) -> Result<String, String> {
    let dir = opts.value("--cache").ok_or("store gc needs --cache DIR")?;
    let days: Option<u64> = opts
        .value("--older-than-days")
        .map(|d| d.parse().map_err(|_| "--older-than-days must be a number"))
        .transpose()?;
    let keep_path = opts.value("--keep-list");
    let dry = opts.flag("--dry-run");
    opts.finish()?;
    let store = Store::open(&dir).map_err(|e| format!("cannot open cache `{dir}`: {e}"))?;
    let keep: Option<BTreeSet<Fingerprint>> = keep_path
        .map(|path| {
            let text = std::fs::read_to_string(&path)
                .map_err(|e| format!("cannot read keep-list `{path}`: {e}"))?;
            text.lines()
                .map(str::trim)
                .filter(|l| !l.is_empty() && !l.starts_with('#'))
                .map(|l| {
                    Fingerprint::from_hex(l)
                        .ok_or_else(|| format!("{path}: `{l}` is not a fingerprint"))
                })
                .collect::<Result<BTreeSet<_>, _>>()
        })
        .transpose()?;
    let now = std::time::SystemTime::now();
    let mut out = String::new();
    let mut removed = 0usize;
    let mut kept = 0usize;
    let entries = store.entries().map_err(|e| format!("cache `{dir}`: {e}"))?;
    // A delta entry is useless without its parent chain, so the keep
    // decision is made in two passes: first each entry on its own
    // (keep-list / age), then a closure over parent links — any entry a
    // surviving delta (transitively) references is pinned too, whatever
    // its age or list status.
    let mut parent_of: BTreeMap<Fingerprint, Fingerprint> = BTreeMap::new();
    for &fp in &entries {
        if let Ok(Some(bytes)) = store.entry_bytes(fp) {
            if let Some(parent) = transform_store::entry_parent(&bytes) {
                parent_of.insert(fp, parent);
            }
        }
    }
    let mut keep_set: BTreeSet<Fingerprint> = BTreeSet::new();
    for &fp in &entries {
        let protected = keep.as_ref().is_some_and(|k| k.contains(&fp));
        // Aged out: older than the mtime cutoff when one is given;
        // otherwise (keep-list alone) any unlisted entry goes.
        let aged = match days {
            Some(d) => {
                let mtime = store
                    .entry_mtime(fp)
                    .map_err(|e| format!("cannot stat {fp}: {e}"))?;
                now.duration_since(mtime)
                    .is_ok_and(|age| age >= Duration::from_secs(d.saturating_mul(86_400)))
            }
            None => keep.is_some(),
        };
        if protected || !aged {
            keep_set.insert(fp);
        }
    }
    let mut frontier: Vec<Fingerprint> = keep_set.iter().copied().collect();
    while let Some(fp) = frontier.pop() {
        if let Some(&parent) = parent_of.get(&fp) {
            if keep_set.insert(parent) {
                out.push_str(&format!("pinned {parent} (parent of kept delta {fp})\n"));
                frontier.push(parent);
            }
        }
    }
    for &fp in &entries {
        if keep_set.contains(&fp) {
            kept += 1;
            continue;
        }
        removed += 1;
        if dry {
            out.push_str(&format!("would remove {fp}\n"));
        } else {
            store
                .remove(fp)
                .map_err(|e| format!("cannot remove {fp}: {e}"))?;
            out.push_str(&format!("removed {fp}\n"));
        }
    }
    // Admission digests whose entry is already gone are pure leftovers.
    let mut digests_swept = 0usize;
    for fp in store
        .orphan_digests()
        .map_err(|e| format!("cache `{dir}`: {e}"))?
    {
        digests_swept += 1;
        if dry {
            out.push_str(&format!("would sweep orphan digest {fp}\n"));
        } else {
            store
                .remove(fp)
                .map_err(|e| format!("cannot sweep digest {fp}: {e}"))?;
        }
    }
    // Run journals age out by the same mtime cutoff (the keep-list
    // names suite fingerprints, so it never pins a run).
    let mut runs_removed = 0usize;
    if let Some(d) = days {
        for id in store.run_ids().map_err(|e| format!("cache `{dir}`: {e}"))? {
            let mtime = store
                .run_mtime(id)
                .map_err(|e| format!("cannot stat run {id:016x}: {e}"))?;
            let aged = now
                .duration_since(mtime)
                .is_ok_and(|age| age >= Duration::from_secs(d.saturating_mul(86_400)));
            if !aged {
                continue;
            }
            runs_removed += 1;
            if dry {
                out.push_str(&format!("would remove run {id:016x}\n"));
            } else {
                store
                    .remove_run(id)
                    .map_err(|e| format!("cannot remove run {id:016x}: {e}"))?;
                out.push_str(&format!("removed run {id:016x}\n"));
            }
        }
    }
    let tmp = if dry {
        store
            .stale_tmp_entries()
            .map_err(|e| format!("cache `{dir}`: {e}"))?
            .len()
    } else {
        store
            .sweep_tmp()
            .map_err(|e| format!("cache `{dir}`: {e}"))?
    };
    if removed > 0 && !dry {
        store.rebuild_index().ok();
    }
    out.push_str(&format!(
        "{}{} entr{} removed, {} kept, {} tmp dir{} swept, {} orphan digest{} swept, {} run journal{} removed\n",
        if dry { "[dry-run] " } else { "" },
        removed,
        if removed == 1 { "y" } else { "ies" },
        kept,
        tmp,
        if tmp == 1 { "" } else { "s" },
        digests_swept,
        if digests_swept == 1 { "" } else { "s" },
        runs_removed,
        if runs_removed == 1 { "" } else { "s" },
    ));
    Ok(out)
}

fn cmd_simulate(mut opts: Opts) -> Result<String, String> {
    let file = opts
        .positional()
        .ok_or("simulate needs an ELT file (or -)")?;
    let mut cfg = SimConfig::correct();
    if let Some(bug) = opts.value("--bug") {
        cfg.bugs = match bug.as_str() {
            "invlpg-noop" => Bugs {
                invlpg_noop: true,
                ..Bugs::none()
            },
            "shootdown" => Bugs {
                missing_remote_shootdown: true,
                ..Bugs::none()
            },
            "dirty-bit" => Bugs {
                missing_dirty_update: true,
                ..Bugs::none()
            },
            other => return Err(format!("unknown --bug `{other}`")),
        };
    }
    cfg.capacity_evictions = opts.flag("--evictions");
    let mtm = load_mtm(opts.value("--mtm"))?;
    opts.finish()?;
    let src = read_source(&file)?;
    let (name, x) = parse_elt(&src).map_err(|e| format!("{file}: {e}"))?;
    let prog = SimProgram::from_execution(&x);
    let exploration = explore(&prog, &cfg);
    let conf = check_conformance(&prog, &mtm, &cfg);
    let mut out = format!(
        "{}: {} outcomes over {} states{}\n",
        if name.is_empty() { "<elt>" } else { &name },
        exploration.outcomes.len(),
        exploration.stats.states,
        if exploration.stats.truncated {
            " [truncated]"
        } else {
            ""
        }
    );
    for o in &exploration.outcomes {
        let mark = if conf.violations.contains(o) {
            "  FORBIDDEN "
        } else {
            "  ok        "
        };
        out.push_str(&format!("{mark}{}\n", o.render()));
    }
    out.push_str(&format!(
        "conformance vs {}: {}\n",
        mtm.name(),
        if conf.conforms() {
            "observed ⊆ permitted".to_string()
        } else {
            format!("{} forbidden outcome(s) observed", conf.violations.len())
        }
    ));
    Ok(out)
}

/// Re-export for tests: the program-level canonical key of a synthesized
/// witness (used to deduplicate CLI output).
pub fn program_of(x: &transform_core::exec::Execution) -> Program {
    Program::from_execution(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_str(line: &str) -> Result<String, String> {
        let args: Vec<String> = line.split_whitespace().map(str::to_string).collect();
        run(&args)
    }

    #[test]
    fn table1_lists_the_vocabulary() {
        let out = run_str("table1").expect("runs");
        for name in [
            "rf_ptw", "rf_pa", "co_pa", "fr_pa", "fr_va", "remap", "ghost",
        ] {
            assert!(out.contains(name), "missing {name} in:\n{out}");
        }
    }

    #[test]
    fn figures_reports_verdicts() {
        let out = run_str("figures").expect("runs");
        assert!(out.contains("fig10a_ptwalk2"));
        assert!(out.contains("forbidden"));
        assert!(out.contains("permitted"));
        assert!(out.contains("ext_cross_core_flush"));
    }

    #[test]
    fn figures_dot_produces_graphviz() {
        let out = run_str("figures --dot fig10a_ptwalk2").expect("runs");
        assert!(out.starts_with("digraph"));
    }

    #[test]
    fn synthesize_minimal_invlpg_suite() {
        let out = run_str("synthesize --axiom invlpg --bound 4 --quiet").expect("runs");
        assert!(out.contains("suite `invlpg` @ bound 4"), "{out}");
    }

    #[test]
    fn synthesize_jobs_produce_identical_suites() {
        let base = run_str("synthesize --axiom invlpg --bound 4").expect("runs");
        for line in [
            "synthesize --axiom invlpg --bound 4 --jobs 4",
            "synthesize --axiom invlpg --bound 4 --jobs auto",
            "synthesize --axiom invlpg --bound 4 --jobs 4 --backend relational",
        ] {
            let out = run_str(line).expect("runs");
            // Everything except the trailing summary line (whose timing
            // and worker count legitimately differ) is byte-identical.
            let elts = |s: &str| {
                s.lines()
                    .filter(|l| !l.starts_with("suite `"))
                    .collect::<Vec<_>>()
                    .join("\n")
            };
            assert_eq!(elts(&base), elts(&out), "{line}");
        }
    }

    #[test]
    fn synthesize_summary_reports_workers() {
        let out = run_str("synthesize --axiom invlpg --bound 4 --quiet --jobs 2").expect("runs");
        assert!(out.contains("on 2 workers"), "{out}");
        let out = run_str("synthesize --axiom invlpg --bound 4 --quiet").expect("runs");
        assert!(out.contains("on 1 worker"), "{out}");
    }

    #[test]
    fn jobs_zero_normalizes_to_detected_parallelism() {
        let detected = transform_par::default_jobs();
        for flag in ["--jobs 0", "--jobs auto"] {
            let out = run_str(&format!(
                "synthesize --axiom invlpg --bound 4 --quiet {flag}"
            ))
            .expect("runs");
            assert!(
                out.contains(&format!("on {detected} worker")),
                "{flag}: {out}"
            );
        }
    }

    /// The acceptance bar for the fused cross-axiom run: `--all` on any
    /// worker count, partition size, and balance mode prints exactly
    /// the sequential engine's per-axiom suites.
    #[test]
    fn synthesize_all_is_jobs_partition_and_balance_invariant() {
        let elts = |s: &str| {
            s.lines()
                .filter(|l| !l.starts_with("suite `"))
                .collect::<Vec<_>>()
                .join("\n")
        };
        // --jobs defaults to 1: the sequential reference.
        let base = run_str("synthesize --all --bound 4").expect("runs");
        // Every axiom's suite appears, identical to its solo run.
        for axiom in ["sc_per_loc", "invlpg", "tlb_causality"] {
            let solo = run_str(&format!("synthesize --axiom {axiom} --bound 4")).expect("runs");
            assert!(
                base.contains(&elts(&solo)),
                "{axiom} suite missing from --all"
            );
        }
        for line in [
            "synthesize --all --bound 4 --jobs 4",
            "synthesize --all --bound 4 --jobs 3 --partition-size 5",
            "synthesize --all --bound 4 --jobs 4 --balance depth",
            "synthesize --all --bound 4 --jobs 4 --balance mass",
        ] {
            let out = run_str(line).expect("runs");
            assert_eq!(elts(&base), elts(&out), "{line}");
        }
    }

    #[test]
    fn synthesize_axiom_selection_is_validated() {
        let e = run_str("synthesize --all --axiom invlpg --bound 4").unwrap_err();
        assert!(e.contains("mutually exclusive"), "{e}");
        let e = run_str("synthesize --bound 4").unwrap_err();
        assert!(e.contains("--all"), "{e}");
        let e = run_str("synthesize --axiom invlpg --bound 4 --balance wat").unwrap_err();
        assert!(e.contains("wat"), "{e}");
    }

    #[test]
    fn balance_mode_never_changes_the_suite() {
        let elts = |s: &str| {
            s.lines()
                .filter(|l| !l.starts_with("suite `"))
                .collect::<Vec<_>>()
                .join("\n")
        };
        let base = run_str("synthesize --axiom invlpg --bound 4").expect("runs");
        for line in [
            "synthesize --axiom invlpg --bound 4 --jobs 3 --balance mass",
            "synthesize --axiom invlpg --bound 4 --jobs 3 --balance depth",
        ] {
            let out = run_str(line).expect("runs");
            assert_eq!(elts(&base), elts(&out), "{line}");
        }
    }

    #[test]
    fn bad_jobs_and_backend_values_are_rejected() {
        let e = run_str("synthesize --axiom invlpg --bound 4 --jobs many").unwrap_err();
        assert!(e.contains("--jobs"), "{e}");
        let e = run_str("synthesize --axiom invlpg --bound 4 --backend alloy").unwrap_err();
        assert!(e.contains("alloy"), "{e}");
    }

    #[test]
    fn synthesize_rejects_unknown_axiom() {
        let e = run_str("synthesize --axiom nope --bound 4").unwrap_err();
        assert!(e.contains("nope"), "{e}");
    }

    #[test]
    fn unknown_flags_are_rejected() {
        let e = run_str("table1 --frobnicate").unwrap_err();
        assert!(e.contains("frobnicate"), "{e}");
    }

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("transform-cli-{tag}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).expect("mkdir");
        dir
    }

    #[test]
    fn cached_synthesize_is_byte_identical_warm_and_cold() {
        let dir = temp_dir("cache");
        let cache = dir.join("store");
        let line = format!(
            "synthesize --axiom invlpg --bound 4 --cache {}",
            cache.display()
        );
        let cold = run_str(&line).expect("cold run");
        let warm = run_str(&line).expect("warm run");
        assert_eq!(cold, warm, "a warm cache hit must reproduce the cold run");
        // And both match the uncached engine's ELTs.
        let uncached = run_str("synthesize --axiom invlpg --bound 4").expect("runs");
        let elts = |s: &str| {
            s.lines()
                .filter(|l| !l.starts_with("suite `"))
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert_eq!(elts(&uncached), elts(&warm));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn cached_synthesize_all_is_byte_identical_warm_and_cold() {
        let dir = temp_dir("cache-all");
        let cache = dir.join("store");
        let line = format!(
            "synthesize --all --bound 4 --jobs 2 --cache {}",
            cache.display()
        );
        let cold = run_str(&line).expect("cold all");
        let warm = run_str(&line).expect("warm all");
        assert_eq!(cold, warm, "a warm --all run must reproduce the cold one");
        // A later single-axiom lookup hits the entries the fused run
        // sealed per axiom.
        let solo = run_str(&format!(
            "synthesize --axiom invlpg --bound 4 --cache {}",
            cache.display()
        ))
        .expect("warm solo");
        let elts = |s: &str| {
            s.lines()
                .filter(|l| !l.starts_with("suite `"))
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert!(elts(&cold).contains(&elts(&solo)), "shared entries diverge");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn query_filters_cached_suites() {
        let dir = temp_dir("query");
        let cache = dir.join("store");
        let c = cache.display();
        run_str(&format!(
            "synthesize --axiom invlpg --bound 4 --quiet --cache {c}"
        ))
        .expect("seeds invlpg");
        run_str(&format!(
            "synthesize --axiom sc_per_loc --bound 4 --quiet --cache {c}"
        ))
        .expect("seeds sc_per_loc");

        let all = run_str(&format!("query --cache {c}")).expect("queries");
        assert!(all.contains("invlpg_0"), "{all}");
        assert!(all.contains("sc_per_loc_0"), "{all}");
        assert!(all.contains("2 cached suites scanned"), "{all}");

        let only_invlpg = run_str(&format!("query --cache {c} --axiom invlpg")).expect("queries");
        assert!(only_invlpg.contains("invlpg_0"), "{only_invlpg}");
        assert!(!only_invlpg.contains("sc_per_loc_0"), "{only_invlpg}");

        // Nothing at bound 4 without fences has an rmw pair.
        let rmw = run_str(&format!("query --cache {c} --rmw")).expect("queries");
        assert!(rmw.contains("0 matching ELTs"), "{rmw}");

        let shaped = run_str(&format!("query --cache {c} --shape 3")).expect("queries");
        assert!(shaped.contains("shape=3"), "{shaped}");

        let empty = run_str(&format!("query --cache {c} --bound 9")).expect("queries");
        assert!(empty.contains("0 matching ELTs"), "{empty}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn query_never_partially_serves_a_corrupt_entry() {
        let dir = temp_dir("query-corrupt");
        let cache = dir.join("store");
        let c = cache.display();
        run_str(&format!(
            "synthesize --axiom sc_per_loc --bound 4 --quiet --cache {c}"
        ))
        .expect("seeds");
        // Damage the *last* record: earlier records stream fine before
        // the error, and none of them may reach the output.
        let entry = std::fs::read_dir(&cache)
            .expect("store exists")
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .find(|p| p.extension().is_some_and(|x| x == "tfs"))
            .expect("one sealed entry");
        let mut bytes = std::fs::read(&entry).expect("readable");
        let near_end = bytes.len() - 12;
        bytes[near_end] ^= 0xff;
        std::fs::write(&entry, &bytes).expect("writable");

        let out = run_str(&format!("query --cache {c}")).expect("queries");
        assert!(out.contains("# skipping"), "{out}");
        assert!(!out.contains("sc_per_loc_0"), "partially served: {out}");
        assert!(out.contains("0 matching ELTs in 0 suites"), "{out}");
        let exported = run_str(&format!("export --cache {c}")).expect("exports");
        assert!(!exported.contains("elt \""), "partially served: {exported}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn export_dumps_parseable_elt_text() {
        let dir = temp_dir("export");
        let cache = dir.join("store");
        let c = cache.display();
        run_str(&format!(
            "synthesize --axiom invlpg --bound 4 --quiet --cache {c}"
        ))
        .expect("seeds");
        let text = run_str(&format!("export --cache {c} --axiom invlpg")).expect("exports");
        assert!(text.contains("elt \"invlpg_0\""), "{text}");
        // Each exported test parses back through the text syntax.
        for chunk in text.split("\n\n").filter(|s| s.contains("elt \"")) {
            parse_elt(chunk).unwrap_or_else(|e| panic!("{e}\n{chunk}"));
        }
        // --out writes the same dump to a file.
        let out = dir.join("dump.elt");
        let msg = run_str(&format!(
            "export --cache {c} --axiom invlpg --out {}",
            out.display()
        ))
        .expect("exports to file");
        assert!(msg.contains("exported"), "{msg}");
        assert_eq!(std::fs::read_to_string(&out).expect("written"), text);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn synthesize_out_writes_the_suite_to_a_file() {
        let dir = temp_dir("out");
        let path = dir.join("suite.elt");
        let out = run_str(&format!(
            "synthesize --axiom invlpg --bound 4 --out {}",
            path.display()
        ))
        .expect("runs");
        assert!(out.contains("wrote"), "{out}");
        assert!(out.contains("suite `invlpg`"), "{out}");
        let written = std::fs::read_to_string(&path).expect("file exists");
        let printed = run_str("synthesize --axiom invlpg --bound 4").expect("runs");
        let elts: String = printed
            .lines()
            .filter(|l| !l.starts_with("suite `"))
            .map(|l| format!("{l}\n"))
            .collect();
        assert_eq!(written, elts);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_cache_entries_are_rebuilt_through_the_cli() {
        let dir = temp_dir("corrupt");
        let cache = dir.join("store");
        let line = format!(
            "synthesize --axiom invlpg --bound 4 --cache {}",
            cache.display()
        );
        let cold = run_str(&line).expect("cold run");
        // Damage the sealed entry behind the CLI's back.
        let entry = std::fs::read_dir(&cache)
            .expect("store exists")
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .find(|p| p.extension().is_some_and(|x| x == "tfs"))
            .expect("one sealed entry");
        let mut bytes = std::fs::read(&entry).expect("readable");
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        std::fs::write(&entry, &bytes).expect("writable");
        // The CLI must detect, rebuild, and print the identical ELTs
        // (the summary line's elapsed is the fresh resynthesis time).
        let rebuilt = run_str(&line).expect("rebuild run");
        let elts = |s: &str| {
            s.lines()
                .filter(|l| !l.starts_with("suite `"))
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert_eq!(elts(&cold), elts(&rebuilt));
        // And the reseal restores warm hits: two more runs are identical
        // bytes, summary included.
        let warm_a = run_str(&line).expect("warm");
        let warm_b = run_str(&line).expect("warm");
        assert_eq!(warm_a, warm_b);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn partition_size_never_changes_the_suite() {
        let base = run_str("synthesize --axiom invlpg --bound 4").expect("runs");
        for line in [
            "synthesize --axiom invlpg --bound 4 --jobs 3 --partition-size 1",
            "synthesize --axiom invlpg --bound 4 --jobs 3 --partition-size 7",
            "synthesize --axiom invlpg --bound 4 --jobs 3 --partition-size auto",
        ] {
            let out = run_str(line).expect("runs");
            let elts = |s: &str| {
                s.lines()
                    .filter(|l| !l.starts_with("suite `"))
                    .collect::<Vec<_>>()
                    .join("\n")
            };
            assert_eq!(elts(&base), elts(&out), "{line}");
        }
        let e = run_str("synthesize --axiom invlpg --bound 4 --partition-size zero").unwrap_err();
        assert!(e.contains("--partition-size"), "{e}");
        let e = run_str("synthesize --axiom invlpg --bound 4 --partition-size 0").unwrap_err();
        assert!(e.contains("--partition-size"), "{e}");
    }

    #[test]
    fn store_verify_reports_and_removes_corruption() {
        let dir = temp_dir("verify");
        let cache = dir.join("store");
        let c = cache.display();
        run_str(&format!(
            "synthesize --axiom invlpg --bound 4 --quiet --cache {c}"
        ))
        .expect("seeds invlpg");
        run_str(&format!(
            "synthesize --axiom sc_per_loc --bound 4 --quiet --cache {c}"
        ))
        .expect("seeds sc_per_loc");

        let clean = run_str(&format!("store verify --cache {c}")).expect("verifies");
        assert!(
            clean.contains("2 ok, 0 corrupt of 2 sealed entries"),
            "{clean}"
        );
        assert!(clean.contains("index: ok"), "{clean}");

        // Damage one entry mid-file.
        let entry = std::fs::read_dir(&cache)
            .expect("store exists")
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .find(|p| p.extension().is_some_and(|x| x == "tfs"))
            .expect("a sealed entry");
        let mut bytes = std::fs::read(&entry).expect("readable");
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        std::fs::write(&entry, &bytes).expect("writable");

        let dirty = run_str(&format!("store verify --cache {c}")).expect("verifies");
        assert!(dirty.contains("CORRUPT"), "{dirty}");
        assert!(
            dirty.contains("1 ok, 1 corrupt of 2 sealed entries"),
            "{dirty}"
        );

        let removed =
            run_str(&format!("store verify --cache {c} --remove-corrupt")).expect("verifies");
        assert!(removed.contains("corrupt entries removed"), "{removed}");
        let after = run_str(&format!("store verify --cache {c}")).expect("verifies");
        assert!(
            after.contains("1 ok, 0 corrupt of 1 sealed entry"),
            "{after}"
        );
        assert!(after.contains("index: ok"), "{after}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn store_gc_ages_out_entries_and_honors_the_keep_list() {
        let dir = temp_dir("gc");
        let cache = dir.join("store");
        let c = cache.display();
        run_str(&format!(
            "synthesize --axiom invlpg --bound 4 --quiet --cache {c}"
        ))
        .expect("seeds invlpg");
        run_str(&format!(
            "synthesize --axiom sc_per_loc --bound 4 --quiet --cache {c}"
        ))
        .expect("seeds sc_per_loc");
        // A leftover shard directory from a crashed run.
        std::fs::create_dir_all(cache.join("tmp-deadbeef-1-0")).expect("mkdir");

        // Dry run: nothing is touched.
        let dry = run_str(&format!(
            "store gc --cache {c} --older-than-days 0 --dry-run"
        ))
        .expect("dry-runs");
        assert!(dry.contains("would remove"), "{dry}");
        assert!(
            dry.contains("[dry-run] 2 entries removed, 0 kept, 1 tmp dir swept"),
            "{dry}"
        );
        assert!(cache.join("tmp-deadbeef-1-0").exists());

        // Keep-list protects one fingerprint; everything else ages out.
        let store = Store::open(&cache).expect("opens");
        let protected = store.entries().expect("listable")[0];
        let keep = dir.join("keep.txt");
        std::fs::write(&keep, format!("# pinned\n{protected}\n")).expect("writable");
        let out = run_str(&format!(
            "store gc --cache {c} --older-than-days 0 --keep-list {}",
            keep.display()
        ))
        .expect("gcs");
        assert!(
            out.contains(
                "1 entry removed, 1 kept, 1 tmp dir swept, 0 orphan digests swept, \
                 2 run journals removed"
            ),
            "{out}"
        );
        assert!(!cache.join("tmp-deadbeef-1-0").exists());
        assert!(store.run_ids().expect("listable").is_empty());
        assert_eq!(store.entries().expect("listable"), vec![protected]);
        // The index was rebuilt to match.
        assert_eq!(store.read_index().expect("fresh index").len(), 1);

        // Keep-list alone: unlisted entries go regardless of age.
        run_str(&format!(
            "synthesize --axiom causality --bound 4 --quiet --cache {c}"
        ))
        .expect("seeds causality");
        let out = run_str(&format!(
            "store gc --cache {c} --keep-list {}",
            keep.display()
        ))
        .expect("gcs");
        assert!(out.contains("1 entry removed, 1 kept"), "{out}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn query_is_identical_with_and_without_the_index() {
        let dir = temp_dir("index-query");
        let cache = dir.join("store");
        let c = cache.display();
        run_str(&format!(
            "synthesize --axiom invlpg --bound 4 --quiet --cache {c}"
        ))
        .expect("seeds invlpg");
        run_str(&format!(
            "synthesize --axiom sc_per_loc --bound 4 --quiet --cache {c}"
        ))
        .expect("seeds sc_per_loc");
        assert!(cache.join(transform_store::INDEX_FILE).exists());
        let indexed = run_str(&format!("query --cache {c} --axiom invlpg")).expect("queries");
        std::fs::remove_file(cache.join(transform_store::INDEX_FILE)).expect("removable");
        let scanned = run_str(&format!("query --cache {c} --axiom invlpg")).expect("queries");
        assert_eq!(indexed, scanned, "index must only prune, never reorder");
        std::fs::remove_dir_all(&dir).ok();
    }

    /// The --help audit: every subcommand answers --help with a worked
    /// example, and the cache flags are described in the same words
    /// wherever they apply.
    #[test]
    fn every_subcommand_help_has_an_example_and_consistent_cache_flags() {
        let commands: &[&str] = &[
            "table1",
            "figures",
            "check",
            "synthesize",
            "compare",
            "simulate",
            "query",
            "export",
            "serve",
            "worker",
            "top",
            "runs",
            "store",
            "store verify",
            "store gc",
            "store push",
            "store pull",
        ];
        for cmd in commands {
            let help = run_str(&format!("{cmd} --help")).unwrap_or_else(|e| panic!("{cmd}: {e}"));
            assert!(help.starts_with("usage: transform"), "{cmd}:\n{help}");
            assert!(help.contains("example:"), "{cmd} lacks an example:\n{help}");
            assert!(
                help.contains(&format!("transform {cmd}")),
                "{cmd}'s example must invoke it:\n{help}"
            );
        }
        // Cache-flag consistency: the same wording everywhere the flag
        // exists, and every flag in the usage line is described below.
        let cache_line = "a persistent local suite store";
        let cache_url_line = "a shared `transform serve` endpoint";
        for cmd in ["synthesize", "compare"] {
            let help = run_str(&format!("{cmd} --help")).expect("help");
            assert!(help.contains("--cache DIR"), "{cmd}:\n{help}");
            assert!(help.contains(cache_line), "{cmd}:\n{help}");
            assert!(help.contains("--cache-url URL"), "{cmd}:\n{help}");
            assert!(help.contains(cache_url_line), "{cmd}:\n{help}");
        }
        for cmd in ["synthesize", "compare"] {
            let help = run_str(&format!("{cmd} --help")).expect("help");
            assert!(help.contains("--partition-size N|auto"), "{cmd}:\n{help}");
            assert!(help.contains("--balance mass|depth"), "{cmd}:\n{help}");
            assert!(help.contains("never changes the suite"), "{cmd}:\n{help}");
        }
        let synth = run_str("synthesize --help").expect("help");
        assert!(synth.contains("--all"), "{synth}");
        for cmd in [
            "query",
            "export",
            "store verify",
            "store gc",
            "store push",
            "store pull",
        ] {
            let help = run_str(&format!("{cmd} --help")).expect("help");
            assert!(help.contains("--cache DIR"), "{cmd}:\n{help}");
        }
        for cmd in ["store push", "store pull"] {
            let help = run_str(&format!("{cmd} --help")).expect("help");
            assert!(help.contains("--url URL"), "{cmd}:\n{help}");
        }
        let serve = run_str("serve --help").expect("help");
        assert!(serve.contains("--root DIR"), "{serve}");
        assert!(serve.contains("--cache-url"), "{serve}");
        for cmd in ["synthesize", "compare"] {
            let help = run_str(&format!("{cmd} --help")).expect("help");
            assert!(help.contains("--progress[=human|json]"), "{cmd}:\n{help}");
            assert!(help.contains("never changes the suite"), "{cmd}:\n{help}");
        }
        let top = run_str("top --help").expect("help");
        assert!(top.contains("--url URL"), "{top}");
        assert!(top.contains("--once"), "{top}");
        assert!(top.contains("/v1/runs"), "{top}");
        let runs_help = run_str("runs --help").expect("help");
        assert!(runs_help.contains("--chrome"), "{runs_help}");
        assert!(runs_help.contains("--cache DIR"), "{runs_help}");
        assert!(runs_help.contains("--url URL"), "{runs_help}");
        assert!(runs_help.contains("--outcome O"), "{runs_help}");
        assert!(runs_help.contains("--since ISO8601"), "{runs_help}");
        // The fleet trio: client flag, worker daemon, coordinator routes.
        assert!(synth.contains("--workers URL"), "{synth}");
        assert!(synth.contains("--lease-ttl-secs S"), "{synth}");
        let worker = run_str("worker --help").expect("help");
        assert!(worker.contains("--url URL"), "{worker}");
        assert!(worker.contains("--drain"), "{worker}");
        assert!(serve.contains("/v1/lease"), "{serve}");
        assert!(serve.contains("/v1/shard"), "{serve}");
    }

    #[test]
    fn cache_url_without_cache_is_rejected() {
        let e = run_str("synthesize --axiom invlpg --bound 4 --cache-url http://127.0.0.1:7171")
            .unwrap_err();
        assert!(e.contains("--cache"), "{e}");
        let e = run_str("synthesize --axiom invlpg --bound 4 --cache x --cache-url nonsense")
            .unwrap_err();
        assert!(e.contains("http://"), "{e}");
    }

    #[test]
    fn synthesize_reads_through_a_loopback_served_cache() {
        use transform_serve::{ServeOptions, Server};
        let dir = temp_dir("cache-url");
        let origin = dir.join("origin");
        let local = dir.join("local");
        // Seed the origin store, then serve it.
        run_str(&format!(
            "synthesize --axiom invlpg --bound 4 --quiet --cache {}",
            origin.display()
        ))
        .expect("seeds the origin");
        let server = Server::bind(&origin, "127.0.0.1:0", ServeOptions::default()).expect("binds");
        let url = format!("http://{}", server.local_addr());
        let handle = server.spawn();

        // A cold client with an empty local tier streams the suite from
        // the server, byte-identical to plain local synthesis.
        let line = format!(
            "synthesize --axiom invlpg --bound 4 --cache {} --cache-url {url}",
            local.display()
        );
        let remote_served = run_str(&line).expect("remote read");
        let fresh = run_str("synthesize --axiom invlpg --bound 4").expect("runs");
        let elts = |s: &str| {
            s.lines()
                .filter(|l| !l.starts_with("suite `"))
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert_eq!(elts(&fresh), elts(&remote_served));

        // Read-through populated the local tier: the next run is a warm
        // local hit even with the server gone.
        handle.shutdown();
        let warm = run_str(&line).expect("local warm read");
        assert_eq!(remote_served, warm, "local tier must now hold the entry");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn store_push_and_pull_replicate_sealed_entries() {
        use transform_serve::{ServeOptions, Server};
        let dir = temp_dir("push-pull");
        let local = dir.join("local");
        let served = dir.join("served");
        let mirror = dir.join("mirror");
        let c = local.display();
        run_str(&format!(
            "synthesize --axiom invlpg --bound 4 --quiet --cache {c}"
        ))
        .expect("seeds invlpg");
        run_str(&format!(
            "synthesize --axiom sc_per_loc --bound 4 --quiet --cache {c}"
        ))
        .expect("seeds sc_per_loc");

        let server = Server::bind(&served, "127.0.0.1:0", ServeOptions::default()).expect("binds");
        let url = format!("http://{}", server.local_addr());
        let handle = server.spawn();

        // Push everything; a re-push skips what the remote holds.
        let out = run_str(&format!("store push --cache {c} --url {url}")).expect("pushes");
        assert!(out.contains("2 entries pushed"), "{out}");
        let again = run_str(&format!("store push --cache {c} --url {url}")).expect("pushes");
        assert!(again.contains("0 entries pushed"), "{again}");
        assert!(again.contains("2 already present"), "{again}");

        // Pull into a fresh mirror: both entries arrive and verify clean.
        let out = run_str(&format!(
            "store pull --cache {} --url {url}",
            mirror.display()
        ))
        .expect("pulls");
        assert!(out.contains("2 entries pulled"), "{out}");
        let verify =
            run_str(&format!("store verify --cache {}", mirror.display())).expect("verifies");
        assert!(
            verify.contains("2 ok, 0 corrupt of 2 sealed entries"),
            "{verify}"
        );
        // Pulled and pushed stores hold byte-identical entries.
        let a = Store::open(&local).expect("opens");
        let b = Store::open(&mirror).expect("opens");
        assert_eq!(a.entries().expect("lists"), b.entries().expect("lists"));
        for fp in a.entries().expect("lists") {
            assert_eq!(
                a.entry_bytes(fp).expect("readable"),
                b.entry_bytes(fp).expect("readable"),
                "{fp}"
            );
        }
        handle.shutdown();
        std::fs::remove_dir_all(&dir).ok();
    }

    /// The tentpole's end-to-end acceptance: one `synthesize --workers`
    /// invocation drives a loopback coordinator plus two `transform
    /// worker` loops, and the fleet-sealed suites print identically to
    /// a single-machine run — then replicate digest-aware over `store
    /// push`/`store pull` so a pulled parent could seed a warm start.
    #[test]
    fn fleet_workers_and_client_reproduce_the_local_run() {
        use transform_serve::{ServeOptions, Server};
        let dir = temp_dir("fleet");
        let origin = dir.join("origin");
        let local = dir.join("local");
        let server = Server::bind(&origin, "127.0.0.1:0", ServeOptions::default()).expect("binds");
        let url = format!("http://{}", server.local_addr());
        let handle = server.spawn();

        // Two draining workers; their idle grace outlives the moment
        // the client registers the job.
        let workers: Vec<_> = (0..2)
            .map(|i| {
                let url = url.clone();
                std::thread::spawn(move || {
                    run_str(&format!(
                        "worker --url {url} --jobs 2 --poll-secs 1 --drain --idle-secs 3 \
                         --name w{i}"
                    ))
                })
            })
            .collect();

        // One fleet invocation drives the whole run.
        let fleet = run_str(&format!(
            "synthesize --all --bound 4 --jobs 2 --cache {} --workers {url} --fleet-ranges 3",
            local.display()
        ))
        .expect("the fleet run completes");
        let local_run = run_str("synthesize --all --bound 4 --jobs 2").expect("local run");

        // Byte-identical ELT listings; summary counters equal up to the
        // wall-clock tail.
        let split = |s: &str| {
            let elts: Vec<&str> = s.lines().filter(|l| !l.starts_with("suite `")).collect();
            let sums: Vec<&str> = s
                .lines()
                .filter(|l| l.starts_with("suite `"))
                .map(|l| l.split(" in ").next().expect("summary has a duration"))
                .collect();
            (elts.join("\n"), sums.join("\n"))
        };
        assert_eq!(split(&fleet), split(&local_run));

        // Between them, the drained workers computed every range once.
        let mut ranges = 0usize;
        for worker in workers {
            let out = worker.join().expect("joins").expect("the worker drains");
            let n: usize = out
                .split_whitespace()
                .nth(2)
                .expect("worker summary counts ranges")
                .parse()
                .expect("a number");
            ranges += n;
        }
        assert_eq!(ranges, 3, "three leasable ranges, each computed once");

        // The client's local tier now serves the suites with the fleet
        // gone entirely.
        handle.shutdown();
        let warm = run_str(&format!(
            "synthesize --all --bound 4 --jobs 2 --cache {}",
            local.display()
        ))
        .expect("warm local run");
        assert_eq!(split(&warm).0, split(&local_run).0);

        // Digest-aware replication: the fleet merge wrote admission
        // digests into the coordinator store; `store pull` fetches them
        // alongside the entries, and `store push` sends them on.
        let server = Server::bind(&origin, "127.0.0.1:0", ServeOptions::default()).expect("binds");
        let url = format!("http://{}", server.local_addr());
        let handle = server.spawn();
        let mirror = dir.join("mirror");
        let out =
            run_str(&format!("store pull --cache {} --url {url}", mirror.display())).expect("pulls");
        assert!(out.contains("pulled digest for"), "{out}");
        handle.shutdown();

        let second = dir.join("second");
        let server = Server::bind(&second, "127.0.0.1:0", ServeOptions::default()).expect("binds");
        let url = format!("http://{}", server.local_addr());
        let handle = server.spawn();
        let out =
            run_str(&format!("store push --cache {} --url {url}", mirror.display())).expect("pushes");
        assert!(out.contains("pushed digest for"), "{out}");
        handle.shutdown();
        // The digests arrived byte-identical at the second coordinator.
        let a = Store::open(&origin).expect("opens");
        let b = Store::open(&second).expect("opens");
        for fp in a.entries().expect("lists") {
            assert_eq!(
                a.digest_bytes(fp).expect("readable"),
                b.digest_bytes(fp).expect("readable"),
                "{fp}"
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fleet_flag_misuse_is_rejected() {
        let e = run_str("synthesize --axiom invlpg --bound 4 --workers http://127.0.0.1:1")
            .unwrap_err();
        assert!(e.contains("--cache"), "{e}");
        let e = run_str(
            "synthesize --axiom invlpg --bound 4 --cache x --cache-url http://127.0.0.1:1 \
             --workers http://127.0.0.1:1",
        )
        .unwrap_err();
        assert!(e.contains("mutually exclusive"), "{e}");
        let e = run_str(
            "synthesize --axiom invlpg --bound 4 --cache x --warm-start \
             --workers http://127.0.0.1:1",
        )
        .unwrap_err();
        assert!(e.contains("--warm-start"), "{e}");
        // A draining worker against a dead coordinator reports it.
        let e = run_str("worker --url http://127.0.0.1:1 --drain").unwrap_err();
        assert!(e.contains("coordinator"), "{e}");
    }

    /// The tentpole's acceptance bar: `--progress` may only ever add a
    /// stderr stream. Stdout is byte-identical at any mode and worker
    /// count, and the sealed store entries hold the same suite.
    #[test]
    fn progress_changes_neither_stdout_nor_the_sealed_bytes() {
        let base = run_str("synthesize --axiom invlpg --bound 4").expect("runs");
        let elts = |s: &str| {
            s.lines()
                .filter(|l| !l.starts_with("suite `"))
                .collect::<Vec<_>>()
                .join("\n")
        };
        for line in [
            "synthesize --axiom invlpg --bound 4 --progress=json",
            "synthesize --axiom invlpg --bound 4 --progress=json --jobs 3",
            "synthesize --axiom invlpg --bound 4 --progress --jobs 2",
        ] {
            let out = run_str(line).expect("runs");
            assert_eq!(elts(&base), elts(&out), "{line}");
        }
        // --all with --progress: same fused-run output.
        let all = run_str("synthesize --all --bound 4").expect("runs");
        let observed =
            run_str("synthesize --all --bound 4 --progress=json --jobs 4").expect("runs");
        assert_eq!(elts(&all), elts(&observed));

        // Sealed content: one cache populated observed at --jobs 3, one
        // plain and sequential — every entry holds the same suite. (Raw
        // entry bytes are *not* comparable across independent cold runs:
        // the sealed trailer records the run's wall-clock `elapsed` and
        // per-shard breakdown. Byte-exactness holds for warm re-reads of
        // the same artifact, covered below and by the store tests.)
        let dir = temp_dir("progress-bytes");
        let plain = dir.join("plain");
        let observed = dir.join("observed");
        run_str(&format!(
            "synthesize --all --bound 4 --quiet --cache {}",
            plain.display()
        ))
        .expect("plain seeds");
        run_str(&format!(
            "synthesize --all --bound 4 --quiet --jobs 3 --progress=json --cache {}",
            observed.display()
        ))
        .expect("observed seeds");
        let a = Store::open(&plain).expect("opens");
        let b = Store::open(&observed).expect("opens");
        let entries = a.entries().expect("lists");
        assert_eq!(entries, b.entries().expect("lists"));
        assert!(!entries.is_empty());
        let content = |store: &Store, fp: Fingerprint| {
            let suite =
                transform_store::read_suite(store.open_suite(fp).expect("opens")).expect("reads");
            let elts: Vec<String> = suite
                .elts
                .iter()
                .map(|e| format!("{:?} {:?} {:?}", e.program, e.witness, e.violated))
                .collect();
            (
                suite.axiom,
                elts,
                suite.stats.programs,
                suite.stats.executions,
                suite.stats.forbidden,
                suite.stats.minimal,
            )
        };
        for fp in entries {
            assert_eq!(
                content(&a, fp),
                content(&b, fp),
                "{fp}: observed sealing must preserve the suite"
            );
        }
        // A warm observed run serves the cache (axioms render cached —
        // covered by unit tests) and still prints identically.
        let warm = run_str(&format!(
            "synthesize --all --bound 4 --quiet --progress=json --cache {}",
            observed.display()
        ))
        .expect("warm observed");
        let cold = run_str(&format!(
            "synthesize --all --bound 4 --quiet --cache {}",
            plain.display()
        ))
        .expect("warm plain");
        assert_eq!(elts(&warm), elts(&cold));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn progress_rejects_unknown_modes() {
        let e = run_str("synthesize --axiom invlpg --bound 4 --progress=wat").unwrap_err();
        assert!(e.contains("wat"), "{e}");
    }

    #[test]
    fn top_once_renders_a_fleet_snapshot_of_a_loopback_serve() {
        use transform_serve::{ServeOptions, Server};
        let dir = temp_dir("top");
        let served = dir.join("served");
        run_str(&format!(
            "synthesize --axiom invlpg --bound 4 --quiet --cache {}",
            served.display()
        ))
        .expect("seeds");
        let server = Server::bind(&served, "127.0.0.1:0", ServeOptions::default()).expect("binds");
        let url = format!("http://{}", server.local_addr());
        let handle = server.spawn();

        let frame = run_str(&format!("top --once --url {url}")).expect("scrapes");
        assert!(frame.contains("transform top"), "{frame}");
        assert!(frame.contains("entries 1"), "{frame}");
        assert!(frame.contains("in-flight"), "{frame}");
        for route in transform_serve::ROUTE_NAMES {
            assert!(frame.contains(route), "{route} missing:\n{frame}");
        }

        handle.shutdown();
        let e = run_str(&format!("top --once --url {url}")).unwrap_err();
        assert!(e.contains("cannot scrape"), "{e}");
        let e = run_str("top --once").unwrap_err();
        assert!(e.contains("--url"), "{e}");
        std::fs::remove_dir_all(&dir).ok();
    }

    /// The journal tentpole end to end: every `--cache` run records a
    /// listable, inspectable, exportable journal — and recording it
    /// never changes what synthesis prints (the byte-identity of the
    /// sealed suites themselves is held by
    /// `progress_changes_neither_stdout_nor_the_sealed_bytes` and the
    /// par-level property tests).
    #[test]
    fn cached_runs_are_journaled_listable_and_exportable() {
        let dir = temp_dir("runs");
        let cache = dir.join("store");
        let c = cache.display();
        run_str(&format!(
            "synthesize --axiom invlpg --bound 4 --quiet --cache {c}"
        ))
        .expect("seeds");
        let store = Store::open(&cache).expect("opens");
        let manifests = store.runs().expect("lists");
        assert_eq!(manifests.len(), 1, "one run recorded");
        let m = &manifests[0];
        assert_eq!(m.outcome, transform_store::RunOutcome::Complete);
        assert_eq!((m.mtm.as_str(), m.bound, m.jobs), ("x86t_elt", 4, 1));
        let id = format!("{:016x}", m.id);

        let list = run_str(&format!("runs list --cache {c}")).expect("lists");
        assert!(list.contains(&id), "{list}");
        assert!(list.contains("complete"), "{list}");
        assert!(list.contains("1 run"), "{list}");

        let show = run_str(&format!("runs show {id} --cache {c}")).expect("shows");
        assert!(show.contains("invlpg"), "{show}");
        assert!(show.contains("outcome complete"), "{show}");
        assert!(show.contains("run_start 1"), "{show}");
        assert!(show.contains("run_end 1"), "{show}");

        let trace = run_str(&format!("runs export {id} --chrome --cache {c}")).expect("exports");
        assert!(trace.contains("\"traceEvents\""), "{trace}");
        assert!(trace.contains("examine_batch"), "{trace}");
        assert!(trace.contains("axiom invlpg"), "{trace}");
        assert_eq!(trace.matches('{').count(), trace.matches('}').count());

        let out = dir.join("run.trace.json");
        let msg = run_str(&format!(
            "runs export {id} --chrome --cache {c} --out {}",
            out.display()
        ))
        .expect("writes");
        assert!(msg.contains("trace events"), "{msg}");
        assert_eq!(std::fs::read_to_string(&out).expect("written"), trace);

        // A warm (fully cached) run is a run too: it records its own
        // journal with the axiom served from the cache.
        run_str(&format!(
            "synthesize --axiom invlpg --bound 4 --quiet --cache {c}"
        ))
        .expect("warm");
        assert_eq!(store.runs().expect("lists").len(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    /// The issue's acceptance bar: a deadline-cut run's manifest
    /// records outcome `cut` with the *exact* retired mass — the sum of
    /// the journaled per-partition retire events, not an estimate.
    #[test]
    fn deadline_cut_runs_record_outcome_cut_with_exact_retired_mass() {
        let dir = temp_dir("runs-cut");
        let cache = dir.join("store");
        run_str(&format!(
            "synthesize --all --bound 4 --quiet --timeout-secs 0 --jobs 2 --cache {}",
            cache.display()
        ))
        .expect("cut run");
        let store = Store::open(&cache).expect("opens");
        let manifests = store.runs().expect("lists");
        assert_eq!(manifests.len(), 1);
        let m = &manifests[0];
        assert_eq!(m.outcome, transform_store::RunOutcome::Cut, "{m:?}");
        assert!(m.cut_at_partition.is_some(), "{m:?}");
        let journal = store.read_run(m.id).expect("reads");
        let journaled: u64 = journal
            .events
            .iter()
            .filter(|e| e.kind == transform_par::JournalEventKind::PartitionRetired)
            .map(|e| e.b)
            .sum();
        assert_eq!(m.mass_retired, journaled, "retired mass must be exact");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn runs_commands_validate_their_sources_and_ids() {
        let dir = temp_dir("runs-validate");
        let c = dir.join("store").display().to_string();
        let e = run_str("runs list").unwrap_err();
        assert!(e.contains("--cache"), "{e}");
        let e = run_str(&format!("runs list --cache {c} --url http://x:1")).unwrap_err();
        assert!(e.contains("mutually exclusive"), "{e}");
        let e = run_str(&format!("runs wat --cache {c}")).unwrap_err();
        assert!(e.contains("wat"), "{e}");
        let e = run_str(&format!("runs show zzz --cache {c}")).unwrap_err();
        assert!(e.contains("zzz"), "{e}");
        let e = run_str(&format!("runs show 0123456789abcdef --cache {c}")).unwrap_err();
        assert!(e.contains("0123456789abcdef"), "{e}");
        let e = run_str(&format!("runs export 0123456789abcdef --cache {c}")).unwrap_err();
        assert!(e.contains("--chrome"), "{e}");
        std::fs::remove_dir_all(&dir).ok();
    }

    /// The fleet half of the tentpole: a live run's heartbeat manifest
    /// published to a serve instance renders in `transform top` with
    /// its per-axiom progress, and `runs list`/`show` read over --url.
    #[test]
    fn top_once_shows_live_fleet_runs_from_v1_runs() {
        use transform_serve::{ServeOptions, Server};
        let dir = temp_dir("top-runs");
        let served = dir.join("served");
        let server = Server::bind(&served, "127.0.0.1:0", ServeOptions::default()).expect("binds");
        let url = format!("http://{}", server.local_addr());
        let handle = server.spawn();

        let frame = run_str(&format!("top --once --url {url}")).expect("scrapes");
        assert!(frame.contains("runs: none recorded"), "{frame}");

        // A live synthesis run elsewhere in the fleet: its heartbeat
        // publishes a Running manifest.
        let manifest = transform_store::RunManifest {
            id: 0x00c0_ffee_0a11_ce00,
            mtm: "x86t_elt".into(),
            bound: 6,
            allow_fences: false,
            allow_rmw: false,
            jobs: 4,
            started_unix_micros: 1_700_000_000_000_000,
            elapsed_micros: 12_000_000,
            outcome: transform_store::RunOutcome::Running,
            partitions_total: 100,
            partitions_retired: 42,
            mass_total: 1000,
            mass_retired: 421,
            programs: 77,
            items_planned: 300,
            batches: 9,
            peak_live_candidates: 50,
            final_batch_size: 16,
            cut_at_partition: None,
            axioms: vec![transform_store::RunAxiom {
                name: "sc_per_loc".into(),
                state: transform_par::AxiomState::Running,
                elts: 3,
                items_examined: 99,
                batches_done: 9,
            }],
        };
        let journal = transform_store::RunJournal {
            manifest,
            events: Vec::new(),
        };
        let remote = HttpTier::new(&url).expect("connects");
        remote
            .publish_run(
                0x00c0_ffee_0a11_ce00,
                &transform_store::encode_run(&journal),
            )
            .expect("publishes");

        let frame = run_str(&format!("top --once --url {url}")).expect("scrapes");
        assert!(frame.contains("00c0ffee0a11ce00"), "{frame}");
        assert!(frame.contains("running"), "{frame}");
        assert!(frame.contains("x86t_elt@6"), "{frame}");
        assert!(frame.contains("sc_per_loc"), "{frame}");
        assert!(frame.contains("99 items"), "{frame}");

        let list = run_str(&format!("runs list --url {url}")).expect("lists");
        assert!(list.contains("00c0ffee0a11ce00"), "{list}");
        let show = run_str(&format!("runs show 00c0ffee0a11ce00 --url {url}")).expect("shows");
        assert!(show.contains("sc_per_loc"), "{show}");
        assert!(show.contains("outcome running"), "{show}");

        handle.shutdown();
        std::fs::remove_dir_all(&dir).ok();
    }

    /// A `--cache --cache-url` run publishes its sealed journal to the
    /// remote tier, so the whole fleet sees finished runs.
    #[test]
    fn cached_runs_publish_their_journals_to_the_remote_tier() {
        use transform_serve::{ServeOptions, Server};
        let dir = temp_dir("runs-publish");
        let served = dir.join("served");
        let local = dir.join("local");
        let server = Server::bind(&served, "127.0.0.1:0", ServeOptions::default()).expect("binds");
        let url = format!("http://{}", server.local_addr());
        let handle = server.spawn();

        run_str(&format!(
            "synthesize --axiom invlpg --bound 4 --quiet --cache {} --cache-url {url}",
            local.display()
        ))
        .expect("runs");
        let remote = HttpTier::new(&url).expect("connects");
        let manifests = remote.runs().expect("lists");
        assert_eq!(manifests.len(), 1, "the sealed journal was pushed");
        assert_eq!(
            manifests[0].outcome,
            transform_store::RunOutcome::Complete,
            "{:?}",
            manifests[0]
        );
        // Remote and local journals are byte-identical.
        let store = Store::open(&local).expect("opens");
        let id = manifests[0].id;
        assert_eq!(
            remote.fetch_run(id).expect("fetches").expect("present"),
            store.run_bytes(id).expect("reads").expect("present"),
        );
        handle.shutdown();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn check_and_simulate_roundtrip_through_a_file() {
        let dir = std::env::temp_dir().join("transform-cli-test");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("ptwalk2.elt");
        std::fs::write(&path, print_elt("ptwalk2", &figures::fig10a_ptwalk2())).expect("write");
        let p = path.to_str().expect("utf-8 path");

        let out = run_str(&format!("check {p}")).expect("runs");
        assert!(out.contains("forbidden"), "{out}");
        assert!(out.contains("invlpg"), "{out}");

        let out = run_str(&format!("simulate {p}")).expect("runs");
        assert!(out.contains("observed ⊆ permitted"), "{out}");

        let out = run_str(&format!("simulate {p} --bug shootdown")).expect("runs");
        assert!(out.contains("outcomes"), "{out}");
    }

    #[test]
    fn warm_start_seals_a_delta_and_prints_the_cold_output() {
        let dir = temp_dir("warm");
        let cold_c = dir.join("cold");
        let warm_c = dir.join("warm");
        let (cold_c, warm_c) = (cold_c.display(), warm_c.display());

        let cold4 = run_str(&format!(
            "synthesize --axiom sc_per_loc --bound 4 --cache {cold_c}"
        ))
        .expect("cold bound 4");
        let warm4 = run_str(&format!(
            "synthesize --axiom sc_per_loc --bound 4 --cache {warm_c}"
        ))
        .expect("warm-store bound 4 (cold seed)");
        // Stdout differs only in the (scheduling-dependent) elapsed time
        // inside the summary line; the ELT listing must match exactly.
        let strip = |s: &str| -> String {
            s.lines()
                .filter(|l| !l.starts_with("suite `"))
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert_eq!(strip(&cold4), strip(&warm4));

        // --warm-start without a parent fails loudly; =auto runs cold.
        let err = run_str("synthesize --axiom sc_per_loc --bound 4 --warm-start")
            .expect_err("warm start without --cache");
        assert!(err.contains("--cache"), "{err}");

        let cold5 = run_str(&format!(
            "synthesize --axiom sc_per_loc --bound 5 --cache {cold_c}"
        ))
        .expect("cold bound 5");
        let warm5 = run_str(&format!(
            "synthesize --axiom sc_per_loc --bound 5 --warm-start --cache {warm_c}"
        ))
        .expect("warm bound 5");
        assert_eq!(strip(&cold5), strip(&warm5));

        // verify labels the sealed result a delta of the bound-4 parent.
        let verify = run_str(&format!("store verify --cache {warm_c}")).expect("verifies");
        assert!(verify.contains("delta of"), "{verify}");
        assert!(!verify.contains("CORRUPT"), "{verify}");
        let query = run_str(&format!("query --cache {warm_c} --bound 5")).expect("queries");
        assert!(query.contains("1 delta-encoded"), "{query}");

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn verify_quarantines_exactly_the_damaged_parent() {
        let dir = temp_dir("quarantine");
        let cache = dir.join("store");
        let c = cache.display();
        run_str(&format!(
            "synthesize --axiom sc_per_loc --bound 4 --quiet --cache {c}"
        ))
        .expect("parent seals");
        run_str(&format!(
            "synthesize --axiom sc_per_loc --bound 5 --quiet --warm-start --cache {c}"
        ))
        .expect("delta seals");

        let store = Store::open(&cache).expect("opens");
        let mtm = x86t_elt();
        // Match the CLI defaults: --fences / --rmw are opt-in flags.
        let key = |bound: usize| {
            let mut o = SynthOptions::new(bound);
            o.enumeration.allow_fences = false;
            o.enumeration.allow_rmw = false;
            transform_store::suite_fingerprint(&mtm, "sc_per_loc", &o)
        };
        let parent_fp = key(4);
        let child_fp = key(5);
        let parent_path = store.entry_path(parent_fp);
        let mut bytes = std::fs::read(&parent_path).expect("parent bytes");
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        std::fs::write(&parent_path, &bytes).expect("plant damage");

        // The damaged parent is CORRUPT; the intact child is a BROKEN
        // CHAIN and must survive --remove-corrupt.
        let out = run_str(&format!("store verify --cache {c} --remove-corrupt")).expect("verifies");
        assert!(out.contains(&format!("{parent_fp} CORRUPT")), "{out}");
        assert!(out.contains(&format!("{child_fp} BROKEN CHAIN")), "{out}");
        assert!(out.contains("1 corrupt, 1 broken chain"), "{out}");
        assert!(!store.contains(parent_fp), "parent quarantined");
        assert!(store.contains(child_fp), "child retained");

        // The next cached read of the child rebuilds it (cold, full).
        let rebuilt = run_str(&format!(
            "synthesize --axiom sc_per_loc --bound 5 --quiet --cache {c}"
        ))
        .expect("rebuilds");
        assert!(
            rebuilt.contains("suite `sc_per_loc` @ bound 5"),
            "{rebuilt}"
        );
        assert_eq!(
            store.entry_is_delta(child_fp).expect("readable"),
            Some(false)
        );

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn gc_keep_list_pins_a_delta_entrys_parent_chain() {
        let dir = temp_dir("gc-chain");
        let cache = dir.join("store");
        let c = cache.display();
        run_str(&format!(
            "synthesize --axiom sc_per_loc --bound 4 --quiet --cache {c}"
        ))
        .expect("parent seals");
        run_str(&format!(
            "synthesize --axiom sc_per_loc --bound 5 --quiet --warm-start --cache {c}"
        ))
        .expect("delta seals");

        let store = Store::open(&cache).expect("opens");
        let mtm = x86t_elt();
        // Match the CLI defaults: --fences / --rmw are opt-in flags.
        let key = |bound: usize| {
            let mut o = SynthOptions::new(bound);
            o.enumeration.allow_fences = false;
            o.enumeration.allow_rmw = false;
            transform_store::suite_fingerprint(&mtm, "sc_per_loc", &o)
        };
        let parent_fp = key(4);
        let child_fp = key(5);

        // The keep-list names ONLY the delta child; its parent must be
        // pinned anyway or the kept chain would break.
        let keep = dir.join("keep.txt");
        std::fs::write(&keep, format!("{child_fp}\n")).expect("writable");
        let out = run_str(&format!(
            "store gc --cache {c} --keep-list {}",
            keep.display()
        ))
        .expect("gcs");
        assert!(
            out.contains(&format!(
                "pinned {parent_fp} (parent of kept delta {child_fp})"
            )),
            "{out}"
        );
        assert!(store.contains(parent_fp), "parent pinned through the chain");
        assert!(store.contains(child_fp));
        // The kept chain still serves.
        let served = run_str(&format!(
            "synthesize --axiom sc_per_loc --bound 5 --quiet --cache {c}"
        ))
        .expect("serves");
        assert!(served.contains("suite `sc_per_loc` @ bound 5"), "{served}");

        std::fs::remove_dir_all(&dir).ok();
    }
}
