//! The `--progress` reporter and the `transform top` fleet view.
//!
//! The reporter side: a background thread samples an
//! [`Arc<ProgressState>`] while an `_observed` synthesis run executes
//! and renders it to **stderr** (stdout stays byte-identical to an
//! unobserved run) — a redrawn per-axiom panel on a TTY, periodic
//! plain lines otherwise, or one JSON object per line for machines.
//!
//! The top side: `transform top` polls a `transform serve` instance's
//! `/v1/metrics` endpoint, parses the Prometheus text exposition, and
//! renders a live fleet view with delta-based rates.

use std::io::IsTerminal;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;
use transform_par::{AxiomState, ProgressSnapshot, ProgressState};

/// How `--progress` renders.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ProgressMode {
    /// The per-axiom panel (TTY-redrawn) or periodic summary lines.
    Human,
    /// One JSON object per line, for pipes and CI artifacts.
    Json,
}

/// Parses the consumed `--progress[=human|json]` flag value.
///
/// # Errors
///
/// A mode that is neither `human` nor `json`.
pub fn parse_progress(flag: Option<Option<String>>) -> Result<Option<ProgressMode>, String> {
    match flag {
        None => Ok(None),
        Some(None) => Ok(Some(ProgressMode::Human)),
        Some(Some(mode)) => match mode.as_str() {
            "human" => Ok(Some(ProgressMode::Human)),
            "json" => Ok(Some(ProgressMode::Json)),
            other => Err(format!(
                "unknown --progress mode `{other}` (expected `human` or `json`)"
            )),
        },
    }
}

/// Streams a run's progress to stderr until [`Reporter::finish`].
pub struct Reporter {
    stop: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl Reporter {
    /// Starts the reporter thread over `progress`.
    pub fn start(progress: Arc<ProgressState>, mode: ProgressMode) -> Reporter {
        let stop = Arc::new(AtomicBool::new(false));
        let thread = {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || report_loop(&progress, mode, &stop))
        };
        Reporter {
            stop,
            thread: Some(thread),
        }
    }

    /// Stops the thread and emits the final frame (the run's settled
    /// counters — the same numbers its `StreamMetrics` reports).
    pub fn finish(mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

impl Drop for Reporter {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

/// The reporter thread: tick, render, and on stop render once more so
/// the last frame always shows the settled counters.
fn report_loop(progress: &ProgressState, mode: ProgressMode, stop: &AtomicBool) {
    let tty = std::io::stderr().is_terminal();
    let tick = match (mode, tty) {
        (ProgressMode::Human, true) => Duration::from_millis(250),
        (ProgressMode::Human, false) => Duration::from_secs(2),
        (ProgressMode::Json, _) => Duration::from_millis(500),
    };
    let mut drawn_lines = 0usize;
    let emit = |drawn: &mut usize| {
        let snap = progress.snapshot();
        match mode {
            ProgressMode::Json => eprintln!("{}", render_json(&snap)),
            ProgressMode::Human if tty => {
                // Redraw in place: climb over the previous frame and
                // clear each line before rewriting it.
                let frame = render_panel(&snap);
                let mut out = String::new();
                if *drawn > 0 {
                    out.push_str(&format!("\x1b[{}A", *drawn));
                }
                for line in frame.lines() {
                    out.push_str("\x1b[2K");
                    out.push_str(line);
                    out.push('\n');
                }
                eprint!("{out}");
                *drawn = frame.lines().count();
            }
            ProgressMode::Human => eprintln!("{}", render_line(&snap)),
        }
    };
    while !stop.load(Ordering::Relaxed) {
        emit(&mut drawn_lines);
        // Sleep in small slices so finish() never waits a whole tick.
        let mut slept = Duration::ZERO;
        while slept < tick && !stop.load(Ordering::Relaxed) {
            let slice = Duration::from_millis(25).min(tick - slept);
            std::thread::sleep(slice);
            slept += slice;
        }
    }
    // The settled frame. On a TTY the panel was live-redrawn; plain and
    // JSON streams get their closing record here.
    match mode {
        ProgressMode::Human if tty => emit(&mut drawn_lines),
        ProgressMode::Human => eprint!("{}", render_panel(&progress.snapshot())),
        ProgressMode::Json => emit(&mut drawn_lines),
    }
}

/// `12.3s`-style compact duration (shared with the `runs` renderers).
pub(crate) fn fmt_secs(d: Duration) -> String {
    let s = d.as_secs_f64();
    if s >= 3600.0 {
        format!("{:.0}h{:02.0}m", (s / 3600.0).floor(), (s % 3600.0) / 60.0)
    } else if s >= 60.0 {
        format!("{:.0}m{:02.0}s", (s / 60.0).floor(), s % 60.0)
    } else {
        format!("{s:.1}s")
    }
}

/// The one-line global summary (non-TTY human mode).
fn render_line(snap: &ProgressSnapshot) -> String {
    let done = snap
        .axioms
        .iter()
        .filter(|a| !matches!(a.state, AxiomState::Pending | AxiomState::Running))
        .count();
    format!(
        "progress: {} partitions {}/{} mass {:.1}% programs {} axioms {}/{} done{}",
        fmt_secs(snap.elapsed),
        snap.partitions_retired,
        snap.partitions_total,
        snap.mass_fraction() * 100.0,
        snap.programs,
        done,
        snap.axioms.len(),
        match snap.enumeration_eta() {
            Some(eta) if eta > Duration::ZERO => format!(" eta ~{}", fmt_secs(eta)),
            _ => String::new(),
        },
    )
}

/// The multi-line per-axiom panel (TTY human mode, and the final frame
/// of the plain stream).
fn render_panel(snap: &ProgressSnapshot) -> String {
    let mut out = render_line(snap);
    out.push('\n');
    out.push_str(&format!(
        "  frontier depth {}  live {} (peak {})  batches {} (size {}){}\n",
        snap.frontier_depth,
        snap.live_candidates,
        snap.peak_live_candidates,
        snap.batches,
        snap.final_batch_size,
        match snap.cut_at_partition {
            Some(at) => format!("  CUT at partition {at}"),
            None => String::new(),
        },
    ));
    let width = snap.axioms.iter().map(|a| a.name.len()).max().unwrap_or(0);
    for ax in &snap.axioms {
        let eta = match snap.axiom_eta(ax) {
            Some(eta) if eta > Duration::ZERO => format!("  eta ~{}", fmt_secs(eta)),
            _ => String::new(),
        };
        let detail = match ax.state {
            AxiomState::Cached => String::new(),
            _ => format!("  {} items, {} batches", ax.items_examined, ax.batches_done),
        };
        out.push_str(&format!(
            "  {:width$}  {:8}  {:>5} elts{detail}{eta}\n",
            ax.name,
            ax.state.name(),
            ax.elts,
        ));
    }
    out
}

/// Minimal JSON string escaping (axiom names are identifiers today,
/// but a spec file could name one anything). Shared with the Chrome
/// trace exporter.
pub(crate) fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// One line-delimited JSON record of a snapshot.
fn render_json(snap: &ProgressSnapshot) -> String {
    let eta = snap
        .enumeration_eta()
        .map_or("null".to_string(), |d| format!("{:.3}", d.as_secs_f64()));
    let cut = snap
        .cut_at_partition
        .map_or("null".to_string(), |p| p.to_string());
    let axioms: Vec<String> = snap
        .axioms
        .iter()
        .map(|ax| {
            let ax_eta = snap
                .axiom_eta(ax)
                .map_or("null".to_string(), |d| format!("{:.3}", d.as_secs_f64()));
            format!(
                "{{\"name\":{},\"state\":{},\"elts\":{},\"items_examined\":{},\"batches_done\":{},\"eta_secs\":{ax_eta}}}",
                json_str(&ax.name),
                json_str(ax.state.name()),
                ax.elts,
                ax.items_examined,
                ax.batches_done,
            )
        })
        .collect();
    format!(
        "{{\"elapsed_secs\":{:.3},\"partitions_retired\":{},\"partitions_total\":{},\
         \"mass_retired\":{},\"mass_total\":{},\"mass_fraction\":{:.6},\
         \"programs\":{},\"items_planned\":{},\"frontier_depth\":{},\
         \"live_candidates\":{},\"peak_live_candidates\":{},\"batches\":{},\
         \"final_batch_size\":{},\"cut_at_partition\":{cut},\"eta_secs\":{eta},\
         \"axioms\":[{}]}}",
        snap.elapsed.as_secs_f64(),
        snap.partitions_retired,
        snap.partitions_total,
        snap.mass_retired,
        snap.mass_total,
        snap.mass_fraction(),
        snap.programs,
        snap.items_planned,
        snap.frontier_depth,
        snap.live_candidates,
        snap.peak_live_candidates,
        snap.batches,
        snap.final_batch_size,
        axioms.join(","),
    )
}

/// Parses a Prometheus text exposition into `name{labels}` → value.
/// Comment lines (`# HELP`, `# TYPE`) are skipped; the sample key keeps
/// its label set verbatim.
pub fn parse_prometheus(text: &str) -> std::collections::BTreeMap<String, f64> {
    let mut out = std::collections::BTreeMap::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some((key, value)) = line.rsplit_once(' ') {
            if let Ok(value) = value.parse::<f64>() {
                out.insert(key.to_string(), value);
            }
        }
    }
    out
}

/// `1234567` → `1.2 MB`.
fn fmt_bytes(b: f64) -> String {
    if b >= 1e9 {
        format!("{:.1} GB", b / 1e9)
    } else if b >= 1e6 {
        format!("{:.1} MB", b / 1e6)
    } else if b >= 1e3 {
        format!("{:.1} kB", b / 1e3)
    } else {
        format!("{b:.0} B")
    }
}

/// A counter's delta-based rate between two polls, as `N.N/s`.
fn rate(
    prev: Option<&std::collections::BTreeMap<String, f64>>,
    cur: &std::collections::BTreeMap<String, f64>,
    key: &str,
    interval: f64,
) -> String {
    match prev {
        Some(prev) if interval > 0.0 => {
            let d = cur.get(key).copied().unwrap_or(0.0) - prev.get(key).copied().unwrap_or(0.0);
            format!("{:.1}/s", (d / interval).max(0.0))
        }
        _ => "-".to_string(),
    }
}

/// Renders one `transform top` frame from a parsed `/v1/metrics`
/// scrape (`prev` is the previous poll, for rates; `None` on the
/// first).
pub fn render_top(
    url: &str,
    prev: Option<&std::collections::BTreeMap<String, f64>>,
    cur: &std::collections::BTreeMap<String, f64>,
    interval: f64,
) -> String {
    let get = |key: &str| cur.get(key).copied().unwrap_or(0.0);
    let mut out = format!("transform top — {url}\n");
    out.push_str(&format!(
        "entries {}   in-flight {}   requests {} ({})\n",
        get("transform_serve_entries"),
        get("transform_serve_in_flight"),
        get("transform_serve_requests_total"),
        rate(prev, cur, "transform_serve_requests_total", interval),
    ));
    out.push_str(&format!(
        "suite: {} hits ({}) / {} misses   puts: {} accepted / {} rejected\n",
        get("transform_serve_suite_hits_total"),
        rate(prev, cur, "transform_serve_suite_hits_total", interval),
        get("transform_serve_suite_misses_total"),
        get("transform_serve_puts_accepted_total"),
        get("transform_serve_puts_rejected_total"),
    ));
    out.push_str(&format!(
        "bytes: {} served ({})   {} received\n",
        fmt_bytes(get("transform_serve_bytes_served_total")),
        rate(prev, cur, "transform_serve_bytes_served_total", interval),
        fmt_bytes(get("transform_serve_bytes_received_total")),
    ));
    out.push_str(&format!(
        "{:<11}{:>10}  {:>8}  {:>12}\n",
        "route", "requests", "rate", "avg latency"
    ));
    for route in transform_serve::ROUTE_NAMES {
        let requests_key = format!("transform_serve_route_requests_total{{route=\"{route}\"}}");
        let sum_key = format!("transform_serve_route_latency_seconds_sum{{route=\"{route}\"}}");
        let count_key = format!("transform_serve_route_latency_seconds_count{{route=\"{route}\"}}");
        let count = get(&count_key);
        let avg = if count > 0.0 {
            format!("{:.1} ms", get(&sum_key) / count * 1e3)
        } else {
            "-".to_string()
        };
        out.push_str(&format!(
            "{route:<11}{:>10}  {:>8}  {avg:>12}\n",
            get(&requests_key),
            rate(prev, cur, &requests_key, interval),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn progress_flag_parses_its_three_spellings() {
        assert_eq!(parse_progress(None), Ok(None));
        assert_eq!(parse_progress(Some(None)), Ok(Some(ProgressMode::Human)));
        assert_eq!(
            parse_progress(Some(Some("human".into()))),
            Ok(Some(ProgressMode::Human))
        );
        assert_eq!(
            parse_progress(Some(Some("json".into()))),
            Ok(Some(ProgressMode::Json))
        );
        let e = parse_progress(Some(Some("wat".into()))).unwrap_err();
        assert!(e.contains("wat"), "{e}");
    }

    #[test]
    fn json_frames_are_one_balanced_object_per_snapshot() {
        let state = ProgressState::new(&["sc_per_loc", "invlpg"]);
        state.mark_cached("invlpg", 7);
        let line = render_json(&state.snapshot());
        assert!(!line.contains('\n'));
        assert!(line.starts_with('{') && line.ends_with('}'));
        assert_eq!(
            line.matches('{').count(),
            line.matches('}').count(),
            "{line}"
        );
        assert!(
            line.contains("\"name\":\"invlpg\",\"state\":\"cached\",\"elts\":7"),
            "{line}"
        );
        assert!(line.contains("\"eta_secs\":null"), "{line}");
    }

    #[test]
    fn panel_renders_cached_and_pending_axioms_distinctly() {
        let state = ProgressState::new(&["sc_per_loc", "invlpg"]);
        state.mark_cached("invlpg", 7);
        let panel = render_panel(&state.snapshot());
        assert!(panel.contains("cached"), "{panel}");
        assert!(panel.contains("pending"), "{panel}");
        assert!(panel.contains("7 elts"), "{panel}");
    }

    #[test]
    fn prometheus_parsing_keeps_labels_and_skips_comments() {
        let text = "\
# HELP x_total help text
# TYPE x_total counter
x_total 3
y{route=\"healthz\"} 1.5
";
        let parsed = parse_prometheus(text);
        assert_eq!(parsed.get("x_total"), Some(&3.0));
        assert_eq!(parsed.get("y{route=\"healthz\"}"), Some(&1.5));
        assert_eq!(parsed.len(), 2);
    }

    #[test]
    fn prometheus_parsing_survives_escaped_help_strings() {
        // HELP text may contain escaped quotes, backslashes, and `\n` —
        // and even text that looks like a sample. Comment lines are
        // skipped wholesale, so none of it leaks into the sample map.
        let text = "\
# HELP tricky \"quoted \\\" text\\n with\\\\escapes\" x_total 99
# TYPE tricky counter
tricky 1
";
        let parsed = parse_prometheus(text);
        assert_eq!(parsed.get("tricky"), Some(&1.0));
        assert_eq!(parsed.len(), 1, "{parsed:?}");
    }

    #[test]
    fn prometheus_parsing_accepts_nan_and_inf_samples() {
        // Summaries of an idle server legitimately expose NaN
        // quantiles, and +Inf histogram buckets carry the value as a
        // *label* but other gauges may be infinite.
        let text = "\
q{quantile=\"0.99\"} NaN
g_pos +Inf
g_neg -Inf
h_bucket{le=\"+Inf\"} 7
";
        let parsed = parse_prometheus(text);
        assert!(parsed
            .get("q{quantile=\"0.99\"}")
            .is_some_and(|v| v.is_nan()));
        assert_eq!(parsed.get("g_pos"), Some(&f64::INFINITY));
        assert_eq!(parsed.get("g_neg"), Some(&f64::NEG_INFINITY));
        assert_eq!(parsed.get("h_bucket{le=\"+Inf\"}"), Some(&7.0));
    }

    #[test]
    fn prometheus_parsing_keeps_unknown_families_and_drops_garbage() {
        // Families `top` has never heard of still parse (forward
        // compatibility with newer servers); lines whose value is not a
        // number are dropped rather than aborting the scrape.
        let text = "\
brand_new_metric_total 5
malformed_line_without_value
also_malformed not-a-number
";
        let parsed = parse_prometheus(text);
        assert_eq!(parsed.get("brand_new_metric_total"), Some(&5.0));
        assert_eq!(parsed.len(), 1, "{parsed:?}");
    }

    #[test]
    fn prometheus_parsing_keys_histogram_buckets_by_le_label() {
        // The serve histogram upgrade: every `_bucket{route,le}` line
        // keys separately, cumulative across `le`, with `_sum`/`_count`
        // still present for the avg-latency column.
        let text = "\
# TYPE transform_serve_route_latency_seconds histogram
transform_serve_route_latency_seconds_bucket{route=\"healthz\",le=\"0.001\"} 2
transform_serve_route_latency_seconds_bucket{route=\"healthz\",le=\"0.005\"} 3
transform_serve_route_latency_seconds_bucket{route=\"healthz\",le=\"+Inf\"} 3
transform_serve_route_latency_seconds_sum{route=\"healthz\"} 0.004
transform_serve_route_latency_seconds_count{route=\"healthz\"} 3
";
        let parsed = parse_prometheus(text);
        let bucket = |le: &str| {
            parsed
                .get(&format!(
                    "transform_serve_route_latency_seconds_bucket{{route=\"healthz\",le=\"{le}\"}}"
                ))
                .copied()
        };
        assert_eq!(bucket("0.001"), Some(2.0));
        assert_eq!(bucket("0.005"), Some(3.0));
        assert_eq!(bucket("+Inf"), Some(3.0));
        // And the summary keys render_top relies on survive alongside.
        let frame = render_top("http://x:1", None, &parsed, 2.0);
        assert!(frame.contains("1.3 ms"), "avg = 0.004/3: {frame}");
    }

    #[test]
    fn top_frames_report_rates_from_deltas() {
        let mut prev = std::collections::BTreeMap::new();
        prev.insert("transform_serve_requests_total".to_string(), 10.0);
        let mut cur = prev.clone();
        cur.insert("transform_serve_requests_total".to_string(), 30.0);
        let frame = render_top("http://x:1", Some(&prev), &cur, 2.0);
        assert!(frame.contains("(10.0/s)"), "{frame}");
        // First poll: no rates yet.
        let first = render_top("http://x:1", None, &cur, 2.0);
        assert!(first.contains("(-)"), "{first}");
        for route in transform_serve::ROUTE_NAMES {
            assert!(frame.contains(route), "{route} missing:\n{frame}");
        }
    }
}
