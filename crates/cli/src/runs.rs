//! Run journals from the CLI side: the recorder that makes every
//! cached synthesis run a first-class store artifact, and the renderers
//! behind `transform runs list|show|export`.
//!
//! The recorder wraps a run's [`ProgressState`]: a heartbeat thread
//! periodically writes a `Running` manifest into the store (and pushes
//! it to the remote tier when one is configured) so `transform runs`
//! and the serve fleet view see in-flight runs, and `finish` seals the
//! final journal — manifest plus the full drained event stream — with
//! the run's real outcome. Recording is strictly best-effort: a store
//! or remote that refuses a journal never fails the synthesis, and the
//! sealed suites are byte-identical with and without it (the par and
//! CLI test suites hold that line).

use crate::progress::{fmt_secs, json_str};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, SystemTime, UNIX_EPOCH};
use transform_par::{AxiomState, JournalEventKind, ProgressSnapshot, ProgressState};
use transform_store::{
    encode_run, fresh_run_id, HttpTier, RunJournal, RunManifest, RunOutcome, Store,
};

/// Microseconds since the Unix epoch, saturating at zero on a clock
/// before 1970.
fn now_micros() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_micros() as u64)
        .unwrap_or(0)
}

/// The constant head of a run's manifests: everything that never
/// changes between the first heartbeat and the final seal.
#[derive(Clone)]
struct ManifestHead {
    id: u64,
    mtm: String,
    bound: usize,
    fences: bool,
    rmw: bool,
    jobs: usize,
    started_unix_micros: u64,
}

impl ManifestHead {
    fn manifest(&self, outcome: RunOutcome, snap: &ProgressSnapshot) -> RunManifest {
        RunManifest::from_snapshot(
            self.id,
            &self.mtm,
            self.bound,
            self.fences,
            self.rmw,
            self.jobs,
            self.started_unix_micros,
            outcome,
            snap,
        )
    }
}

/// Records one synthesis run into a store (and optionally a remote
/// `transform serve` tier) while it executes.
pub struct JournalRecorder {
    stop: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
    store: Store,
    remote: Option<HttpTier>,
    progress: Arc<ProgressState>,
    head: ManifestHead,
}

impl JournalRecorder {
    /// How often the heartbeat republishes the `Running` manifest.
    const HEARTBEAT: Duration = Duration::from_secs(1);

    /// Starts recording: writes the first `Running` manifest
    /// immediately, then heartbeats until [`JournalRecorder::finish`].
    ///
    /// # Errors
    ///
    /// An unopenable store directory or a malformed remote URL — the
    /// same errors the synthesis call itself would hit.
    #[allow(clippy::too_many_arguments)]
    pub fn start(
        dir: &str,
        url: Option<&str>,
        mtm: &str,
        bound: usize,
        fences: bool,
        rmw: bool,
        jobs: usize,
        progress: Arc<ProgressState>,
    ) -> Result<JournalRecorder, String> {
        let open = || Store::open(dir).map_err(|e| format!("cannot open cache `{dir}`: {e}"));
        let connect = |url: Option<&str>| {
            url.map(HttpTier::new)
                .transpose()
                .map_err(|e| e.to_string())
        };
        let store = open()?;
        let remote = connect(url)?;
        let head = ManifestHead {
            id: fresh_run_id(),
            mtm: mtm.to_string(),
            bound,
            fences,
            rmw,
            jobs,
            started_unix_micros: now_micros(),
        };
        let stop = Arc::new(AtomicBool::new(false));
        let thread = {
            let (store, remote) = (open()?, connect(url)?);
            let (stop, head, progress) = (Arc::clone(&stop), head.clone(), Arc::clone(&progress));
            std::thread::spawn(move || {
                loop {
                    let journal = RunJournal {
                        manifest: head.manifest(RunOutcome::Running, &progress.snapshot()),
                        events: Vec::new(),
                    };
                    // Best-effort on both tiers: a full disk or an
                    // unreachable remote never disturbs the run.
                    if store.write_run(&journal).is_ok() {
                        if let Some(remote) = &remote {
                            remote.publish_run(head.id, &encode_run(&journal)).ok();
                        }
                    }
                    // Sleep in small slices so finish() never waits a
                    // whole heartbeat.
                    let mut slept = Duration::ZERO;
                    while slept < Self::HEARTBEAT {
                        if stop.load(Ordering::Relaxed) {
                            return;
                        }
                        let slice = Duration::from_millis(25).min(Self::HEARTBEAT - slept);
                        std::thread::sleep(slice);
                        slept += slice;
                    }
                }
            })
        };
        Ok(JournalRecorder {
            stop,
            thread: Some(thread),
            store,
            remote,
            progress,
            head,
        })
    }

    /// Stops the heartbeat and seals the final journal — the settled
    /// manifest (outcome `Cut` when the deadline hit, `Complete`
    /// otherwise) plus the run's full drained event stream. Returns the
    /// run id.
    pub fn finish(mut self) -> u64 {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
        let snap = self.progress.snapshot();
        let outcome = if snap.cut_at_partition.is_some() {
            RunOutcome::Cut
        } else {
            RunOutcome::Complete
        };
        let journal = RunJournal {
            manifest: self.head.manifest(outcome, &snap),
            events: self.progress.take_journal(),
        };
        match self.store.write_run(&journal) {
            Ok(()) => {
                if let Some(remote) = &self.remote {
                    remote.publish_run(self.head.id, &encode_run(&journal)).ok();
                }
            }
            Err(e) => eprintln!("transform: run journal not recorded: {e}"),
        }
        self.head.id
    }
}

impl Drop for JournalRecorder {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

/// Parses a run id as `transform runs` prints it: exactly the 16-hex
/// `run-<id>.tfr` stem.
pub fn parse_run_id(s: &str) -> Result<u64, String> {
    if s.len() == 16 && s.bytes().all(|b| b.is_ascii_hexdigit()) {
        u64::from_str_radix(s, 16).map_err(|_| format!("`{s}` is not a run id"))
    } else {
        Err(format!("`{s}` is not a run id (16 hex digits)"))
    }
}

/// Parses `--outcome` exactly as `transform runs list` prints outcomes.
pub fn parse_outcome(s: &str) -> Result<RunOutcome, String> {
    match s {
        "running" => Ok(RunOutcome::Running),
        "complete" => Ok(RunOutcome::Complete),
        "cut" => Ok(RunOutcome::Cut),
        "crashed" => Ok(RunOutcome::Crashed),
        other => Err(format!(
            "unknown --outcome `{other}` (expected `running`, `complete`, `cut`, or `crashed`)"
        )),
    }
}

/// Parses a `--since` instant — ISO 8601 UTC, date or date-time
/// (`2026-08-01`, `2026-08-01T12:30:00`, seconds and a trailing `Z`
/// optional) — to microseconds since the Unix epoch, the unit run
/// manifests carry.
pub fn parse_since(s: &str) -> Result<u64, String> {
    let bad = || {
        format!(
            "`{s}` is not an ISO 8601 UTC instant (expected YYYY-MM-DD or \
             YYYY-MM-DDTHH:MM[:SS], optionally suffixed Z)"
        )
    };
    let text = s.strip_suffix('Z').unwrap_or(s);
    let (date, time) = match text.split_once('T') {
        Some((date, time)) => (date, Some(time)),
        None => (text, None),
    };
    let date: Vec<u64> = date
        .split('-')
        .map(|p| p.parse().map_err(|_| bad()))
        .collect::<Result<_, _>>()?;
    let [year, month, day] = date[..] else {
        return Err(bad());
    };
    let leap = year % 4 == 0 && (year % 100 != 0 || year % 400 == 0);
    let month_days = [
        31,
        if leap { 29 } else { 28 },
        31,
        30,
        31,
        30,
        31,
        31,
        30,
        31,
        30,
        31,
    ];
    if year < 1970 || !(1..=12).contains(&month) || day < 1 || day > month_days[month as usize - 1]
    {
        return Err(bad());
    }
    let (hour, minute, second) = match time {
        None => (0, 0, 0),
        Some(time) => {
            let parts: Vec<u64> = time
                .split(':')
                .map(|p| p.parse().map_err(|_| bad()))
                .collect::<Result<_, _>>()?;
            match parts[..] {
                [h, m] => (h, m, 0),
                [h, m, s] => (h, m, s),
                _ => return Err(bad()),
            }
        }
    };
    if hour > 23 || minute > 59 || second > 59 {
        return Err(bad());
    }
    // Days since the epoch: whole years first, then whole months.
    let mut days = 0u64;
    for y in 1970..year {
        days += if y % 4 == 0 && (y % 100 != 0 || y % 400 == 0) {
            366
        } else {
            365
        };
    }
    days += month_days[..month as usize - 1].iter().sum::<u64>() + (day - 1);
    Ok((days * 86_400 + hour * 3_600 + minute * 60 + second) * 1_000_000)
}

/// `mass_retired / mass_total` as a percentage, `100.0` for an empty
/// space.
fn mass_pct(m: &RunManifest) -> f64 {
    if m.mass_total == 0 {
        100.0
    } else {
        m.mass_retired as f64 / m.mass_total as f64 * 100.0
    }
}

fn total_elts(m: &RunManifest) -> u64 {
    m.axioms.iter().map(|a| a.elts).sum()
}

/// The `transform runs list` table, newest first.
pub fn render_runs_list(manifests: &[RunManifest]) -> String {
    let mut out = format!(
        "{:<16}  {:<8}  {:<14}  {:>4}  {:>8}  {:>9}  {:>6}  {:>5}\n",
        "run", "outcome", "mtm@bound", "jobs", "elapsed", "programs", "mass", "elts"
    );
    for m in manifests {
        out.push_str(&format!(
            "{:016x}  {:<8}  {:<14}  {:>4}  {:>8}  {:>9}  {:>5.1}%  {:>5}\n",
            m.id,
            m.outcome.name(),
            format!("{}@{}", m.mtm, m.bound),
            m.jobs,
            fmt_secs(Duration::from_micros(m.elapsed_micros)),
            m.programs,
            mass_pct(m),
            total_elts(m),
        ));
    }
    out.push_str(&format!(
        "{} run{}\n",
        manifests.len(),
        if manifests.len() == 1 { "" } else { "s" }
    ));
    out
}

/// The `transform runs show` detail page: the manifest, the per-axiom
/// table, and the journal's per-kind event counts.
pub fn render_run_show(journal: &RunJournal) -> String {
    let m = &journal.manifest;
    let mut out = format!("run {:016x}\n", m.id);
    out.push_str(&format!(
        "  {} @ bound {}  fences {}  rmw {}  jobs {}\n",
        m.mtm,
        m.bound,
        if m.allow_fences { "on" } else { "off" },
        if m.allow_rmw { "on" } else { "off" },
        m.jobs,
    ));
    out.push_str(&format!(
        "  started {}.{:06}  elapsed {}  outcome {}\n",
        m.started_unix_micros / 1_000_000,
        m.started_unix_micros % 1_000_000,
        fmt_secs(Duration::from_micros(m.elapsed_micros)),
        m.outcome.name(),
    ));
    out.push_str(&format!(
        "  partitions {}/{}  mass {:.1}% ({}/{})  programs {}  plan items {}\n",
        m.partitions_retired,
        m.partitions_total,
        mass_pct(m),
        m.mass_retired,
        m.mass_total,
        m.programs,
        m.items_planned,
    ));
    out.push_str(&format!(
        "  batches {} (final size {})  peak live {}{}\n",
        m.batches,
        m.final_batch_size,
        m.peak_live_candidates,
        match m.cut_at_partition {
            Some(at) => format!("  CUT at partition {at}"),
            None => String::new(),
        },
    ));
    let width = m.axioms.iter().map(|a| a.name.len()).max().unwrap_or(0);
    for ax in &m.axioms {
        out.push_str(&format!(
            "  {:width$}  {:<8}  {:>5} elts  {:>8} items  {:>5} batches\n",
            ax.name,
            ax.state.name(),
            ax.elts,
            ax.items_examined,
            ax.batches_done,
        ));
    }
    let mut counts: std::collections::BTreeMap<&str, usize> = std::collections::BTreeMap::new();
    for ev in &journal.events {
        *counts.entry(ev.kind.name()).or_default() += 1;
    }
    let detail: Vec<String> = counts.iter().map(|(k, n)| format!("{k} {n}")).collect();
    out.push_str(&format!(
        "  events {}{}\n",
        journal.events.len(),
        if detail.is_empty() {
            String::new()
        } else {
            format!(" ({})", detail.join(", "))
        },
    ));
    out
}

/// One Chrome trace-event JSON document (`about://tracing`,
/// Perfetto's legacy loader) for a run journal: per-axiom named
/// threads, an `X` complete event per examine batch, a cumulative
/// retired-mass counter, and instants for the structural transitions.
pub fn chrome_trace(journal: &RunJournal) -> String {
    let m = &journal.manifest;
    let mut events: Vec<String> = Vec::with_capacity(journal.events.len() + m.axioms.len() + 2);
    events.push(format!(
        "{{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"process_name\",\"args\":{{\"name\":{}}}}}",
        json_str(&format!(
            "transform run {:016x} ({}@{})",
            m.id, m.mtm, m.bound
        )),
    ));
    events.push(
        "{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"thread_name\",\"args\":{\"name\":\"run\"}}"
            .to_string(),
    );
    for (slot, ax) in m.axioms.iter().enumerate() {
        events.push(format!(
            "{{\"ph\":\"M\",\"pid\":1,\"tid\":{},\"name\":\"thread_name\",\"args\":{{\"name\":{}}}}}",
            slot + 1,
            json_str(&format!("axiom {}", ax.name)),
        ));
    }
    let mut mass_retired = 0u64;
    for ev in &journal.events {
        let tid = ev.axiom.map_or(0, |slot| u64::from(slot) + 1);
        match ev.kind {
            JournalEventKind::BatchExamined => {
                // The batch's duration was journaled in `c`; the event
                // was recorded at batch end, so the span starts at
                // `t - c`.
                events.push(format!(
                    "{{\"ph\":\"X\",\"pid\":1,\"tid\":{tid},\"ts\":{},\"dur\":{},\
                     \"name\":\"examine_batch\",\"args\":{{\"items\":{},\"found\":{}}}}}",
                    ev.t_micros.saturating_sub(ev.c),
                    ev.c.max(1),
                    ev.a,
                    ev.b,
                ));
            }
            JournalEventKind::PartitionRetired => {
                mass_retired += ev.b;
                events.push(format!(
                    "{{\"ph\":\"C\",\"pid\":1,\"tid\":0,\"ts\":{},\
                     \"name\":\"mass_retired\",\"args\":{{\"mass\":{mass_retired}}}}}",
                    ev.t_micros,
                ));
            }
            kind => {
                // Structural transitions render as instants — global
                // scope for run-wide events, thread scope for
                // axiom-scoped ones.
                let scope = if ev.axiom.is_some() { "t" } else { "g" };
                events.push(format!(
                    "{{\"ph\":\"i\",\"pid\":1,\"tid\":{tid},\"ts\":{},\"s\":\"{scope}\",\
                     \"name\":{},\"args\":{{\"a\":{},\"b\":{},\"c\":{}}}}}",
                    ev.t_micros,
                    json_str(kind.name()),
                    ev.a,
                    ev.b,
                    ev.c,
                ));
            }
        }
    }
    format!(
        "{{\"traceEvents\":[{}],\"displayTimeUnit\":\"ms\",\"otherData\":{{\
         \"run\":{},\"mtm\":{},\"bound\":{},\"jobs\":{},\"outcome\":{}}}}}\n",
        events.join(","),
        json_str(&format!("{:016x}", m.id)),
        json_str(&m.mtm),
        m.bound,
        m.jobs,
        json_str(m.outcome.name()),
    )
}

/// The `transform top` runs section: recent runs from `/v1/runs`,
/// in-flight ones expanded with their live per-axiom progress. Empty
/// input renders an explicit "none" line so the section is always
/// present in a frame.
pub fn render_runs_section(manifests: &[RunManifest]) -> String {
    const SHOWN: usize = 6;
    if manifests.is_empty() {
        return "runs: none recorded\n".to_string();
    }
    let mut out = format!(
        "runs: {} recorded{}\n",
        manifests.len(),
        if manifests.len() > SHOWN {
            format!(", {SHOWN} shown")
        } else {
            String::new()
        },
    );
    for m in manifests.iter().take(SHOWN) {
        out.push_str(&format!(
            "  {:016x}  {:<8}  {:<14}  jobs {:<3}  {:>8}  mass {:>5.1}%  {:>5} elts\n",
            m.id,
            m.outcome.name(),
            format!("{}@{}", m.mtm, m.bound),
            m.jobs,
            fmt_secs(Duration::from_micros(m.elapsed_micros)),
            mass_pct(m),
            total_elts(m),
        ));
        // A live run's per-axiom progress, straight from its latest
        // heartbeat manifest.
        if m.outcome == RunOutcome::Running {
            let width = m.axioms.iter().map(|a| a.name.len()).max().unwrap_or(0);
            for ax in &m.axioms {
                if ax.state == AxiomState::Pending {
                    continue;
                }
                out.push_str(&format!(
                    "    {:width$}  {:<8}  {:>5} elts  {:>8} items\n",
                    ax.name,
                    ax.state.name(),
                    ax.elts,
                    ax.items_examined,
                ));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use transform_par::JournalEvent;
    use transform_store::RunAxiom;

    fn manifest(outcome: RunOutcome) -> RunManifest {
        RunManifest {
            id: 0xdead_beef_0000_0001,
            mtm: "x86t_elt".into(),
            bound: 4,
            allow_fences: false,
            allow_rmw: false,
            jobs: 2,
            started_unix_micros: 1_700_000_000_000_000,
            elapsed_micros: 1_500_000,
            outcome,
            partitions_total: 10,
            partitions_retired: 4,
            mass_total: 100,
            mass_retired: 40,
            programs: 7,
            items_planned: 21,
            batches: 3,
            peak_live_candidates: 5,
            final_batch_size: 8,
            cut_at_partition: None,
            axioms: vec![
                RunAxiom {
                    name: "sc_per_loc".into(),
                    state: AxiomState::Running,
                    elts: 2,
                    items_examined: 14,
                    batches_done: 2,
                },
                RunAxiom {
                    name: "invlpg".into(),
                    state: AxiomState::Pending,
                    elts: 0,
                    items_examined: 0,
                    batches_done: 0,
                },
            ],
        }
    }

    #[test]
    fn outcome_filters_parse_the_printed_spellings() {
        assert_eq!(parse_outcome("running"), Ok(RunOutcome::Running));
        assert_eq!(parse_outcome("complete"), Ok(RunOutcome::Complete));
        assert_eq!(parse_outcome("cut"), Ok(RunOutcome::Cut));
        assert_eq!(parse_outcome("crashed"), Ok(RunOutcome::Crashed));
        assert!(parse_outcome("done").is_err());
    }

    #[test]
    fn since_instants_parse_iso8601_utc() {
        assert_eq!(parse_since("1970-01-01"), Ok(0));
        assert_eq!(parse_since("1970-01-02T00:00:01"), Ok(86_401_000_000));
        // A known fixed point: 2020-01-01T00:00:00Z.
        assert_eq!(parse_since("2020-01-01T00:00Z"), Ok(1_577_836_800_000_000));
        // Leap day 2024 parses; the same day in 2023 does not exist.
        assert_eq!(
            parse_since("2024-02-29"),
            Ok((1_577_836_800 + (366 + 365 + 365 + 365 + 59) as u64 * 86_400) * 1_000_000)
        );
        assert!(parse_since("2023-02-29").is_err());
        for bad in [
            "yesterday",
            "2026-13-01",
            "2026-00-01",
            "2026-01-32",
            "1969-12-31",
            "2026-08-08T24:00",
            "2026-08-08T12",
            "2026-08",
        ] {
            assert!(parse_since(bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn run_ids_parse_exactly_sixteen_hex_digits() {
        assert_eq!(parse_run_id("00000000deadbeef"), Ok(0xdead_beef));
        assert!(parse_run_id("deadbeef").is_err(), "too short");
        assert!(parse_run_id("00000000deadbee\u{30}0").is_err(), "too long");
        assert!(parse_run_id("00000000deadbeeg").is_err(), "not hex");
    }

    #[test]
    fn list_and_show_render_the_manifest_counters() {
        let m = manifest(RunOutcome::Complete);
        let list = render_runs_list(std::slice::from_ref(&m));
        assert!(list.contains("deadbeef00000001"), "{list}");
        assert!(list.contains("complete"), "{list}");
        assert!(list.contains("x86t_elt@4"), "{list}");
        assert!(list.contains("40.0%"), "{list}");
        assert!(list.contains("1 run\n"), "{list}");

        let journal = RunJournal {
            manifest: m,
            events: vec![JournalEvent {
                t_micros: 0,
                kind: JournalEventKind::RunStart,
                axiom: None,
                a: 10,
                b: 100,
                c: 2,
            }],
        };
        let show = render_run_show(&journal);
        assert!(show.contains("run deadbeef00000001"), "{show}");
        assert!(show.contains("partitions 4/10"), "{show}");
        assert!(show.contains("sc_per_loc"), "{show}");
        assert!(show.contains("events 1 (run_start 1)"), "{show}");
    }

    #[test]
    fn chrome_traces_are_balanced_json_with_named_threads() {
        let journal = RunJournal {
            manifest: manifest(RunOutcome::Cut),
            events: vec![
                JournalEvent {
                    t_micros: 10,
                    kind: JournalEventKind::RunStart,
                    axiom: None,
                    a: 10,
                    b: 100,
                    c: 2,
                },
                JournalEvent {
                    t_micros: 500,
                    kind: JournalEventKind::BatchExamined,
                    axiom: Some(0),
                    a: 8,
                    b: 1,
                    c: 120,
                },
                JournalEvent {
                    t_micros: 600,
                    kind: JournalEventKind::PartitionRetired,
                    axiom: None,
                    a: 0,
                    b: 25,
                    c: 0,
                },
            ],
        };
        let trace = chrome_trace(&journal);
        assert!(trace.contains("\"traceEvents\""), "{trace}");
        assert!(trace.contains("axiom sc_per_loc"), "{trace}");
        // The batch span starts `dur` before its journal timestamp.
        assert!(
            trace.contains("\"ts\":380,\"dur\":120"),
            "batch span misplaced: {trace}"
        );
        assert!(trace.contains("\"mass\":25"), "{trace}");
        assert!(trace.contains("\"outcome\":\"cut\""), "{trace}");
        assert_eq!(trace.matches('{').count(), trace.matches('}').count());
        assert_eq!(trace.matches('[').count(), trace.matches(']').count());
    }

    #[test]
    fn top_runs_section_expands_live_runs_per_axiom() {
        assert_eq!(render_runs_section(&[]), "runs: none recorded\n");
        let live = render_runs_section(&[manifest(RunOutcome::Running)]);
        assert!(live.contains("running"), "{live}");
        assert!(live.contains("sc_per_loc"), "{live}");
        assert!(live.contains("2 elts"), "{live}");
        assert!(
            !live.contains("invlpg"),
            "pending axioms are elided: {live}"
        );
        // Finished runs stay one line.
        let done = render_runs_section(&[manifest(RunOutcome::Complete)]);
        assert!(!done.contains("sc_per_loc"), "{done}");
    }
}
