//! A tiny argument parser: positionals, `--flag`, and `--key value`.
//!
//! The workspace avoids external dependencies (DESIGN.md); ELT tooling
//! needs nothing fancier than this.

/// Parsed-on-demand command-line options.
pub struct Opts {
    args: Vec<Option<String>>,
}

impl Opts {
    /// Wraps an argument list.
    pub fn new(args: &[String]) -> Opts {
        Opts {
            args: args.iter().cloned().map(Some).collect(),
        }
    }

    /// Takes the next unconsumed positional (non-`--`) argument.
    pub fn positional(&mut self) -> Option<String> {
        for slot in &mut self.args {
            if slot.as_deref().is_some_and(|s| !s.starts_with("--")) {
                return slot.take();
            }
            if slot.is_some() {
                // A flag (and possibly its value) lies between positionals;
                // stop so commands keep a predictable argument order? No —
                // flags may appear anywhere, keep scanning.
                continue;
            }
        }
        None
    }

    /// Takes `--name value`, if present.
    pub fn value(&mut self, name: &str) -> Option<String> {
        let at = self.args.iter().position(|s| s.as_deref() == Some(name))?;
        self.args[at] = None;
        let v = self.args.get_mut(at + 1)?.take();
        v
    }

    /// Takes `--name` or `--name=value`: `None` when the flag is
    /// absent, `Some(None)` for the bare flag, `Some(Some(v))` for the
    /// `=`-attached form. For flags whose value is optional (the space
    /// form would swallow the next positional).
    pub fn optional_value(&mut self, name: &str) -> Option<Option<String>> {
        let prefix = format!("{name}=");
        for slot in &mut self.args {
            match slot.as_deref() {
                Some(s) if s == name => {
                    slot.take();
                    return Some(None);
                }
                Some(s) if s.starts_with(&prefix) => {
                    let v = s[prefix.len()..].to_string();
                    slot.take();
                    return Some(Some(v));
                }
                _ => {}
            }
        }
        None
    }

    /// Takes the boolean flag `--name`, returning whether it was present.
    pub fn flag(&mut self, name: &str) -> bool {
        match self.args.iter().position(|s| s.as_deref() == Some(name)) {
            Some(at) => {
                self.args[at] = None;
                true
            }
            None => false,
        }
    }

    /// Takes `--jobs N|auto` and normalizes it to a concrete worker
    /// count **here, once** — not at each call site: absent means 1
    /// (the sequential engine), and both `auto` and `0` mean the
    /// machine's detected parallelism. Every subcommand that accepts
    /// `--jobs` goes through this, so no caller can hand a zero worker
    /// count to the engine or diverge on what `auto` means.
    ///
    /// # Errors
    ///
    /// A value that is neither a number nor `auto`.
    pub fn jobs(&mut self) -> Result<usize, String> {
        match self.value("--jobs").as_deref() {
            None => Ok(1),
            Some("auto") | Some("0") => Ok(transform_par::default_jobs()),
            Some(n) => {
                let n: usize = n.parse().map_err(|_| "--jobs must be a number or `auto`")?;
                Ok(n.max(1))
            }
        }
    }

    /// Errors on any argument that was never consumed.
    pub fn finish(self) -> Result<(), String> {
        let leftover: Vec<String> = self.args.into_iter().flatten().collect();
        if leftover.is_empty() {
            Ok(())
        } else {
            Err(format!("unrecognized arguments: {}", leftover.join(" ")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts(line: &str) -> Opts {
        Opts::new(
            &line
                .split_whitespace()
                .map(str::to_string)
                .collect::<Vec<_>>(),
        )
    }

    #[test]
    fn positionals_skip_flags() {
        let mut o = opts("check file.elt --mtm x86tso");
        assert_eq!(o.positional().as_deref(), Some("check"));
        assert_eq!(o.positional().as_deref(), Some("file.elt"));
        assert_eq!(o.value("--mtm").as_deref(), Some("x86tso"));
        o.finish().expect("all consumed");
    }

    #[test]
    fn flags_and_values_anywhere() {
        let mut o = opts("--quiet synthesize --bound 5");
        assert!(o.flag("--quiet"));
        assert_eq!(o.positional().as_deref(), Some("synthesize"));
        assert_eq!(o.value("--bound").as_deref(), Some("5"));
        assert!(!o.flag("--quiet"), "consumed once");
        o.finish().expect("all consumed");
    }

    #[test]
    fn leftovers_are_errors() {
        let mut o = opts("table1 --bogus");
        assert_eq!(o.positional().as_deref(), Some("table1"));
        let e = o.finish().unwrap_err();
        assert!(e.contains("--bogus"));
    }

    #[test]
    fn missing_value_is_none() {
        let mut o = opts("synthesize --bound");
        assert_eq!(o.positional().as_deref(), Some("synthesize"));
        assert_eq!(o.value("--bound"), None);
    }

    #[test]
    fn optional_values_take_bare_and_attached_forms() {
        let mut o = opts("synthesize --progress --bound 4");
        assert_eq!(o.optional_value("--progress"), Some(None));
        assert_eq!(o.positional().as_deref(), Some("synthesize"));
        assert_eq!(o.value("--bound").as_deref(), Some("4"));
        o.finish().expect("all consumed");

        let mut o = opts("synthesize --progress=json");
        assert_eq!(
            o.optional_value("--progress"),
            Some(Some("json".to_string()))
        );
        o.positional();
        o.finish().expect("all consumed");

        // Absent flag, and the bare form never swallows a neighbor.
        assert_eq!(opts("synthesize").optional_value("--progress"), None);
        let mut o = opts("--progress human");
        assert_eq!(o.optional_value("--progress"), Some(None));
        assert_eq!(o.positional().as_deref(), Some("human"));
    }

    #[test]
    fn jobs_normalizes_zero_and_auto_to_detected_parallelism() {
        let detected = transform_par::default_jobs();
        assert!(detected >= 1);
        for line in ["synthesize --jobs 0", "synthesize --jobs auto"] {
            let mut o = opts(line);
            assert_eq!(o.jobs(), Ok(detected), "{line}");
            o.positional();
            o.finish().expect("all consumed");
        }
        // Absent: sequential. Explicit numbers pass through, floored at 1.
        assert_eq!(opts("synthesize").jobs(), Ok(1));
        assert_eq!(opts("x --jobs 7").jobs(), Ok(7));
        // Nonsense is rejected.
        let e = opts("x --jobs many").jobs().unwrap_err();
        assert!(e.contains("--jobs"), "{e}");
    }
}
