//! Per-subcommand `--help` text.
//!
//! Every subcommand answers `transform <cmd> --help` with its usage,
//! its flags — cache flags (`--cache`, `--cache-url`,
//! `--partition-size`) are described in the same words everywhere they
//! apply — and one worked example.

/// The shared description of the cache flags, verbatim in every
/// subcommand that accepts them.
const CACHE_FLAGS: &str = "\
  --cache DIR            a persistent local suite store: sealed suites are
                         streamed back instead of resynthesized; corrupt or
                         stale entries are detected by checksums and rebuilt.
                         Cached runs also record a run journal into the
                         store (`transform runs --help`) — journaling never
                         changes the sealed suites
  --cache-url URL        a shared `transform serve` endpoint (http://host:port)
                         behind the local store: a local miss fetches from the
                         remote (validated byte-for-byte, then installed
                         locally), and freshly sealed suites are pushed back —
                         requires --cache for the local tier";

/// The shared description of `--partition-size`, verbatim wherever it
/// applies.
const PARTITION_FLAG: &str = "\
  --partition-size N|auto  examine-batch granularity for the streaming engine
                         (`auto` adapts to observed throughput); scheduling
                         only — it never changes the suite";

/// The shared description of `--balance`, verbatim wherever it applies.
const BALANCE_FLAG: &str = "\
  --balance mass|depth   how the enumeration splits into work partitions:
                         `mass` (default) sizes partitions by estimated
                         subtree work, `depth` is the fixed-depth baseline;
                         scheduling only — it never changes the suite";

/// The shared description of `--progress`, verbatim wherever it
/// applies.
const PROGRESS_FLAG: &str = "\
  --progress[=human|json]  live per-axiom telemetry on stderr while the run
                         executes: partitions and subtree mass retired,
                         programs admitted, ELTs found, and a mass-based
                         ETA; cache-served axioms render as `cached`.
                         `json` emits one object per line (pipes, CI).
                         Observation never changes the suite — stdout is
                         byte-identical with and without it";

/// The `--help` text of one subcommand (`store` takes the sub-subcommand
/// when one was given). `None` for unknown commands.
pub fn help_for(cmd: &str, store_sub: Option<&str>) -> Option<String> {
    let text = match cmd {
        "table1" => "\
usage: transform table1

Print the MTM vocabulary (the paper's Table I): every primitive and
derived relation of the transistency model DSL.

example:
  transform table1
"
        .to_string(),
        "figures" => "\
usage: transform figures [--dot NAME]

Evaluate every paper figure under x86t_elt and print its verdict
(permitted / forbidden, with the violated axioms). With --dot, print
one figure's candidate execution as Graphviz instead.

flags:
  --dot NAME             emit the named figure as a digraph

example:
  transform figures --dot fig10a_ptwalk2 | dot -Tsvg > ptwalk2.svg
"
        .to_string(),
        "check" => "\
usage: transform check FILE|- [--mtm M]

Parse an ELT file (`-` reads stdin) and report its verdict under an
MTM: permitted, or forbidden with the violated axioms.

flags:
  --mtm M                `x86t_elt` (default), `x86tso`, or a spec file path

example:
  transform check test.elt --mtm x86tso
"
        .to_string(),
        "synthesize" => format!(
            "\
usage: transform synthesize --axiom A|--all --bound N [--mtm M]
           [--max-threads T] [--fences] [--rmw] [--timeout-secs S]
           [--quiet] [--jobs N|auto] [--backend explicit|relational]
           [--partition-size N|auto] [--balance mass|depth]
           [--progress[=human|json]] [--warm-start[=auto]]
           [--cache DIR] [--cache-url URL] [--out FILE]
           [--workers URL[,URL...]] [--lease-ttl-secs S]
           [--fleet-ranges N]

Synthesize the per-axiom spanning-set suite of enhanced litmus tests at
an instruction bound — one axiom, or with --all every axiom of the MTM
through one fused run (the program space is enumerated once; no shared
plan is built before workers start, and each axiom's suite is sealed
into the cache the moment that axiom finishes). Every suite is
byte-identical for every --jobs, --partition-size, and --balance.

flags:
  --axiom A              the MTM axiom to violate
  --all                  every axiom of the MTM, in one fused run
  --bound N              instruction bound (required)
  --mtm M                `x86t_elt` (default), `x86tso`, or a spec file path
  --max-threads T        cap threads in enumerated programs
  --fences               include MFENCE in the program space
  --rmw                  include RMW pairs in the program space
  --timeout-secs S       best-effort budget; timed-out suites are partial
                         and never cached
  --jobs N|auto          worker threads (`auto` = all cores)
  --backend B            `explicit` or `relational` (SAT)
  --quiet                suppress the ELT listing
  --out FILE             write the ELTs to FILE instead of stdout
{PARTITION_FLAG}
{BALANCE_FLAG}
{PROGRESS_FLAG}
  --warm-start[=auto]    seed the run from the sealed bound-N\u{2212}1 suite in
                         the cache (needs --cache): fully-covered partitions
                         are skipped and the result seals as a delta entry
                         referencing the parent, byte-identical to a cold
                         run when served. Bare --warm-start errors when the
                         parent or its admission digest is missing; `=auto`
                         falls back to a cold full run instead

fleet (distributed synthesis):
  --workers URL[,URL...]  run the synthesis on a worker fleet instead of
                         locally: the run is registered as a job on the
                         coordinator (a `transform serve` instance; the
                         first URL), `transform worker` processes lease
                         its mass-balanced partition ranges and upload
                         shard results, and the fleet-sealed suites are
                         pulled back into --cache (required) — byte-
                         identical to a local run at any worker count,
                         including under worker death and lease expiry.
                         --timeout-secs cuts the job instead of sealing
  --lease-ttl-secs S     how long a worker may go without a heartbeat
                         before its range is reclaimed (default 30)
  --fleet-ranges N       how many leasable ranges the plan splits into
                         (default 2x --jobs, at least 4); scheduling
                         only — it never changes the suite

caching:
{CACHE_FLAGS}

example:
  transform synthesize --all --bound 5 --fences --rmw --jobs auto \\
      --progress --cache store --cache-url http://cache.internal:7171

  # step a cache through bounds, each bound warm-started on the last:
  transform synthesize --all --bound 4 --cache store
  transform synthesize --all --bound 5 --warm-start --cache store

  # drive a worker fleet from one invocation (workers run elsewhere):
  transform synthesize --all --bound 5 --jobs auto --cache store \\
      --workers http://coordinator:7171
"
        ),
        "compare" => format!(
            "\
usage: transform compare [--bound N] [--timeout-secs S] [--jobs N|auto]
           [--partition-size N|auto] [--balance mass|depth]
           [--progress[=human|json]] [--cache DIR] [--cache-url URL]

The paper's §VI-B comparison: synthesize every x86t_elt per-axiom suite
(one fused run — the program space is enumerated once for all axioms)
and compare the synthesized programs against the reconstructed
COATCheck suite.

flags:
  --bound N              instruction bound (default 7)
  --timeout-secs S       budget for the whole fused run (default 300);
                         axioms that finished before the cut stay complete
  --jobs N|auto          worker threads (`auto` = all cores)
{PARTITION_FLAG}
{BALANCE_FLAG}
{PROGRESS_FLAG}

caching:
{CACHE_FLAGS}

example:
  transform compare --bound 6 --jobs auto --progress --cache store \\
      --cache-url http://cache.internal:7171
"
        ),
        "simulate" => "\
usage: transform simulate FILE|- [--bug invlpg-noop|shootdown|dirty-bit]
           [--evictions] [--mtm M]

Run an ELT program (`-` reads stdin) on the operational x86-TSO + VM
reference machine, enumerate its outcomes, and check conformance
against the MTM — optionally with an injected transistency bug.

flags:
  --bug B                inject `invlpg-noop`, `shootdown`, or `dirty-bit`
  --evictions            model capacity evictions
  --mtm M                `x86t_elt` (default), `x86tso`, or a spec file path

example:
  transform simulate elt.txt --bug shootdown
"
        .to_string(),
        "query" => "\
usage: transform query --cache DIR [--mtm-name M] [--axiom A] [--bound N]
           [--backend B] [--shape S] [--fences] [--rmw]

List the ELTs of a local suite cache, filtered by entry key and test
shape, without resynthesizing anything. (To query a fleet-wide cache,
`transform store pull` it into a local directory first.)

flags:
  --mtm-name M           keep entries of the named MTM
  --axiom A              keep entries for one axiom
  --bound N              keep entries at one bound
  --backend B            keep entries of one backend
  --shape S              keep tests with the slots-per-thread shape (e.g. 2+1)
  --fences               keep tests containing a fence
  --rmw                  keep tests containing an RMW pair

caching:
  --cache DIR            the local suite store to query (required)

example:
  transform query --cache store --axiom invlpg --shape 2+1 --fences
"
        .to_string(),
        "export" => "\
usage: transform export --cache DIR [query filters] [--out FILE]

Dump cached ELTs in the text syntax (parseable back by `check`), with
the same filters as `query`.

flags:
  same filters as `transform query --help`
  --out FILE             write to FILE instead of stdout

caching:
  --cache DIR            the local suite store to export from (required)

example:
  transform export --cache store --bound 5 --out suite.elt
"
        .to_string(),
        "serve" => "\
usage: transform serve --root DIR [--addr HOST:PORT] [--threads N]
           [--verbose]

Serve a suite store over HTTP as a fleet-wide shared cache. Clients
point `--cache-url` at it: GET/HEAD /v1/suite/<fingerprint> serves
sealed entries, PUT uploads them (validated byte-for-byte before
sealing, idempotent), GET /v1/index serves the entry index,
GET /healthz reports liveness, and GET /v1/metrics exposes the request
counters (requests, hits, puts, bytes, per-route request counts and
latency histograms, in-flight connections) in the Prometheus text
format — scrape it, or watch it live with `transform top`. Run
journals replicate too: GET /v1/runs lists the recorded run manifests,
GET/PUT /v1/runs/<id> fetch and publish full journals (validated, and
rewritable so live runs can heartbeat). Entries are content-addressed
and immutable, so serving is replication-safe by construction.

The same instance is the synthesis-fleet coordinator: POST /v1/jobs
registers a job (`synthesize --workers` does this), POST /v1/lease
hands mass-balanced partition ranges to `transform worker` processes,
heartbeats renew leases (a silent worker's range is reclaimed and
reassigned), PUT /v1/shard/... stages checksummed shard results
idempotently, and the last range in triggers the deterministic merge
that seals suites byte-identical to a single-machine run. Admission
digests replicate over GET/PUT /v1/digest/<fingerprint>.

flags:
  --root DIR             the store directory to serve (required; created
                         if missing)
  --addr HOST:PORT       listen address (default 127.0.0.1:7171; port 0
                         picks a free port)
  --threads N            connection worker threads (default 4)
  --verbose              log one line per request to stderr

example:
  transform serve --root /srv/transform-store --addr 0.0.0.0:7171
"
        .to_string(),
        "worker" => "\
usage: transform worker --url URL [--jobs N|auto] [--poll-secs N]
           [--drain] [--idle-secs N] [--name NAME]

A synthesis-fleet worker. Polls the coordinator (a `transform serve`
instance) for leases over POST /v1/lease, runs the fused pipeline over
each leased partition range (the admission prefix is replayed for
global dedup, so the shard is byte-identical to the same range of a
single-machine run), heartbeats while computing, and uploads the
checksummed shard result over PUT /v1/shard. Uploads are idempotent:
retries and duplicate completions (for example after this worker's
lease expired and the range was reassigned) merge conflict-free. A
failed range is abandoned so its lease expires and the coordinator
reassigns it.

flags:
  --url URL              the coordinator endpoint (http://host:port)
  --jobs N|auto          worker threads per leased range (`auto` = all
                         cores); never changes the uploaded shard
  --poll-secs N          how often to re-poll an idle coordinator
                         (default 1)
  --drain                exit once the coordinator has had no work for
                         --idle-secs; without it the worker serves
                         forever
  --idle-secs N          the --drain grace period (default 5) — long
                         enough for a fleet client to register its job
  --name NAME            the worker name in coordinator logs (default
                         worker-<pid>)

example:
  transform worker --url http://coordinator:7171 --jobs auto --drain
"
        .to_string(),
        "top" => "\
usage: transform top --url URL [--interval-secs N] [--once]

A live fleet view of a `transform serve` instance: polls its
/v1/metrics endpoint and renders entries, suite hits/misses, puts,
byte counters, in-flight connections, and a per-route table of request
counts, delta-based rates, and average latencies — then merges in
/v1/runs, so recent synthesis runs appear below with in-flight ones
expanded to their live per-axiom progress. Redraws in place on a TTY;
prints one frame per poll otherwise.

flags:
  --url URL              the `transform serve` endpoint (http://host:port)
  --interval-secs N      polling interval (default 2)
  --once                 print a single snapshot and exit (scripts, CI
                         smoke tests)

example:
  transform top --url http://cache.internal:7171 --once
"
        .to_string(),
        "runs" => "\
usage: transform runs list [--outcome O] [--since ISO8601]
           |show ID|export ID --chrome [--out FILE]
           (--cache DIR | --url URL)

Every `--cache` synthesis run records a checksummed run journal — a
manifest (spec, bound, options, outcome, final counters) plus
timestamped span events — into the store, heartbeating a `running`
manifest while it executes. `list` prints the recorded manifests
newest first, `show` renders one run's manifest, per-axiom table, and
event counts, and `export --chrome` turns its journal into a Chrome
trace-event JSON file (load it in about://tracing or Perfetto).

flags:
  --outcome O            keep `list` rows with one outcome: `running`,
                         `complete`, `cut`, or `crashed`
  --since ISO8601        keep `list` rows started at or after a UTC
                         instant (`2026-08-01` or
                         `2026-08-01T12:30:00`; trailing `Z` optional)
  --chrome               export as Chrome trace-event JSON (required
                         for `export`; the only format today)
  --out FILE             write the trace to FILE instead of stdout

sources (exactly one):
  --cache DIR            read journals from a local suite store
  --url URL              read them from a `transform serve` endpoint
                         (http://host:port) via GET /v1/runs

example:
  transform runs export 00c0ffee00c0ffee --chrome --cache store \\
      --out run.trace.json
"
        .to_string(),
        "store" => match store_sub {
            None => "\
usage: transform store <verify|gc|push|pull> [options]

Maintain a suite store: `verify` re-checksums every entry offline,
`gc` ages entries out, `push` uploads sealed entries to a shared
`transform serve` cache, `pull` downloads its entries. Each has its
own --help.

example:
  transform store verify --cache store
"
            .to_string(),
            Some("verify") => "\
usage: transform store verify --cache DIR [--remove-corrupt]

Re-checksum every sealed suite of a local store offline: header, every
record, and the trailer — and every recorded run journal end to end.
Delta entries are validated twice: their own bytes, then the parent
chain they materialize through. Reports (and with --remove-corrupt
deletes) entries and journals that fail.

flags:
  --remove-corrupt       delete entries whose own bytes fail validation.
                         An intact delta above a damaged parent is
                         reported as BROKEN CHAIN but kept — removing
                         the damaged parent is what quarantines the
                         fault

caching:
  --cache DIR            the local suite store to verify (required)

example:
  transform store verify --cache store --remove-corrupt
"
            .to_string(),
            Some("gc") => "\
usage: transform store gc --cache DIR [--older-than-days N]
           [--keep-list FILE] [--dry-run]

Age out cached suites by mtime and/or a keep-list of fingerprints,
sweep leftover tmp-* shard directories and orphaned admission digests,
and (with --older-than-days) age out run journals by the same cutoff.
Keeping a delta entry pins its whole parent chain: an entry some kept
delta references survives whatever its own age or list status, so a
served chain never breaks mid-collection.

flags:
  --older-than-days N    remove entries and run journals older than N days
  --keep-list FILE       fingerprints (one per line) to keep; without
                         --older-than-days, unlisted entries are removed
                         (run journals age only by mtime — the keep-list
                         names suite fingerprints, never runs)
  --dry-run              report without deleting

caching:
  --cache DIR            the local suite store to collect (required)

example:
  transform store gc --cache store --older-than-days 30 --dry-run
"
            .to_string(),
            Some("push") => "\
usage: transform store push --cache DIR --url URL [--fingerprint FP]

Upload sealed entries of a local store to a shared `transform serve`
cache. Entries the remote already holds are skipped (content addressing
makes them immutable); the server validates every uploaded byte before
sealing. Delta entries land parent-first, so the server can resolve
each chain as it validates. Each pushed entry's admission digest rides
along, so a later `store pull` elsewhere can seed `--warm-start` from
the replicated parent.

flags:
  --fingerprint FP       push one entry instead of all
  --url URL              the `transform serve` endpoint (http://host:port)

caching:
  --cache DIR            the local suite store to push from (required)

example:
  transform store push --cache store --url http://cache.internal:7171
"
            .to_string(),
            Some("pull") => "\
usage: transform store pull --cache DIR --url URL [--fingerprint FP]

Download sealed entries from a shared `transform serve` cache into a
local store. Every fetched entry is validated byte-for-byte before it
is installed; entries already present locally are skipped. Admission
digests are pulled alongside their entries when the remote holds them,
so a pulled parent seeds `--warm-start` exactly like a locally
synthesized one.

flags:
  --fingerprint FP       pull one entry instead of the remote's index
  --url URL              the `transform serve` endpoint (http://host:port)

caching:
  --cache DIR            the local suite store to pull into (required)

example:
  transform store pull --cache store --url http://cache.internal:7171
"
            .to_string(),
            Some(_) => return None,
        },
        _ => return None,
    };
    Some(text)
}
