use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match transform_cli::run(&args) {
        Ok(output) => {
            print!("{output}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("{}", transform_cli::USAGE);
            ExitCode::FAILURE
        }
    }
}
