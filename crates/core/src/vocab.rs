//! The MTM vocabulary summary — the paper's Table I, as introspectable
//! data.

use crate::derive::BaseRel;

/// One row of Table I.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct VocabEntry {
    /// The element's name as printed in the paper.
    pub element: &'static str,
    /// The paper's one-line description.
    pub description: &'static str,
    /// `true` for baseline MCM vocabulary (grayed in the paper's table);
    /// `false` for the new MTM additions.
    pub baseline_mcm: bool,
    /// The corresponding derived relation, when the element is a relation.
    pub relation: Option<BaseRel>,
}

/// The full vocabulary table (Table I of the paper).
pub fn table_i() -> Vec<VocabEntry> {
    use BaseRel::*;
    vec![
        VocabEntry {
            element: "Event",
            description: "instruction representing a micro-op in a program",
            baseline_mcm: true,
            relation: None,
        },
        VocabEntry {
            element: "MemoryEvent",
            description: "Read or Write memory access in a program",
            baseline_mcm: true,
            relation: None,
        },
        VocabEntry {
            element: "address",
            description: "relates MemoryEvent to Location being accessed",
            baseline_mcm: true,
            relation: None,
        },
        VocabEntry {
            element: "po",
            description: "program order, same-thread sequencing of Events",
            baseline_mcm: true,
            relation: Some(Po),
        },
        VocabEntry {
            element: "rf",
            description: "relates Write to Reads it sources",
            baseline_mcm: true,
            relation: Some(Rf),
        },
        VocabEntry {
            element: "co",
            description: "relates Write to other Writes in coherence order",
            baseline_mcm: true,
            relation: Some(Co),
        },
        VocabEntry {
            element: "fr",
            description: "relates Read to co-successors of Write it reads from",
            baseline_mcm: true,
            relation: Some(Fr),
        },
        VocabEntry {
            element: "ghost",
            description: "relates user-facing MemoryEvent to induced ghost instructions",
            baseline_mcm: false,
            relation: Some(Ghost),
        },
        VocabEntry {
            element: "rf_ptw",
            description: "relates PT walk to user-facing MemoryEvents that read from loaded TLB entry",
            baseline_mcm: false,
            relation: Some(RfPtw),
        },
        VocabEntry {
            element: "rf_pa",
            description: "relates PTE Write to user-facing MemoryEvents that access written address mapping",
            baseline_mcm: false,
            relation: Some(RfPa),
        },
        VocabEntry {
            element: "co_pa",
            description: "relates PTE Write to other subsequent PTE Writes for same PA in coherence order",
            baseline_mcm: false,
            relation: Some(CoPa),
        },
        VocabEntry {
            element: "fr_pa",
            description: "relates user-facing MemoryEvent to co_pa-successors of PTE Write they read address mapping from",
            baseline_mcm: false,
            relation: Some(FrPa),
        },
        VocabEntry {
            element: "fr_va",
            description: "relates user-facing MemoryEvent to subsequent PTE Write that changes address mapping for accessed VA",
            baseline_mcm: false,
            relation: Some(FrVa),
        },
        VocabEntry {
            element: "remap",
            description: "relates PTE Write to invoked INVLPGs",
            baseline_mcm: false,
            relation: Some(Remap),
        },
    ]
}

/// Renders Table I as aligned plain text.
pub fn render_table_i() -> String {
    let rows = table_i();
    let width = rows.iter().map(|r| r.element.len()).max().unwrap_or(0);
    let mut out = String::new();
    out.push_str(&format!(
        "{:w$}  {}  {}\n",
        "element",
        "mcm?",
        "description",
        w = width
    ));
    for r in &rows {
        out.push_str(&format!(
            "{:w$}  {}  {}\n",
            r.element,
            if r.baseline_mcm { "mcm " } else { "mtm+" },
            r.description,
            w = width
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_has_fourteen_rows_like_the_paper() {
        assert_eq!(table_i().len(), 14);
    }

    #[test]
    fn mtm_additions_are_the_new_relations() {
        let additions: Vec<&str> = table_i()
            .iter()
            .filter(|e| !e.baseline_mcm)
            .map(|e| e.element)
            .collect();
        assert_eq!(
            additions,
            ["ghost", "rf_ptw", "rf_pa", "co_pa", "fr_pa", "fr_va", "remap"]
        );
    }

    #[test]
    fn relation_names_agree_with_base_rel() {
        for e in table_i() {
            if let Some(r) = e.relation {
                assert_eq!(e.element, r.name());
            }
        }
    }

    #[test]
    fn rendering_contains_every_element() {
        let s = render_table_i();
        for e in table_i() {
            assert!(s.contains(e.element));
        }
    }
}
