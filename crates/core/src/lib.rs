//! `transform-core` — the MTM vocabulary and axiom engine of TransForm.
//!
//! This crate implements the heart of *TransForm: Formally Specifying
//! Transistency Models and Synthesizing Enhanced Litmus Tests* (ISCA
//! 2020): an axiomatic vocabulary for **memory transistency models**
//! (MTMs) — memory consistency models extended with virtual-memory
//! behavior — and the machinery to evaluate a model's *transistency
//! predicate* against **candidate executions** of **enhanced litmus tests**
//! (ELTs).
//!
//! * [`ids`] / [`event`] — threads, VAs/PAs, PTE locations, and the three
//!   event strata (user-facing, OS support, hardware ghost).
//! * [`exec`] — candidate executions and [`exec::EltBuilder`].
//! * [`derive`](mod@derive) — placement-rule validation and every derived relation of
//!   the paper's Table I (`po_loc`, `rf_ptw`, `rf_pa`, `co_pa`, `fr_pa`,
//!   `fr_va`, `remap`, `ptw_source`, …).
//! * [`axiom`] — MTM specifications (`acyclic` / `irreflexive` / `empty`
//!   axioms over relational expressions) and verdicts.
//! * [`spec`] — a textual DSL for MTMs (the Alloy-equivalent surface
//!   syntax of this reproduction).
//! * [`figures`] — the paper's figure ELTs, reconstructed.
//! * [`vocab`] — Table I as introspectable data.
//! * [`pretty`] — figure-style rendering of executions.
//!
//! # Examples
//!
//! Check the paper's Fig. 10a (`ptwalk2`) against an invlpg-style axiom:
//!
//! ```
//! use transform_core::axiom::{Axiom, Mtm, RelExpr};
//! use transform_core::derive::BaseRel;
//! use transform_core::figures;
//!
//! let mut mtm = Mtm::new("invlpg_only");
//! mtm.add_axiom(
//!     "invlpg",
//!     Axiom::Acyclic(RelExpr::union_all([
//!         RelExpr::base(BaseRel::FrVa),
//!         RelExpr::base(BaseRel::Po).closure(),
//!         RelExpr::base(BaseRel::Remap),
//!     ])),
//! );
//! let verdict = mtm.permits(&figures::fig10a_ptwalk2());
//! assert!(verdict.violates("invlpg"));
//! ```

pub mod axiom;
pub mod derive;
pub mod event;
pub mod exec;
pub mod figures;
pub mod ids;
pub mod pretty;
pub mod spec;
pub mod vocab;
pub mod wellformed;

pub use axiom::{Axiom, Mtm, RelExpr, Verdict};
pub use derive::{Analysis, BaseRel};
pub use event::{Event, EventKind};
pub use exec::{EltBuilder, Execution, PairSet};
pub use ids::{EventId, Location, Mapping, Pa, ThreadId, Va};
pub use wellformed::WellformedError;
